#!/usr/bin/env python
"""Quickstart: process share groups in five minutes.

Demonstrates the core of the paper's interface on the simulated kernel:

1. ``sproc(entry, shmask, arg)`` creates a share-group member; the mask
   picks the resources it shares (here: everything, ``PR_SALL``).
2. The virtual address space is genuinely shared — members increment a
   counter in an ``mmap``'d page using atomic fetch-and-add.
3. Open file descriptors propagate: a file opened by one member is
   usable by another at its next kernel entry.
4. ``prctl`` reports group facts (member count, CPUs available).

Run:  python examples/quickstart.py
"""

from repro import (
    O_CREAT,
    O_RDWR,
    PR_GETNSHARE,
    PR_MAXPPROCS,
    PR_SALL,
    SEEK_SET,
    System,
)
from repro.runtime import USpinLock


def worker(api, ctx):
    """A share-group member: bump the shared counter, then read the
    descriptor its sibling opened."""
    counter, report = ctx["counter"], ctx["report"]
    for _ in range(100):
        yield from api.fetch_add(counter, 1)

    # Any kernel entry resynchronizes shared resources; getpid will do.
    yield from api.getpid()
    fd = ctx["shared_fd"]
    # A shared descriptor shares its *offset* too (that is the feature:
    # one member's read advances what the others see), so seek+read is
    # serialized with a user spinlock, the idiomatic group pattern.
    lock = USpinLock(ctx["lock"])
    yield from lock.acquire(api)
    yield from api.lseek(fd, 0, SEEK_SET)
    data = yield from api.read(fd, 64)
    yield from lock.release(api)
    report.append((api.pid, data))
    return 0


def main(api, ctx):
    report = ctx["report"]

    # A page of group-shared memory for the counter.
    counter = yield from api.mmap(4096)
    ctx["counter"] = counter
    ctx["lock"] = counter + 64

    # Open a file *before* spawning: the members inherit it.
    fd = yield from api.open("/motd", O_RDWR | O_CREAT)
    yield from api.write(fd, b"hello from the share group")
    ctx["shared_fd"] = fd

    ncpus = yield from api.prctl(PR_MAXPPROCS)
    report.append(("cpus", ncpus))

    pids = []
    for _ in range(4):
        pid = yield from api.sproc(worker, PR_SALL, ctx)
        pids.append(pid)
    report.append(("members", (yield from api.prctl(PR_GETNSHARE))))

    for index, _ in enumerate(pids):
        yield from api.wait()
        if index == len(pids) - 2:
            # Host-side system snapshot while the group is still alive
            # (free: observability costs no simulated cycles).
            ctx["snapshot"] = ctx["sim"].report()

    total = yield from api.load_word(counter)
    report.append(("counter", total))
    return 0


if __name__ == "__main__":
    report = []
    sim = System(ncpus=4)
    ctx = {"report": report, "sim": sim}
    sim.spawn(main, ctx)
    cycles = sim.run()

    print("quickstart: share groups on a %d-CPU simulated machine" % 4)
    print("-" * 60)
    for key, value in report:
        print("  %-10s %r" % (key, value))
    print("-" * 60)
    print("  simulated cycles: {:,}".format(cycles))
    print("  kernel stats: sprocs=%d groups=%d syscalls=%d" % (
        sim.stats["sprocs"], sim.stats["groups_created"], sim.stats["syscalls"],
    ))
    assert dict(report)["counter"] == 400, "lost updates?!"
    print("  OK: 4 members x 100 atomic increments == 400")
    print()
    print(ctx["snapshot"])
