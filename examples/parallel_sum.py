#!/usr/bin/env python
"""Self-scheduling parallel computation on a share group (section 3).

A pool of ``sproc``'d workers is created once (sized with
``prctl(PR_MAXPPROCS)``, the paper's own sizing hint), then pulls chunk
descriptors off a shared-memory work queue and sums slices of a shared
array in place.  The script sweeps machine sizes and prints the speedup
curve — the "environment" argument of section 3: with the pool
preallocated and the data shared, adding processors is all it takes.

Run:  python examples/parallel_sum.py
"""

from repro import PR_MAXPPROCS, PR_SALL, System
from repro.runtime import WorkQueue
from repro.workloads import generators as gen

NWORDS = 16384
CHUNK_WORDS = 512
CYCLES_PER_WORD = 24  # per-element "math" the workers model


def worker(api, ctx):
    base, queue_base, accum = ctx["base"], ctx["queue_base"], ctx["accum"]
    queue = yield from WorkQueue.attach(api, queue_base)
    while True:
        begin = yield from queue.pop(api)
        if begin is None:
            return 0
        raw = yield from api.load(base + begin * 4, CHUNK_WORDS * 4)
        values = gen.unpack_words(raw)
        yield from api.compute(len(values) * CYCLES_PER_WORD)
        yield from api.fetch_add(accum, sum(values) & 0xFFFFFFFF)


def main(api, ctx):
    out, values = ctx["out"], ctx["values"]
    base = yield from api.mmap(NWORDS * 4 + 4096)
    accum = yield from api.mmap(4096)
    yield from api.store(base, gen.pack_words(values))

    nworkers = yield from api.prctl(PR_MAXPPROCS)
    queue = yield from WorkQueue.create(api, NWORDS // CHUNK_WORDS + 4)
    wctx = {"base": base, "queue_base": queue.base, "accum": accum}

    start = api.now
    for _ in range(nworkers):
        yield from api.sproc(worker, PR_SALL, wctx)
    for begin in range(0, NWORDS, CHUNK_WORDS):
        yield from queue.push(api, begin)
    yield from queue.close(api)
    for _ in range(nworkers):
        yield from api.wait()
    out["cycles"] = api.now - start
    out["total"] = yield from api.load_word(accum)
    return 0


if __name__ == "__main__":
    values = gen.words(NWORDS, seed=99)
    expected = sum(values) & 0xFFFFFFFF

    print("parallel sum of %d words, self-scheduling sproc pool" % NWORDS)
    print("-" * 60)
    print("  %5s  %12s  %8s" % ("cpus", "cycles", "speedup"))
    baseline = None
    for ncpus in (1, 2, 4, 8):
        out = {}
        sim = System(ncpus=ncpus)
        sim.spawn(main, {"out": out, "values": values})
        sim.run()
        assert out["total"] == expected, "wrong sum on %d cpus" % ncpus
        if baseline is None:
            baseline = out["cycles"]
        print("  %5d  %12s  %7.2fx" % (
            ncpus, "{:,}".format(out["cycles"]), baseline / out["cycles"],
        ))
    print("  (answers verified against the host computation)")
