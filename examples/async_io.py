#!/usr/bin/env python
"""The paper's section 4 example: user-level asynchronous I/O.

"A user-level asynchronous I/O scheme could be implemented by sharing
the memory and file descriptors.  High level I/O calls are translated
into an equivalent call in a child shared process, which performs the
I/O directly from the original buffer and then signals the parent."

This script reads a 64 KB file in 4 KB blocks twice — synchronously,
then through an :class:`~repro.runtime.aio.AioRing` whose workers are
``sproc``'d with ``PR_SADDR | PR_SFDS`` — and compares total simulated
cycles.  Between submissions the parent "processes" each block
(a compute burst), which is the work the async version overlaps with
the disk.

Run:  python examples/async_io.py
"""

from repro import O_CREAT, O_RDWR, SEEK_SET, System
from repro.runtime import AioRing
from repro.workloads import generators as gen

NBLOCKS = 16
BLOCK = 4096
CRUNCH = 15_000  # cycles of per-block processing


def make_file(api):
    fd = yield from api.open("/big.dat", O_RDWR | O_CREAT)
    yield from api.write(fd, gen.payload(NBLOCKS * BLOCK, seed=5))
    yield from api.lseek(fd, 0, SEEK_SET)
    return fd


def synchronous(api, out):
    fd = yield from make_file(api)
    start = api.now
    checksum = 0
    for _ in range(NBLOCKS):
        data = yield from api.read(fd, BLOCK)
        yield from api.compute(CRUNCH)
        checksum ^= gen.checksum(data)
    out["sync_cycles"] = api.now - start
    out["sync_checksum"] = checksum
    return 0


def asynchronous(api, out):
    fd = yield from make_file(api)
    ring = yield from AioRing.create(api, nworkers=2)
    buf = yield from api.mmap(NBLOCKS * BLOCK)
    start = api.now
    handles = []
    for index in range(NBLOCKS):
        handle = yield from ring.submit_read(
            api, fd, buf + index * BLOCK, BLOCK, index * BLOCK
        )
        handles.append(handle)
    # The disk turns while we crunch.
    for _ in range(NBLOCKS):
        yield from api.compute(CRUNCH)
    checksum = 0
    for index, handle in enumerate(handles):
        got = yield from ring.wait(api, handle)
        assert got == BLOCK
        data = yield from api.load(buf + index * BLOCK, BLOCK)
        checksum ^= gen.checksum(data)
    out["aio_cycles"] = api.now - start
    out["aio_checksum"] = checksum
    yield from ring.shutdown(api)
    return 0


if __name__ == "__main__":
    out = {}
    sim = System(ncpus=4)
    sim.spawn(synchronous, out)
    sim.run()

    sim = System(ncpus=4)
    sim.spawn(asynchronous, out)
    sim.run()

    assert out["sync_checksum"] == out["aio_checksum"], "data corrupted"
    print("asynchronous I/O through a share group (paper section 4)")
    print("-" * 60)
    print("  %d blocks x %d B, %s cycles of processing per block"
          % (NBLOCKS, BLOCK, "{:,}".format(CRUNCH)))
    print("  synchronous loop : {:>10,} cycles".format(out["sync_cycles"]))
    print("  aio ring (2 wkrs): {:>10,} cycles".format(out["aio_cycles"]))
    saved = 1 - out["aio_cycles"] / out["sync_cycles"]
    print("  overlap saves    : %.0f%%" % (saved * 100))
    print("  checksums match  : yes")
