#!/usr/bin/env python
"""Figures 1-4, executable: the same application in five UNIX worlds.

Runs the producer/consumer stream and the data-parallel sum in each of
the paper's programming models — Version-7 pipes, System V shm+sem, BSD
sockets, Mach-style threads, and IRIX share groups — on identical
simulated hardware, and prints the comparison (this is experiment E10's
workload as a friendly script).

Run:  python examples/model_zoo.py
"""

from repro.workloads import MODELS, run_parallel_sum, run_producer_consumer

DESCRIPTIONS = {
    "v7_pipes": "Figure 1: independent processes, pipes only",
    "sysv_shm": "Figure 2: SysV shared memory + kernel semaphores",
    "bsd_sockets": "Figure 2: BSD socket byte streams",
    "mach_threads": "Figure 3: share-everything threads in one task",
    "share_group": "Figure 4: sproc() share group (this paper)",
}

if __name__ == "__main__":
    print("one application, five programming models")
    print("=" * 72)
    print("%-13s %-42s" % ("model", "description"))
    print("-" * 72)
    for model in MODELS:
        print("%-13s %-42s" % (model, DESCRIPTIONS[model]))

    print()
    print("producer -> consumer, 32 KB in 256-byte chunks (fine-grained)")
    print("-" * 72)
    stream = {}
    for model in MODELS:
        metrics = run_producer_consumer(model, nbytes=32 * 1024, chunk=256)
        stream[model] = metrics["cycles"]
        print("  %-13s %10s cycles   %8.1f bytes/kcycle" % (
            model, "{:,}".format(metrics["cycles"]), metrics["bytes_per_kcycle"],
        ))

    print()
    print("data-parallel sum, 4096 words across 4 workers on 4 CPUs")
    print("-" * 72)
    for model in MODELS:
        metrics = run_parallel_sum(model, nwords=4096, nworkers=4)
        print("  %-13s %10s cycles" % (model, "{:,}".format(metrics["cycles"])))

    print()
    best_queueing = min(stream[m] for m in ("v7_pipes", "sysv_shm", "bsd_sockets"))
    print("share group vs best queueing model on the stream: %.1fx faster"
          % (best_queueing / stream["share_group"]))
    print("(every run's output is checksum-verified before timing counts)")
