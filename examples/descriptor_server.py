#!/usr/bin/env python
"""The paper's introduction example: a server handing descriptors to
workers — done the Berkeley way and the share-group way.

"A network server could share file descriptors with several children.
The server would perform security checks and open a socket descriptor to
the client, and then pass this descriptor to a waiting child with a
simple message containing the descriptor."

Variant A (BSD): forked workers connect to the dispatcher over a local
socket; the dispatcher ``sendfd``'s each accepted client connection to a
worker.

Variant B (share group): workers are ``sproc``'d with ``PR_SFDS``; the
dispatcher just ``open``'s the per-client descriptor and posts the *fd
number* through a shared-memory queue — the descriptor itself is already
in every worker's table by the time it enters the kernel.

Run:  python examples/descriptor_server.py
"""

from repro import O_CREAT, O_RDWR, PR_SALL, SEEK_SET, System
from repro.runtime import WorkQueue

NCLIENTS = 12
NWORKERS = 3


def _make_request_files(api):
    """Simulate per-client connections as files carrying a request."""
    for index in range(NCLIENTS):
        fd = yield from api.open("/req-%d" % index, O_RDWR | O_CREAT)
        yield from api.write(fd, b"request #%d" % index)
        yield from api.close(fd)


# ----------------------------------------------------------------------
# Variant A: descriptor passing over sockets (Figure-2 world)


def bsd_worker(api, ctx):
    served = ctx["served"]
    sock = yield from api.socket()
    yield from api.connect(sock, "dispatcher")
    while True:
        tag = yield from api.recv(sock, 1)
        if tag != b"F":
            break  # dispatcher said drain
        fd = yield from api.recvfd(sock)
        yield from api.lseek(fd, 0, SEEK_SET)
        data = yield from api.read(fd, 64)
        yield from api.close(fd)
        served.append(bytes(data))
    return 0


def bsd_dispatcher(api, ctx):
    out = ctx["out"]
    yield from _make_request_files(api)
    listener = yield from api.socket()
    yield from api.bind(listener, "dispatcher")
    yield from api.listen(listener, NWORKERS)
    for _ in range(NWORKERS):
        yield from api.fork(bsd_worker, ctx)
    conns = []
    for _ in range(NWORKERS):
        conn = yield from api.accept(listener)
        conns.append(conn)
    start = api.now
    for index in range(NCLIENTS):
        # "security check", then open the client's descriptor and pass it
        fd = yield from api.open("/req-%d" % index, O_RDWR)
        conn = conns[index % NWORKERS]
        yield from api.send(conn, b"F")
        yield from api.sendfd(conn, fd)
        yield from api.close(fd)
    for conn in conns:
        yield from api.send(conn, b"Q")
    for _ in range(NWORKERS):
        yield from api.wait()
    out["cycles"] = api.now - start
    return 0


# ----------------------------------------------------------------------
# Variant B: share group — descriptors are simply *there*


def group_worker(api, ctx):
    queue_base, served = ctx["queue_base"], ctx["served"]
    queue = yield from WorkQueue.attach(api, queue_base)
    while True:
        fd = yield from queue.pop(api)
        if fd is None:
            return 0
        # The open() that produced this fd happened in the dispatcher;
        # our table picked it up at kernel entry.  Just use the number.
        yield from api.lseek(fd, 0, SEEK_SET)
        data = yield from api.read(fd, 64)
        served.append(bytes(data))


def group_dispatcher(api, ctx):
    out = ctx["out"]
    yield from _make_request_files(api)
    queue = yield from WorkQueue.create(api, NCLIENTS + 4)
    ctx["queue_base"] = queue.base
    for _ in range(NWORKERS):
        yield from api.sproc(group_worker, PR_SALL, ctx)
    start = api.now
    for index in range(NCLIENTS):
        fd = yield from api.open("/req-%d" % index, O_RDWR)
        yield from queue.push(api, fd)
    yield from queue.close(api)
    for _ in range(NWORKERS):
        yield from api.wait()
    out["cycles"] = api.now - start
    return 0


if __name__ == "__main__":
    results = {}
    for label, main in (("bsd sendfd", bsd_dispatcher), ("share group", group_dispatcher)):
        out, served = {}, []
        sim = System(ncpus=4)
        sim.spawn(main, {"out": out, "served": served})
        sim.run()
        expected = {b"request #%d" % i for i in range(NCLIENTS)}
        assert set(served) == expected, "%s dropped requests: %r" % (label, served)
        results[label] = out["cycles"]

    print("descriptor hand-off: %d requests to %d workers" % (NCLIENTS, NWORKERS))
    print("-" * 60)
    for label, cycles in results.items():
        print("  %-12s {:>10,} cycles".format(cycles) % label)
    ratio = results["bsd sendfd"] / results["share group"]
    print("  share-group dispatch is %.1fx faster: no per-descriptor"
          " message, no socket round trip — the table is already shared"
          % ratio)
