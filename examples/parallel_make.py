#!/usr/bin/env python
"""A parallel 'make': dependency-driven builds on a share group.

The introduction's other motivation — "the construction of multiprocess
applications became necessary both to manage complexity and to allow for
higher performance" — as a build system: a DAG of targets with
dependencies, executed by a pool of ``sproc``'d workers.  The ready-queue
and the per-target dependency counters live in shared memory; a worker
that finishes a target atomically decrements its dependents' counters
and pushes newly-ready targets itself — no central coordinator at all.

Run:  python examples/parallel_make.py
"""

from repro import PR_MAXPPROCS, PR_SALL, System
from repro.runtime import WorkQueue

# A small software project.  (target, compile-cycles, dependencies)
PROJECT = [
    ("util.o", 30_000, []),
    ("hash.o", 25_000, []),
    ("list.o", 20_000, []),
    ("alloc.o", 35_000, ["util.o"]),
    ("io.o", 30_000, ["util.o", "list.o"]),
    ("core.o", 45_000, ["hash.o", "alloc.o"]),
    ("net.o", 40_000, ["io.o", "hash.o"]),
    ("app", 50_000, ["core.o", "net.o", "io.o"]),
]

NAMES = [name for name, _, _ in PROJECT]
INDEX = {name: index for index, name in enumerate(NAMES)}
COSTS = [cost for _, cost, _ in PROJECT]
DEPS = [[INDEX[dep] for dep in deps] for _, _, deps in PROJECT]
DEPENDENTS = [[] for _ in PROJECT]
for target, deps in enumerate(DEPS):
    for dep in deps:
        DEPENDENTS[dep].append(target)


def worker(api, ctx):
    """Pull ready targets; on completion, release dependents."""
    queue_base, counters, build_log = ctx["queue_base"], ctx["counters"], ctx["log"]
    queue = yield from WorkQueue.attach(api, queue_base)
    built = 0
    while True:
        target = yield from queue.pop(api)
        if target is None:
            return built
        yield from api.compute(COSTS[target])  # "compile"
        build_log.append((NAMES[target], api.now))
        built += 1
        done = yield from api.fetch_add(counters + 4 * len(PROJECT), 1)
        for dependent in DEPENDENTS[target]:
            left = yield from api.fetch_add(counters + 4 * dependent, -1 & 0xFFFFFFFF)
            if left == 1:  # we removed the last unmet dependency
                yield from queue.push(api, dependent)
        if done + 1 == len(PROJECT):
            yield from queue.close(api)


def main(api, ctx):
    out = ctx["out"]
    nworkers = yield from api.prctl(PR_MAXPPROCS)
    queue = yield from WorkQueue.create(api, len(PROJECT) + 4)
    counters = yield from api.mmap(4096)
    for target, deps in enumerate(DEPS):
        yield from api.store_word(counters + 4 * target, len(deps))
    wctx = {"queue_base": queue.base, "counters": counters, "log": ctx["log"]}
    start = api.now
    for _ in range(nworkers):
        yield from api.sproc(worker, PR_SALL, wctx)
    for target, deps in enumerate(DEPS):
        if not deps:
            yield from queue.push(api, target)
    built = 0
    for _ in range(nworkers):
        from repro import status_code

        _, status = yield from api.wait()
        built += status_code(status)
    out["cycles"] = api.now - start
    out["built"] = built
    return 0


if __name__ == "__main__":
    serial = sum(COSTS)
    print("parallel make: %d targets, %s serial cycles of compilation"
          % (len(PROJECT), "{:,}".format(serial)))
    print("-" * 64)
    for ncpus in (1, 2, 4):
        out, log = {}, []
        sim = System(ncpus=ncpus)
        sim.spawn(main, {"out": out, "log": log})
        sim.run()
        assert out["built"] == len(PROJECT), "targets missing!"
        # dependencies must be honored: every target after its deps
        finished = {name: when for name, when in log}
        for name, _cost, deps in PROJECT:
            for dep in deps:
                assert finished[dep] <= finished[name], (name, dep)
        print("  %d cpu(s): %10s cycles   speedup %.2fx" % (
            ncpus, "{:,}".format(out["cycles"]), serial / out["cycles"],
        ))
    order = [name for name, _ in sorted(log, key=lambda item: item[1])]
    print("  last build order: %s" % " -> ".join(order))
    print("  every target built after all of its dependencies: verified")
