#!/usr/bin/env python
"""Per-CPU scheduler tour: affinity, work stealing, and the ablation.

Runs the same many-group fan-out twice — once on the per-CPU run queues
(the default) and once on the old single global queue
(``System(scheduler="global")``) — and prints what the scheduler
counters say about each: dispatch decisions and queue entries examined
per decision, affinity hits vs migrations, steals, and the per-CPU view
from the /proc-style report.

Run:  python examples/scheduler_stats.py
"""

from repro import PR_SALL, System


def member(api, rounds):
    for _ in range(rounds):
        yield from api.compute(10_000)
        yield from api.yield_cpu()
    return 0


def leader(api, arg):
    nmembers, rounds = arg
    for _ in range(nmembers):
        yield from api.sproc(member, PR_SALL, rounds)
    for _ in range(nmembers):
        yield from api.wait()
    return 0


def main(api, arg):
    ngroups = 5
    for _ in range(ngroups):
        yield from api.fork(leader, (3, 8))
    for _ in range(ngroups):
        yield from api.wait()
    return 0


def run(kind):
    sim = System(ncpus=4, scheduler=kind)
    sim.spawn(main)
    cycles = sim.run()
    sched = sim.kernel.sched
    print("=== scheduler=%r ===" % kind)
    print("  makespan            %10s cycles" % "{:,}".format(cycles))
    print("  dispatch decisions  %10d" % sched.picks)
    print("  entries examined    %10d  (%.2f per decision)"
          % (sched.scan_steps, sched.scan_steps / sched.picks))
    print("  affinity hits       %10d" % sched.affinity_hits)
    print("  migrations          %10d" % sched.migrations)
    print("  steals              %10d" % sched.steals)
    print("  gang holds          %10d" % sched.gang_holds)
    return sim


if __name__ == "__main__":
    run("global")
    print()
    sim = run("percpu")
    print()
    # the per-CPU table of the full report shows RUNQ depth and STEALS
    from repro.obs.procfs import render_cpus

    print(render_cpus(sim.kernel))
