#!/usr/bin/env python
"""Observability tour: counters, lock profiles, and Chrome traces.

Runs a small share-group workload with the tracer attached, then shows
the three views the observability layer provides:

1. ``sim.report()``   — a /proc-style text snapshot: per-process and
   per-group tables, kernel counters, per-CPU activity, and the top
   contended locks.
2. ``sim.metrics()``  — the same data as one JSON-serialisable dict
   (kstat counters, lock stats, legacy ``sim.stats``).
3. ``tracer.to_chrome_trace_json(path)`` — a Perfetto/chrome://tracing
   loadable timeline: one row per CPU (dispatch spans) and one row per
   process (syscall spans, faults, wakeups).

Run:  python examples/observability.py
"""

import json

from repro import PR_SALL, System
from repro.sim.trace import Tracer


def worker(api, ctx):
    """Fault in some pages, hammer a shared word, do a little IPC."""
    base = ctx["base"]
    for i in range(50):
        yield from api.fetch_add(base, 1)
    yield from api.uwake(base + 8, 1)
    yield from api.compute(500)
    return 0


def main(api, ctx):
    base = yield from api.mmap(4096)
    ctx["base"] = base
    pids = []
    for _ in range(4):
        pid = yield from api.sproc(worker, PR_SALL, ctx)
        pids.append(pid)
    # A VM update while members fault: contends the shared read lock.
    yield from api.mmap(8192)
    for _ in pids:
        yield from api.wait()
    return 0


if __name__ == "__main__":
    sim = System(ncpus=4)
    tracer = Tracer.attach(sim.kernel, capacity=65536)
    sim.spawn(main, {})
    sim.run()

    # 1. the text snapshot
    print(sim.report())

    # 2. the machine-readable snapshot
    metrics = sim.metrics()
    print("metrics keys: %s" % sorted(metrics))
    print("kernel syscalls: %d" % metrics["kstat"]["kernel"][0]["syscalls"])

    # 3. the Chrome trace
    text = tracer.to_chrome_trace_json("trace.json")
    n = len(json.loads(text)["traceEvents"])
    print("wrote trace.json (%d events) — load it in ui.perfetto.dev" % n)
