#!/usr/bin/env python
"""The flagship workload, demo-sized: a multi-tier web server built
entirely out of share groups (``sproc`` + ``PR_SADDR | PR_SFDS``).

Three tiers, as in experiment E17:

* an open-loop **arrival generator** posts batched requests on per-group
  pipes at a fixed rate (Poisson gaps with periodic bursts) — arrivals
  do not slow down when the server falls behind, so overload queues up;
* an **accept loop** per group drains its pipe and pushes work onto a
  blocking shared-memory queue (workers park in ``uwait`` when idle);
* **worker share groups** pop batches, look keys up in a sharded LRU
  cache arena in shared memory (evictions ``munmap`` the value page and
  storm the other CPUs with TLB shootdowns), read misses from disk
  through the group's AIO ring, and append a response log per batch.

This demo runs a small configuration at two arrival rates — one below
the saturation knee, one past it — and prints the throughput and
latency shift.  The real sweep is ``python -m repro.bench e17``.

Run:  python examples/webserver.py
"""

from repro.workloads.server import ServerConfig, run_server

BELOW, ABOVE = 1.0, 5.0


def demo(rate: float) -> dict:
    cfg = ServerConfig(
        ngroups=2, nworkers=4, naio=8, batch=64, keyspace=128,
        cache_capacity=112, nshards=4, npages=32,
        nrequests=6_000, rate_per_kcycle=rate,
    )
    return run_server(cfg, ncpus=4)


def main() -> None:
    print("%-10s %9s %9s %12s %12s %8s" % (
        "load", "offered", "served", "p50", "p99", "hit%"))
    for name, rate in (("below-knee", BELOW), ("overload", ABOVE)):
        out = demo(rate)
        print("%-10s %9.2f %9.2f %12s %12s %7.1f%%" % (
            name, out["offered_per_kcycle"], out["throughput_per_kcycle"],
            "{:,}".format(int(out["p50"])), "{:,}".format(int(out["p99"])),
            out["hit_pct"]))
        assert out["verify_failures"] == 0
        assert out["completed"] == 6_000
    print("\nthroughput saturates while the offered load keeps rising;")
    print("the p99 latency gap is the queueing delay of overload.")


if __name__ == "__main__":
    main()
