"""Kernel error paths under injected faults: partial-failure unwinds,
EINTR consistency for every blocking call, and SIGKILL vs wait-counts."""

from repro import IPC_CREAT, PR_SALL, SIGKILL, SIGUSR1, System
from repro.check.invariants import audit_leaks, run_invariants
from repro.errors import EINTR, ENOMEM
from repro.fs.file import O_CREAT, O_RDWR, SEEK_SET
from repro.mem.frames import PAGE_SIZE
from tests.conftest import run_program


def _noop_handler(api, sig):
    return
    yield  # pragma: no cover - marks this as a generator


# ----------------------------------------------------------------------
# satellite: multi-page kernel copy fails midway -> frames released

def test_read_v_enomem_midway_releases_grabbed_frames():
    holder = {}

    def main(api, out):
        fd = yield from api.open("/data", O_RDWR | O_CREAT)
        yield from api.write(fd, b"x" * (2 * PAGE_SIZE))
        yield from api.lseek(fd, 0, SEEK_SET)
        buf = yield from api.mmap(4 * PAGE_SIZE)
        yield from api.errno()  # materialize the PRDA page up front
        before = holder["sim"].machine.frames.allocated
        rc = yield from api.read_v(fd, buf, 2 * PAGE_SIZE)
        out["rc"], out["err"] = rc, (yield from api.errno())
        out["frames_delta"] = holder["sim"].machine.frames.allocated - before
        # the buffer is still usable afterwards
        yield from api.lseek(fd, 0, SEEK_SET)
        rc = yield from api.read_v(fd, buf, 2 * PAGE_SIZE)
        out["rc2"] = rc
        yield from api.close(fd)
        return 0

    out = {}
    sim = System(ncpus=1, inject={"fault.zero": "nth:2"})
    holder["sim"] = sim
    run_program(main, out=out, sim=sim)
    assert out["rc"] == -1 and out["err"] == ENOMEM
    assert out["frames_delta"] == 0, "page 1's frame must be rolled back"
    assert out["rc2"] == 2 * PAGE_SIZE
    assert audit_leaks(sim) == []


# ----------------------------------------------------------------------
# satellite: blocking syscalls return EINTR consistently, and the
# banked waiter counts go back down

def test_pipe_read_eintr_then_retry():
    holder = {}

    def victim(api, arg):
        out, rfd = arg
        yield from api.signal(SIGUSR1, _noop_handler)
        rc = yield from api.read(rfd, 8)
        out["first_err"] = (yield from api.errno()) if rc == -1 else None
        while rc == -1:
            rc = yield from api.read(rfd, 8)
        out["data_len"] = len(rc)
        return 0

    def main(api, out):
        rfd, wfd = yield from api.pipe()
        me = yield from api.getpid()
        proc = holder["sim"].proc(me)
        out["fifo"] = proc.uarea.fdtable.slots[rfd].inode.fifo
        pid = yield from api.sproc(victim, PR_SALL, (out, rfd))
        yield from api.compute(30_000)
        yield from api.kill(pid, SIGUSR1)
        yield from api.compute(30_000)
        yield from api.write(wfd, b"12345678")
        yield from api.wait()
        return 0

    out = {}
    sim = System(ncpus=2)
    holder["sim"] = sim
    run_program(main, out=out, sim=sim)
    assert out["first_err"] == EINTR
    assert out["data_len"] == 8
    assert out["fifo"]._read_waiters == 0
    assert out["fifo"]._write_waiters == 0
    assert audit_leaks(sim) == []


def test_semop_eintr_decrements_waiters():
    def victim(api, semid):
        yield from api.signal(SIGUSR1, _noop_handler)
        rc = yield from api.semop(semid, [(0, -1)])
        first = (yield from api.errno()) if rc == -1 else None
        while rc == -1:
            rc = yield from api.semop(semid, [(0, -1)])
        return 0 if first == EINTR else 1

    def main(api, out):
        semid = yield from api.semget(77, 1, IPC_CREAT)
        out["semid"] = semid
        pid = yield from api.sproc(victim, PR_SALL, semid)
        yield from api.compute(30_000)
        yield from api.kill(pid, SIGUSR1)
        yield from api.compute(30_000)
        yield from api.semop(semid, [(0, 1)])  # let the retry through
        _, status = yield from api.wait()
        out["status"] = status
        return 0

    out, sim = run_program(main)
    assert out["status"] == 0  # victim saw EINTR, then succeeded
    semset = sim.kernel.sem._by_id[out["semid"]]
    assert semset.waiters == 0
    assert semset.change.nwaiters == 0
    assert audit_leaks(sim) == []


def test_msgrcv_eintr_decrements_waiters():
    def victim(api, msqid):
        yield from api.signal(SIGUSR1, _noop_handler)
        rc = yield from api.msgrcv(msqid)
        first = (yield from api.errno()) if rc == -1 else None
        while rc == -1:
            rc = yield from api.msgrcv(msqid)
        return 0 if first == EINTR and rc[1] == b"ping" else 1

    def main(api, out):
        msqid = yield from api.msgget(5, IPC_CREAT)
        out["msqid"] = msqid
        pid = yield from api.sproc(victim, PR_SALL, msqid)
        yield from api.compute(30_000)
        yield from api.kill(pid, SIGUSR1)
        yield from api.compute(30_000)
        yield from api.msgsnd(msqid, 1, b"ping")
        _, status = yield from api.wait()
        out["status"] = status
        return 0

    out, sim = run_program(main)
    assert out["status"] == 0
    queue = sim.kernel.msg._by_id[out["msqid"]]
    assert queue.recv_waiters == 0 and queue.send_waiters == 0
    assert queue.recv_wait.nwaiters == 0
    assert audit_leaks(sim) == []


def test_wait_sleep_injection_returns_eintr():
    def child(api, arg):
        yield from api.compute(5_000)
        return 0

    def main(api, out):
        yield from api.sproc(child, PR_SALL)
        rc = yield from api.wait()
        out["rc"], out["err"] = rc, (yield from api.errno())
        while rc == -1:
            rc = yield from api.wait()
        return 0

    out, sim = run_program(main, inject={"wait.sleep": "nth:1"})
    assert out["rc"] == -1 and out["err"] == EINTR
    assert audit_leaks(sim) == []


# ----------------------------------------------------------------------
# satellite: SIGKILL on a blocked process must not corrupt wait-counts

def test_sigkill_while_blocked_in_semop_leaves_counts_clean():
    def victim(api, semid):
        yield from api.semop(semid, [(0, -1)])  # blocks forever
        return 0

    def survivor(api, semid):
        yield from api.compute(80_000)
        yield from api.semop(semid, [(0, 1)])
        rc = yield from api.semop(semid, [(0, -1)])
        return 0 if rc == 0 else 1

    def main(api, out):
        semid = yield from api.semget(9, 1, IPC_CREAT)
        out["semid"] = semid
        doomed = yield from api.sproc(victim, PR_SALL, semid)
        yield from api.sproc(survivor, PR_SALL, semid)
        yield from api.compute(30_000)
        yield from api.kill(doomed, SIGKILL)
        statuses = []
        for _ in range(2):
            _, status = yield from api.wait()
            statuses.append(status)
        out["statuses"] = statuses
        return 0

    out, sim = run_program(main)
    semset = sim.kernel.sem._by_id[out["semid"]]
    assert semset.waiters == 0, "the killed sleeper's banked waiter leaked"
    assert semset.change.nwaiters == 0
    assert 0 in out["statuses"], "the surviving member must still succeed"
    assert audit_leaks(sim) == []


def test_sigkill_during_vm_lock_traffic_leaves_lock_clean():
    # Kill one member at a fixed cycle while the group hammers the
    # shared read/update lock; the lock's counts must drain to zero.
    def member(api, arg):
        for _ in range(6):
            base = yield from api.mmap(PAGE_SIZE)
            if base == -1:
                continue
            yield from api.store_word(base, 1)
            yield from api.munmap(base)
        return 0

    def main(api, out):
        holder = out["holder"]
        pids = []
        for _ in range(3):
            pid = yield from api.sproc(member, PR_SALL)
            pids.append(pid)
        me = yield from api.getpid()
        proc = holder["sim"].proc(me)
        out["vm_lock"] = proc.shaddr.vm_lock
        kernel = holder["sim"].kernel
        target = holder["sim"].proc(pids[0])
        holder["sim"].engine.schedule(
            9_000, lambda: kernel.psignal(target, SIGKILL)
        )
        for _ in range(3):
            yield from api.wait()
        return 0

    holder = {}
    sim = System(ncpus=4)
    holder["sim"] = sim
    out = {"holder": holder}
    run_program(main, out=out, sim=sim)
    lock = out["vm_lock"]
    assert lock._acccnt == 0 and lock._waitcnt == 0
    assert run_invariants(sim) == []
    assert audit_leaks(sim) == []
