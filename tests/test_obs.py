"""The observability layer: kstat counters, lock profiles, reports."""

import json

import pytest

from repro import PR_SALL, System
from repro.obs.kstat import Histogram, KstatRegistry
from repro.obs.lockstat import LockStatRegistry
from repro.sim.trace import Tracer

PAGE = 4096


# ----------------------------------------------------------------------
# registry unit tests


def test_kstat_counter_register_increment_reset():
    kstat = KstatRegistry()
    assert kstat.get("kernel", 0, "syscalls") == 0
    kstat.add("kernel", 0, "syscalls")
    kstat.add("kernel", 0, "syscalls", 4)
    kstat.add("proc", 7, "faults")
    assert kstat.get("kernel", 0, "syscalls") == 5
    assert kstat.get("proc", 7, "faults") == 1
    assert kstat.scopes("proc") == [7]
    assert kstat.scope("kernel", 0) == {"syscalls": 5}
    snap = kstat.snapshot()
    assert snap["kernel"][0]["syscalls"] == 5
    kstat.reset()
    assert kstat.get("kernel", 0, "syscalls") == 0
    assert kstat.snapshot() == {}


def test_kstat_gauge_and_histogram():
    kstat = KstatRegistry()
    kstat.set("cpu", 1, "runq_depth", 3)
    kstat.set("cpu", 1, "runq_depth", 2)
    assert kstat.get("cpu", 1, "runq_depth") == 2
    for value in (1, 2, 3, 100):
        kstat.observe("kernel", 0, "wait_hist", value)
    hist = kstat.hist("kernel", 0, "wait_hist")
    assert hist.count == 4
    assert hist.max == 100
    assert hist.mean == pytest.approx(106 / 4)
    payload = kstat.snapshot()["kernel"][0]["wait_hist"]
    assert payload["count"] == 4
    assert sum(payload["buckets"].values()) == 4


def test_histogram_power_of_two_buckets():
    hist = Histogram()
    hist.add(1)  # bucket 1
    hist.add(2)  # bucket 2
    hist.add(3)  # bucket 2
    hist.add(8)  # bucket 4
    assert hist.buckets == {1: 1, 2: 2, 4: 1}


def test_kstat_disabled_records_nothing():
    kstat = KstatRegistry(enabled=False)
    kstat.add("kernel", 0, "syscalls")
    kstat.set("cpu", 0, "g", 1)
    kstat.observe("kernel", 0, "h", 5)
    assert kstat.snapshot() == {}


def test_lockstat_contention_accounting_and_top():
    locks = LockStatRegistry()
    stat = locks.get("a")
    assert locks.get("a") is stat
    stat.record_acquire(0, False)
    stat.record_acquire(120, True)
    stat.record_hold(40)
    other = locks.get("b")
    other.record_acquire(10, True)
    assert stat.acquisitions == 2
    assert stat.contended == 1
    assert stat.wait_cycles == 120
    assert stat.max_wait == 120
    assert stat.hold_cycles == 40
    assert stat.contention_ratio == 0.5
    assert [s.name for s in locks.top(2)] == ["a", "b"]
    assert locks.snapshot()["b"]["wait_cycles"] == 10
    report = locks.report(5)
    assert "LOCK" in report and "a" in report


def test_lockstat_disabled_hands_out_noop_bucket():
    locks = LockStatRegistry(enabled=False)
    stat = locks.get("x")
    stat.record_acquire(1000, True)
    stat.record_hold(1000)
    assert stat.acquisitions == 0
    assert locks.snapshot() == {}


# ----------------------------------------------------------------------
# a share-group workload that contends the shared read lock


def _member(api, ctx):
    index = ctx["claim"].pop()
    base = ctx["base"] + index * ctx["pages"] * PAGE
    for page in range(ctx["pages"]):
        yield from api.store_word(base + page * PAGE, page)
    return 0


def _group_main(api, ctx):
    members, pages = ctx["members"], ctx["pages"]
    ctx["base"] = yield from api.mmap(members * pages * PAGE)
    ctx["claim"] = list(range(members))
    for _ in range(members):
        yield from api.sproc(_member, PR_SALL, ctx)
    # VM updates while the members fault: mmap/munmap take the update
    # lock and munmap additionally shoots the group's TLBs down.
    for _ in range(6):
        scratch = yield from api.mmap(PAGE)
        yield from api.munmap(scratch)
    for _ in range(members):
        yield from api.wait()
    return 0


def _run_group(ncpus=4, members=3, pages=16, metrics_enabled=True, tracer=False):
    sim = System(ncpus=ncpus, metrics_enabled=metrics_enabled)
    attached = Tracer.attach(sim.kernel) if tracer else None
    sim.spawn(_group_main, {"members": members, "pages": pages})
    sim.run()
    return sim, attached


def test_shared_read_lock_contention_with_three_members():
    sim, _ = _run_group(members=3)
    locks = sim.lockstats.snapshot()
    read = locks["shaddr.vm.read"]
    update = locks["shaddr.vm.update"]
    # every member's faults scan under the read lock
    assert read["acquisitions"] >= 3 * 16
    assert update["acquisitions"] >= 12  # 6 mmaps + 6 munmaps
    # faulting members and the updating creator genuinely collide
    assert read["contended"] + update["contended"] >= 1
    assert read["hold_cycles"] > 0 and update["hold_cycles"] > 0
    top_names = [s.name for s in sim.lockstats.top(20)]
    assert "shaddr.vm.read" in top_names


def test_kstat_kernel_proc_and_group_scopes():
    sim, _ = _run_group(members=3)
    kstat = sim.kstat
    assert kstat.get("kernel", 0, "syscalls") > 0
    assert kstat.get("kernel", 0, "groups_created") == 1
    assert kstat.get("kernel", 0, "wakeups") > 0
    # per-process syscall counters by handler name
    assert kstat.get("proc", 1, "syscall.sys_mmap") >= 7
    assert kstat.get("proc", 1, "syscall.sys_sproc") == 3
    # the group scope aggregates its members (sgid 1 = first group)
    assert kstat.get("group", 1, "fault.zero") >= 3 * 16
    assert kstat.get("group", 1, "pages_touched") >= 3 * 16
    # the munmap shootdowns sent IPIs to the other CPUs
    sent = sum(
        kstat.get("cpu", idx, "shootdown_ipis_sent")
        for idx in kstat.scopes("cpu")
    )
    rcvd = sum(
        kstat.get("cpu", idx, "shootdown_ipis_rcvd")
        for idx in kstat.scopes("cpu")
    )
    assert sent == rcvd and sent >= 6 * (4 - 1)


def test_counters_deterministic_across_identical_runs():
    first, _ = _run_group(members=3)
    second, _ = _run_group(members=3)
    assert first.metrics() == second.metrics()


def test_disabled_metrics_do_not_change_the_headline():
    enabled, _ = _run_group(members=3)
    disabled, _ = _run_group(members=3, metrics_enabled=False)
    assert enabled.now == disabled.now
    assert dict(enabled.stats) == dict(disabled.stats)
    assert disabled.kstat.snapshot() == {}
    assert disabled.lockstats.snapshot() == {}


# ----------------------------------------------------------------------
# chrome trace export


def test_chrome_trace_parses_and_has_dispatch_spans_on_two_cpus():
    sim, tracer = _run_group(members=3, tracer=True)
    text = tracer.to_chrome_trace_json()
    doc = json.loads(text)
    events = doc["traceEvents"]
    assert events
    dispatch = [
        e for e in events if e.get("cat") == "dispatch" and e["ph"] == "X"
    ]
    assert dispatch, "dispatch spans must survive the export"
    cpu_rows = {e["tid"] for e in dispatch if e["pid"] == 0}
    assert len(cpu_rows) >= 2, "work must have run on at least two CPUs"
    for span in dispatch:
        assert span["dur"] >= 0
    # syscall spans land on the per-process rows
    syscalls = [e for e in events if e.get("cat") == "syscall"]
    assert any(e["pid"] == 1 for e in syscalls)
    # metadata names the tracks
    metas = [e for e in events if e["ph"] == "M"]
    assert any(e["args"]["name"] == "CPUs" for e in metas)


def test_tracer_events_iterates_a_snapshot():
    sim, tracer = _run_group(members=2, pages=4, tracer=True)
    seen = 0
    for _event in tracer.events():
        # recording mid-iteration must not invalidate the iterator
        tracer.record("synthetic", 99, "added during iteration")
        seen += 1
        if seen > 20:
            break
    assert seen > 0


# ----------------------------------------------------------------------
# the /proc-style report


def test_system_report_shows_groups_counters_and_contention():
    out = {}

    def main(api, ctx):
        yield from _group_main(api, ctx)
        # snapshot host-side while the group still exists
        ctx["report"] = ctx["sim"].report()
        return 0

    sim = System(ncpus=4)
    ctx = {"members": 3, "pages": 16, "sim": sim, "out": out}
    sim.spawn(main, ctx)
    sim.run()
    report = ctx["report"]
    assert "PROCESSES" in report
    assert "SHARE GROUPS" in report
    assert "g1" in report
    assert "syscalls" in report
    assert "LOCKS (top" in report
    # at least one lock row reports a contended acquisition
    assert any(
        stat.contended > 0 for stat in sim.lockstats.all()
    ), "workload must produce lock contention"


def test_metrics_snapshot_is_json_serialisable():
    sim, _ = _run_group(members=2, pages=4)
    text = json.dumps(sim.metrics())
    doc = json.loads(text)
    assert doc["kstat"]["kernel"]["0"]["syscalls"] > 0
    assert doc["cycles"] == sim.now


# ----------------------------------------------------------------------
# histogram percentiles (bucket -> percentile math pinned)


def test_histogram_percentiles_pinned():
    hist = Histogram()
    for value in (0, 1, 2, 3, 8):
        hist.add(value)
    # buckets: {0: 1, 1: 1, 2: 2, 4: 1}, count 5
    # p50 rank 2.5 crosses bucket 2 (range [2,3]) at 0.25 -> 2.25
    assert hist.p50 == pytest.approx(2.25)
    # p99 rank 4.95 crosses bucket 4 (range [8,15]) at 0.95 -> 14.65
    assert hist.p99 == pytest.approx(14.65)
    # the zero bucket is exactly the value 0
    assert hist.percentile(10.0) == 0.0
    payload = hist.as_dict()
    assert payload["p50"] == pytest.approx(2.25)
    assert payload["p95"] == pytest.approx(hist.percentile(95.0))


def test_histogram_percentile_edges():
    hist = Histogram()
    assert hist.p50 == 0.0  # empty
    hist.add(4)  # bucket 3 covers [4, 7]; rank 0.5 of one sample -> 5.5
    assert hist.p50 == pytest.approx(4 + 0.5 * (7 - 4))
    with pytest.raises(ValueError):
        hist.percentile(-1.0)
    with pytest.raises(ValueError):
        hist.percentile(100.5)


def test_latency_section_surfaces_runq_wait_percentiles():
    sim, _ = _run_group(members=3)
    hist = sim.kstat.hist("kernel", 0, "runq_wait")
    assert hist.count > 0
    report = sim.report()
    assert "LATENCY (cycles)" in report
    assert "runq_wait" in report
    assert "P95" in report


# ----------------------------------------------------------------------
# the report snapshot: section order + the armed-layers line


def test_report_sections_appear_in_order():
    sim, _ = _run_group(members=2, pages=4)
    report = sim.report()
    sections = [
        "layers: ",
        "PROCESSES",
        "SHARE GROUPS",
        "CPUS",
        "COUNTERS (kernel)",
        "LATENCY (cycles)",
        "LOCKS (top",
    ]
    positions = [report.find(section) for section in sections]
    assert all(position >= 0 for position in positions), positions
    assert positions == sorted(positions)


def test_layers_line_reflects_armed_layers():
    quiet, _ = _run_group(members=2, pages=4)
    line = [l for l in quiet.report().splitlines() if l.startswith("layers:")][0]
    assert "kstat=on" in line
    assert "lockdep=off" in line
    assert "inject=off" in line
    assert "profile=off" in line
    armed = System(ncpus=2, lockdep=True, profile=True)
    armed.spawn(_group_main, {"members": 2, "pages": 4})
    armed.run()
    line = [l for l in armed.report().splitlines() if l.startswith("layers:")][0]
    assert "lockdep=on" in line
    assert "profile=on" in line
