"""User-level runtime: spinlocks, barriers, arena, work queue, aio."""


from repro import O_CREAT, O_RDWR, PR_SALL, status_code
from repro.runtime import AioRing, Arena, UBarrier, UCounter, USpinLock, WorkQueue
from tests.conftest import run_program


def test_uspinlock_protects_critical_section():
    def member(api, base):
        lock = USpinLock(base)
        for _ in range(30):
            yield from lock.acquire(api)
            v = yield from api.load_word(base + 8)
            yield from api.compute(20)
            yield from api.store_word(base + 8, v + 1)
            yield from lock.release(api)
        return 0

    def main(api, out):
        base = yield from api.mmap(4096)
        for _ in range(3):
            yield from api.sproc(member, PR_SALL, base)
        for _ in range(3):
            yield from api.wait()
        out["count"] = yield from api.load_word(base + 8)
        return 0

    out, _ = run_program(main, ncpus=4)
    assert out["count"] == 90


def test_uspinlock_try_acquire():
    def main(api, out):
        base = yield from api.mmap(4096)
        lock = USpinLock(base)
        out["first"] = yield from lock.try_acquire(api)
        out["second"] = yield from lock.try_acquire(api)
        yield from lock.release(api)
        out["third"] = yield from lock.try_acquire(api)
        return 0

    out, _ = run_program(main)
    assert out["first"] and not out["second"] and out["third"]


def test_barrier_synchronizes_phases():
    """Nobody may enter phase 2 until everyone finished phase 1."""

    def member(api, ctx):
        base, nprocs, slot = ctx
        barrier = UBarrier(base, nprocs)
        # phase 1: mark arrival
        yield from api.store_word(base + 16 + slot * 4, 1)
        yield from barrier.wait(api)
        # phase 2: verify everyone's phase-1 mark is visible
        for other in range(nprocs):
            seen = yield from api.load_word(base + 16 + other * 4)
            if seen != 1:
                return 1
        return 0

    def main(api, out):
        nprocs = 4
        base = yield from api.mmap(4096)
        barrier = UBarrier(base, nprocs + 1)
        for slot in range(nprocs):
            yield from api.sproc(member, PR_SALL, (base, nprocs + 1, slot))
        yield from api.store_word(base + 16 + nprocs * 4, 1)
        # the parent is the (n+1)-th participant... it has no slot check
        codes = []
        yield from UBarrier(base, nprocs + 1).wait(api)
        for _ in range(nprocs):
            _, status = yield from api.wait()
            codes.append(status_code(status))
        out["codes"] = codes
        return 0

    out, _ = run_program(main, ncpus=4)
    assert out["codes"] == [0, 0, 0, 0]


def test_barrier_reusable_across_generations():
    def member(api, ctx):
        base, n = ctx
        barrier = UBarrier(base, n)
        for _ in range(5):
            yield from barrier.wait(api)
        return 0

    def main(api, out):
        base = yield from api.mmap(4096)
        for _ in range(2):
            yield from api.sproc(member, PR_SALL, (base, 3))
        barrier = UBarrier(base, 3)
        for _ in range(5):
            yield from barrier.wait(api)
        for _ in range(2):
            yield from api.wait()
        out["ok"] = True
        return 0

    out, _ = run_program(main, ncpus=4)
    assert out["ok"]


def test_ucounter():
    def main(api, out):
        base = yield from api.mmap(4096)
        counter = UCounter(base)
        yield from counter.set(api, 10)
        old = yield from counter.add(api, 5)
        out["old"] = old
        out["now"] = yield from counter.value(api)
        return 0

    out, _ = run_program(main)
    assert out["old"] == 10
    assert out["now"] == 15


# ----------------------------------------------------------------------
# arena


def test_arena_alloc_distinct_blocks():
    def main(api, out):
        arena = yield from Arena.create(api)
        a = yield from arena.alloc(api, 64)
        b = yield from arena.alloc(api, 64)
        yield from api.store_word(a, 1)
        yield from api.store_word(b, 2)
        out["a"] = yield from api.load_word(a)
        out["b"] = yield from api.load_word(b)
        out["distinct"] = a != b
        return 0

    out, _ = run_program(main)
    assert out["distinct"]
    assert out["a"] == 1 and out["b"] == 2


def test_arena_free_reuses_blocks():
    def main(api, out):
        arena = yield from Arena.create(api)
        a = yield from arena.alloc(api, 100)
        yield from arena.free(api, a)
        b = yield from arena.alloc(api, 100)  # same size class
        out["reused"] = a == b
        return 0

    out, _ = run_program(main)
    assert out["reused"]


def test_arena_attach_from_group_member():
    def member(api, ctx):
        arena_base, result_addr = ctx
        arena = yield from Arena.attach(api, arena_base)
        block = yield from arena.alloc(api, 32)
        yield from api.store_word(block, 777)
        yield from api.store_word(result_addr, block)
        return 0

    def main(api, out):
        arena = yield from Arena.create(api)
        result = yield from arena.alloc(api, 16)
        yield from api.store_word(result, 0)
        yield from api.sproc(member, PR_SALL, (arena.base, result))
        yield from api.wait()
        block = yield from api.load_word(result)
        out["value"] = yield from api.load_word(block)
        return 0

    out, _ = run_program(main)
    assert out["value"] == 777


def test_arena_exhaustion_raises():
    def main(api, out):
        arena = yield from Arena.create(api, size=4096)
        try:
            while True:
                yield from arena.alloc(api, 1024)
        except MemoryError:
            out["exhausted"] = True
        return 0

    out, _ = run_program(main)
    assert out["exhausted"]


# ----------------------------------------------------------------------
# work queue


def test_workqueue_fifo_order_single_consumer():
    def main(api, out):
        queue = yield from WorkQueue.create(api, 16)
        for item in (10, 20, 30):
            yield from queue.push(api, item)
        yield from queue.close(api)
        got = []
        while True:
            item = yield from queue.pop(api)
            if item is None:
                break
            got.append(item)
        out["items"] = got
        return 0

    out, _ = run_program(main)
    assert out["items"] == [10, 20, 30]


def test_workqueue_all_items_processed_exactly_once():
    def worker(api, qbase):
        queue = yield from WorkQueue.attach(api, qbase)
        mask = 0
        while True:
            item = yield from queue.pop(api)
            if item is None:
                break
            mask |= 1 << item
            yield from api.compute(item * 37)
        return mask & 0xFF  # partial check via exit code

    def main(api, out):
        queue = yield from WorkQueue.create(api, 64)
        nworkers = 3
        nitems = 24
        done = yield from api.mmap(4096)
        for index in range(nworkers):
            yield from api.sproc(_counting_worker, PR_SALL, (queue.base, done))
        for item in range(nitems):
            yield from queue.push(api, item + 1)
        yield from queue.close(api)
        for _ in range(nworkers):
            yield from api.wait()
        out["sum"] = yield from api.load_word(done)
        out["expected"] = sum(range(1, nitems + 1))
        return 0

    out, _ = run_program(main, ncpus=4)
    assert out["sum"] == out["expected"]


def _counting_worker(api, ctx):
    qbase, done = ctx
    queue = yield from WorkQueue.attach(api, qbase)
    while True:
        item = yield from queue.pop(api)
        if item is None:
            return 0
        yield from api.fetch_add(done, item)


def test_workqueue_capacity_wraparound():
    def main(api, out):
        queue = yield from WorkQueue.create(api, 4)
        got = []
        for round_start in (0, 4, 8):
            for offset in range(4):
                yield from queue.push(api, round_start + offset + 1)
            for _ in range(4):
                got.append((yield from queue.pop(api)))
        out["items"] = got
        return 0

    out, _ = run_program(main)
    assert out["items"] == list(range(1, 13))


# ----------------------------------------------------------------------
# async I/O ring


def test_aio_read_lands_in_caller_buffer():
    def main(api, out):
        fd = yield from api.open("/data", O_RDWR | O_CREAT)
        yield from api.write(fd, b"ABCDEFGH" * 128)
        ring = yield from AioRing.create(api, nworkers=2)
        buf = yield from api.mmap(4096)
        handle = yield from ring.submit_read(api, fd, buf, 16, 8)
        n = yield from ring.wait(api, handle)
        out["n"] = n
        out["data"] = yield from api.load(buf, 16)
        yield from ring.shutdown(api)
        return 0

    out, _ = run_program(main, ncpus=2)
    assert out["n"] == 16
    assert out["data"] == b"ABCDEFGH" * 2


def test_aio_write_then_verify():
    def main(api, out):
        fd = yield from api.open("/out", O_RDWR | O_CREAT)
        ring = yield from AioRing.create(api, nworkers=1)
        buf = yield from api.mmap(4096)
        yield from api.store(buf, b"written-async")
        handle = yield from ring.submit_write(api, fd, buf, 13, 0)
        n = yield from ring.wait(api, handle)
        yield from ring.shutdown(api)
        yield from api.lseek(fd, 0, 0)
        out["n"] = n
        out["data"] = yield from api.read(fd, 64)
        return 0

    out, _ = run_program(main, ncpus=2)
    assert out["n"] == 13
    assert out["data"] == b"written-async"


def test_aio_overlaps_compute_with_io():
    """The point of section 4's example: submission is asynchronous, so
    compute proceeds while a worker sleeps on the disk."""

    def main(api, out):
        fd = yield from api.open("/data", O_RDWR | O_CREAT)
        yield from api.write(fd, b"z" * 1024)
        ring = yield from AioRing.create(api, nworkers=1)
        buf = yield from api.mmap(4096)
        start = api.now
        handle = yield from ring.submit_read(api, fd, buf, 1024, 0)
        submitted = api.now - start
        disk = api.kernel.costs.disk_latency
        out["submit_fast"] = submitted < disk
        yield from api.compute(disk * 3)  # overlap
        done_already = yield from ring.poll(api, handle)
        out["overlapped"] = done_already
        before_wait = api.now
        yield from ring.wait(api, handle)
        out["wait_cycles"] = api.now - before_wait
        yield from ring.shutdown(api)
        return 0

    out, _ = run_program(main, ncpus=2)
    disk = 20_000  # default cost model disk_latency
    assert out["submit_fast"], "submit must not block on the disk"
    assert out["overlapped"], "I/O must complete during a 3x-disk compute"
    assert out["wait_cycles"] < disk // 2, "the wait must be nearly free"
