"""Mach-style threads baseline: share-everything semantics and costs."""


from repro import O_CREAT, O_RDWR, SEEK_SET, status_code
from tests.conftest import run_program


def test_threads_share_memory_without_any_setup():
    def worker(api, base):
        yield from api.store_word(base, 1234)
        return 0

    def main(api, out):
        base = yield from api.mmap(4096)
        yield from api.thread_create(worker, base)
        yield from api.thread_join()
        out["value"] = yield from api.load_word(base)
        return 0

    out, _ = run_program(main)
    assert out["value"] == 1234


def test_threads_share_descriptors_instantly():
    """Unlike share groups there is no sync-on-entry: the table object
    itself is shared, so a descriptor opened by one thread is visible to
    another immediately (and unselectively)."""

    def opener(api, arg):
        fd = yield from api.open("/t", O_RDWR | O_CREAT)
        yield from api.write(fd, b"thread data")
        return fd

    def main(api, out):
        yield from api.thread_create(opener)
        pid, status = yield from api.thread_join()
        fd = status_code(status)
        yield from api.lseek(fd, 0, SEEK_SET)
        out["data"] = yield from api.read(fd, 64)
        return 0

    out, _ = run_program(main)
    assert out["data"] == b"thread data"


def test_threads_have_no_private_prda():
    """The errno problem the paper calls out: threads share the PRDA."""
    from repro.runtime.prda import PRDA_USER

    def clobberer(api, arg):
        yield from api.store_word(PRDA_USER, 666)
        return 0

    def main(api, out):
        yield from api.store_word(PRDA_USER, 1)
        yield from api.thread_create(clobberer)
        yield from api.thread_join()
        out["value"] = yield from api.load_word(PRDA_USER)
        return 0

    out, _ = run_program(main)
    assert out["value"] == 666, "thread write must clobber the task's PRDA"


def test_thread_exit_keeps_task_resources_alive():
    def short(api, arg):
        yield from api.compute(100)
        return 0

    def main(api, out):
        fd = yield from api.open("/keep", O_RDWR | O_CREAT)
        yield from api.write(fd, b"alive")
        yield from api.thread_create(short)
        yield from api.thread_join()
        yield from api.lseek(fd, 0, SEEK_SET)
        out["data"] = yield from api.read(fd, 16)
        return 0

    out, _ = run_program(main)
    assert out["data"] == b"alive"


def test_thread_creation_much_cheaper_than_fork():
    def noop(api, arg):
        return 0
        yield

    def time_thread(api, out):
        start = api.now
        yield from api.thread_create(noop)
        out["thread_cycles"] = api.now - start
        yield from api.thread_join()
        return 0

    def time_fork(api, out):
        # touch some pages so fork has page-table work to copy
        base = yield from api.mmap(16 * 4096)
        for page in range(16):
            yield from api.store_word(base + page * 4096, page)
        start = api.now
        yield from api.fork(noop)
        out["fork_cycles"] = api.now - start
        yield from api.wait()
        return 0

    out_a, _ = run_program(time_thread)
    out_b, _ = run_program(time_fork)
    ratio = out_b["fork_cycles"] / out_a["thread_cycles"]
    assert ratio > 2.0, "thread creation should be much cheaper (got %.1fx)" % ratio


def test_many_threads_parallel_sum():
    def worker(api, ctx):
        base, index = ctx >> 8, ctx & 0xFF
        for _ in range(20):
            yield from api.fetch_add(base, index)
        return 0

    def main(api, out):
        base = yield from api.mmap(4096)
        nthreads = 4
        for index in range(1, nthreads + 1):
            yield from api.thread_create(worker, (base << 8) | index)
        for _ in range(nthreads):
            yield from api.thread_join()
        out["sum"] = yield from api.load_word(base)
        return 0

    out, _ = run_program(main, ncpus=4)
    assert out["sum"] == 20 * (1 + 2 + 3 + 4)
