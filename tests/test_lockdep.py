"""The lock dependency checker: every violation class, minimally.

Each misuse class gets a two-lock repro driven straight through the
hooks, plus one end-to-end inversion caught inside a real guest
program.  The final tests pin the zero-cost-when-disabled contract:
lockdep on vs. off must not move a single simulated cycle.
"""

import pytest

from repro import PR_SALL, System
from repro.obs.lockdep import (
    NULL_LOCKDEP,
    LockOrderViolation,
    lock_class,
)
from repro.runtime.ulocks import USpinLock
from repro.sim.machine import Machine
from tests.conftest import run_program


class _Lock:
    """The minimal thing lockdep needs: a named identity."""

    def __init__(self, name):
        self.name = name


class _Ctx:
    def __init__(self, pid, name="ctx"):
        self.pid = pid
        self.name = name


def _dep():
    return Machine(ncpus=1, lockdep_enabled=True).lockdep


# ----------------------------------------------------------------------
# class naming


def test_lock_class_strips_instance_suffixes():
    assert lock_class("wait:12") == "wait"
    assert lock_class("urw@0x40021000") == "urw"
    assert lock_class("runq3") == "runq"
    assert lock_class("shaddr.vm.acclck") == "shaddr.vm.acclck"
    assert lock_class("123") == "123", "all-digit names survive"


# ----------------------------------------------------------------------
# order inversion


def test_order_inversion_two_locks():
    dep = _dep()
    lock_a, lock_b = _Lock("alpha"), _Lock("beta")
    first, second = _Ctx(1), _Ctx(2)

    dep.attempt(lock_a, first, "spin")
    dep.acquired(lock_a, first, "spin")
    dep.attempt(lock_b, first, "spin")  # records alpha -> beta
    dep.acquired(lock_b, first, "spin")
    dep.released(lock_b, first)
    dep.released(lock_a, first)
    assert ("alpha", "beta") in dep.edges()

    dep.attempt(lock_b, second, "spin")
    dep.acquired(lock_b, second, "spin")
    with pytest.raises(LockOrderViolation) as caught:
        dep.attempt(lock_a, second, "spin")
    violation = caught.value
    assert violation.kind == "order-inversion"
    assert len(violation.chains) == 2, "both held chains reported"
    rendered = str(violation)
    assert "alpha" in rendered and "beta" in rendered
    assert "conflicting chain" in rendered
    assert dep.violations == [violation]


def test_same_class_nesting_not_reported():
    dep = _dep()
    outer, inner = _Lock("wait:1"), _Lock("wait:2")
    ctx = _Ctx(1)
    dep.attempt(outer, ctx, "spin")
    dep.acquired(outer, ctx, "spin")
    dep.attempt(inner, ctx, "spin")  # same class: no edge, no violation
    dep.acquired(inner, ctx, "spin")
    dep.released(inner, ctx)
    dep.released(outer, ctx)
    # and the reverse order later is fine too
    dep.attempt(inner, ctx, "spin")
    dep.acquired(inner, ctx, "spin")
    dep.attempt(outer, ctx, "spin")
    assert dep.violations == []
    assert dep.edges() == []


# ----------------------------------------------------------------------
# double acquire


def test_double_acquire_exclusive():
    dep = _dep()
    lock = _Lock("only")
    ctx = _Ctx(7)
    dep.attempt(lock, ctx, "spin")
    dep.acquired(lock, ctx, "spin")
    with pytest.raises(LockOrderViolation) as caught:
        dep.attempt(lock, ctx, "spin")
    assert caught.value.kind == "double-acquire"


def test_double_acquire_allows_shared_reacquire():
    dep = _dep()
    lock = _Lock("rw")
    ctx = _Ctx(7)
    dep.attempt(lock, ctx, "read")
    dep.acquired(lock, ctx, "read")
    dep.attempt(lock, ctx, "read")  # recursive read: legal
    dep.acquired(lock, ctx, "read")
    assert dep.violations == []


# ----------------------------------------------------------------------
# sleep while holding a spinlock


def test_sleep_holding_spinlock():
    dep = _dep()
    spin = _Lock("acclck")
    ctx = _Ctx(3)
    dep.attempt(spin, ctx, "spin")
    dep.acquired(spin, ctx, "spin")
    with pytest.raises(LockOrderViolation) as caught:
        dep.sleeping(ctx, "P(updwait)")
    assert caught.value.kind == "sleep-holding-spinlock"
    assert "acclck" in str(caught.value)


def test_sleep_holding_sleeping_lock_is_fine():
    dep = _dep()
    lock = _Lock("vmlock")
    ctx = _Ctx(3)
    dep.attempt(lock, ctx, "read")
    dep.acquired(lock, ctx, "read")
    dep.sleeping(ctx, "P(fupd)")  # blocking under a sleepable lock: legal
    assert dep.violations == []


# ----------------------------------------------------------------------
# release by non-owner


def test_release_non_owner():
    dep = _dep()
    lock = _Lock("slot")
    owner, thief = _Ctx(1), _Ctx(2)
    dep.attempt(lock, owner, "spin")
    dep.acquired(lock, owner, "spin")
    with pytest.raises(LockOrderViolation) as caught:
        dep.released(lock, thief)
    assert caught.value.kind == "release-non-owner"
    assert dep.held_by(owner), "owner still holds after the bad release"


def test_release_anonymous_credits_recorded_holder():
    dep = _dep()
    lock = _Lock("slot")
    owner = _Ctx(1)
    dep.attempt(lock, owner, "spin")
    dep.acquired(lock, owner, "spin")
    dep.released(lock)  # ctx unknown: pops the recorded holder, no check
    assert dep.held_by(owner) == []


# ----------------------------------------------------------------------
# the unshare copy-out lock order, pinned


def test_unshare_copyout_lock_order_pinned():
    """``do_unshare`` nests s_fupdsema -> vm update lock -> s_listlock;
    record that chain, then prove the checker rejects the reversal —
    any future copy-out path taking these locks the other way is a
    deadlock candidate and must fail this test."""
    dep = _dep()
    fupd = _Lock("shaddr.fupd")
    vm = _Lock("shaddr.vm")
    listlock = _Lock("shaddr.list")
    ctx = _Ctx(1)
    dep.attempt(fupd, ctx, "sema")
    dep.acquired(fupd, ctx, "sema")
    dep.attempt(vm, ctx, "update")
    dep.acquired(vm, ctx, "update")
    dep.attempt(listlock, ctx, "spin")
    dep.acquired(listlock, ctx, "spin")
    dep.released(listlock, ctx)
    dep.released(vm, ctx)
    dep.released(fupd, ctx)
    assert ("shaddr.fupd", "shaddr.vm") in dep.edges()
    assert ("shaddr.vm", "shaddr.list") in dep.edges()

    other = _Ctx(2)
    dep.attempt(vm, other, "update")
    dep.acquired(vm, other, "update")
    with pytest.raises(LockOrderViolation) as caught:
        dep.attempt(fupd, other, "sema")
    assert caught.value.kind == "order-inversion"
    rendered = str(caught.value)
    assert "shaddr.fupd" in rendered and "shaddr.vm" in rendered


def test_unshare_workload_clean_under_lockdep():
    """A full lifecycle — fds, then the address space, then departure —
    exercises the real copy-out nesting without a single violation."""
    from repro import O_CREAT, O_RDWR, PR_SADDR, PR_SFDS, PR_UNSHARE

    def member(api, base):
        fd = yield from api.open("/ul", O_RDWR | O_CREAT)
        yield from api.prctl(PR_UNSHARE, PR_SFDS)
        yield from api.close(fd)
        yield from api.store_word(base, 11)
        yield from api.prctl(PR_UNSHARE, PR_SADDR)
        yield from api.store_word(base, 22)
        yield from api.prctl(PR_UNSHARE, PR_SALL)
        return 0

    def main(api, out):
        base = yield from api.mmap(4096)
        for _ in range(2):
            yield from api.sproc(member, PR_SALL, base)
        for _ in range(2):
            yield from api.wait()
        out["shared"] = yield from api.load_word(base)
        return 0

    out, sim = run_program(main, ncpus=2, lockdep=True)
    assert out["shared"] == 11, "post-detach stores stayed private"
    assert sim.lockdep.violations == []
    assert sim.lockdep.checks > 0


# ----------------------------------------------------------------------
# end to end: a guest program trips the checker


def test_guest_inversion_detected():
    """ABBA ordering across two user spinlocks raises mid-simulation,
    even though the single process never actually deadlocks."""

    def main(api, out):
        base = yield from api.mmap(4096)
        lock_a = USpinLock(base, name="locka")
        lock_b = USpinLock(base + 4, name="lockb")
        yield from lock_a.acquire(api)
        yield from lock_b.acquire(api)
        yield from lock_b.release(api)
        yield from lock_a.release(api)
        yield from lock_b.acquire(api)
        yield from lock_a.acquire(api)  # inversion: boom
        return 0

    sim = System(ncpus=1, lockdep=True)
    sim.spawn(main, {}, name="init")
    with pytest.raises(LockOrderViolation) as caught:
        sim.run()
    assert caught.value.kind == "order-inversion"
    assert sim.lockdep.violations == [caught.value]
    rendered = str(caught.value)
    assert "locka" in rendered and "lockb" in rendered


def test_clean_workload_passes_and_builds_graph():
    """A real share-group workload runs violation-free under lockdep,
    and the checker has actually seen kernel lock nesting."""

    def member(api, base):
        for index in range(8):
            yield from api.store_word(base + index * 4096, index)
        return 0

    def main(api, out):
        base = yield from api.mmap(16 * 4096)
        for _ in range(3):
            yield from api.sproc(member, PR_SALL, base)
        for _ in range(3):
            yield from api.wait()
        return 0

    out, sim = run_program(main, ncpus=2, lockdep=True)
    assert sim.lockdep.violations == []
    assert sim.lockdep.checks > 0
    assert "lock-order graph" in sim.lockdep.report()


# ----------------------------------------------------------------------
# disabled: shared null object, identical cycle counts


def test_disabled_machines_share_null_lockdep():
    assert Machine(ncpus=1).lockdep is NULL_LOCKDEP
    assert Machine(ncpus=2).lockdep is NULL_LOCKDEP
    assert not NULL_LOCKDEP.enabled
    assert NULL_LOCKDEP.report() == "lockdep disabled"


def test_lockdep_does_not_move_cycles():
    """Enabling the checker must not change a single simulated cycle."""

    def member(api, base):
        lock = USpinLock(base)
        for _ in range(5):
            yield from lock.acquire(api)
            value = yield from api.load_word(base + 4)
            yield from api.store_word(base + 4, value + 1)
            yield from lock.release(api)
        return 0

    def main(api, out):
        base = yield from api.mmap(4096)
        for _ in range(3):
            yield from api.sproc(member, PR_SALL, base)
        for _ in range(3):
            yield from api.wait()
        out["count"] = yield from api.load_word(base + 4)
        return 0

    results = []
    for enabled in (False, True):
        out, sim = run_program(main, ncpus=2, lockdep=enabled)
        results.append((out["count"], sim.now))
    assert results[0] == results[1]
