"""Edge cases and failure injection across the kernel."""

import pytest

from repro import (
    O_CREAT,
    O_RDWR,
    PR_SALL,
    SIGKILL,
    SIGUSR1,
    System,
    status_code,
    status_signal,
)
from repro.errors import E2BIG, EBADF, EFAULT, EINTR, EMFILE
from repro.fs.fdtable import NOFILE
from tests.conftest import run_program


# ----------------------------------------------------------------------
# resource exhaustion


def test_oom_kills_faulting_process_not_machine():
    """Exhausting physical memory SIGKILLs the hog; siblings survive."""
    from repro.mem.frames import PAGE_SIZE

    def hog(api, arg):
        base = yield from api.mmap(4096 * PAGE_SIZE)  # more than RAM
        page = 0
        while True:
            yield from api.store_word(base + page * PAGE_SIZE, 1)
            page += 1

    def bystander(api, arg):
        yield from api.compute(300_000)
        return 7

    def main(api, out):
        yield from api.fork(bystander)
        yield from api.fork(hog)
        statuses = []
        for _ in range(2):
            _, status = yield from api.wait()
            statuses.append(status)
        out["statuses"] = statuses
        return 0

    out, sim = run_program(main, ncpus=2, memory_mb=2)
    assert sim.stats["oom_kills"] >= 1
    sigs = {status_signal(s) for s in out["statuses"]}
    codes = {status_code(s) for s in out["statuses"]}
    assert SIGKILL in sigs, "the hog must die by SIGKILL"
    assert 7 in codes, "the bystander must finish normally"


def test_descriptor_table_exhaustion_is_emfile():
    def main(api, out):
        fd = yield from api.creat("/f")
        count = 1
        while True:
            rc = yield from api.dup(fd)
            if rc == -1:
                break
            count += 1
        out["count"] = count
        out["errno"] = yield from api.errno()
        return 0

    out, _ = run_program(main)
    assert out["errno"] == EMFILE
    assert out["count"] == NOFILE


def test_copyio_to_unmapped_buffer_is_efault():
    def main(api, out):
        fd = yield from api.open("/f", O_RDWR | O_CREAT)
        yield from api.write(fd, b"data")
        yield from api.lseek(fd, 0, 0)
        rc = yield from api.read_v(fd, 0x6000_0000, 4)  # unmapped buffer
        out["rc"] = rc
        out["errno"] = yield from api.errno()
        return 0

    out, _ = run_program(main)
    assert out["rc"] == -1
    assert out["errno"] == EFAULT


def test_msgrcv_with_tiny_buffer_is_e2big():
    from repro import IPC_CREAT, IPC_PRIVATE

    def main(api, out):
        q = yield from api.msgget(IPC_PRIVATE, IPC_CREAT)
        yield from api.msgsnd(q, 1, b"much too long")
        rc = yield from api.msgrcv(q, 0, max_bytes=4)
        out["rc"] = rc
        out["errno"] = yield from api.errno()
        return 0

    out, _ = run_program(main)
    assert out["rc"] == -1
    assert out["errno"] == E2BIG


# ----------------------------------------------------------------------
# signal / syscall interactions


def test_wait_interrupted_by_signal_is_eintr():
    def slow_child(api, arg):
        yield from api.compute(500_000)
        return 0

    def waiter(api, out):
        def handler(api, sig):
            return
            yield

        yield from api.signal(SIGUSR1, handler)
        yield from api.fork(slow_child)
        rc = yield from api.wait()
        if rc == -1:
            out["errno"] = yield from api.errno()
        yield from api.wait()  # actually reap
        return 0

    def main(api, out):
        pid = yield from api.fork(waiter, out)
        yield from api.compute(50_000)
        yield from api.kill(pid, SIGUSR1)
        yield from api.wait()
        return 0

    out, _ = run_program(main, ncpus=2)
    assert out.get("errno") == EINTR


def test_segv_handler_can_repair_mapping_and_resume():
    """Section-6.2-adjacent: retrying the faulting access after the
    handler runs lets a handler that maps the page fix the program."""
    target = 0x3000_0000  # first mmap lands here

    def main(api, out):
        from repro import SIGSEGV

        def repair(api, sig):
            base = yield from api.mmap(4096)
            assert base == target, hex(base)

        yield from api.signal(SIGSEGV, repair)
        yield from api.store_word(target, 99)  # faults, repaired, retried
        out["value"] = yield from api.load_word(target)
        return 0

    out, _ = run_program(main)
    assert out["value"] == 99


def test_kill_all_members_of_group():
    def member(api, arg):
        yield from api.pause()
        return 0

    def main(api, out):
        pids = []
        for _ in range(3):
            pid = yield from api.sproc(member, PR_SALL)
            pids.append(pid)
        yield from api.compute(30_000)
        for pid in pids:
            yield from api.kill(pid, SIGKILL)
        sigs = []
        for _ in pids:
            _, status = yield from api.wait()
            sigs.append(status_signal(status))
        out["sigs"] = sigs
        return 0

    out, sim = run_program(main, ncpus=2)
    assert out["sigs"] == [SIGKILL] * 3
    assert sim.stats["groups_freed"] == 1


# ----------------------------------------------------------------------
# groups under stress


def test_deep_group_of_32_members():
    def member(api, ctx):
        base, idx = ctx
        yield from api.fetch_add(base, idx)
        return 0

    def main(api, out):
        base = yield from api.mmap(4096)
        n = 32
        for idx in range(1, n + 1):
            yield from api.sproc(member, PR_SALL, (base, idx))
        for _ in range(n):
            yield from api.wait()
        out["sum"] = yield from api.load_word(base)
        out["expected"] = n * (n + 1) // 2
        return 0

    out, _ = run_program(main, ncpus=4)
    assert out["sum"] == out["expected"]


def test_chained_sproc_tree():
    """Members sproc their own members; everything lands in one group."""

    def leaf(api, base):
        yield from api.fetch_add(base, 1)
        return 0

    def middle(api, base):
        yield from api.sproc(leaf, PR_SALL, base)
        yield from api.sproc(leaf, PR_SALL, base)
        yield from api.fetch_add(base, 1)
        yield from api.wait()
        yield from api.wait()
        return 0

    def main(api, out):
        base = yield from api.mmap(4096)
        yield from api.sproc(middle, PR_SALL, base)
        yield from api.sproc(middle, PR_SALL, base)
        yield from api.wait()
        yield from api.wait()
        out["count"] = yield from api.load_word(base)
        return 0

    out, sim = run_program(main, ncpus=4)
    assert out["count"] == 6
    assert sim.stats["groups_created"] == 1, "one group for the whole tree"


def test_member_closing_then_reopening_fd_slot():
    """Close + open churn through the sharing protocol stays coherent."""

    def churner(api, arg):
        for round_number in range(5):
            fd = yield from api.open("/churn", O_RDWR | O_CREAT)
            yield from api.write(fd, b"round%d" % round_number)
            yield from api.close(fd)
        return 0

    def main(api, out):
        yield from api.sproc(churner, PR_SALL)
        yield from api.wait()
        yield from api.getpid()  # sync
        # slot 0 must be empty again (open/close pairs balanced)
        rc = yield from api.read(0, 4)
        out["rc"] = rc
        out["errno"] = yield from api.errno()
        st = yield from api.stat("/churn")
        out["size"] = st["size"]
        return 0

    out, _ = run_program(main)
    assert out["rc"] == -1
    assert out["errno"] == EBADF
    assert out["size"] == len(b"round4")


def test_fork_bomb_is_contained_by_proc_table():
    from repro.errors import SimulationError

    def bomber(api, arg):
        while True:
            rc = yield from api.fork(bomber)
            if rc == -1:
                return 1

    sim = System(ncpus=2)
    sim.kernel.proc_table.max_procs = 40
    sim.spawn(bomber)
    with pytest.raises(SimulationError):
        sim.run(max_events=2_000_000)


def test_zombie_children_do_not_leak_frames():
    def child(api, arg):
        base = yield from api.mmap(8 * 4096)
        for page in range(8):
            yield from api.store_word(base + page * 4096, page)
        return 0

    def main(api, out):
        for _ in range(5):
            yield from api.fork(child)
            yield from api.wait()
        out["frames"] = api.kernel.machine.frames.allocated
        return 0

    out, sim = run_program(main)
    # only init's own pages remain (PRDA + touched stack pages etc.)
    assert out["frames"] < 20


def test_group_teardown_releases_all_shared_frames():
    def member(api, arg):
        base = yield from api.mmap(16 * 4096)
        for page in range(16):
            yield from api.store_word(base + page * 4096, page)
        return 0

    def launcher(api, out):
        yield from api.sproc(member, PR_SALL)
        yield from api.wait()
        return 0

    def main(api, out):
        yield from api.fork(launcher, out)
        yield from api.wait()
        out["frames"] = api.kernel.machine.frames.allocated
        return 0

    out, sim = run_program(main)
    assert sim.stats["groups_freed"] == 1
    assert out["frames"] < 20, "shared pregions must be freed with the group"
