"""Concurrency fuzzing: random share-group members hammer the kernel.

Several members run independently generated op lists at once on a
multiprocessor; afterwards the same global health invariants must hold.
This exercises the shared read lock, the sync-on-entry protocol and the
sharing teardown paths under arbitrary interleavings.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro import O_CREAT, O_RDWR, PR_SALL, System
from repro.mem.frames import PAGE_SIZE

MEMBER_OPS = st.sampled_from([
    "store", "load", "fetch_add", "open", "close_last", "chdir",
    "umask", "mmap", "munmap_own", "getpid", "compute", "write",
])


def _member(api, ctx):
    ops, arena, tag = ctx["ops"], ctx["arena"], ctx["tag"]
    opened = []
    mapped = []
    serial = 0
    for op in ops:
        serial += 1
        if op == "store":
            yield from api.store_word(arena + (tag * 64) % 4096, serial)
        elif op == "load":
            yield from api.load_word(arena + (serial * 8) % 4096)
        elif op == "fetch_add":
            yield from api.fetch_add(arena, 1)
        elif op == "open":
            fd = yield from api.open(
                "/g%d-%d" % (tag, serial), O_RDWR | O_CREAT
            )
            if fd != -1:
                opened.append(fd)
        elif op == "close_last" and opened:
            yield from api.close(opened.pop())
        elif op == "chdir":
            yield from api.chdir("/")
        elif op == "umask":
            yield from api.umask((tag * serial) % 0o100)
        elif op == "mmap":
            base = yield from api.mmap(PAGE_SIZE)
            if base != -1:
                yield from api.store_word(base, tag)
                mapped.append(base)
        elif op == "munmap_own" and mapped:
            yield from api.munmap(mapped.pop())
        elif op == "getpid":
            yield from api.getpid()
        elif op == "compute":
            yield from api.compute(500)
        elif op == "write" and opened:
            yield from api.write(opened[-1], b"d" * (serial % 30 + 1))
    return 0


def _main(api, ctx):
    arena = yield from api.mmap(4096)
    for tag, ops in enumerate(ctx["programs"]):
        yield from api.sproc(
            _member, PR_SALL, {"ops": ops, "arena": arena, "tag": tag}
        )
    for _ in ctx["programs"]:
        yield from api.wait()
    return 0


def _healthy(sim):
    for proc in sim.kernel.proc_table.all_procs():
        assert proc.state is proc.ZOMBIE, proc
    for cpu in sim.machine.cpus:
        for entry in cpu.tlb.entries():
            sim.machine.frames.get(entry.pfn)
    assert sim.machine.frames.allocated == 0
    assert sim.stats["groups_created"] == sim.stats["groups_freed"]


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    st.lists(st.lists(MEMBER_OPS, max_size=15), min_size=1, max_size=4),
    st.integers(1, 4),
)
def test_concurrent_member_programs_leave_kernel_healthy(programs, ncpus):
    sim = System(ncpus=ncpus, memory_mb=8)
    sim.spawn(_main, {"programs": programs})
    sim.run(max_events=3_000_000)
    assert sim.engine.idle()
    _healthy(sim)


@settings(max_examples=10, deadline=None)
@given(st.lists(st.lists(MEMBER_OPS, max_size=10), min_size=2, max_size=3))
def test_concurrent_runs_are_deterministic(programs):
    def run():
        sim = System(ncpus=3, memory_mb=8)
        sim.spawn(_main, {"programs": [list(p) for p in programs]})
        sim.run(max_events=3_000_000)
        return sim.now, dict(sim.stats)

    assert run() == run()


def test_fetch_adds_never_lost_under_fuzz_mix():
    """A directed variant: interleave fetch_adds with churny ops and
    verify the exact count at the end."""
    programs = [
        ["fetch_add", "open", "fetch_add", "mmap", "fetch_add", "umask"],
        ["fetch_add", "chdir", "fetch_add", "close_last", "fetch_add"],
        ["fetch_add", "compute", "fetch_add", "munmap_own", "fetch_add"],
    ]
    expected = sum(ops.count("fetch_add") for ops in programs)
    out = {}

    def main(api, arg):
        arena = yield from api.mmap(4096)
        for tag, ops in enumerate(programs):
            yield from api.sproc(
                _member, PR_SALL, {"ops": ops, "arena": arena, "tag": tag}
            )
        for _ in programs:
            yield from api.wait()
        out["count"] = yield from api.load_word(arena)
        return 0

    sim = System(ncpus=4)
    sim.spawn(main)
    sim.run()
    assert out["count"] == expected
