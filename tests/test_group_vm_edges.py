"""Share-group VM edges: stack ceilings, group-visible shm, exec/last-member,
updater progress under scanning."""


from repro import (
    IPC_CREAT,
    PR_SALL,
    PR_SETSTACKSIZE,
    SIGSEGV,
    System,
    status_code,
    status_signal,
)
from repro.mem.frames import PAGE_SIZE
from tests.conftest import run_program


def test_stack_ceiling_applies_to_group_stacks():
    """prctl(PR_SETSTACKSIZE) before group creation bounds every
    member's stack growth (the paper: 'indirectly controls the layout
    of the shared VM image')."""
    small = 8 * PAGE_SIZE

    def deep(api, arg):
        from repro.mem.region import RegionType

        # our own stack is the lowest-placed one (later slots grow down);
        # the creator's stack above was carved before the prctl and keeps
        # the default ceiling
        stack = min(
            (
                pregion for pregion, shared in api.proc.vm.iter_pregions()
                if pregion.rtype is RegionType.STACK and shared
            ),
            key=lambda pregion: pregion.vhigh,
        )
        # within the ceiling: fine
        yield from api.store_word(stack.vhigh - small + 16, 1)
        # beyond it: fatal
        yield from api.store_word(stack.vhigh - small - PAGE_SIZE, 1)
        return 0

    def main(api, out):
        yield from api.prctl(PR_SETSTACKSIZE, small)
        yield from api.sproc(deep, PR_SALL)
        _, status = yield from api.wait()
        out["sig"] = status_signal(status)
        return 0

    out, _ = run_program(main)
    assert out["sig"] == SIGSEGV


def test_sysv_shm_attach_is_group_visible():
    """A VM-sharing member's shmat lands on the shared pregion list, so
    the whole group sees the segment (section 6.2's mmap rule)."""

    def attacher(api, ctl):
        shmid = yield from api.shmget(99, 4096, IPC_CREAT)
        base = yield from api.shmat(shmid)
        yield from api.store_word(base, 4242)
        yield from api.store_word(ctl, base)
        while (yield from api.load_word(ctl + 4)) == 0:
            yield from api.yield_cpu()
        return 0

    def main(api, out):
        ctl = yield from api.mmap(4096)
        yield from api.sproc(attacher, PR_SALL, ctl)
        while True:
            base = yield from api.load_word(ctl)
            if base:
                break
            yield from api.yield_cpu()
        out["seen"] = yield from api.load_word(base)  # no shmat of our own!
        yield from api.store_word(ctl + 4, 1)
        yield from api.wait()
        return 0

    out, _ = run_program(main, ncpus=2)
    assert out["seen"] == 4242


def test_exec_by_last_member_frees_group():
    def image(api, arg):
        return 3
        yield

    def solo(api, arg):
        yield from api.exec("/bin/image")
        return 99

    def main(api, out):
        yield from api.sproc(solo, PR_SALL)
        # leave the group ourselves first, via... we can't; instead wait
        _, status = yield from api.wait()
        out["code"] = status_code(status)
        return 0

    out = {}
    sim = System(ncpus=2)
    sim.register_program("/bin/image", image)
    sim.spawn(lambda api, a: main(api, out))
    sim.run()
    assert out["code"] == 3
    # group persists until main (also a member) exits; then it frees
    assert sim.stats["groups_freed"] == 1


def test_updater_makes_progress_against_scanners():
    """Reader-preference starvation is real but bounded by the scan
    workload: once the faulting members finish, the blocked updater's
    mmap completes (no permanent starvation, no lost wakeup)."""

    def faulter(api, ctx):
        base, npages, index = ctx
        for page in range(npages):
            yield from api.store_word(
                base + (index * npages + page) * PAGE_SIZE, 1
            )
        return 0

    def mapper(api, out):
        start = api.now
        block = yield from api.mmap(4096)  # needs the update lock
        out["mmap_waited"] = api.now - start
        yield from api.store_word(block, 1)
        return 0

    def main(api, out):
        npages, nprocs = 32, 3
        base = yield from api.mmap(nprocs * npages * PAGE_SIZE)
        for index in range(nprocs):
            yield from api.sproc(faulter, PR_SALL, (base, npages, index))
        yield from api.sproc(mapper, PR_SALL, out)
        for _ in range(nprocs + 1):
            yield from api.wait()
        return 0

    out, _ = run_program(main, ncpus=4)
    assert "mmap_waited" in out, "the updater must eventually run"


def test_group_survives_member_killed_mid_fault_storm():
    from repro import SIGKILL

    def faulter(api, base):
        page = 0
        while True:
            yield from api.store_word(base + (page % 64) * PAGE_SIZE, page)
            page += 1

    def main(api, out):
        base = yield from api.mmap(64 * PAGE_SIZE)
        pid = yield from api.sproc(faulter, PR_SALL, base)
        yield from api.compute(150_000)
        yield from api.kill(pid, SIGKILL)
        _, status = yield from api.wait()
        out["sig"] = status_signal(status)
        # the group (main alone now) still works
        block = yield from api.mmap(4096)
        yield from api.store_word(block, 7)
        out["after"] = yield from api.load_word(block)
        return 0

    out, _ = run_program(main, ncpus=2)
    from repro import SIGKILL

    assert out["sig"] == SIGKILL
    assert out["after"] == 7


def test_many_sequential_groups_do_not_leak():
    def member(api, arg):
        base = yield from api.mmap(4 * PAGE_SIZE)
        yield from api.store_word(base, 1)
        return 0

    def leader(api, arg):
        yield from api.sproc(member, PR_SALL)
        yield from api.wait()
        return 0

    def main(api, out):
        for _ in range(6):
            yield from api.fork(leader)
            yield from api.wait()
        out["frames"] = api.kernel.machine.frames.allocated
        return 0

    out, sim = run_program(main)
    assert sim.stats["groups_freed"] == 6
    assert out["frames"] < 20
