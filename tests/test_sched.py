"""Scheduler and CPU interpreter behaviour: parallelism, preemption,
quantum slicing, priorities, gang mode."""

import pytest

from repro import PR_SALL, PR_SETGANG, System, status_code
from tests.conftest import run_program


def test_two_cpus_run_compute_in_parallel():
    """Two CPU-bound children on 2 CPUs finish in ~half the serial time."""
    work = 400_000

    def child(api, arg):
        yield from api.compute(work)
        return 0

    def main(api, out):
        start = api.now
        yield from api.fork(child)
        yield from api.fork(child)
        yield from api.wait()
        yield from api.wait()
        out["elapsed"] = api.now - start
        return 0

    out2, _ = run_program(main, ncpus=2)
    out1, _ = run_program(main, ncpus=1)
    assert out1["elapsed"] > 1.7 * out2["elapsed"], (
        "1-CPU run should be ~2x slower: %s vs %s"
        % (out1["elapsed"], out2["elapsed"])
    )


def test_speedup_scales_with_cpus():
    work = 200_000
    nchildren = 4

    def child(api, arg):
        yield from api.compute(work)
        return 0

    def main(api, out):
        start = api.now
        for _ in range(nchildren):
            yield from api.fork(child)
        for _ in range(nchildren):
            yield from api.wait()
        out["elapsed"] = api.now - start
        return 0

    elapsed = {}
    for ncpus in (1, 2, 4):
        out, _ = run_program(main, ncpus=ncpus)
        elapsed[ncpus] = out["elapsed"]
    assert elapsed[1] > elapsed[2] > elapsed[4]
    assert elapsed[1] / elapsed[4] > 2.5


def test_quantum_interleaves_cpu_hogs():
    """On one CPU two compute-bound procs must time-slice, not run FIFO."""

    def hog(api, ctx):
        log, tag = ctx
        for _ in range(6):
            yield from api.compute(60_000)  # less than a quantum each
            log.append((tag, api.now))
        return 0

    def main(api, log):
        yield from api.fork(hog, (log, "A"))
        yield from api.fork(hog, (log, "B"))
        yield from api.wait()
        yield from api.wait()
        return 0

    log = []
    sim = System(ncpus=1)
    sim.spawn(lambda api, a: main(api, log))
    sim.run()
    tags = [tag for tag, _ in log]
    # both procs must make progress before either finishes
    first_b = tags.index("B")
    last_a = len(tags) - 1 - tags[::-1].index("A")
    assert first_b < last_a, "B never ran before A finished: %s" % tags


def test_priority_preemption_favors_low_pri_number():
    """A nice'd (worse) process must not starve the better one."""

    def low(api, out):
        yield from api.nice(10)  # worse priority
        yield from api.compute(200_000)
        out["low_done"] = api.now
        return 0

    def high(api, out):
        yield from api.compute(200_000)
        out["high_done"] = api.now
        return 0

    def main(api, out):
        yield from api.fork(low, out)
        yield from api.compute(5000)
        yield from api.fork(high, out)
        yield from api.wait()
        yield from api.wait()
        return 0

    out, _ = run_program(main, ncpus=1)
    assert out["high_done"] < out["low_done"]


def test_yield_cpu_rotates_the_run_queue():
    def polite(api, ctx):
        log, tag = ctx
        for _ in range(3):
            log.append(tag)
            yield from api.yield_cpu()
        return 0

    def main(api, log):
        yield from api.fork(polite, (log, "A"))
        yield from api.fork(polite, (log, "B"))
        yield from api.wait()
        yield from api.wait()
        return 0

    log = []
    sim = System(ncpus=1)
    sim.spawn(lambda api, a: main(api, log))
    sim.run()
    assert "A" in log and "B" in log
    # yields should interleave rather than batch
    assert log != sorted(log)


def test_idle_cpu_picks_up_new_work_immediately():
    def child(api, out):
        out["child_started"] = api.now
        yield from api.compute(10)
        return 0

    def main(api, out):
        out["forked_at"] = api.now
        yield from api.fork(child, out)
        yield from api.wait()
        return 0

    out, sim = run_program(main, ncpus=2)
    # dispatch latency should be on the order of a context switch
    assert out["child_started"] - out["forked_at"] < 20_000


def test_cpu_utilization_accounting():
    def child(api, arg):
        yield from api.compute(100_000)
        return 0

    def main(api, out):
        yield from api.fork(child)
        yield from api.fork(child)
        yield from api.wait()
        yield from api.wait()
        return 0

    out, sim = run_program(main, ncpus=2)
    assert 0.1 < sim.machine.utilization() <= 1.0


def test_gang_scheduling_dispatches_members_together():
    """Extension (section 8): gang members run side by side."""

    def member(api, ctx):
        log, tag = ctx
        log.append((tag, "start", api.now))
        yield from api.compute(50_000)
        log.append((tag, "end", api.now))
        return 0

    def main(api, log):
        yield from api.prctl(PR_SETGANG, 1)  # fails: not yet in a group
        yield from api.sproc(member, PR_SALL, (log, "m1"))
        yield from api.prctl(PR_SETGANG, 1)
        yield from api.sproc(member, PR_SALL, (log, "m2"))
        yield from api.wait()
        yield from api.wait()
        return 0

    log = []
    sim = System(ncpus=4)
    sim.spawn(lambda api, a: main(api, log))
    sim.run()
    starts = sorted(t for _, what, t in log if what == "start")
    assert len(starts) == 2
    # co-dispatch: start times within one context-switch of each other
    assert starts[1] - starts[0] < 5_000


def test_no_proc_on_two_cpus_at_once():
    """Invariant check while a busy workload runs."""

    def child(api, arg):
        for _ in range(10):
            yield from api.compute(5_000)
            yield from api.yield_cpu()
        return 0

    sim = System(ncpus=4)
    seen_bad = []

    def main(api, arg):
        for _ in range(8):
            yield from api.fork(child)
        for _ in range(8):
            yield from api.wait()
        return 0

    sim.spawn(main)
    machine = sim.machine
    engine = sim.engine
    guard = {"stop": False}

    def check():
        running = [cpu.current for cpu in machine.cpus if cpu.current]
        if len(running) != len(set(running)):
            seen_bad.append(list(running))
        if not guard["stop"]:
            engine.schedule(1_000, check)

    engine.schedule(1_000, check)
    engine.run(max_events=500_000)
    guard["stop"] = True
    assert not seen_bad
