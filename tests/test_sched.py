"""Scheduler and CPU interpreter behaviour: parallelism, preemption,
quantum slicing, priorities, gang mode, per-CPU queues."""

import pytest

from repro import PR_SALL, PR_SETGANG, System
from repro.kernel.proc import Proc, ProcState
from tests.conftest import run_program


def test_two_cpus_run_compute_in_parallel():
    """Two CPU-bound children on 2 CPUs finish in ~half the serial time."""
    work = 400_000

    def child(api, arg):
        yield from api.compute(work)
        return 0

    def main(api, out):
        start = api.now
        yield from api.fork(child)
        yield from api.fork(child)
        yield from api.wait()
        yield from api.wait()
        out["elapsed"] = api.now - start
        return 0

    out2, _ = run_program(main, ncpus=2)
    out1, _ = run_program(main, ncpus=1)
    assert out1["elapsed"] > 1.7 * out2["elapsed"], (
        "1-CPU run should be ~2x slower: %s vs %s"
        % (out1["elapsed"], out2["elapsed"])
    )


def test_speedup_scales_with_cpus():
    work = 200_000
    nchildren = 4

    def child(api, arg):
        yield from api.compute(work)
        return 0

    def main(api, out):
        start = api.now
        for _ in range(nchildren):
            yield from api.fork(child)
        for _ in range(nchildren):
            yield from api.wait()
        out["elapsed"] = api.now - start
        return 0

    elapsed = {}
    for ncpus in (1, 2, 4):
        out, _ = run_program(main, ncpus=ncpus)
        elapsed[ncpus] = out["elapsed"]
    assert elapsed[1] > elapsed[2] > elapsed[4]
    assert elapsed[1] / elapsed[4] > 2.5


def test_quantum_interleaves_cpu_hogs():
    """On one CPU two compute-bound procs must time-slice, not run FIFO."""

    def hog(api, ctx):
        log, tag = ctx
        for _ in range(6):
            yield from api.compute(60_000)  # less than a quantum each
            log.append((tag, api.now))
        return 0

    def main(api, log):
        yield from api.fork(hog, (log, "A"))
        yield from api.fork(hog, (log, "B"))
        yield from api.wait()
        yield from api.wait()
        return 0

    log = []
    sim = System(ncpus=1)
    sim.spawn(lambda api, a: main(api, log))
    sim.run()
    tags = [tag for tag, _ in log]
    # both procs must make progress before either finishes
    first_b = tags.index("B")
    last_a = len(tags) - 1 - tags[::-1].index("A")
    assert first_b < last_a, "B never ran before A finished: %s" % tags


def test_priority_preemption_favors_low_pri_number():
    """A nice'd (worse) process must not starve the better one."""

    def low(api, out):
        yield from api.nice(10)  # worse priority
        yield from api.compute(200_000)
        out["low_done"] = api.now
        return 0

    def high(api, out):
        yield from api.compute(200_000)
        out["high_done"] = api.now
        return 0

    def main(api, out):
        yield from api.fork(low, out)
        yield from api.compute(5000)
        yield from api.fork(high, out)
        yield from api.wait()
        yield from api.wait()
        return 0

    out, _ = run_program(main, ncpus=1)
    assert out["high_done"] < out["low_done"]


def test_yield_cpu_rotates_the_run_queue():
    def polite(api, ctx):
        log, tag = ctx
        for _ in range(3):
            log.append(tag)
            yield from api.yield_cpu()
        return 0

    def main(api, log):
        yield from api.fork(polite, (log, "A"))
        yield from api.fork(polite, (log, "B"))
        yield from api.wait()
        yield from api.wait()
        return 0

    log = []
    sim = System(ncpus=1)
    sim.spawn(lambda api, a: main(api, log))
    sim.run()
    assert "A" in log and "B" in log
    # yields should interleave rather than batch
    assert log != sorted(log)


def test_idle_cpu_picks_up_new_work_immediately():
    def child(api, out):
        out["child_started"] = api.now
        yield from api.compute(10)
        return 0

    def main(api, out):
        out["forked_at"] = api.now
        yield from api.fork(child, out)
        yield from api.wait()
        return 0

    out, sim = run_program(main, ncpus=2)
    # dispatch latency should be on the order of a context switch
    assert out["child_started"] - out["forked_at"] < 20_000


def test_cpu_utilization_accounting():
    def child(api, arg):
        yield from api.compute(100_000)
        return 0

    def main(api, out):
        yield from api.fork(child)
        yield from api.fork(child)
        yield from api.wait()
        yield from api.wait()
        return 0

    out, sim = run_program(main, ncpus=2)
    assert 0.1 < sim.machine.utilization() <= 1.0


def test_gang_scheduling_dispatches_members_together():
    """Extension (section 8): gang members run side by side."""

    def member(api, ctx):
        log, tag = ctx
        log.append((tag, "start", api.now))
        yield from api.compute(50_000)
        log.append((tag, "end", api.now))
        return 0

    def main(api, log):
        yield from api.prctl(PR_SETGANG, 1)  # fails: not yet in a group
        yield from api.sproc(member, PR_SALL, (log, "m1"))
        yield from api.prctl(PR_SETGANG, 1)
        yield from api.sproc(member, PR_SALL, (log, "m2"))
        yield from api.wait()
        yield from api.wait()
        return 0

    log = []
    sim = System(ncpus=4)
    sim.spawn(lambda api, a: main(api, log))
    sim.run()
    starts = sorted(t for _, what, t in log if what == "start")
    assert len(starts) == 2
    # co-dispatch: start times within one context-switch of each other
    assert starts[1] - starts[0] < 5_000


def test_no_proc_on_two_cpus_at_once():
    """Invariant check while a busy workload runs."""

    def child(api, arg):
        for _ in range(10):
            yield from api.compute(5_000)
            yield from api.yield_cpu()
        return 0

    sim = System(ncpus=4)
    seen_bad = []

    def main(api, arg):
        for _ in range(8):
            yield from api.fork(child)
        for _ in range(8):
            yield from api.wait()
        return 0

    sim.spawn(main)
    machine = sim.machine
    engine = sim.engine
    guard = {"stop": False}

    def check():
        running = [cpu.current for cpu in machine.cpus if cpu.current]
        if len(running) != len(set(running)):
            seen_bad.append(list(running))
        if not guard["stop"]:
            engine.schedule(1_000, check)

    engine.schedule(1_000, check)
    engine.run(max_events=500_000)
    guard["stop"] = True
    assert not seen_bad


# ----------------------------------------------------------------------
# per-CPU run queues: affinity, stealing, gang accounting


def _busy_group_workload(api, arg):
    """Several procs trading the CPUs: plenty of requeue traffic."""

    def child(api, arg):
        for _ in range(5):
            yield from api.compute(30_000)
            yield from api.yield_cpu()
        return 0

    for _ in range(6):
        yield from api.fork(child)
    for _ in range(6):
        yield from api.wait()
    return 0


def test_affinity_rewarms_the_last_cpu():
    """Requeued procs go back to the CPU they ran on and are counted."""
    sim = System(ncpus=2)
    sim.spawn(_busy_group_workload)
    sim.run()
    sched = sim.kernel.sched
    assert sched.affinity_hits > 0
    assert sched.affinity_hits > sched.migrations
    kstat = sim.kstat.scope("kernel", 0)
    assert kstat.get("sched_affinity_hits") == sched.affinity_hits
    assert kstat.get("sched_migrations", 0) == sched.migrations
    assert kstat.get("sched_steals", 0) == sched.steals


def test_idle_cpu_steals_queued_work():
    """A CPU going idle takes work queued on a busy peer's queue."""

    def short(api, arg):
        yield from api.compute(10_000)
        return 0

    def long(api, out):
        out["long_started"] = api.now
        yield from api.compute(50_000)
        return 0

    def main(api, out):
        # main holds CPU0 throughout; short runs on CPU1; long lands on
        # a queue and must be stolen by CPU1 when short exits
        yield from api.fork(short)
        yield from api.fork(long, out)
        yield from api.compute(300_000)
        yield from api.wait()
        yield from api.wait()
        return 0

    out, sim = run_program(main, ncpus=2)
    sched = sim.kernel.sched
    assert sched.steals >= 1
    assert sim.kstat.scope("kernel", 0).get("sched_steals") == sched.steals
    # the steal happened long before main's compute finished
    assert out["long_started"] < 300_000


def _make_stub_proc(pid, pri=20):
    proc = Proc(pid, None, None, name="stub%d" % pid)
    proc.pri = pri
    return proc


class _FakeGangBlock:
    """Stands in for a SharedAddressBlock with gang mode on."""

    gang = True

    def __init__(self, members):
        self._members = members

    def members(self):
        return list(self._members)


def _occupy_only_cpu(sim, proc):
    cpu = sim.machine.cpus[0]
    sim.kernel.sched._idle.remove(cpu)
    cpu.current = proc
    proc.cpu = cpu
    proc.state = ProcState.RUNNING
    return cpu


@pytest.mark.parametrize("kind", ["percpu", "global"])
def test_quantum_polling_does_not_inflate_gang_holds(kind):
    """Regression: _gang_blocked bumped gang_holds on every
    should_preempt poll, so the stat grew without any dispatch attempt."""
    sim = System(ncpus=1, scheduler=kind)
    sched = sim.kernel.sched
    running = _make_stub_proc(100)
    cpu = _occupy_only_cpu(sim, running)

    m1, m2 = _make_stub_proc(101), _make_stub_proc(102)
    block = _FakeGangBlock([m1, m2])
    m1.shaddr = m2.shaddr = block
    m1.state = m2.state = ProcState.SLEEPING
    sched.wakeup(m1)
    sched.wakeup(m2)

    before = sched.gang_holds
    for _ in range(5):
        # the gang (2 runnable members) cannot fit on 0 idle CPUs, so
        # the running proc must not be preempted for it...
        assert not sched.should_preempt(cpu, running)
    # ...and polling alone must not count as a gang hold
    assert sched.gang_holds == before


def test_gang_hold_counted_once_per_blocked_dispatch():
    sim = System(ncpus=2, scheduler="percpu")
    sched = sim.kernel.sched
    runners = [_make_stub_proc(100), _make_stub_proc(103)]
    for cpu, running in zip(sim.machine.cpus, runners):
        sched._idle.remove(cpu)
        cpu.current = running
        running.cpu = cpu
        running.state = ProcState.RUNNING

    m1, m2 = _make_stub_proc(101), _make_stub_proc(102)
    block = _FakeGangBlock([m1, m2])
    m1.shaddr = m2.shaddr = block
    m1.state = m2.state = ProcState.SLEEPING
    # no CPU idle: waking the members queues them without a dispatch
    # attempt, so no hold is recorded yet
    sched.wakeup(m1)
    sched.wakeup(m2)
    assert sched.gang_holds == 0

    # one CPU frees up; the gang needs two, so the dispatch attempt
    # records exactly one hold and asks the non-member to make room
    cpu1 = sim.machine.cpus[1]
    cpu1.current = None
    runners[1].cpu = None
    sched.cpu_idle(cpu1)
    assert sched.gang_holds == 1
    assert runners[0].need_resched
    # the reserved CPU stays idle rather than running anything else
    assert sched.idle_count == 1
    sched.cpu_idle(cpu1)  # re-poll: one more dispatch attempt, one more hold
    assert sched.gang_holds == 2


def test_reprioritize_rekeys_a_queued_proc():
    sim = System(ncpus=1)
    sched = sim.kernel.sched
    running = _make_stub_proc(100)
    _occupy_only_cpu(sim, running)

    a, b = _make_stub_proc(101), _make_stub_proc(102)
    a.state = b.state = ProcState.SLEEPING
    sched.wakeup(a)
    sched.wakeup(b)
    assert sched._select() is a  # FIFO within equal priority
    b.pri = 5
    sched.reprioritize(b)
    assert sched._select() is b  # new key took effect in the heap


def test_setgrouppri_reorders_queued_members():
    """PR_SETGROUPPRI on queued members must re-key their heap entries."""
    from repro.share.prctl import PR_SETGROUPPRI

    def member(api, ctx):
        log, tag = ctx
        yield from api.compute(40_000)
        log.append(tag)
        return 0

    def hog(api, arg):
        yield from api.compute(400_000)
        return 0

    def main(api, log):
        yield from api.fork(hog)
        yield from api.sproc(member, PR_SALL, (log, "m1"))
        yield from api.sproc(member, PR_SALL, (log, "m2"))
        yield from api.prctl(PR_SETGROUPPRI, 5)
        yield from api.compute(200_000)
        for _ in range(3):
            yield from api.wait()
        log.append("main")
        return 0

    log = []
    sim = System(ncpus=2)
    sim.spawn(lambda api, a: main(api, log))
    sim.run()
    # the boosted members finished while the pri-20 hog was still queued
    assert log.index("m1") < 2 and log.index("m2") < 2


@pytest.mark.parametrize("kind", ["percpu", "global"])
def test_metrics_toggle_is_bit_identical(kind):
    """Turning instrumentation off must not change simulated results."""
    cycles = {}
    for metrics in (True, False):
        sim = System(ncpus=2, metrics_enabled=metrics, scheduler=kind)
        sim.spawn(_busy_group_workload)
        cycles[metrics] = sim.run()
    assert cycles[True] == cycles[False]


def test_global_scheduler_ablation_still_schedules():
    """scheduler="global" keeps the old single-queue behaviour working."""

    def child(api, arg):
        yield from api.compute(100_000)
        return 0

    def main(api, out):
        start = api.now
        for _ in range(4):
            yield from api.fork(child)
        for _ in range(4):
            yield from api.wait()
        out["elapsed"] = api.now - start
        return 0

    out, sim = run_program(main, ncpus=4, scheduler="global")
    sched = sim.kernel.sched
    assert sched.kind == "global"
    assert out["elapsed"] < 4 * 100_000  # still runs children in parallel
    assert sched.affinity_hits == 0  # global placement ignores last_cpu


def test_percpu_scans_fewer_entries_than_global():
    """The point of the rewrite: dispatch work no longer scales with the
    number of runnable processes."""
    scans = {}
    for kind in ("percpu", "global"):
        sim = System(ncpus=2, scheduler=kind)
        sim.spawn(_busy_group_workload)
        sim.run()
        sched = sim.kernel.sched
        assert sched.picks > 0
        scans[kind] = sched.scan_steps / sched.picks
    assert scans["percpu"] < scans["global"]


def test_runq_depth_gauge_tracks_queue_and_drains_to_zero():
    sim = System(ncpus=2)
    sim.spawn(_busy_group_workload)
    sim.run()
    sched = sim.kernel.sched
    assert sched.queue_depths() == [0, 0]
    for idx in range(2):
        assert sim.kstat.scope("cpu", idx).get("runq_depth") == 0


def test_unknown_scheduler_name_is_rejected():
    with pytest.raises(ValueError):
        System(ncpus=1, scheduler="nope")
