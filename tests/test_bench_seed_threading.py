"""Every experiment must thread the sweep's seed into its System builds.

``python -m repro.bench --seeds N`` runs each experiment under N
perturbation seeds and attaches bootstrap CIs.  That is only meaningful
if the seed actually reaches ``System(perturb_seed=...)`` — an
experiment that drops it runs N identical replicas and reports a
zero-width interval that gates nothing.  Historically only E15/E16
accepted a seed; now the whole table must.
"""

import inspect

import pytest

import repro.bench.experiments as experiments
import repro.workloads.models as models
from repro.bench.experiments import ALL_EXPERIMENTS
from repro.bench.stats import run_experiment


class _Probe(Exception):
    """Raised by the stub System so the experiment stops immediately."""


def _probe_system(record):
    def fake_system(*args, **kwargs):
        record.append(kwargs.get("perturb_seed"))
        raise _Probe()

    return fake_system


@pytest.mark.parametrize("eid", list(ALL_EXPERIMENTS))
def test_experiment_accepts_and_forwards_seed(eid, monkeypatch):
    func = ALL_EXPERIMENTS[eid]
    assert "seed" in inspect.signature(func).parameters, (
        "%s does not accept a perturbation seed; the sweep would run "
        "identical replicas" % eid
    )

    record = []
    fake = _probe_system(record)
    # experiments build Systems directly or via the workload models
    monkeypatch.setattr(experiments, "System", fake)
    monkeypatch.setattr(models, "System", fake)
    with pytest.raises(_Probe):
        func(seed=1234)
    assert record, "%s never built a System" % eid
    assert record[0] == 1234, (
        "%s dropped the seed on its first System build" % eid
    )


def test_run_experiment_passes_seed_through(monkeypatch):
    """The sweep entry point forwards seeds for every experiment."""
    record = []
    fake = _probe_system(record)
    monkeypatch.setattr(experiments, "System", fake)
    monkeypatch.setattr(models, "System", fake)
    for eid in ALL_EXPERIMENTS:
        record.clear()
        with pytest.raises(_Probe):
            run_experiment(eid, seed=77)
        assert record and record[0] == 77, eid
