"""Smaller units: u-area, machine, System facade, errors, update races."""

import pytest

from repro import O_CREAT, O_RDWR, PR_SALL, System, errno_name
from repro.errors import DeadlockError, EBADF, SysError
from repro.kernel.uarea import UArea
from repro.fs.fsys import FileSystem
from repro.kernel.signals import SIG_DFL, SIG_IGN, SIGUSR1
from tests.conftest import run_program


# ----------------------------------------------------------------------
# u-area


def test_uarea_fork_copy_is_independent():
    fs = FileSystem()
    parent = UArea(fs.root)
    parent.cmask = 0o077
    parent.uid = 5
    parent.set_handler(SIGUSR1, SIG_IGN)
    child = parent.fork_copy()
    child.cmask = 0o022
    child.uid = 9
    child.set_handler(SIGUSR1, SIG_DFL)
    assert parent.cmask == 0o077
    assert parent.uid == 5
    assert parent.handler(SIGUSR1) is SIG_IGN


def test_uarea_set_cdir_balances_refcounts():
    fs = FileSystem()
    sub = fs.mkdir_p("/sub")
    ua = UArea(fs.root)
    root_refs = fs.root.refcount
    ua.set_cdir(sub)
    assert fs.root.refcount == root_refs - 1
    assert sub.refcount == 1
    ua.release_dirs()
    assert sub.refcount == 0


def test_uarea_reset_handlers_keeps_ignores():
    fs = FileSystem()
    ua = UArea(fs.root)

    def handler(api, sig):
        return
        yield

    ua.set_handler(1, handler)
    ua.set_handler(2, SIG_IGN)
    ua.reset_handlers()
    assert ua.handler(1) is SIG_DFL
    assert ua.handler(2) is SIG_IGN


# ----------------------------------------------------------------------
# machine / system facade


def test_machine_idle_cpus_and_utilization():
    def main(api, out):
        yield from api.compute(10_000)
        return 0

    out, sim = run_program(main, ncpus=3)
    assert len(sim.machine.idle_cpus()) == 3
    assert 0.0 < sim.machine.utilization() <= 1.0


def test_system_run_until_pauses_cleanly():
    def main(api, out):
        yield from api.compute(1_000_000)
        out["done"] = True
        return 0

    out = {}
    sim = System(ncpus=1)
    sim.spawn(main, out)
    sim.run(until=10_000)
    assert "done" not in out
    assert sim.now == 10_000
    sim.run()
    assert out["done"]


def test_system_reports_blocked_procs():
    def stuck(api, arg):
        rfd, wfd = yield from api.pipe()
        yield from api.read(rfd, 1)  # no writer will ever come
        return 0

    sim = System(ncpus=1)
    sim.spawn(stuck)
    with pytest.raises(DeadlockError):
        sim.run()
    assert len(sim.blocked_procs()) == 1


def test_errno_name_mapping():
    assert errno_name(9) == "EBADF"
    assert "E??" in errno_name(250)
    err = SysError(EBADF)
    assert "EBADF" in str(err)


# ----------------------------------------------------------------------
# concurrent shared-resource updates (the "second updater" race of 6.3)


def test_concurrent_umask_updates_converge():
    """Two members race umask changes; after both finish every member
    agrees with the shaddr copy (no stale overwrite)."""

    def setter(api, value):
        yield from api.umask(value)
        yield from api.compute(5_000)
        return 0

    def main(api, out):
        yield from api.sproc(setter, PR_SALL, 0o011)
        yield from api.sproc(setter, PR_SALL, 0o022)
        yield from api.wait()
        yield from api.wait()
        yield from api.getpid()  # sync self
        mine = api.proc.uarea.cmask
        authoritative = api.proc.shaddr.s_cmask
        out["agree"] = mine == authoritative
        out["value"] = mine
        return 0

    out, _ = run_program(main, ncpus=2)
    assert out["agree"]
    assert out["value"] in (0o011, 0o022)


def test_concurrent_open_storms_keep_tables_identical():
    """Heavy descriptor churn from two members: at the end, every
    member's table view matches s_ofile slot for slot."""

    def churner(api, tag):
        for index in range(8):
            fd = yield from api.open("/c%d-%d" % (tag, index), O_RDWR | O_CREAT)
            if index % 3 == 0:
                yield from api.close(fd)
        return 0

    def main(api, out):
        yield from api.sproc(churner, PR_SALL, 1)
        yield from api.sproc(churner, PR_SALL, 2)
        yield from api.wait()
        yield from api.wait()
        yield from api.getpid()  # final sync
        mine = api.proc.uarea.fdtable.snapshot()
        master = api.proc.shaddr.s_ofile
        agree = all(
            mine[fd] is (master[fd] if fd < len(master) else None)
            for fd in range(len(mine))
        )
        out["agree"] = agree
        return 0

    out, _ = run_program(main, ncpus=2)
    assert out["agree"]


def test_fupdsema_serializes_descriptor_updates():
    """The single-threading semaphore really is held across updates."""

    def churner(api, tag):
        for index in range(5):
            fd = yield from api.open("/s%d-%d" % (tag, index), O_RDWR | O_CREAT)
        return 0

    def main(api, out):
        yield from api.sproc(churner, PR_SALL, 1)
        yield from api.sproc(churner, PR_SALL, 2)
        yield from api.wait()
        yield from api.wait()
        sema = api.proc.shaddr.s_fupdsema
        out["value"] = sema.value
        out["waiters"] = sema.nwaiters
        return 0

    out, _ = run_program(main, ncpus=2)
    assert out["value"] == 1, "semaphore must end released"
    assert out["waiters"] == 0
