"""Unit tests for address spaces: resolution, COW duplication, stacks."""

import pytest

from repro.errors import SimulationError
from repro.mem import layout
from repro.mem.addrspace import AddressSpace, Fault, SharedVM
from repro.mem.frames import PAGE_SIZE
from repro.mem.pregion import PROT_READ, PROT_RW
from repro.mem.region import RegionType
from repro.sim.machine import Machine


@pytest.fixture
def machine():
    return Machine(ncpus=2, memory_bytes=8 * 1024 * 1024)


def make_space(machine, shared=None):
    return AddressSpace(machine, shared)


def test_unmapped_address_is_segv(machine):
    space = make_space(machine)
    assert space.resolve(0x1234_0000, write=False).kind is Fault.SEGV


def test_demand_zero_then_hit(machine):
    space = make_space(machine)
    space.map_segment(layout.DATA_BASE, 2 * PAGE_SIZE, RegionType.DATA, PROT_RW)
    res = space.resolve(layout.DATA_BASE, write=False)
    assert res.kind is Fault.ZERO
    space.materialize(res, layout.DATA_BASE, write=False)
    assert space.resolve(layout.DATA_BASE, write=False).kind is Fault.HIT


def test_write_to_readonly_is_segv(machine):
    space = make_space(machine)
    space.map_segment(layout.TEXT_BASE, PAGE_SIZE, RegionType.TEXT, PROT_READ)
    assert space.resolve(layout.TEXT_BASE, write=True).kind is Fault.SEGV


def test_overlapping_attach_rejected(machine):
    space = make_space(machine)
    space.map_segment(layout.DATA_BASE, 2 * PAGE_SIZE, RegionType.DATA, PROT_RW)
    with pytest.raises(SimulationError):
        space.map_segment(
            layout.DATA_BASE + PAGE_SIZE, PAGE_SIZE, RegionType.DATA, PROT_RW
        )


def test_dup_cow_write_isolation(machine):
    parent = make_space(machine)
    pregion = parent.map_segment(layout.DATA_BASE, PAGE_SIZE, RegionType.DATA, PROT_RW)
    frame = pregion.region.ensure_page(0)
    frame.data[0] = 0x11

    child = parent.dup_cow()
    res = child.resolve(layout.DATA_BASE, write=True)
    assert res.kind is Fault.COW
    child_frame = child.materialize(res, layout.DATA_BASE, write=True)
    child_frame.data[0] = 0x22

    assert frame.data[0] == 0x11, "parent page must be untouched"
    # parent's own first write also breaks COW (to its original frame)
    pres = parent.resolve(layout.DATA_BASE, write=True)
    assert pres.kind is Fault.COW
    kept = parent.materialize(pres, layout.DATA_BASE, write=True)
    assert kept.data[0] == 0x11


def test_shared_vm_members_see_same_frames(machine):
    shared = SharedVM(machine)
    member_a = make_space(machine, shared)
    member_b = make_space(machine, shared)
    member_a.map_segment(
        layout.DATA_BASE, PAGE_SIZE, RegionType.DATA, PROT_RW, shared=True
    )
    res_a = member_a.resolve(layout.DATA_BASE, write=True)
    frame = member_a.materialize(res_a, layout.DATA_BASE, write=True)
    frame.data[0] = 0x33
    res_b = member_b.resolve(layout.DATA_BASE, write=False)
    assert res_b.kind is Fault.HIT
    assert member_b.materialize(res_b, layout.DATA_BASE, False).data[0] == 0x33
    assert member_a.asid == member_b.asid


def test_private_examined_before_shared(machine):
    """The PRDA (private) must shadow nothing and be found first."""
    shared = SharedVM(machine)
    member = make_space(machine, shared)
    member.map_segment(layout.PRDA_BASE, PAGE_SIZE, RegionType.PRDA, PROT_RW)
    pregion, is_shared = member.find(layout.PRDA_BASE)
    assert pregion.rtype is RegionType.PRDA
    assert not is_shared


def test_stack_carving_distinct_slots(machine):
    shared = SharedVM(machine)
    member = make_space(machine, shared)
    stack0 = member.carve_stack(shared=True)
    stack1 = member.carve_stack(shared=True)
    assert stack0.vhigh == layout.stack_slot(0, shared.stack_max_bytes)
    assert stack1.vhigh == layout.stack_slot(1, shared.stack_max_bytes)
    assert not stack0.overlaps(stack1.vlow, stack1.vhigh)


def test_stack_auto_grow(machine):
    space = make_space(machine)
    stack = space.carve_stack(shared=False)
    below = stack.vlow - 2 * PAGE_SIZE
    res = space.resolve(below, write=True)
    assert res.kind is Fault.GROW
    space.materialize(res, below, write=True)
    assert space.resolve(below, write=True).kind is not Fault.SEGV


def test_stack_growth_respects_ceiling(machine):
    space = make_space(machine)
    space.stack_max_bytes = 8 * PAGE_SIZE
    stack = space.carve_stack(shared=False)
    way_below = stack.vhigh - 64 * PAGE_SIZE
    assert space.resolve(way_below, write=True).kind is Fault.SEGV


def test_dup_cow_flattens_shared_pregions(machine):
    """fork() from a share-group member gets a COW copy of shared regions."""
    shared = SharedVM(machine)
    member = make_space(machine, shared)
    member.map_segment(
        layout.DATA_BASE, PAGE_SIZE, RegionType.DATA, PROT_RW, shared=True
    )
    res = member.resolve(layout.DATA_BASE, write=True)
    frame = member.materialize(res, layout.DATA_BASE, True)
    frame.data[0] = 0x55

    child = member.dup_cow()
    assert child.shared is None
    pregion, is_shared = child.find(layout.DATA_BASE)
    assert pregion is not None and not is_shared
    # child write does not disturb the group's page
    cres = child.resolve(layout.DATA_BASE, write=True)
    assert cres.kind is Fault.COW
    cframe = child.materialize(cres, layout.DATA_BASE, True)
    cframe.data[0] = 0x66
    assert frame.data[0] == 0x55


def test_map_arena_allocation_is_disjoint(machine):
    space = make_space(machine)
    base1 = space.alloc_map_range(3 * PAGE_SIZE)
    base2 = space.alloc_map_range(PAGE_SIZE)
    assert base2 >= base1 + 3 * PAGE_SIZE
    assert base1 >= layout.MAP_BASE


def test_asid_shared_vs_private(machine):
    shared = SharedVM(machine)
    member_a = make_space(machine, shared)
    member_b = make_space(machine, shared)
    loner = make_space(machine)
    assert member_a.asid == member_b.asid
    assert loner.asid != member_a.asid


def test_teardown_private_releases_frames(machine):
    space = make_space(machine)
    space.map_segment(layout.DATA_BASE, 2 * PAGE_SIZE, RegionType.DATA, PROT_RW)
    res = space.resolve(layout.DATA_BASE, write=True)
    space.materialize(res, layout.DATA_BASE, True)
    assert machine.frames.allocated == 1
    space.teardown_private()
    assert machine.frames.allocated == 0
