"""The CPU interpreter: quantum slicing, frame stack, exec replacement."""

import pytest

from repro import SIGUSR1, System, status_code
from repro.sim.costs import CostModel
from tests.conftest import run_program


def test_long_compute_is_chunked_at_quantum():
    """A single giant compute must not monopolize the CPU past quanta."""
    quantum = 50_000

    def hog(api, log):
        yield from api.compute(10 * quantum)
        log.append(("hog", api.now))
        return 0

    def quick(api, log):
        yield from api.compute(1000)
        log.append(("quick", api.now))
        return 0

    def main(api, log):
        yield from api.fork(hog, log)
        yield from api.fork(quick, log)
        yield from api.wait()
        yield from api.wait()
        return 0

    log = []
    sim = System(ncpus=1, costs=CostModel(quantum=quantum))
    sim.spawn(main, log)
    sim.run()
    order = [tag for tag, _ in log]
    assert order[0] == "quick", "time slicing must let the short job through"


def test_compute_zero_is_harmless():
    def main(api, out):
        yield from api.compute(0)
        out["ok"] = True
        return 0

    out, _ = run_program(main)
    assert out["ok"]


def test_async_signal_pushes_handler_frame_and_resumes_compute():
    """Handler interrupts mid-compute; the interrupted work continues
    afterwards and total compute time is preserved."""

    def victim(api, ctx):
        base = ctx

        def handler(api, sig):
            yield from api.store_word(base, 1)

        yield from api.signal(SIGUSR1, handler)
        start = api.now
        yield from api.compute(400_000)
        elapsed = api.now - start
        handled = yield from api.load_word(base)
        # the handler ran (flag set) and the compute still finished fully
        return 0 if (handled == 1 and elapsed >= 400_000) else 1

    def main(api, out):
        base = yield from api.mmap(4096)
        pid = yield from api.fork(victim, base)
        yield from api.compute(100_000)
        yield from api.kill(pid, SIGUSR1)
        _, status = yield from api.wait()
        out["code"] = status_code(status)
        return 0

    out, _ = run_program(main, ncpus=2)
    assert out["code"] == 0


def test_nested_signal_during_handler_defers_sanely():
    """A second signal posted while a handler runs is delivered after."""

    def victim(api, ctx):
        base = ctx

        def h1(api, sig):
            yield from api.fetch_add(base, 1)
            yield from api.compute(50_000)

        yield from api.signal(SIGUSR1, h1)
        yield from api.compute(600_000)
        count = yield from api.load_word(base)
        return count

    def main(api, out):
        base = yield from api.mmap(4096)
        pid = yield from api.fork(victim, base)
        yield from api.compute(100_000)
        yield from api.kill(pid, SIGUSR1)
        yield from api.compute(300_000)
        yield from api.kill(pid, SIGUSR1)
        _, status = yield from api.wait()
        out["handled"] = status_code(status)
        return 0

    out, _ = run_program(main, ncpus=2)
    assert out["handled"] == 2


def test_exec_discards_old_generator_stack():
    """exec from inside a signal handler still replaces the whole image."""

    def image(api, arg):
        return 55
        yield

    def victim(api, arg):
        def handler(api, sig):
            yield from api.exec("/bin/image")

        yield from api.signal(SIGUSR1, handler)
        yield from api.compute(1_000_000)
        return 1  # must never be reached

    def main(api, out):
        pid = yield from api.fork(victim)
        yield from api.compute(50_000)
        yield from api.kill(pid, SIGUSR1)
        _, status = yield from api.wait()
        out["code"] = status_code(status)
        return 0

    out = {}
    sim = System(ncpus=2)
    sim.register_program("/bin/image", image)
    sim.spawn(lambda api, a: main(api, out))
    sim.run()
    assert out["code"] == 55


def test_program_falling_off_end_exits_zero():
    def silent(api, arg):
        yield from api.compute(10)
        # no return statement: implicit exit(0)

    def main(api, out):
        yield from api.fork(silent)
        _, status = yield from api.wait()
        out["code"] = status_code(status)
        return 0

    out, _ = run_program(main)
    assert out["code"] == 0


def test_busy_cycles_accounting_consistent():
    def main(api, out):
        yield from api.compute(100_000)
        return 0

    out, sim = run_program(main, ncpus=1)
    total_busy = sum(cpu.busy_cycles for cpu in sim.machine.cpus)
    assert total_busy <= sim.now
    assert total_busy >= 100_000


def test_dispatch_cost_charged_on_switch():
    slow_switch = CostModel(context_switch=50_000)

    def child(api, arg):
        yield from api.compute(1000)
        return 0

    def main(api, out):
        yield from api.fork(child)
        yield from api.wait()
        return 0

    out_fast, sim_fast = run_program(main, ncpus=1)
    out_slow, sim_slow = run_program(main, ncpus=1, costs=slow_switch)
    assert sim_slow.now > sim_fast.now + 40_000


def test_guest_exception_is_wrapped_with_context():
    """A buggy workload raising a raw exception gets pid/cycle context."""
    from repro.errors import SimulationError

    def buggy(api, arg):
        yield from api.compute(100)
        raise ValueError("oops in guest code")

    sim = System(ncpus=1)
    sim.spawn(buggy, name="buggy-prog")
    with pytest.raises(SimulationError) as excinfo:
        sim.run()
    message = str(excinfo.value)
    assert "buggy-prog" in message
    assert "oops in guest code" in message
    assert isinstance(excinfo.value.__cause__, ValueError)


def test_injected_exception_keeps_full_chain():
    """Throw-injected exceptions survive in the wrapped error's chain.

    ``CPU._resume`` takes the *injected* throwable as a parameter; the
    except clause that wraps guest crashes must not shadow it (it once
    did, as ``except Exception as exc:``).  The guest here catches the
    injection and raises its own error: the wrapper must chain to the
    guest's error, whose __context__ is the injected original.
    """
    from repro.errors import SimulationError

    marker = {}

    def guest(api, arg):
        try:
            marker["in_try"] = True
            yield from api.compute(50)
        except RuntimeError:
            raise ValueError("guest reaction")

    sim = System(ncpus=1)
    sim.spawn(guest, name="inj")
    cpu = sim.machine.cpus[0]
    # step until the guest is suspended inside its try block
    for _ in range(200):
        if marker.get("in_try") and cpu.current is not None:
            break
        assert sim.engine.step(), "workload drained before injection point"

    injected = RuntimeError("injected fault")
    with pytest.raises(SimulationError) as excinfo:
        cpu._resume(None, injected)
    wrapper = excinfo.value
    assert "inj" in str(wrapper)
    assert isinstance(wrapper.__cause__, ValueError)
    assert wrapper.__cause__.__context__ is injected


def test_delay_caches_share_one_bound():
    """Both interning caches stop growing at the shared _DELAY_CACHE_MAX."""
    from repro.sim import effects

    saved_k = dict(effects._KDELAY_CACHE)
    saved_u = dict(effects._UDELAY_CACHE)
    try:
        effects._KDELAY_CACHE.clear()
        effects._UDELAY_CACHE.clear()
        bound = effects._DELAY_CACHE_MAX
        for make, cache, user in (
            (effects.kdelay, effects._KDELAY_CACHE, False),
            (effects.udelay, effects._UDELAY_CACHE, True),
        ):
            for cycles in range(bound + 50):
                delay = make(cycles)
                assert delay.cycles == cycles
                assert delay.user is user
            assert len(cache) == bound
            # cached values intern; overflow values still work, uncached
            assert make(1) is make(1)
            overflow = bound + 10
            assert make(overflow) is not make(overflow)
            assert make(overflow).cycles == overflow
    finally:
        effects._KDELAY_CACHE.clear()
        effects._KDELAY_CACHE.update(saved_k)
        effects._UDELAY_CACHE.clear()
        effects._UDELAY_CACHE.update(saved_u)
