"""Section 8 (future directions) extensions, implemented and tested:
selective region sharing, exec-keeping-the-group, group priority,
gang scheduling hint, stop-sharing, plus the /dev devices and alarm().
"""


from repro import (
    O_CREAT,
    O_RDONLY,
    O_RDWR,
    PR_GETNSHARE,
    PR_SALL,
    PR_SETGANG,
    SEEK_SET,
    System,
    status_code,
)
from repro.errors import EINVAL, EPERM
from repro.share.mask import PR_PRIVDATA
from repro.share.prctl import PR_SETGROUPPRI
from tests.conftest import run_program


# ----------------------------------------------------------------------
# selective region sharing (PR_PRIVDATA)


def _data_addr(api):
    """An address inside the (shared) data segment."""
    from repro.mem.region import RegionType

    pregion, _shared = api.proc.vm.find_by_type(RegionType.DATA)
    return pregion.vbase


def test_privdata_child_sees_snapshot_but_not_later_writes():
    def child(api, ctx):
        addr, out = ctx
        out["child_saw"] = yield from api.load_word(addr)
        yield from api.store_word(addr, 777)  # private COW write
        yield from api.compute(50_000)
        out["child_after"] = yield from api.load_word(addr)
        return 0

    def main(api, out):
        addr = _data_addr(api)
        yield from api.store_word(addr, 111)
        yield from api.sproc(child, PR_SALL | PR_PRIVDATA, (addr, out))
        yield from api.compute(10_000)
        yield from api.store_word(addr, 222)  # group-side write
        yield from api.wait()
        out["group_view"] = yield from api.load_word(addr)
        return 0

    out, _ = run_program(main)
    assert out["child_saw"] == 111, "child gets a snapshot of the data"
    assert out["child_after"] == 777, "child's writes stay private"
    assert out["group_view"] == 222, "group's writes never reach the child"


def test_privdata_child_still_shares_mmap_regions():
    """Only DATA is privatized; the rest of the image stays shared."""

    def child(api, base):
        yield from api.store_word(base, 0xFEED)
        return 0

    def main(api, out):
        base = yield from api.mmap(4096)
        yield from api.sproc(child, PR_SALL | PR_PRIVDATA, base)
        yield from api.wait()
        out["value"] = yield from api.load_word(base)
        return 0

    out, _ = run_program(main)
    assert out["value"] == 0xFEED


def test_privdata_triggers_shootdown():
    def child(api, arg):
        yield from api.compute(10)
        return 0

    def main(api, out):
        addr = _data_addr(api)
        yield from api.store_word(addr, 5)  # make a data page resident
        yield from api.sproc(child, PR_SALL | PR_PRIVDATA)
        yield from api.wait()
        return 0

    out, sim = run_program(main)
    assert sim.stats["shootdowns"] >= 1


def test_privdata_not_implied_by_pr_sall():
    """PR_SALL means 'share everything', not 'privatize data'."""

    def child(api, ctx):
        addr, out = ctx
        yield from api.store_word(addr, 999)
        return 0

    def main(api, out):
        addr = _data_addr(api)
        yield from api.store_word(addr, 1)
        yield from api.sproc(child, PR_SALL, (addr, out))
        yield from api.wait()
        out["shared_write"] = yield from api.load_word(addr)
        return 0

    out, _ = run_program(main)
    assert out["shared_write"] == 999


# ----------------------------------------------------------------------
# exec keeping the group (file sharing across unrelated images)


def test_exec_keep_group_retains_fd_sharing():
    def newimage(api, arg):
        n = yield from api.prctl(PR_GETNSHARE)
        # the descriptor the sibling opens after our exec must appear
        yield from api.compute(60_000)
        yield from api.getpid()  # sync entry
        data = yield from api.read(0, 64)
        yield from api.compute(5_000)
        return n if data == b"post-exec data" else 99

    def execer(api, arg):
        yield from api.exec("/bin/newimage", keep_group=True)
        return 98

    def main(api, out):
        yield from api.sproc(execer, PR_SALL)
        yield from api.compute(30_000)
        fd = yield from api.open("/shared-after", O_RDWR | O_CREAT)
        yield from api.write(fd, b"post-exec data")
        yield from api.lseek(fd, 0, SEEK_SET)
        pid, status = yield from api.wait()
        out["code"] = status_code(status)
        return 0

    out = {}
    sim = System(ncpus=2)
    sim.register_program("/bin/newimage", newimage)
    sim.spawn(lambda api, a: main(api, out))
    sim.run()
    assert out["code"] == 2, "exec'd image stayed in the 2-member group"


def test_exec_keep_group_gets_fresh_address_space():
    def newimage(api, base):
        # base was a valid shared mapping pre-exec; the new image has a
        # unique address space, so this must fault fatally
        yield from api.store_word(base, 1)
        return 0

    def execer(api, base):
        yield from api.exec("/bin/newimage", base, keep_group=True)
        return 97

    def main(api, out):
        base = yield from api.mmap(4096)
        yield from api.store_word(base, 42)
        yield from api.sproc(execer, PR_SALL, base)
        pid, status = yield from api.wait()
        from repro import SIGSEGV, status_signal

        out["sig"] = status_signal(status)
        return 0

    out = {}
    sim = System(ncpus=2)
    sim.register_program("/bin/newimage", newimage)
    sim.spawn(lambda api, a: main(api, out))
    sim.run()
    from repro import SIGSEGV

    assert out["sig"] == SIGSEGV


# ----------------------------------------------------------------------
# group priority


def test_group_priority_applies_to_all_members():
    def member(api, arg):
        yield from api.compute(100_000)
        return 0

    def main(api, out):
        pids = []
        for _ in range(2):
            pid = yield from api.sproc(member, PR_SALL)
            pids.append(pid)
        yield from api.prctl(PR_SETGROUPPRI, 30)
        out["pris"] = [api.kernel.proc_table.get(pid).pri for pid in pids]
        out["mine"] = api.proc.pri
        for _ in pids:
            yield from api.wait()
        return 0

    out, _ = run_program(main)
    assert out["pris"] == [30, 30]
    assert out["mine"] == 30


def test_group_priority_raise_requires_root():
    def main(api, out):
        yield from api.sproc(lambda api, a: _ret0(api), PR_SALL)
        yield from api.setuid(50)
        rc = yield from api.prctl(PR_SETGROUPPRI, 5)  # raise: needs root
        out["rc"] = rc
        out["errno"] = yield from api.errno()
        yield from api.wait()
        return 0

    def _ret0(api):
        return 0
        yield

    out, _ = run_program(main)
    assert out["rc"] == -1
    assert out["errno"] == EPERM


def test_group_priority_outside_group_is_einval():
    def main(api, out):
        rc = yield from api.prctl(PR_SETGROUPPRI, 25)
        out["errno"] = yield from api.errno()
        return 0

    out, _ = run_program(main)
    assert out["errno"] == EINVAL


# ----------------------------------------------------------------------
# devices


def test_dev_null_reads_eof_and_swallows_writes():
    def main(api, out):
        fd = yield from api.open("/dev/null", O_RDWR)
        out["read"] = yield from api.read(fd, 100)
        out["written"] = yield from api.write(fd, b"x" * 1000)
        return 0

    out, _ = run_program(main)
    assert out["read"] == b""
    assert out["written"] == 1000


def test_dev_zero_supplies_zeroes():
    def main(api, out):
        fd = yield from api.open("/dev/zero", O_RDONLY)
        out["data"] = yield from api.read(fd, 16)
        return 0

    out, _ = run_program(main)
    assert out["data"] == b"\x00" * 16


# ----------------------------------------------------------------------
# alarm


def test_alarm_delivers_sigalrm():
    from repro.kernel.signals import SIGALRM

    def main(api, out):
        base = yield from api.mmap(4096)

        def handler(api, sig):
            yield from api.store_word(base, sig)

        yield from api.signal(SIGALRM, handler)
        start = api.now
        yield from api.alarm(40_000)
        rc = yield from api.pause()
        out["elapsed"] = api.now - start
        out["sig"] = yield from api.load_word(base)
        return 0

    out, _ = run_program(main)
    from repro.kernel.signals import SIGALRM

    assert out["sig"] == SIGALRM
    assert out["elapsed"] >= 40_000


def test_alarm_zero_cancels_and_reports_remaining():
    def main(api, out):
        yield from api.alarm(100_000)
        yield from api.compute(10_000)
        remaining = yield from api.alarm(0)
        out["remaining"] = remaining
        yield from api.compute(200_000)  # alarm must NOT fire
        return 0

    out, _ = run_program(main)
    assert 0 < out["remaining"] <= 90_500
    # surviving the compute proves the cancel worked (default SIGALRM kills)


def test_alarm_rearm_replaces_previous():
    def main(api, out):
        yield from api.alarm(500_000)
        old = yield from api.alarm(10_000)
        out["old"] = old
        from repro import SIG_IGN
        from repro.kernel.signals import SIGALRM

        yield from api.signal(SIGALRM, SIG_IGN)
        yield from api.compute(20_000)
        return 0

    out, _ = run_program(main)
    assert out["old"] > 400_000


# ----------------------------------------------------------------------
# gang guardrails


def test_gang_group_larger_than_machine_still_runs():
    """The gang need is capped at the CPU count: no head-of-line deadlock."""

    def member(api, arg):
        yield from api.compute(20_000)
        return 0

    def main(api, out):
        for _ in range(5):  # group of 6 on 2 CPUs
            yield from api.sproc(member, PR_SALL)
        yield from api.prctl(PR_SETGANG, 1)
        for _ in range(5):
            yield from api.wait()
        out["done"] = True
        return 0

    out, _ = run_program(main, ncpus=2)
    assert out["done"]
