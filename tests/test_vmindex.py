"""The VM translation fast path: interval index vs linear scan.

The property test drives randomized attach/detach/grow/shadow sequences
and asserts the indexed and linear lookups agree on every probe — the
index is an optimization, never a semantic change.  The rest covers the
one-pass detach regression, the ablation flag, and determinism.
"""

import random

import pytest

from repro.errors import SimulationError
from repro.mem.addrspace import AddressSpace, SharedVM, make_region
from repro.mem.frames import PAGE_SIZE
from repro.mem.pregion import Growth, PROT_RW, Pregion
from repro.mem.region import RegionType
from repro.sim.machine import Machine
from repro.system import System
from repro import PR_SALL

SLOT_PAGES = 16
NSLOTS = 12
BASE = 0x10000000


def _slot_base(slot):
    return BASE + slot * SLOT_PAGES * PAGE_SIZE


def _make_pregion(machine, slot, growth):
    base = _slot_base(slot)
    if growth is Growth.DOWN:
        # Top of the slot, ceiling sized so it can reach the slot base.
        vbase = base + (SLOT_PAGES - 6) * PAGE_SIZE
        region = make_region(machine.frames, 2 * PAGE_SIZE, RegionType.STACK)
        return Pregion(region, vbase, PROT_RW, Growth.DOWN,
                       max_pages=SLOT_PAGES - 4)
    if growth is Growth.UP:
        region = make_region(machine.frames, 2 * PAGE_SIZE, RegionType.DATA)
        return Pregion(region, base, PROT_RW, Growth.UP,
                       max_pages=SLOT_PAGES)
    region = make_region(machine.frames, 3 * PAGE_SIZE, RegionType.SHM)
    return Pregion(region, base, PROT_RW)


def _assert_equivalent(machine, vm):
    for slot in range(NSLOTS):
        for page in (0, 1, 7, SLOT_PAGES - 6, SLOT_PAGES - 1):
            vaddr = _slot_base(slot) + page * PAGE_SIZE + 4
            lin = vm._find_linear(vaddr)
            idx = vm._find_indexed(vaddr)
            assert lin[0] is idx[0], hex(vaddr)
            assert lin[1] == idx[1], hex(vaddr)
            machine.vm_index = "linear"
            grow_lin = vm._growable_stack(vaddr)
            machine.vm_index = "indexed"
            grow_idx = vm._growable_stack(vaddr)
            if grow_lin is None:
                assert grow_idx is None, hex(vaddr)
            else:
                assert grow_idx is not None, hex(vaddr)
                assert grow_lin[0] is grow_idx[0]
                assert grow_lin[1] == grow_idx[1]


@pytest.mark.parametrize("seed", range(8))
def test_index_matches_linear_scan_under_random_traffic(seed):
    machine = Machine(ncpus=1)
    shared_vm = SharedVM(machine)
    vm = AddressSpace(machine, shared=shared_vm)
    rng = random.Random(seed)
    private_at = {}
    shared_at = {}

    for _ in range(80):
        op = rng.choice(
            ["attach_private", "attach_shared", "shadow",
             "detach", "grow_up", "grow_down"]
        )
        if op == "attach_private":
            free = [s for s in range(NSLOTS)
                    if s not in private_at and s not in shared_at]
            if free:
                slot = rng.choice(free)
                growth = rng.choice([Growth.NONE, Growth.UP, Growth.DOWN])
                pregion = _make_pregion(machine, slot, growth)
                vm.attach_private(pregion)
                private_at[slot] = pregion
        elif op == "attach_shared":
            free = [s for s in range(NSLOTS)
                    if s not in private_at and s not in shared_at]
            if free:
                slot = rng.choice(free)
                growth = rng.choice([Growth.NONE, Growth.UP, Growth.DOWN])
                pregion = _make_pregion(machine, slot, growth)
                vm.attach_shared(pregion)
                shared_at[slot] = pregion
        elif op == "shadow":
            # Private shadows shared: same slot on both lists; the
            # private-first lookup order must win in both modes.
            eligible = [s for s in shared_at if s not in private_at]
            if eligible:
                slot = rng.choice(eligible)
                pregion = _make_pregion(machine, slot, Growth.NONE)
                vm.attach_private(pregion, allow_shadow=True)
                private_at[slot] = pregion
        elif op == "detach":
            table = rng.choice([private_at, shared_at])
            if table:
                slot = rng.choice(sorted(table))
                vm.detach(table.pop(slot))
        elif op == "grow_up":
            candidates = [
                p for p in list(private_at.values()) + list(shared_at.values())
                if p.growth is Growth.UP
                and p.region.npages + 1 <= p.max_pages
            ]
            if candidates:
                rng.choice(candidates).grow_up(1)
        elif op == "grow_down":
            candidates = [
                p for p in list(private_at.values()) + list(shared_at.values())
                if p.growth is Growth.DOWN
            ]
            if candidates:
                pregion = rng.choice(candidates)
                target = pregion.vlow - PAGE_SIZE
                if pregion.can_grow_down_to(target):
                    pregion.grow_down_to(target)
        _assert_equivalent(machine, vm)


def test_detach_of_unattached_raises():
    machine = Machine(ncpus=1)
    vm = AddressSpace(machine)
    loose = _make_pregion(machine, 0, Growth.NONE)
    with pytest.raises(SimulationError):
        vm.detach(loose)


def test_double_detach_raises():
    machine = Machine(ncpus=1)
    vm = AddressSpace(machine)
    pregion = _make_pregion(machine, 0, Growth.NONE)
    vm.attach_private(pregion)
    vm.detach(pregion)
    with pytest.raises(SimulationError):
        vm.detach(pregion)


def test_detach_from_wrong_space_raises():
    machine = Machine(ncpus=1)
    vm_a = AddressSpace(machine)
    vm_b = AddressSpace(machine)
    pregion = _make_pregion(machine, 0, Growth.NONE)
    vm_a.attach_private(pregion)
    with pytest.raises(SimulationError):
        vm_b.detach(pregion)
    # still attached where it belongs
    assert pregion in vm_a.private
    vm_a.detach(pregion)


def test_list_reassignment_keeps_owner_backrefs():
    machine = Machine(ncpus=1)
    vm = AddressSpace(machine)
    keep = _make_pregion(machine, 0, Growth.NONE)
    drop = _make_pregion(machine, 1, Growth.NONE)
    vm.attach_private(keep)
    vm.attach_private(drop)
    vm.private = [keep]
    assert keep.owner is vm.private
    assert drop.owner is None
    found, shared = vm.find(_slot_base(0) + 4)
    assert found is keep and not shared
    assert vm.find(_slot_base(1) + 4) == (None, False)


def test_unknown_vm_index_mode_rejected():
    with pytest.raises(ValueError):
        System(ncpus=1, vm_index="btree")


def _mapping_workload(api, ctx):
    bases = []
    for _ in range(ctx["nmaps"]):
        base = yield from api.mmap(PAGE_SIZE)
        yield from api.store_word(base, 1)
        bases.append(base)
    total = 0
    for base in bases:
        value = yield from api.load_word(base)
        total += value
    ctx["out"]["total"] = total
    return 0


def _group_workload(api, ctx):
    def member(api, ctx):
        for base in ctx["bases"]:
            yield from api.load_word(base)
        return 0

    bases = []
    for _ in range(ctx["nmaps"]):
        base = yield from api.mmap(PAGE_SIZE)
        yield from api.store_word(base, 1)
        bases.append(base)
    ctx["bases"] = bases
    for _ in range(3):
        yield from api.sproc(member, PR_SALL, ctx)
    for _ in range(3):
        yield from api.wait()
    ctx["out"]["done"] = True
    return 0


def _run_mode(main, vm_index, nmaps=10, metrics=True):
    out = {}
    sim = System(ncpus=2, vm_index=vm_index, metrics_enabled=metrics)
    sim.spawn(main, {"nmaps": nmaps, "out": out})
    cycles = sim.run()
    return cycles, out, sim


def test_modes_agree_without_shrink_or_detach():
    """Lookup strategy is invisible to the timeline: absent range
    shootdowns, indexed and linear runs are cycle-identical."""
    for main in (_mapping_workload, _group_workload):
        cyc_lin, out_lin, _ = _run_mode(main, "linear")
        cyc_idx, out_idx, _ = _run_mode(main, "indexed")
        assert cyc_lin == cyc_idx
        assert out_lin == out_idx


def test_linear_mode_is_deterministic():
    runs = [_run_mode(_group_workload, "linear")[0] for _ in range(2)]
    assert runs[0] == runs[1]
    quiet = _run_mode(_group_workload, "linear", metrics=False)[0]
    assert quiet == runs[0]


def test_indexed_mode_is_deterministic():
    runs = [_run_mode(_group_workload, "indexed")[0] for _ in range(2)]
    assert runs[0] == runs[1]
    quiet = _run_mode(_group_workload, "indexed", metrics=False)[0]
    assert quiet == runs[0]


def test_scan_length_counters_flow():
    cycles, _out, sim = _run_mode(_group_workload, "indexed")
    kernel = sim.kstat.scope("kernel", 0)
    assert kernel.get("vm_lookups", 0) > 0
    assert kernel.get("pregion_scan_len", 0) > 0
    assert kernel.get("vm_index_hits", 0) > 0
    lin_sim = _run_mode(_group_workload, "linear")[2]
    lin_kernel = lin_sim.kstat.scope("kernel", 0)
    assert lin_kernel.get("vm_lookups", 0) > 0
    assert "vm_index_hits" not in lin_kernel
