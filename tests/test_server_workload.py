"""The flagship multi-tier server workload (E17) and its parts.

Covers the deterministic open-loop arrival schedule, the sharded LRU
cache arena (eviction bounds, LRU order, page verification), the
futex-style blocking work queue batching, the positional AIO syscalls,
the O(1) weighted kstat histograms, and the rule that metrics never
change the simulated outcome.
"""

from repro import O_CREAT, O_RDWR, PR_SALL, status_code
from repro.fs.file import SEEK_CUR, SEEK_SET
from repro.obs.kstat import Histogram, KstatRegistry
from repro.runtime.shmalloc import Arena
from repro.runtime.workqueue import BlockingWorkQueue
from repro.workloads.server import (
    ArrivalSchedule,
    ServerConfig,
    ShardedCache,
    run_server,
)
from tests.conftest import run_program


def _tiny_cfg(**overrides):
    base = dict(
        ngroups=2, nworkers=2, naio=4, batch=32, keyspace=64,
        cache_capacity=48, nshards=4, npages=16, nrequests=1_500,
        rate_per_kcycle=2.0, seed=7,
    )
    base.update(overrides)
    return ServerConfig(**base)


# ----------------------------------------------------------------------
# arrival schedule


def test_arrival_schedule_is_deterministic():
    cfg = _tiny_cfg()
    one = ArrivalSchedule(cfg)
    two = ArrivalSchedule(_tiny_cfg())
    assert [b.offset for b in one.batches] == [b.offset for b in two.batches]
    assert [b.group for b in one.batches] == [b.group for b in two.batches]
    assert [b.keys for b in one.batches] == [b.keys for b in two.batches]


def test_arrival_schedule_varies_with_seed():
    one = ArrivalSchedule(_tiny_cfg(seed=7))
    two = ArrivalSchedule(_tiny_cfg(seed=8))
    assert ([b.offset for b in one.batches] != [b.offset for b in two.batches]
            or [b.keys for b in one.batches] != [b.keys for b in two.batches])


def test_arrival_schedule_is_open_loop_and_complete():
    cfg = _tiny_cfg()
    plan = ArrivalSchedule(cfg)
    offsets = [b.offset for b in plan.batches]
    assert offsets == sorted(offsets) and offsets[0] >= 1
    assert sum(b.nreq for b in plan.batches) == cfg.nrequests
    for batch in plan.batches:
        assert 0 <= batch.group < cfg.ngroups
        assert sum(n for _, n in batch.keys) == batch.nreq
        assert all(0 <= key < cfg.keyspace for key, _ in batch.keys)


# ----------------------------------------------------------------------
# sharded LRU cache


def _drive_cache(api, out, capacity, keyspace, nshards, sequence):
    """Single-process cache driver: access keys, fault misses in."""
    arena = yield from Arena.create(api, 1 << 16)
    cache = yield from ShardedCache.create(
        api, arena, capacity, keyspace, nshards)
    hits = misses = evictions = bad = 0
    for key in sequence:
        kind, value, entry, victim = yield from cache.access(api, key)
        if kind == "hit":
            hits += 1
            if value != key * 7 + 1:
                bad += 1
        else:
            misses += 1
            if victim is not None:
                evictions += 1
                yield from api.munmap(victim)
            page = yield from api.mmap(4096)
            yield from api.store_word(page, key * 7 + 1)
            yield from cache.fill(api, entry, page)
    out["hits"] = hits
    out["misses"] = misses
    out["evictions"] = evictions
    out["bad"] = bad
    out["resident"] = yield from cache.resident(api)
    out["capacity"] = cache.capacity
    return 0


def test_cache_eviction_stays_within_capacity():
    # 64 distinct keys through a 16-entry cache, twice: eviction churn,
    # never more residents than capacity, every hit returns the right
    # page value.
    sequence = list(range(64)) * 2

    def main(api, out):
        code = yield from _drive_cache(api, out, 16, 64, 4, sequence)
        return code

    out, _ = run_program(main)
    assert out["bad"] == 0
    assert out["hits"] + out["misses"] == len(sequence)
    assert out["evictions"] > 0
    assert out["resident"] <= out["capacity"]


def test_cache_lru_order_single_shard():
    # capacity 4, one shard: fill 0..3, refresh 0, insert 4 -> the LRU
    # victim must be key 1 (0 was refreshed), so 0 still hits, 1 misses.
    sequence = [0, 1, 2, 3, 0, 4, 0, 1]

    def main(api, out):
        code = yield from _drive_cache(api, out, 4, 16, 1, sequence)
        return code

    out, _ = run_program(main)
    assert out["bad"] == 0
    # hits: second 0 (refresh), third 0 (survived eviction); misses:
    # 0,1,2,3,4 cold plus 1 after eviction.
    assert out["hits"] == 2
    assert out["misses"] == 6
    assert out["evictions"] == 2


# ----------------------------------------------------------------------
# blocking work queue batching


def test_blocking_queue_push_many_delivers_exactly_once():
    nproducers, nconsumers, per_producer = 3, 3, 60

    def producer(api, ctx):
        base, start = ctx
        queue = yield from BlockingWorkQueue.attach(api, base)
        items = list(range(start, start + per_producer))
        # mixed batch sizes exercise the partial-room path
        yield from queue.push_many(api, items[:7])
        yield from queue.push_many(api, items[7:])
        return 0

    def consumer(api, ctx):
        base, sums = ctx
        queue = yield from BlockingWorkQueue.attach(api, base)
        got = []
        while True:
            item = yield from queue.pop(api)
            if item is None:
                break
            got.append(item)
        sums.append(got)
        return 0

    def main(api, out):
        queue = yield from BlockingWorkQueue.create(api, capacity=8)
        taken = []
        for c in range(nconsumers):
            yield from api.sproc(consumer, PR_SALL, (queue.base, taken))
        for p in range(nproducers):
            yield from api.sproc(producer, PR_SALL,
                                 (queue.base, p * per_producer))
        codes = []
        for _ in range(nproducers):
            _, status = yield from api.wait()
            codes.append(status_code(status))
        yield from queue.close(api)
        for _ in range(nconsumers):
            _, status = yield from api.wait()
            codes.append(status_code(status))
        out["codes"] = codes
        out["items"] = sorted(sum(taken, []))
        out["ne_waiters"] = yield from api.load_word(queue._ne_waiters())
        out["nf_waiters"] = yield from api.load_word(queue._nf_waiters())
        return 0

    out, _ = run_program(main, ncpus=4)
    assert out["codes"] == [0] * (nproducers + nconsumers)
    assert out["items"] == list(range(nproducers * per_producer))
    assert out["ne_waiters"] == 0 and out["nf_waiters"] == 0


# ----------------------------------------------------------------------
# positional I/O syscalls


def test_pread_pwrite_leave_the_fd_offset_alone():
    def main(api, out):
        fd = yield from api.open("/pos", O_RDWR | O_CREAT)
        yield from api.write(fd, b"0123456789abcdef")
        yield from api.lseek(fd, 3, SEEK_SET)

        buf = yield from api.mmap(4096)
        n = yield from api.pread_v(fd, buf, 4, 8)
        out["pread_n"] = n
        out["pread_data"] = bytes((yield from api.load(buf, 4)))

        yield from api.store(buf, b"WXYZ")
        n = yield from api.pwrite_v(fd, buf, 4, 0)
        out["pwrite_n"] = n
        out["offset_after"] = yield from api.lseek(fd, 0, SEEK_CUR)

        yield from api.lseek(fd, 0, SEEK_SET)
        out["contents"] = bytes((yield from api.read(fd, 16)))
        return 0

    out, _ = run_program(main)
    assert out["pread_n"] == 4 and out["pread_data"] == b"89ab"
    assert out["pwrite_n"] == 4
    assert out["offset_after"] == 3
    assert out["contents"] == b"WXYZ456789abcdef"


# ----------------------------------------------------------------------
# weighted histograms


def test_histogram_add_n_matches_repeated_add():
    one, many = Histogram(), Histogram()
    for value, n in ((3, 5), (100, 2), (0, 4), (7000, 1)):
        for _ in range(n):
            one.add(value)
        many.add_n(value, n)
    assert one.count == many.count
    assert one.total == many.total
    assert one.buckets == many.buckets
    assert one.percentile(99) == many.percentile(99)
    many.add_n(5, 0)
    assert many.count == one.count


def test_kstat_observe_n():
    kstat = KstatRegistry()
    kstat.observe_n("kernel", 0, "lat", 64, 10)
    hist = kstat.hist("kernel", 0, "lat")
    assert hist.count == 10 and hist.total == 640


# ----------------------------------------------------------------------
# end-to-end server runs (tiny, tier-1 speed)


def test_server_small_run_is_sane():
    out = run_server(_tiny_cfg(), ncpus=4)
    assert out["completed"] == 1_500
    assert out["verify_failures"] == 0
    assert out["hits"] > 0 and out["misses"] > 0
    assert out["evictions"] > 0
    sim = out["system"]
    assert sim.kstat.get("kernel", 0, "shootdown_pages") > 0
    assert sim.kstat.get("kernel", 0, "server_requests") == 1_500
    hist = sim.kstat.hist("kernel", 0, "request_latency")
    assert hist is not None and hist.count == 1_500
    assert out["p50"] <= out["p95"] <= out["p99"]


def test_server_metrics_do_not_change_the_simulation():
    cfg = _tiny_cfg(nrequests=1_000)
    on = run_server(cfg, ncpus=4)
    off = run_server(cfg, ncpus=4, metrics_enabled=False)
    assert on["sim_now"] == off["sim_now"]
    assert on["completed"] == off["completed"]
    assert on["stats"].latencies == off["stats"].latencies
    assert on["hits"] == off["hits"] and on["misses"] == off["misses"]
    # and the kstat layer really was off
    assert off["system"].kstat.get("kernel", 0, "server_requests") == 0


def test_server_perturbation_changes_schedule_not_load():
    base = run_server(_tiny_cfg(nrequests=1_000), ncpus=4)
    perturbed = run_server(_tiny_cfg(nrequests=1_000), ncpus=4,
                           perturb_seed=3)
    assert perturbed["completed"] == base["completed"] == 1_000
    assert perturbed["offered_per_kcycle"] == base["offered_per_kcycle"]
    assert perturbed["verify_failures"] == 0
    assert perturbed["sim_now"] != base["sim_now"]
