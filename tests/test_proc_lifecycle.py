"""Process lifecycle: fork, wait, exit codes, orphans, exec, sbrk."""


from repro import (
    PR_GETSTACKSIZE,
    PR_MAXPPROCS,
    PR_MAXPROCS,
    PR_SETSTACKSIZE,
    System,
    status_code,
    status_exited,
)
from repro.errors import ECHILD, EINVAL, ENOENT, ENOEXEC, ESRCH
from tests.conftest import run_program


def test_exit_code_reaches_wait():
    def child(api, arg):
        yield from api.exit(42)

    def main(api, out):
        yield from api.fork(child)
        pid, status = yield from api.wait()
        out["code"] = status_code(status)
        out["exited"] = status_exited(status)
        return 0

    out, _ = run_program(main)
    assert out["code"] == 42
    assert out["exited"]


def test_return_value_becomes_exit_code():
    def child(api, arg):
        yield from api.compute(10)
        return 17

    def main(api, out):
        yield from api.fork(child)
        _, status = yield from api.wait()
        out["code"] = status_code(status)
        return 0

    out, _ = run_program(main)
    assert out["code"] == 17


def test_wait_with_no_children_is_echild():
    def main(api, out):
        rc = yield from api.wait()
        out["rc"] = rc
        out["errno"] = yield from api.errno()
        return 0

    out, _ = run_program(main)
    assert out["rc"] == -1
    assert out["errno"] == ECHILD


def test_wait_blocks_until_child_exits():
    def child(api, arg):
        yield from api.compute(50_000)
        return 3

    def main(api, out):
        start = api.now
        yield from api.fork(child)
        _, status = yield from api.wait()
        out["elapsed"] = api.now - start
        out["code"] = status_code(status)
        return 0

    out, _ = run_program(main, ncpus=2)
    assert out["code"] == 3
    assert out["elapsed"] >= 50_000


def test_multiple_children_all_reaped():
    def child(api, n):
        yield from api.compute(n * 100)
        return n

    def main(api, out):
        for n in range(1, 6):
            yield from api.fork(child, n)
        codes = set()
        for _ in range(5):
            _, status = yield from api.wait()
            codes.add(status_code(status))
        out["codes"] = codes
        return 0

    out, _ = run_program(main, ncpus=4)
    assert out["codes"] == {1, 2, 3, 4, 5}


def test_orphans_reparented_to_init():
    """A grandchild orphaned by its parent's exit is inherited by init."""

    def grandchild(api, arg):
        yield from api.compute(100_000)
        return 0

    def child(api, arg):
        yield from api.fork(grandchild)
        return 0  # exits immediately, orphaning the grandchild

    def main(api, out):
        yield from api.fork(child)
        yield from api.wait()  # reap child
        # init is this process (pid 1): the orphan eventually arrives
        _, status = yield from api.wait()
        out["orphan_ok"] = status_exited(status)
        return 0

    out, _ = run_program(main)
    assert out["orphan_ok"]


def test_pids_are_unique_and_increasing():
    def child(api, arg):
        return 0
        yield

    def main(api, out):
        pids = []
        for _ in range(5):
            pid = yield from api.fork(child)
            pids.append(pid)
        for _ in range(5):
            yield from api.wait()
        out["pids"] = pids
        return 0

    out, _ = run_program(main)
    assert out["pids"] == sorted(out["pids"])
    assert len(set(out["pids"])) == 5


def test_getpid_getppid():
    def child(api, out):
        out["child_pid"] = yield from api.getpid()
        out["child_ppid"] = yield from api.getppid()
        return 0

    def main(api, out):
        out["main_pid"] = yield from api.getpid()
        yield from api.fork(child, out)
        yield from api.wait()
        return 0

    out, _ = run_program(main)
    assert out["child_ppid"] == out["main_pid"]
    assert out["child_pid"] != out["main_pid"]


def test_exec_missing_program_fails():
    def main(api, out):
        rc = yield from api.exec("/no/such/prog")
        out["rc"] = rc
        out["errno"] = yield from api.errno()
        return 0

    out, _ = run_program(main)
    assert out["rc"] == -1
    assert out["errno"] == ENOENT


def test_exec_non_executable_is_enoexec():
    def main(api, out):
        fd = yield from api.creat("/plain")
        yield from api.close(fd)
        rc = yield from api.exec("/plain")
        out["errno"] = yield from api.errno()
        return 0

    out, _ = run_program(main)
    assert out["errno"] == ENOEXEC


def test_exec_passes_argument_and_keeps_fds():
    def image(api, arg):
        # the descriptor opened pre-exec must still be valid
        data = yield from api.read(arg, 5)
        return 7 if data == b"hello" else 1

    def execer(api, arg):
        fd = yield from api.open("/f")
        yield from api.exec("/bin/image", fd)
        return 99

    def main(api, out):
        fd = yield from api.creat("/f")
        yield from api.write(fd, b"hello")
        yield from api.close(fd)
        yield from api.fork(execer)
        _, status = yield from api.wait()
        out["code"] = status_code(status)
        return 0

    out = {}
    sim = System(ncpus=2)
    sim.register_program("/bin/image", image)
    sim.spawn(lambda api, a: main(api, out))
    sim.run()
    assert out["code"] == 7


def test_kill_unknown_pid_is_esrch():
    def main(api, out):
        rc = yield from api.kill(4242, 15)
        out["errno"] = yield from api.errno()
        return 0

    out, _ = run_program(main)
    assert out["errno"] == ESRCH


def test_prctl_maxpprocs_is_cpu_count():
    def main(api, out):
        out["ncpu"] = yield from api.prctl(PR_MAXPPROCS)
        out["maxprocs"] = yield from api.prctl(PR_MAXPROCS)
        return 0

    out, _ = run_program(main, ncpus=3)
    assert out["ncpu"] == 3
    assert out["maxprocs"] > 0


def test_prctl_stacksize_roundtrip_and_validation():
    def main(api, out):
        out["default"] = yield from api.prctl(PR_GETSTACKSIZE)
        yield from api.prctl(PR_SETSTACKSIZE, 256 * 1024)
        out["set"] = yield from api.prctl(PR_GETSTACKSIZE)
        rc = yield from api.prctl(PR_SETSTACKSIZE, 16)
        out["too_small"] = rc
        out["errno"] = yield from api.errno()
        return 0

    out, _ = run_program(main)
    assert out["default"] == 1024 * 1024
    assert out["set"] == 256 * 1024
    assert out["too_small"] == -1
    assert out["errno"] == EINVAL


def test_sbrk_grows_and_gives_usable_memory():
    from repro.mem.frames import PAGE_SIZE

    def main(api, out):
        old = yield from api.sbrk(3 * PAGE_SIZE)
        yield from api.store_word(old, 5150)
        out["value"] = yield from api.load_word(old)
        new = yield from api.sbrk(0)
        out["grew"] = new - old
        return 0

    out, _ = run_program(main)
    assert out["value"] == 5150
    assert out["grew"] == 3 * PAGE_SIZE


def test_sbrk_shrink_releases_frames():
    from repro.mem.frames import PAGE_SIZE

    def main(api, out):
        old = yield from api.sbrk(4 * PAGE_SIZE)
        for page in range(4):
            yield from api.store_word(old + page * PAGE_SIZE, page)
        out["allocated_hi"] = api.kernel.machine.frames.allocated
        yield from api.sbrk(-4 * PAGE_SIZE)
        out["allocated_lo"] = api.kernel.machine.frames.allocated
        return 0

    out, _ = run_program(main)
    assert out["allocated_hi"] - out["allocated_lo"] == 4


def test_mmap_munmap_lifecycle():
    def main(api, out):
        base = yield from api.mmap(8192)
        yield from api.store_word(base + 4096, 9)
        yield from api.munmap(base)
        rc = yield from api.munmap(base)  # already gone
        out["second"] = rc
        out["errno"] = yield from api.errno()
        return 0

    out, _ = run_program(main)
    assert out["second"] == -1
    assert out["errno"] == EINVAL


def test_stack_overflow_is_segv():
    """Growing past the prctl stack ceiling must kill the process."""
    from repro import SIGSEGV, status_signal
    from repro.mem.frames import PAGE_SIZE

    def hog(api, arg):
        # touch far below the stack reservation
        from repro.mem import layout

        bad = layout.stack_slot(1, 1024 * 1024) - 4 * 1024 * 1024
        yield from api.store_word(bad, 1)
        return 0

    def main(api, out):
        yield from api.fork(hog)
        _, status = yield from api.wait()
        out["sig"] = status_signal(status)
        return 0

    out, _ = run_program(main)
    assert out["sig"] == SIGSEGV


def test_nice_lowers_priority():
    def main(api, out):
        out["pri"] = yield from api.nice(5)
        return 0

    out, _ = run_program(main)
    assert out["pri"] == 25
