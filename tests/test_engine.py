"""Unit tests for the discrete-event engine."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Engine


def test_events_fire_in_time_order():
    eng = Engine()
    fired = []
    eng.schedule(30, lambda: fired.append("c"))
    eng.schedule(10, lambda: fired.append("a"))
    eng.schedule(20, lambda: fired.append("b"))
    eng.run()
    assert fired == ["a", "b", "c"]
    assert eng.now == 30


def test_same_time_events_fire_in_schedule_order():
    eng = Engine()
    fired = []
    for tag in range(5):
        eng.schedule(7, lambda t=tag: fired.append(t))
    eng.run()
    assert fired == [0, 1, 2, 3, 4]


def test_zero_delay_runs_after_current_cycle_events():
    eng = Engine()
    fired = []
    eng.schedule(0, lambda: fired.append(1))
    eng.call_soon(lambda: fired.append(2))
    eng.run()
    assert fired == [1, 2]


def test_negative_delay_rejected():
    eng = Engine()
    with pytest.raises(SimulationError):
        eng.schedule(-1, lambda: None)


def test_cancelled_event_does_not_fire():
    eng = Engine()
    fired = []
    event = eng.schedule(5, lambda: fired.append("x"))
    event.cancel()
    eng.schedule(6, lambda: fired.append("y"))
    eng.run()
    assert fired == ["y"]


def test_run_until_stops_the_clock():
    eng = Engine()
    fired = []
    eng.schedule(100, lambda: fired.append("late"))
    eng.run(until=50)
    assert fired == []
    assert eng.now == 50
    eng.run()
    assert fired == ["late"]
    assert eng.now == 100


def test_events_scheduled_during_run_are_processed():
    eng = Engine()
    fired = []

    def first():
        fired.append("first")
        eng.schedule(5, lambda: fired.append("second"))

    eng.schedule(1, first)
    eng.run()
    assert fired == ["first", "second"]
    assert eng.now == 6


def test_run_max_events_guard():
    eng = Engine()

    def rearm():
        eng.schedule(1, rearm)

    eng.schedule(1, rearm)
    eng.run(max_events=10)
    assert eng.events_processed == 10


def test_pending_counts_only_live_events():
    eng = Engine()
    keep = eng.schedule(5, lambda: None)
    drop = eng.schedule(5, lambda: None)
    drop.cancel()
    assert eng.pending == 1
    keep.cancel()
    assert eng.pending == 0


def test_step_processes_one_event():
    eng = Engine()
    fired = []
    eng.schedule(1, lambda: fired.append(1))
    eng.schedule(2, lambda: fired.append(2))
    assert eng.step()
    assert fired == [1]
    assert eng.step()
    assert not eng.step()


def test_run_not_reentrant():
    eng = Engine()

    def recurse():
        eng.run()

    eng.schedule(1, recurse)
    with pytest.raises(SimulationError):
        eng.run()
