"""TLB/page-table consistency: the invariant the shootdown protocol buys.

After any workload, no CPU's TLB may hold a translation to a freed frame,
and unmapped ranges must have no translations anywhere.  A violation here
is exactly the "dangling implicit pointer" failure the paper's section
6.2 locking protocol exists to prevent.
"""


from repro import PR_SALL
from repro.errors import SimulationError
from repro.mem.frames import PAGE_SIZE
from tests.conftest import run_program


def assert_tlb_maps_live_frames(sim):
    """Every TLB entry must point at an allocated frame."""
    for cpu in sim.machine.cpus:
        for entry in cpu.tlb.entries():
            try:
                sim.machine.frames.get(entry.pfn)
            except SimulationError:
                raise AssertionError(
                    "CPU%d holds a translation to freed frame %d (%r)"
                    % (cpu.idx, entry.pfn, entry)
                )


def assert_no_translation_for(sim, asid, vlow, vhigh):
    for cpu in sim.machine.cpus:
        for entry in cpu.tlb.entries():
            if entry.asid == asid and vlow <= (entry.vpn << 12) < vhigh:
                raise AssertionError(
                    "stale translation survives for unmapped %#x..%#x: %r"
                    % (vlow, vhigh, entry)
                )


def test_tlb_clean_after_group_map_unmap_storm():
    record = {}

    def member(api, ctx):
        base, npages = ctx
        for page in range(npages):
            yield from api.store_word(base + page * PAGE_SIZE, page)
        return 0

    def main(api, out):
        for _round in range(4):
            base = yield from api.mmap(16 * PAGE_SIZE)
            for _ in range(2):
                yield from api.sproc(member, PR_SALL, (base, 16))
            for _ in range(2):
                yield from api.wait()
            yield from api.munmap(base)
            out.setdefault("ranges", []).append(
                (api.proc.vm.asid, base, base + 16 * PAGE_SIZE)
            )
        return 0

    out, sim = run_program(main, ncpus=4)
    assert_tlb_maps_live_frames(sim)
    for asid, vlow, vhigh in out["ranges"]:
        assert_no_translation_for(sim, asid, vlow, vhigh)


def test_tlb_clean_after_fork_cow_churn():
    def child(api, base):
        for page in range(8):
            yield from api.store_word(base + page * PAGE_SIZE, 0xC0)
        return 0

    def main(api, out):
        base = yield from api.mmap(8 * PAGE_SIZE)
        for page in range(8):
            yield from api.store_word(base + page * PAGE_SIZE, 1)
        for _ in range(3):
            yield from api.fork(child, base)
            # parent keeps writing while children break COW
            for page in range(8):
                yield from api.store_word(base + page * PAGE_SIZE, 2)
            yield from api.wait()
        return 0

    out, sim = run_program(main, ncpus=2)
    assert_tlb_maps_live_frames(sim)


def test_tlb_clean_after_sbrk_shrink_in_group():
    def member(api, arg):
        old = yield from api.sbrk(8 * PAGE_SIZE)
        for page in range(8):
            yield from api.store_word(old + page * PAGE_SIZE, page)
        yield from api.sbrk(-8 * PAGE_SIZE)
        return 0

    def main(api, out):
        # sequential: concurrent sbrk +/- on the one shared data segment
        # would interleave (grow/shrink are whole-group operations)
        for _ in range(2):
            yield from api.sproc(member, PR_SALL)
            yield from api.wait()
        return 0

    out, sim = run_program(main, ncpus=2)
    assert_tlb_maps_live_frames(sim)
    assert sim.stats["shootdowns"] >= 2


def test_no_cross_asid_pollution():
    """Two unrelated processes writing the same virtual addresses must
    end with disjoint (asid-tagged) translations."""

    def toucher(api, tag):
        base = yield from api.mmap(4 * PAGE_SIZE)
        for page in range(4):
            yield from api.store_word(base + page * PAGE_SIZE, tag)
        value = yield from api.load_word(base)
        return 0 if value == tag else 1

    def main(api, out):
        yield from api.fork(toucher, 1)
        yield from api.fork(toucher, 2)
        codes = []
        for _ in range(2):
            _, status = yield from api.wait()
            codes.append(status)
        out["codes"] = codes
        return 0

    out, sim = run_program(main, ncpus=2)
    from repro import status_code

    assert [status_code(s) for s in out["codes"]] == [0, 0]
    assert_tlb_maps_live_frames(sim)


def test_group_members_share_tlb_tag():
    """VM-sharing members run under one ASID, so a member's refill warms
    the TLB for its siblings (the context-switch economy of 6.2)."""

    def member(api, ctx):
        base, record = ctx
        yield from api.store_word(base, api.pid)
        record.append(api.proc.vm.asid)
        return 0

    def main(api, out):
        base = yield from api.mmap(4096)
        record = []
        for _ in range(3):
            yield from api.sproc(member, PR_SALL, (base, record))
        for _ in range(3):
            yield from api.wait()
        record.append(api.proc.vm.asid)
        out["asids"] = record
        return 0

    out, _ = run_program(main, ncpus=2)
    assert len(set(out["asids"])) == 1
