"""Randomized equivalence of every drain loop x event structure.

One generated *script* — a pure-data schedule of events, inline
continuations, cancels (including cancel-after-fire), nested
reschedules, cancel storms that cross the compaction threshold, and
partial drains via ``until`` / ``max_events`` — is executed against all
four {fast, naive} x {heap, wheel} engines.  Every combination must
agree on the full firing log (time and label of every callback), the
final clock, ``events_processed``, and what remains pending.  This is
the randomized backstop behind the workload-level fingerprint tests:
anything the hand-written cases miss, a seedful of scripts won't.
"""

import random

import pytest

from repro.sim.engine import ENGINE_LOOP_MODES, ENGINE_QUEUE_MODES, Engine

MODES = [
    (loop, queue) for loop in ENGINE_LOOP_MODES for queue in ENGINE_QUEUE_MODES
]


def _gen_ops(rng, next_id, depth):
    """A list of pure-data ops; ``children`` run when the parent fires."""
    ops = []
    for _ in range(rng.randrange(1, 6)):
        kind = rng.choices(
            ["schedule", "inline", "cancel"], weights=[6, 3, 3]
        )[0]
        if kind == "cancel":
            # target anything issued so far: pending, fired (must be a
            # no-op), already-cancelled (idempotent), or a forward
            # reference that never resolves (skipped)
            ops.append({"kind": "cancel", "target": rng.randrange(next_id[0] + 2)})
            continue
        oid = next_id[0]
        next_id[0] += 1
        children = (
            _gen_ops(rng, next_id, depth + 1)
            if depth < 2 and rng.random() < 0.35
            else []
        )
        ops.append({
            "kind": kind,
            "id": oid,
            "delay": rng.choice([0, 0, 1, 2, 3, 5, 8, 13, 40, 1000]),
            "children": children,
        })
    return ops


def _gen_script(seed):
    rng = random.Random(seed)
    next_id = [0]
    rounds = []
    for _ in range(rng.randrange(3, 7)):
        ops = _gen_ops(rng, next_id, 0)
        if rng.random() < 0.3:
            # a cancel storm big enough to cross the compaction
            # threshold (>= 64 dead and >= half the structure)
            storm = []
            for _ in range(150):
                oid = next_id[0]
                next_id[0] += 1
                storm.append({
                    "kind": "schedule", "id": oid,
                    "delay": rng.randrange(500, 600), "children": [],
                })
                storm.append({"kind": "cancel", "target": oid})
            ops.extend(storm)
        run = rng.choice([
            ("all", None),
            ("until", rng.randrange(0, 50)),
            ("max", rng.randrange(1, 10)),
        ])
        rounds.append((ops, run))
    rounds.append(([], ("all", None)))  # final full drain
    return rounds


def _execute(script, loop, queue):
    eng = Engine(loop=loop, queue=queue, wheel_width=8)
    log = []
    handles = {}

    def apply_op(op):
        kind = op["kind"]
        if kind == "cancel":
            handle = handles.get(op["target"])
            if handle is not None:
                handle.cancel()
            return
        token = (op["id"], tuple(ch.get("id") for ch in op["children"]))

        def fire(tok, _op=op):
            log.append((eng.now, _op["id"]))
            for child in _op["children"]:
                apply_op(child)

        if kind == "schedule":
            handles[op["id"]] = eng.schedule_call(op["delay"], fire, token)
        else:  # inline continuation: no cancellable handle exists
            eng.resched_inline(op["delay"], fire, token)

    for ops, (mode, arg) in script:
        for op in ops:
            apply_op(op)
        if mode == "all":
            eng.run()
        elif mode == "until":
            eng.run(until=eng.now + arg)
        else:
            eng.run(max_events=arg)
    eng.run()
    return {
        "log": log,
        "now": eng.now,
        "events_processed": eng.events_processed,
        "pending": eng.pending,
    }


@pytest.mark.parametrize("seed", range(12))
def test_all_drains_agree_on_random_scripts(seed):
    script = _gen_script(seed)
    results = {mode: _execute(script, *mode) for mode in MODES}
    reference = results[("fast", "heap")]
    assert reference["pending"] == 0  # the final drain leaves nothing owed
    assert reference["log"], "degenerate script: nothing fired"
    for mode, outcome in results.items():
        assert outcome == reference, "diverged under %s/%s" % mode
