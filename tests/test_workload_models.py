"""The five programming models: correctness and qualitative ordering."""

import pytest

from repro.workloads import (
    MODELS,
    checksum,
    payload,
    run_parallel_sum,
    run_producer_consumer,
    words,
)


@pytest.mark.parametrize("model", MODELS)
def test_stream_model_delivers_verified_data(model):
    metrics = run_producer_consumer(model, nbytes=8 * 1024, chunk=1024)
    assert metrics["bytes"] == 8 * 1024
    assert metrics["cycles"] > 0


@pytest.mark.parametrize("model", MODELS)
def test_parallel_sum_model_correct(model):
    metrics = run_parallel_sum(model, nwords=1024, nworkers=3, ncpus=3)
    assert metrics["cycles"] > 0
    assert metrics["nworkers"] == 3


def test_stream_results_are_deterministic():
    a = run_producer_consumer("share_group", nbytes=8 * 1024, chunk=512)
    b = run_producer_consumer("share_group", nbytes=8 * 1024, chunk=512)
    assert a == b


def test_small_chunk_ordering_matches_paper():
    """At fine granularity the shared-VM models must beat the queueing
    models — the crux of the paper's section 3 argument."""
    cycles = {
        model: run_producer_consumer(model, nbytes=16 * 1024, chunk=128)["cycles"]
        for model in MODELS
    }
    for queueing in ("v7_pipes", "sysv_shm", "bsd_sockets"):
        assert cycles["share_group"] < cycles[queueing]
        assert cycles["mach_threads"] < cycles[queueing]


def test_models_scale_with_transfer_size():
    small = run_producer_consumer("v7_pipes", nbytes=4 * 1024, chunk=512)
    large = run_producer_consumer("v7_pipes", nbytes=16 * 1024, chunk=512)
    assert large["cycles"] > small["cycles"]


def test_sum_more_workers_helps_on_big_machine():
    one = run_parallel_sum("share_group", nwords=4096, nworkers=1, ncpus=4)
    four = run_parallel_sum("share_group", nwords=4096, nworkers=4, ncpus=4)
    assert four["cycles"] < one["cycles"]


def test_generators_are_pure():
    assert payload(100, 7) == payload(100, 7)
    assert payload(100, 7) != payload(100, 8)
    assert words(10, 1) == words(10, 1)
    assert checksum(b"ab") != checksum(b"ba"), "order sensitivity"
