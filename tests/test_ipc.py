"""System V IPC: shared memory, semaphores, message queues."""


from repro import IPC_CREAT, IPC_EXCL, IPC_PRIVATE
from repro.errors import EEXIST, EINVAL, ENOENT
from tests.conftest import run_program


# ----------------------------------------------------------------------
# shared memory


def test_shm_is_shared_across_forked_processes():
    def child(api, key):
        shmid = yield from api.shmget(key, 4096, 0)
        base = yield from api.shmat(shmid)
        value = yield from api.load_word(base)
        yield from api.store_word(base + 4, value * 2)
        return 0

    def main(api, out):
        shmid = yield from api.shmget(77, 4096, IPC_CREAT)
        base = yield from api.shmat(shmid)
        yield from api.store_word(base, 21)
        yield from api.fork(child, 77)
        yield from api.wait()
        out["doubled"] = yield from api.load_word(base + 4)
        return 0

    out, _ = run_program(main)
    assert out["doubled"] == 42


def test_shmget_flags():
    def main(api, out):
        a = yield from api.shmget(5, 4096, IPC_CREAT)
        b = yield from api.shmget(5, 4096, IPC_CREAT)
        out["same"] = a == b
        rc = yield from api.shmget(5, 4096, IPC_CREAT | IPC_EXCL)
        out["excl_errno"] = yield from api.errno()
        rc2 = yield from api.shmget(999, 4096, 0)
        out["missing_errno"] = yield from api.errno()
        priv1 = yield from api.shmget(IPC_PRIVATE, 4096, IPC_CREAT)
        priv2 = yield from api.shmget(IPC_PRIVATE, 4096, IPC_CREAT)
        out["private_distinct"] = priv1 != priv2
        return 0

    out, _ = run_program(main)
    assert out["same"]
    assert out["excl_errno"] == EEXIST
    assert out["missing_errno"] == ENOENT
    assert out["private_distinct"]


def test_shmdt_then_access_is_fatal():
    from repro import SIGSEGV, status_signal

    def child(api, key):
        shmid = yield from api.shmget(key, 4096, 0)
        base = yield from api.shmat(shmid)
        yield from api.shmdt(base)
        yield from api.store_word(base, 1)  # SIGSEGV
        return 0

    def main(api, out):
        yield from api.shmget(9, 4096, IPC_CREAT)
        yield from api.fork(child, 9)
        _, status = yield from api.wait()
        out["sig"] = status_signal(status)
        return 0

    out, _ = run_program(main)
    assert out["sig"] == SIGSEGV


def test_shm_frames_freed_after_rmid_and_detach():
    def main(api, out):
        shmid = yield from api.shmget(IPC_PRIVATE, 8192, IPC_CREAT)
        base = yield from api.shmat(shmid)
        yield from api.store_word(base, 1)
        yield from api.store_word(base + 4096, 1)
        before = api.kernel.machine.frames.allocated
        rc = yield from api._call(api.kernel.sys_shmctl_rmid(api.proc, shmid))
        yield from api.shmdt(base)
        after = api.kernel.machine.frames.allocated
        out["delta"] = before - after
        return 0

    out, _ = run_program(main)
    assert out["delta"] == 2


# ----------------------------------------------------------------------
# semaphores


def test_semop_blocks_until_positive():
    def poster(api, semid):
        yield from api.compute(50_000)
        yield from api.semop(semid, [(0, 1)])
        return 0

    def main(api, out):
        semid = yield from api.semget(IPC_PRIVATE, 1, IPC_CREAT)
        yield from api.fork(poster, semid)
        start = api.now
        yield from api.semop(semid, [(0, -1)])
        out["waited"] = api.now - start
        yield from api.wait()
        return 0

    out, _ = run_program(main, ncpus=2)
    assert out["waited"] >= 40_000


def test_semop_array_is_atomic():
    """[(0,-1),(1,-1)] must not take sem 0 while sem 1 is unavailable."""

    def main(api, out):
        semid = yield from api.semget(IPC_PRIVATE, 2, IPC_CREAT)
        yield from api.semop(semid, [(0, 1)])  # sem0=1, sem1=0

        def taker(api, semid):
            yield from api.semop(semid, [(0, -1), (1, -1)])
            return 0

        pid = yield from api.fork(taker, semid)
        yield from api.compute(30_000)
        # child must still be blocked AND sem0 untouched
        semset = api.kernel.sem.lookup(semid)
        out["sem0_mid"] = semset.values[0]
        yield from api.semop(semid, [(1, 1)])  # now both available
        yield from api.wait()
        out["sem0_end"] = semset.values[0]
        out["sem1_end"] = semset.values[1]
        return 0

    out, _ = run_program(main, ncpus=2)
    assert out["sem0_mid"] == 1, "partial application leaked"
    assert out["sem0_end"] == 0
    assert out["sem1_end"] == 0


def test_sem_pingpong():
    def partner(api, semid):
        for _ in range(10):
            yield from api.semop(semid, [(0, -1)])
            yield from api.semop(semid, [(1, 1)])
        return 0

    def main(api, out):
        semid = yield from api.semget(IPC_PRIVATE, 2, IPC_CREAT)
        yield from api.fork(partner, semid)
        for _ in range(10):
            yield from api.semop(semid, [(0, 1)])
            yield from api.semop(semid, [(1, -1)])
        yield from api.wait()
        out["ok"] = True
        return 0

    out, _ = run_program(main, ncpus=2)
    assert out["ok"]


def test_semop_bad_index_is_einval():
    def main(api, out):
        semid = yield from api.semget(IPC_PRIVATE, 1, IPC_CREAT)
        rc = yield from api.semop(semid, [(5, 1)])
        out["errno"] = yield from api.errno()
        return 0

    out, _ = run_program(main)
    assert out["errno"] == EINVAL


# ----------------------------------------------------------------------
# message queues


def test_msg_type_filtering():
    def main(api, out):
        q = yield from api.msgget(IPC_PRIVATE, IPC_CREAT)
        yield from api.msgsnd(q, 3, b"three")
        yield from api.msgsnd(q, 1, b"one")
        yield from api.msgsnd(q, 2, b"two")
        mtype, data = yield from api.msgrcv(q, 2)
        out["typed"] = (mtype, data)
        mtype, data = yield from api.msgrcv(q, 0)
        out["any"] = (mtype, data)
        return 0

    out, _ = run_program(main)
    assert out["typed"] == (2, b"two")
    assert out["any"] == (3, b"three"), "type 0 takes the FIRST queued"


def test_msgrcv_blocks_until_message():
    def sender(api, q):
        yield from api.compute(40_000)
        yield from api.msgsnd(q, 1, b"finally")
        return 0

    def main(api, out):
        q = yield from api.msgget(IPC_PRIVATE, IPC_CREAT)
        yield from api.fork(sender, q)
        start = api.now
        _, data = yield from api.msgrcv(q)
        out["waited"] = api.now - start
        out["data"] = data
        yield from api.wait()
        return 0

    out, _ = run_program(main, ncpus=2)
    assert out["data"] == b"finally"
    assert out["waited"] >= 30_000


def test_msgsnd_blocks_when_queue_full():
    from repro.ipc.sysv_msg import MSGMNB

    def drainer(api, q):
        yield from api.compute(60_000)
        for _ in range(3):
            yield from api.msgrcv(q)
        return 0

    def main(api, out):
        q = yield from api.msgget(IPC_PRIVATE, IPC_CREAT)
        big = b"x" * (MSGMNB // 2)
        yield from api.msgsnd(q, 1, big)
        yield from api.msgsnd(q, 1, big)  # queue now full
        yield from api.fork(drainer, q)
        start = api.now
        yield from api.msgsnd(q, 1, big)  # must block for the drainer
        out["waited"] = api.now - start
        yield from api.wait()
        return 0

    out, _ = run_program(main, ncpus=2)
    assert out["waited"] >= 40_000


def test_msgsnd_rejects_bad_type():
    def main(api, out):
        q = yield from api.msgget(IPC_PRIVATE, IPC_CREAT)
        rc = yield from api.msgsnd(q, 0, b"bad")
        out["errno"] = yield from api.errno()
        return 0

    out, _ = run_program(main)
    assert out["errno"] == EINVAL
