"""The kernel event tracer."""


from repro import PR_SALL, System
from repro.sim.trace import Tracer


def traced_run(main, ncpus=2, capacity=10_000):
    out = {}
    sim = System(ncpus=ncpus)
    tracer = Tracer.attach(sim.kernel, capacity)
    sim.spawn(main, out)
    sim.run()
    return out, sim, tracer


def test_trace_records_syscalls_with_handler_names():
    def main(api, out):
        yield from api.getpid()
        yield from api.mmap(4096)
        return 0

    out, sim, tracer = traced_run(main)
    names = [event.detail for event in tracer.events("syscall")]
    assert "sys_getpid" in names
    assert "sys_mmap" in names


def test_trace_records_lifecycle_in_order():
    def child(api, arg):
        yield from api.compute(100)
        return 0

    def main(api, out):
        yield from api.sproc(child, PR_SALL)
        yield from api.wait()
        return 0

    out, sim, tracer = traced_run(main)
    kinds = [event.kind for event in tracer.events()]
    assert "sproc" in kinds
    assert "exit" in kinds
    sproc_at = next(e.time for e in tracer.events("sproc"))
    exit_at = max(e.time for e in tracer.events("exit"))
    assert sproc_at < exit_at


def test_trace_records_faults_and_dispatches():
    def main(api, out):
        base = yield from api.mmap(4096)
        yield from api.store_word(base, 1)
        return 0

    out, sim, tracer = traced_run(main)
    assert tracer.count("fault") >= 1
    assert tracer.count("dispatch") >= 1
    fault = tracer.last("fault")
    assert "zero" in fault.detail


def test_trace_records_signals():
    def victim(api, arg):
        yield from api.pause()
        return 0

    def main(api, out):
        from repro import SIGKILL

        pid = yield from api.fork(victim)
        yield from api.compute(10_000)
        yield from api.kill(pid, SIGKILL)
        yield from api.wait()
        return 0

    out, sim, tracer = traced_run(main)
    assert tracer.count("signal") >= 1


def test_ring_bounds_and_drop_count():
    def main(api, out):
        for _ in range(50):
            yield from api.getpid()
        return 0

    out, sim, tracer = traced_run(main, capacity=10)
    assert tracer.count() <= 10
    assert tracer.dropped > 0


def test_filter_by_pid_and_dump():
    def child(api, arg):
        yield from api.getpid()
        return 0

    def main(api, out):
        pid = yield from api.fork(child)
        out["child"] = pid
        yield from api.wait()
        return 0

    out, sim, tracer = traced_run(main)
    child_events = list(tracer.events(pid=out["child"]))
    assert child_events, "child must have traced events"
    text = tracer.dump(limit=5)
    assert text.count("\n") <= 4


def test_tracer_disable_and_clear():
    def main(api, out):
        yield from api.getpid()
        return 0

    out, sim, tracer = traced_run(main)
    assert tracer.count() > 0
    tracer.clear()
    assert tracer.count() == 0
    tracer.enabled = False
    tracer.record("syscall", 1, "x")
    assert tracer.count() == 0
