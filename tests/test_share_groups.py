"""Tests for the paper's core contribution: process share groups.

Each test pins down a behaviour stated in the paper — section references
in the docstrings.
"""


from repro import (
    O_CREAT,
    O_RDWR,
    PR_GETNSHARE,
    PR_GETSHMASK,
    PR_SADDR,
    PR_SALL,
    PR_SFDS,
    PR_UNSHARE,
    SEEK_SET,
    System,
    status_code,
)
from repro.errors import EBADF
from repro.kernel.flags import ALL_SYNC
from tests.conftest import run_program


# ----------------------------------------------------------------------
# group creation and membership


def test_first_sproc_creates_group():
    """Section 5.1: the first sproc() call creates a share group."""

    def child(api, out):
        out["child_nshare"] = yield from api.prctl(PR_GETNSHARE)
        return 0

    def main(api, out):
        out["before"] = yield from api.prctl(PR_GETNSHARE)
        yield from api.sproc(child, PR_SALL, out)
        out["after"] = yield from api.prctl(PR_GETNSHARE)
        yield from api.wait()
        return 0

    out, sim = run_program(main)
    assert out["before"] == 0
    assert out["after"] == 2
    assert out["child_nshare"] == 2
    assert sim.stats["groups_created"] == 1


def test_group_freed_when_last_member_exits():
    def child(api, arg):
        yield from api.compute(100)
        return 0

    def main(api, out):
        yield from api.sproc(child, PR_SALL)
        yield from api.wait()
        return 0

    out, sim = run_program(main)
    assert sim.stats["groups_created"] == 1
    assert sim.stats["groups_freed"] == 1


def test_grandchildren_join_the_same_group():
    """Section 5.1: sproc from any member adds to the parent's group."""

    def grandchild(api, out):
        out["gc_nshare"] = yield from api.prctl(PR_GETNSHARE)
        return 0

    def child(api, out):
        yield from api.sproc(grandchild, PR_SALL, out)
        yield from api.wait()
        return 0

    def main(api, out):
        yield from api.sproc(child, PR_SALL, out)
        yield from api.wait()
        return 0

    out, _ = run_program(main)
    assert out["gc_nshare"] == 3


def test_original_process_shares_everything():
    def main(api, out):
        yield from api.sproc(lambda api, a: iter(()), PR_SADDR)
        out["mask"] = yield from api.prctl(PR_GETSHMASK)
        yield from api.wait()
        return 0

    def noop(api, a):
        return 0
        yield

    def main2(api, out):
        yield from api.sproc(noop, PR_SADDR)
        out["mask"] = yield from api.prctl(PR_GETSHMASK)
        yield from api.wait()
        return 0

    out, _ = run_program(main2)
    assert out["mask"] == 0xFFFF  # PR_SALL


# ----------------------------------------------------------------------
# strict inheritance (section 5.1)


def test_strict_inheritance_of_share_mask():
    """A child can only share what its parent shares."""

    def grandchild(api, out):
        out["gc_mask"] = yield from api.prctl(PR_GETSHMASK)
        return 0

    def child(api, out):
        out["c_mask"] = yield from api.prctl(PR_GETSHMASK)
        # asks for everything, but parent only had SADDR|SFDS
        yield from api.sproc(grandchild, PR_SALL, out)
        yield from api.wait()
        return 0

    def main(api, out):
        yield from api.sproc(child, PR_SADDR | PR_SFDS, out)
        yield from api.wait()
        return 0

    out, _ = run_program(main)
    assert out["c_mask"] == PR_SADDR | PR_SFDS
    assert out["gc_mask"] == PR_SADDR | PR_SFDS


def test_unshare_extension_removes_bits():
    def child(api, out):
        yield from api.prctl(PR_UNSHARE, PR_SFDS)
        out["mask"] = yield from api.prctl(PR_GETSHMASK)
        return 0

    def main(api, out):
        yield from api.sproc(child, PR_SALL, out)
        yield from api.wait()
        return 0

    out, _ = run_program(main)
    assert not out["mask"] & PR_SFDS
    assert out["mask"] & PR_SADDR


# ----------------------------------------------------------------------
# address space sharing (sections 5.1 / 6.2)


def test_vm_sharing_members_see_stores():
    def child(api, base):
        yield from api.store_word(base, 0xC0FFEE)
        return 0

    def main(api, out):
        base = yield from api.mmap(4096)
        yield from api.sproc(child, PR_SALL, base)
        yield from api.wait()
        out["value"] = yield from api.load_word(base)
        return 0

    out, _ = run_program(main)
    assert out["value"] == 0xC0FFEE


def test_non_vm_sharing_member_gets_cow_copy():
    """Section 5.1: without PR_SADDR the child sees a copy-on-write image."""

    def child(api, base):
        seen = yield from api.load_word(base)
        yield from api.store_word(base, 222)
        return 0 if seen == 111 else 1

    def main(api, out):
        base = yield from api.mmap(4096)
        yield from api.store_word(base, 111)
        yield from api.sproc(child, PR_SALL & ~PR_SADDR, base)
        pid, status = yield from api.wait()
        out["child_ok"] = status_code(status) == 0
        out["parent_view"] = yield from api.load_word(base)
        return 0

    out, _ = run_program(main)
    assert out["child_ok"], "child must see the pre-sproc value"
    assert out["parent_view"] == 111, "child's write must not leak back"


def test_child_stack_visible_to_group():
    """Section 5.1: 'This new stack is visible to all other processes in
    the share group.'"""

    def child(api, ctl):
        # Publish an address *within the child's own stack region* by
        # storing a marker there and telling the parent where it is.
        from repro.mem.region import RegionType

        stack = next(
            pregion
            for pregion, shared in api.proc.vm.iter_pregions()
            if pregion.rtype is RegionType.STACK and shared
            and pregion.contains(pregion.vhigh - 8)
        )
        spot = stack.vhigh - 64
        yield from api.store_word(spot, 0xBEEF)
        yield from api.store_word(ctl, spot)
        while (yield from api.load_word(ctl + 4)) == 0:
            yield from api.yield_cpu()
        return 0

    def main(api, out):
        ctl = yield from api.mmap(4096)
        yield from api.sproc(child, PR_SALL, ctl)
        while True:
            spot = yield from api.load_word(ctl)
            if spot:
                break
            yield from api.yield_cpu()
        out["marker"] = yield from api.load_word(spot)
        yield from api.store_word(ctl + 4, 1)
        yield from api.wait()
        return 0

    out, _ = run_program(main, ncpus=2)
    assert out["marker"] == 0xBEEF


def test_mmap_by_one_member_immediately_visible():
    """Section 6.2: a new pregion is immediately seen by all members."""

    def child(api, ctl):
        base = yield from api.mmap(4096)
        yield from api.store_word(base, 77)
        yield from api.store_word(ctl, base)
        while (yield from api.load_word(ctl + 4)) == 0:
            yield from api.yield_cpu()
        return 0

    def main(api, out):
        ctl = yield from api.mmap(4096)
        yield from api.sproc(child, PR_SALL, ctl)
        while True:
            base = yield from api.load_word(ctl)
            if base:
                break
            yield from api.yield_cpu()
        out["value"] = yield from api.load_word(base)
        yield from api.store_word(ctl + 4, 1)
        yield from api.wait()
        return 0

    out, _ = run_program(main, ncpus=2)
    assert out["value"] == 77


def test_region_shrink_performs_shootdown():
    """Section 6.2: shrinking shared space flushes all TLBs synchronously."""

    def child(api, arg):
        yield from api.compute(200_000)
        return 0

    def main(api, out):
        base = yield from api.mmap(16 * 4096)
        yield from api.store_word(base, 1)
        yield from api.sproc(child, PR_SALL)
        yield from api.munmap(base)
        yield from api.wait()
        return 0

    out, sim = run_program(main)
    assert sim.stats["shootdowns"] >= 1
    assert sim.machine.shootdowns >= 1


def test_prda_is_private_per_member():
    """Section 5.1: the PRDA stays private so errno etc. works."""
    from repro.runtime.prda import PRDA_USER

    def child(api, ctl):
        yield from api.store_word(PRDA_USER, 42)
        yield from api.store_word(ctl, 1)
        while (yield from api.load_word(ctl + 4)) == 0:
            yield from api.yield_cpu()
        return 0

    def main(api, out):
        ctl = yield from api.mmap(4096)
        yield from api.store_word(PRDA_USER, 7)
        yield from api.sproc(child, PR_SALL, ctl)
        while (yield from api.load_word(ctl)) == 0:
            yield from api.yield_cpu()
        out["mine"] = yield from api.load_word(PRDA_USER)
        yield from api.store_word(ctl + 4, 1)
        yield from api.wait()
        return 0

    out, _ = run_program(main, ncpus=2)
    assert out["mine"] == 7, "child's PRDA store must not be visible"


def test_errno_lives_in_prda_per_process():
    """Two members fail different syscalls; each sees its own errno."""

    def child(api, out):
        rc = yield from api.close(55)  # EBADF
        out["child_rc"] = rc
        out["child_errno"] = yield from api.errno()
        return 0

    def main(api, out):
        yield from api.sproc(child, PR_SALL, out)
        yield from api.wait()
        out["parent_errno"] = yield from api.errno()
        return 0

    out, _ = run_program(main)
    assert out["child_rc"] == -1
    assert out["child_errno"] == EBADF
    assert out["parent_errno"] == 0, "parent never failed a call"


# ----------------------------------------------------------------------
# descriptor sharing (sections 4 / 6.3)


def test_open_propagates_to_sharing_members():
    def opener(api, out):
        fd = yield from api.open("/shared.dat", O_RDWR | O_CREAT)
        yield from api.write(fd, b"group data")
        out["fd"] = fd
        return 0

    def reader(api, out):
        yield from api.getpid()  # any kernel entry triggers the sync
        fd = out["fd"]
        yield from api.lseek(fd, 0, SEEK_SET)
        out["data"] = yield from api.read(fd, 64)
        return 0

    def main(api, out):
        yield from api.sproc(opener, PR_SALL, out)
        yield from api.wait()
        yield from api.sproc(reader, PR_SALL, out)
        yield from api.wait()
        return 0

    out, _ = run_program(main)
    assert out["data"] == b"group data"


def test_close_propagates_too():
    def closer(api, fd):
        yield from api.close(fd)
        return 0

    def main(api, out):
        fd = yield from api.open("/f", O_RDWR | O_CREAT)
        yield from api.sproc(closer, PR_SALL, fd)
        yield from api.wait()
        rc = yield from api.read(fd, 4)
        out["rc"] = rc
        out["errno"] = yield from api.errno()
        return 0

    out, _ = run_program(main)
    assert out["rc"] == -1
    assert out["errno"] == EBADF


def test_shared_descriptor_offset_is_common():
    """Footnote 2 / section 4: sharing the descriptor shares the offset."""

    def child(api, fd):
        yield from api.read(fd, 4)  # advance the shared offset
        return 0

    def main(api, out):
        fd = yield from api.open("/f", O_RDWR | O_CREAT)
        yield from api.write(fd, b"abcdefgh")
        yield from api.lseek(fd, 0, SEEK_SET)
        yield from api.sproc(child, PR_SALL, fd)
        yield from api.wait()
        out["rest"] = yield from api.read(fd, 8)
        return 0

    out, _ = run_program(main)
    assert out["rest"] == b"efgh"


def test_nonsharing_member_not_affected_by_open():
    """A member created without PR_SFDS keeps its own descriptor table."""

    def loner(api, ctl):
        yield from api.store_word(ctl, 1)  # ready
        while (yield from api.load_word(ctl + 4)) == 0:
            yield from api.yield_cpu()
        yield from api.getpid()  # kernel entry; must NOT import the fd
        rc = yield from api.read(3, 4)
        return 0 if rc == -1 else 1

    def main(api, out):
        ctl = yield from api.mmap(4096)
        yield from api.sproc(loner, PR_SALL & ~PR_SFDS, ctl)
        while (yield from api.load_word(ctl)) == 0:
            yield from api.yield_cpu()
        fd = yield from api.open("/f", O_RDWR | O_CREAT)  # becomes fd 3? no: fd 0
        out["fd"] = fd
        yield from api.store_word(ctl + 4, 1)
        pid, status = yield from api.wait()
        out["loner_ok"] = status_code(status) == 0
        return 0

    out, _ = run_program(main, ncpus=2)
    assert out["loner_ok"]


# ----------------------------------------------------------------------
# directory / id / umask / ulimit sharing (section 6.3)


def test_chdir_propagates_to_group():
    def mover(api, arg):
        yield from api.chdir("/sub")
        return 0

    def main(api, out):
        yield from api.mkdir("/sub")
        fd = yield from api.open("/sub/x", O_RDWR | O_CREAT)
        yield from api.close(fd)
        yield from api.sproc(mover, PR_SALL)
        yield from api.wait()
        # relative lookup now resolves in /sub
        st = yield from api.stat("x")
        out["found"] = st != -1
        return 0

    out, _ = run_program(main)
    assert out["found"]


def test_setuid_propagates_to_group():
    def changer(api, arg):
        yield from api.setuid(0)  # root can setuid; stays 0... use gid
        yield from api.setgid(55)
        return 0

    def main(api, out):
        yield from api.sproc(changer, PR_SALL)
        yield from api.wait()
        out["gid"] = yield from api.getgid()
        return 0

    out, _ = run_program(main)
    assert out["gid"] == 55


def test_umask_propagates_to_group():
    def changer(api, arg):
        yield from api.umask(0o077)
        return 0

    def main(api, out):
        yield from api.sproc(changer, PR_SALL)
        yield from api.wait()
        fd = yield from api.open("/newfile", O_RDWR | O_CREAT, 0o666)
        st = yield from api.stat("/newfile")
        out["mode"] = st["mode"]
        return 0

    out, _ = run_program(main)
    assert out["mode"] == 0o600


def test_ulimit_propagates_to_group():
    def changer(api, arg):
        yield from api.ulimit(2, 100)  # lower the write limit to 100 bytes
        return 0

    def main(api, out):
        yield from api.sproc(changer, PR_SALL)
        yield from api.wait()
        fd = yield from api.open("/big", O_RDWR | O_CREAT)
        rc = yield from api.write(fd, b"x" * 200)
        out["rc"] = rc
        return 0

    out, _ = run_program(main)
    assert out["rc"] == -1, "write beyond the group ulimit must fail"


def test_sync_bits_cleared_after_entry():
    def opener(api, arg):
        fd = yield from api.open("/f", O_RDWR | O_CREAT)
        return 0

    def main(api, out):
        yield from api.sproc(opener, PR_SALL)
        yield from api.wait()
        proc = api.proc
        out["bits_before"] = proc.p_flag & ALL_SYNC
        yield from api.getpid()
        out["bits_after"] = proc.p_flag & ALL_SYNC
        return 0

    out, _ = run_program(main)
    assert out["bits_before"] != 0
    assert out["bits_after"] == 0


# ----------------------------------------------------------------------
# leaving the group


def test_exec_removes_from_group():
    def fresh(api, arg):
        n = yield from api.prctl(PR_GETNSHARE)
        return n  # exit code = group size seen after exec

    def execer(api, arg):
        yield from api.exec("/bin/fresh")
        return 99

    def main(api, out):
        yield from api.sproc(execer, PR_SALL)
        pid, status = yield from api.wait()
        out["code"] = status_code(status)
        return 0

    out = {}
    sim = System(ncpus=2)
    sim.register_program("/bin/fresh", fresh)
    sim.spawn(lambda api, a: main(api, out))
    sim.run()
    assert out["code"] == 0, "exec'd image must not be in the group"


def test_fork_child_is_outside_group():
    def forked(api, out):
        out["forked_nshare"] = yield from api.prctl(PR_GETNSHARE)
        return 0

    def member(api, out):
        yield from api.fork(forked, out)
        yield from api.wait()
        return 0

    def main(api, out):
        yield from api.sproc(member, PR_SALL, out)
        yield from api.wait()
        return 0

    out, _ = run_program(main)
    assert out["forked_nshare"] == 0


def test_fork_from_group_gets_cow_of_shared_regions():
    def forked(api, base):
        value = yield from api.load_word(base)
        yield from api.store_word(base, 999)
        return 0 if value == 5 else 1

    def member(api, ctx):
        out, base = ctx
        pid = yield from api.fork(forked, base)
        _, status = yield from api.wait()
        out["fork_ok"] = status_code(status) == 0
        out["after"] = yield from api.load_word(base)
        return 0

    def main(api, out):
        base = yield from api.mmap(4096)
        yield from api.store_word(base, 5)
        yield from api.sproc(member, PR_SALL, (out, base))
        yield from api.wait()
        return 0

    out, _ = run_program(main)
    assert out["fork_ok"]
    assert out["after"] == 5, "forked child's write must stay private"


# ----------------------------------------------------------------------
# PR_BLOCKGRP / PR_UNBLKGRP racing exits and unshares: the
# other_members snapshot may name procs that are no longer live members


def test_blockgrp_tolerates_exited_and_detached_members(monkeypatch):
    """Force the stale-snapshot race deterministically: other_members
    hands back a reaped member and one that unshared itself out of the
    group.  Both must be skipped — blocking a non-member (or erroring on
    a dead pid) would be wrong — while the real member still blocks."""
    from repro.share.prctl import PR_BLOCKGRP, PR_UNBLKGRP
    from repro.share.shaddr import SharedAddressBlock

    stale = {}
    probes = {}
    original = SharedAddressBlock.other_members

    def with_stale(self, proc):
        members = original(self, proc)
        members.extend(
            p for p in stale.values() if p is not None and p is not proc
        )
        return members

    monkeypatch.setattr(SharedAddressBlock, "other_members", with_stale)

    def quick_exit(api, arg):
        stale["dead"] = api.proc
        yield from api.getpid()
        return 0

    def detacher(api, arg):
        done_w, park_r = arg
        stale["detached"] = api.proc
        yield from api.prctl(PR_UNSHARE, PR_SALL)  # leaves the group
        yield from api.write(done_w, b"d")
        yield from api.read(park_r, 1)  # alive and groupless while parked
        return 0

    def parked(api, base):
        probes["parked"] = api.proc
        while True:
            value = yield from api.load_word(base)
            if value:
                return 0
            yield from api.yield_cpu()

    def main(api, out):
        base = yield from api.mmap(4096)
        done = yield from api.pipe()
        park = yield from api.pipe()
        yield from api.sproc(quick_exit, PR_SALL)
        yield from api.wait()  # reap: the proc-table entry is gone
        yield from api.sproc(parked, PR_SALL, base)
        yield from api.sproc(detacher, PR_SALL, (done[1], park[0]))
        yield from api.read(done[0], 1)  # detacher has left the group
        out["rc_block"] = yield from api.prctl(PR_BLOCKGRP)
        out["parked_bc"] = probes["parked"].block_count
        out["detached_bc"] = stale["detached"].block_count
        out["rc_unblock"] = yield from api.prctl(PR_UNBLKGRP)
        yield from api.store_word(base, 1)  # release the parked member
        yield from api.write(park[1], b"g")  # release the detacher
        yield from api.wait()
        yield from api.wait()
        return 0

    out, sim = run_program(main, ncpus=2)
    assert out["rc_block"] == 0, "stale snapshot entries must not error"
    assert out["rc_unblock"] == 0
    assert out["parked_bc"] == -1, "the live member really was blocked"
    assert out["detached_bc"] == 0, "a detached proc must never be blocked"
    assert stale["dead"].block_count == 0


def test_blockgrp_races_member_exit_and_unshare_live():
    """Members exit and unshare concurrently with repeated block/unblock
    sweeps; every sweep must complete cleanly regardless of timing."""
    from repro.share.prctl import PR_BLOCKGRP, PR_UNBLKGRP

    def short_lived(api, arg):
        yield from api.compute(500)
        return 0

    def self_unsharer(api, arg):
        yield from api.compute(200)
        yield from api.prctl(PR_UNSHARE, PR_SALL)
        yield from api.compute(200)
        return 0

    def main(api, out):
        started = 0
        for entry in (short_lived, short_lived, self_unsharer, self_unsharer):
            pid = yield from api.sproc(entry, PR_SALL)
            if pid != -1:
                started += 1
        rcs = []
        for _ in range(6):
            rc = yield from api.prctl(PR_BLOCKGRP)
            rcs.append(rc)
            rc = yield from api.prctl(PR_UNBLKGRP)
            rcs.append(rc)
            yield from api.yield_cpu()
        for _ in range(started):
            yield from api.wait()
        out["rcs"] = rcs
        return 0

    out, sim = run_program(main, ncpus=2, lockdep=True)
    assert out["rcs"] == [0] * 12
    assert sim.lockdep.violations == []
