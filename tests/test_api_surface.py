"""The public API surface: docs/API.md must not drift from the code."""

import inspect


import repro
from repro.kernel.syscalls import UserAPI


PAPER_CALLS = {"sproc", "prctl"}
PROCESS_CALLS = {
    "fork", "exec", "exit", "wait", "getpid", "getppid", "nice",
    "kill", "signal", "pause", "alarm", "blockproc", "unblockproc",
}
VM_CALLS = {
    "sbrk", "mmap", "munmap", "load", "store", "load_word", "store_word",
    "cas", "fetch_add", "compute", "yield_cpu", "uwait", "uwake",
}
FILE_CALLS = {
    "open", "creat", "close", "read", "write", "read_v", "write_v",
    "pread_v", "pwrite_v",
    "lseek", "dup", "dup2", "pipe", "mkdir", "unlink", "link",
    "ftruncate", "readdir", "stat", "fstat", "chdir", "chroot",
    "umask", "ulimit", "errno",
}
ID_CALLS = {"getuid", "setuid", "getgid", "setgid"}
IPC_CALLS = {
    "shmget", "shmat", "shmdt", "shm_rmid", "semget", "semop",
    "msgget", "msgsnd", "msgrcv", "socket", "socketpair", "bind",
    "listen", "connect", "accept", "send", "recv", "sendfd", "recvfd",
    "thread_create", "thread_join",
}

ALL_CALLS = PAPER_CALLS | PROCESS_CALLS | VM_CALLS | FILE_CALLS | ID_CALLS | IPC_CALLS

#: User-mode memory instructions return the kernel generator directly
#: instead of wrapping it in their own generator frame — ``yield from``
#: delegation and the returned value are identical, one host frame
#: cheaper per effect.  The contract callers rely on (``yield from
#: api.X(...)``) holds for both shapes.
DELEGATING_CALLS = {"load", "store", "load_word", "store_word", "cas", "fetch_add"}


def test_every_documented_call_exists_and_is_yield_from_able():
    for name in sorted(ALL_CALLS):
        method = getattr(UserAPI, name, None)
        assert method is not None, "missing api.%s" % name
        if name in DELEGATING_CALLS:
            assert inspect.isfunction(method) and not inspect.isgeneratorfunction(
                method
            ), "api.%s should delegate (plain function returning a generator)" % name
        else:
            assert inspect.isgeneratorfunction(method), (
                "api.%s must be a generator function" % name
            )


def test_delegating_calls_return_generators():
    """The delegating stubs must hand back a real generator object."""
    import repro

    sim = repro.System(ncpus=1)
    proc = sim.kernel.procs[0] if getattr(sim.kernel, "procs", None) else None
    api = UserAPI(sim.kernel, proc)
    gen = api.load_word(0)
    assert inspect.isgenerator(gen)
    gen.close()
    gen = api.store(0, b"xy")
    assert inspect.isgenerator(gen)
    gen.close()


def test_every_public_method_is_documented_here():
    """New API methods must be added to docs/API.md (and this list)."""
    public = {
        name
        for name, member in vars(UserAPI).items()
        if not name.startswith("_") and inspect.isfunction(member)
    }
    undocumented = public - ALL_CALLS
    assert not undocumented, "document these in docs/API.md: %s" % sorted(
        undocumented
    )


def test_package_all_resolves():
    for name in repro.__all__:
        assert hasattr(repro, name), name


def test_share_mask_bits_are_distinct_and_within_sall():
    from repro import (
        PR_SADDR, PR_SALL, PR_SDIR, PR_SFDS, PR_SID, PR_SULIMIT, PR_SUMASK,
    )

    bits = [PR_SADDR, PR_SULIMIT, PR_SUMASK, PR_SDIR, PR_SFDS, PR_SID]
    assert len({bit for bit in bits}) == len(bits)
    combined = 0
    for bit in bits:
        assert bit & combined == 0, "share mask bits overlap"
        combined |= bit
        assert bit & PR_SALL == bit, "every resource bit is inside PR_SALL"


def test_prctl_option_codes_are_distinct():
    from repro.share import prctl as prctl_mod

    codes = [
        value
        for name, value in vars(prctl_mod).items()
        if name.startswith("PR_") and isinstance(value, int)
        and name != "PR_SADDR"  # a share-mask bit imported for a check
    ]
    assert len(set(codes)) == len(codes)


def test_paper_spelling_alias():
    from repro import PR_FDS, PR_SFDS

    assert PR_FDS == PR_SFDS


def test_every_public_module_has_a_docstring():
    import importlib
    import pkgutil

    missing = []
    package = importlib.import_module("repro")
    for info in pkgutil.walk_packages(package.__path__, "repro."):
        module = importlib.import_module(info.name)
        if not (module.__doc__ or "").strip():
            missing.append(info.name)
    assert not missing, "modules without docstrings: %s" % missing
