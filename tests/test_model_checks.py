"""Model-checking style tests: safety under randomized schedules.

These drive primitives with hypothesis-chosen interleavings and assert
safety invariants that must hold in *every* schedule, not just the ones
the deterministic workloads happen to produce.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro import PR_SALL, System
from repro.mem.frames import PAGE_SIZE
from repro.sim.costs import CostModel
from repro.sim.machine import Machine
from repro.sync.sharedlock import SharedReadLock
from repro.workloads import generators as gen


# ----------------------------------------------------------------------
# shared read lock: safety under random step interleavings


class _Waker:
    def wakeup(self, proc):
        proc.runnable = True


class _P:
    SLEEPING = "sleeping"

    def __init__(self, name):
        self.name = name
        self.state = None
        self.sleeping_on = None
        self.sleep_interruptible = False
        self.resume_value = None
        self.runnable = True
        self.gen = None
        self.done = False


def _stepper(lock, proc, kind, in_critical, log):
    """One actor: acquire -> mark critical -> release, as a generator."""
    if kind == "reader":
        yield from lock.acquire_read(proc)
        in_critical["readers"] += 1
        log.append(("reader-in", in_critical.copy()))
        yield None  # a schedule point inside the critical section
        in_critical["readers"] -= 1
        yield from lock.release_read(proc)
    else:
        yield from lock.acquire_update(proc)
        in_critical["updaters"] += 1
        log.append(("updater-in", in_critical.copy()))
        yield None
        in_critical["updaters"] -= 1
        yield from lock.release_update(proc)
    proc.done = True


@settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    st.lists(st.sampled_from(["reader", "reader", "updater"]), min_size=1, max_size=6),
    st.lists(st.integers(0, 5), min_size=1, max_size=200),
)
def test_sharedlock_safety_under_random_schedules(kinds, schedule):
    """In no interleaving may an updater overlap anyone else."""
    from repro.sim.effects import Block

    machine = Machine(ncpus=1)
    lock = SharedReadLock(machine, _Waker())
    in_critical = {"readers": 0, "updaters": 0}
    log = []
    procs = []
    for index, kind in enumerate(kinds):
        proc = _P("p%d" % index)
        proc.gen = _stepper(lock, proc, kind, in_critical, log)
        procs.append(proc)

    def step(proc):
        if proc.done or not proc.runnable:
            return
        try:
            effect = proc.gen.send(None)
        except StopIteration:
            proc.done = True
            return
        if isinstance(effect, Block):
            proc.runnable = False  # until a wakeup flips it back

    # drive by the random schedule, then round-robin to completion
    for choice in schedule:
        step(procs[choice % len(procs)])
    for _ in range(10_000):
        if all(proc.done for proc in procs):
            break
        for proc in procs:
            step(proc)
    assert all(proc.done for proc in procs), "lock starved a stub schedule"
    for _what, snapshot in log:
        if snapshot["updaters"]:
            assert snapshot["updaters"] == 1
            assert snapshot["readers"] == 0, "updater overlapped readers"


# ----------------------------------------------------------------------
# TLB capacity pressure


def test_tlb_pressure_correctness_and_hit_rate():
    """A working set far beyond TLB capacity stays correct; the hit rate
    visibly collapses versus a cache-resident working set."""

    def walker(api, ctx):
        base, npages, rounds = ctx
        for round_number in range(rounds):
            for page in range(npages):
                yield from api.store_word(
                    base + page * PAGE_SIZE, round_number * npages + page
                )
        # verify last round's values
        ok = True
        for page in range(npages):
            value = yield from api.load_word(base + page * PAGE_SIZE)
            if value != (rounds - 1) * npages + page:
                ok = False
        return 0 if ok else 1

    def run(npages, capacity):
        out = {}

        def main(api, out_dict):
            base = yield from api.mmap(npages * PAGE_SIZE)
            code = yield from walker(api, (base, npages, 4))
            out_dict["code"] = code
            return 0

        sim = System(ncpus=1, tlb_capacity=capacity)
        sim.spawn(main, out)
        sim.run()
        tlb = sim.machine.cpus[0].tlb
        return out["code"], tlb.hit_rate

    small_code, small_rate = run(npages=8, capacity=64)
    big_code, big_rate = run(npages=256, capacity=16)
    assert small_code == 0 and big_code == 0, "pressure must not corrupt data"
    assert small_rate > 0.75  # only the cold-start misses
    assert big_rate < 0.5, "a thrashing working set must miss (got %.2f)" % big_rate
    assert small_rate > big_rate + 0.25


def test_group_under_tiny_tlb_still_correct():
    def member(api, ctx):
        base, stride = ctx
        for index in range(64):
            yield from api.fetch_add(base + (index % 32) * stride, 1)
        return 0

    def main(api, out):
        base = yield from api.mmap(32 * PAGE_SIZE)
        for _ in range(3):
            yield from api.sproc(member, PR_SALL, (base, PAGE_SIZE))
        for _ in range(3):
            yield from api.wait()
        total = 0
        for index in range(32):
            total += yield from api.load_word(base + index * PAGE_SIZE)
        out["total"] = total
        return 0

    out = {}
    sim = System(ncpus=2, tlb_capacity=4)  # brutally small
    sim.spawn(main, out)
    sim.run()
    assert out["total"] == 3 * 64


# ----------------------------------------------------------------------
# cost-model robustness: timing changes, answers do not


@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(st.integers(1, 2**31))
def test_results_invariant_under_random_cost_models(seed):
    rng = gen.lcg(seed)

    def pick(low, high):
        return low + next(rng) % (high - low + 1)

    costs = CostModel(
        mem_access=pick(1, 100),
        syscall_entry=pick(10, 500),
        syscall_exit=pick(10, 400),
        context_switch=pick(100, 5000),
        quantum=pick(10_000, 200_000),
        page_zero=pick(100, 3000),
        disk_latency=pick(1000, 50_000),
        spin_poll=pick(1, 40),
    )

    def member(api, base):
        for _ in range(20):
            yield from api.fetch_add(base, 1)
        return 0

    def main(api, out):
        base = yield from api.mmap(4096)
        for _ in range(3):
            yield from api.sproc(member, PR_SALL, base)
        for _ in range(3):
            yield from api.wait()
        out["count"] = yield from api.load_word(base)
        return 0

    out = {}
    sim = System(ncpus=3, costs=costs)
    sim.spawn(main, out)
    sim.run()
    assert out["count"] == 60, "cost constants must never change answers"
