"""Unit tests for the software-managed TLB."""

from repro.sim.tlb import TLB


def test_miss_then_hit():
    tlb = TLB(4)
    assert tlb.lookup(1, 0x100) is None
    tlb.insert(1, 0x100, 7, writable=True)
    entry = tlb.lookup(1, 0x100)
    assert entry is not None
    assert entry.pfn == 7
    assert entry.writable
    assert tlb.hits == 1
    assert tlb.misses == 1


def test_asid_keys_are_distinct():
    tlb = TLB(4)
    tlb.insert(1, 0x100, 7, writable=True)
    assert tlb.lookup(2, 0x100) is None


def test_fifo_eviction_at_capacity():
    tlb = TLB(2)
    tlb.insert(1, 0x1, 10, True)
    tlb.insert(1, 0x2, 11, True)
    tlb.insert(1, 0x3, 12, True)  # evicts vpn 0x1
    assert tlb.probe(1, 0x1) is None
    assert tlb.probe(1, 0x2) is not None
    assert tlb.probe(1, 0x3) is not None
    assert len(tlb) == 2


def test_reinsert_updates_in_place():
    tlb = TLB(2)
    tlb.insert(1, 0x1, 10, True)
    tlb.insert(1, 0x1, 20, False)
    assert len(tlb) == 1
    entry = tlb.probe(1, 0x1)
    assert entry.pfn == 20
    assert not entry.writable


def test_flush_all():
    tlb = TLB(8)
    tlb.insert(1, 0x1, 1, True)
    tlb.insert(2, 0x2, 2, True)
    tlb.flush_all()
    assert len(tlb) == 0
    assert tlb.flushes == 1


def test_flush_asid_is_selective():
    tlb = TLB(8)
    tlb.insert(1, 0x1, 1, True)
    tlb.insert(1, 0x2, 2, True)
    tlb.insert(2, 0x3, 3, True)
    tlb.flush_asid(1)
    assert tlb.probe(1, 0x1) is None
    assert tlb.probe(1, 0x2) is None
    assert tlb.probe(2, 0x3) is not None


def test_flush_page_and_range():
    tlb = TLB(8)
    for vpn in range(4):
        tlb.insert(1, vpn, vpn + 10, True)
    tlb.flush_page(1, 2)
    assert tlb.probe(1, 2) is None
    tlb.flush_range(1, 0, 2)
    assert tlb.probe(1, 0) is None
    assert tlb.probe(1, 1) is None
    assert tlb.probe(1, 3) is not None


def test_flush_range_counts_like_its_siblings():
    # regression: flush_range used to skip the flushes counter, so
    # region-shrink shootdowns undercounted in System.metrics()
    tlb = TLB(8)
    for vpn in range(4):
        tlb.insert(1, vpn, vpn + 10, True)
    tlb.flush_range(1, 0, 2)
    assert tlb.flushes == 1
    tlb.flush_range(1, 100, 200)  # empty range still counts as a flush op
    assert tlb.flushes == 2
    tlb.flush_asid(1)
    tlb.flush_all()
    assert tlb.flushes == 4


def test_hit_rate():
    tlb = TLB(8)
    tlb.insert(1, 0x1, 1, True)
    tlb.lookup(1, 0x1)
    tlb.lookup(1, 0x2)
    assert tlb.hit_rate == 0.5
