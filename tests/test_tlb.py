"""Unit tests for the software-managed TLB."""

from repro.sim.tlb import TLB


def test_miss_then_hit():
    tlb = TLB(4)
    assert tlb.lookup(1, 0x100) is None
    tlb.insert(1, 0x100, 7, writable=True)
    entry = tlb.lookup(1, 0x100)
    assert entry is not None
    assert entry.pfn == 7
    assert entry.writable
    assert tlb.hits == 1
    assert tlb.misses == 1


def test_asid_keys_are_distinct():
    tlb = TLB(4)
    tlb.insert(1, 0x100, 7, writable=True)
    assert tlb.lookup(2, 0x100) is None


def test_fifo_eviction_at_capacity():
    tlb = TLB(2)
    tlb.insert(1, 0x1, 10, True)
    tlb.insert(1, 0x2, 11, True)
    tlb.insert(1, 0x3, 12, True)  # evicts vpn 0x1
    assert tlb.probe(1, 0x1) is None
    assert tlb.probe(1, 0x2) is not None
    assert tlb.probe(1, 0x3) is not None
    assert len(tlb) == 2


def test_reinsert_updates_in_place():
    tlb = TLB(2)
    tlb.insert(1, 0x1, 10, True)
    tlb.insert(1, 0x1, 20, False)
    assert len(tlb) == 1
    entry = tlb.probe(1, 0x1)
    assert entry.pfn == 20
    assert not entry.writable


def test_flush_all():
    tlb = TLB(8)
    tlb.insert(1, 0x1, 1, True)
    tlb.insert(2, 0x2, 2, True)
    tlb.flush_all()
    assert len(tlb) == 0
    assert tlb.flushes == 1


def test_flush_asid_is_selective():
    tlb = TLB(8)
    tlb.insert(1, 0x1, 1, True)
    tlb.insert(1, 0x2, 2, True)
    tlb.insert(2, 0x3, 3, True)
    tlb.flush_asid(1)
    assert tlb.probe(1, 0x1) is None
    assert tlb.probe(1, 0x2) is None
    assert tlb.probe(2, 0x3) is not None


def test_flush_page_and_range():
    tlb = TLB(8)
    for vpn in range(4):
        tlb.insert(1, vpn, vpn + 10, True)
    tlb.flush_page(1, 2)
    assert tlb.probe(1, 2) is None
    tlb.flush_range(1, 0, 2)
    assert tlb.probe(1, 0) is None
    assert tlb.probe(1, 1) is None
    assert tlb.probe(1, 3) is not None


def test_flush_range_counts_like_its_siblings():
    # regression: flush_range used to skip the flushes counter, so
    # region-shrink shootdowns undercounted in System.metrics()
    tlb = TLB(8)
    for vpn in range(4):
        tlb.insert(1, vpn, vpn + 10, True)
    tlb.flush_range(1, 0, 2)
    assert tlb.flushes == 1
    tlb.flush_range(1, 100, 200)  # empty range still counts as a flush op
    assert tlb.flushes == 2
    tlb.flush_asid(1)
    tlb.flush_all()
    assert tlb.flushes == 4


def test_hit_rate():
    tlb = TLB(8)
    tlb.insert(1, 0x1, 1, True)
    tlb.lookup(1, 0x1)
    tlb.lookup(1, 0x2)
    assert tlb.hit_rate == 0.5


def test_flush_page_counts_like_its_siblings():
    # regression: flush_page used to skip the flushes counter entirely,
    # so COW-break invalidations were invisible in the flush accounting
    tlb = TLB(8)
    tlb.insert(1, 0x1, 1, True)
    tlb.flush_page(1, 0x1)
    assert tlb.flushes == 1
    tlb.flush_page(1, 0x99)  # a miss is still a flush operation
    assert tlb.flushes == 2


def test_flush_pages_counts_entries_dropped():
    # flush_pages is page-granular: entries actually removed by
    # flush_page/flush_range, so E16 can contrast targeted invalidation
    # with full-ASID sweeps (which never touch this counter)
    tlb = TLB(8)
    for vpn in range(4):
        tlb.insert(1, vpn, vpn + 10, True)
    tlb.flush_page(1, 2)
    assert tlb.flush_pages == 1
    tlb.flush_page(1, 2)  # already gone: no page dropped
    assert tlb.flush_pages == 1
    tlb.flush_range(1, 0, 2)
    assert tlb.flush_pages == 3
    tlb.flush_asid(1)  # full-ASID sweeps are not page-granular
    assert tlb.flush_pages == 3


def _assert_index_clean(tlb):
    errors = tlb.index_errors()
    assert errors == [], errors


def test_asid_index_matches_entries_under_mixed_traffic():
    import random

    rng = random.Random(42)
    tlb = TLB(8, asid_index=True)
    for step in range(600):
        op = rng.randrange(6)
        asid = rng.randrange(1, 5)
        vpn = rng.randrange(16)
        if op in (0, 1, 2):  # inserts dominate, forcing evictions
            tlb.insert(asid, vpn, rng.randrange(100), bool(rng.randrange(2)))
        elif op == 3:
            tlb.flush_page(asid, vpn)
        elif op == 4:
            tlb.flush_asid(asid)
        else:
            lo = rng.randrange(16)
            tlb.flush_range(asid, lo, lo + rng.randrange(1, 8))
        _assert_index_clean(tlb)
    tlb.flush_all()
    _assert_index_clean(tlb)
    assert len(tlb) == 0


def test_linear_ablation_has_no_index():
    tlb = TLB(4, asid_index=False)
    tlb.insert(1, 0x1, 1, True)
    assert tlb.index_errors() == []
    tlb.flush_asid(1)
    assert tlb.probe(1, 0x1) is None


def test_indexed_and_linear_tlbs_behave_identically():
    import random

    rng = random.Random(7)
    fast = TLB(6, asid_index=True)
    slow = TLB(6, asid_index=False)
    for _ in range(400):
        op = rng.randrange(6)
        asid = rng.randrange(1, 4)
        vpn = rng.randrange(12)
        for tlb in (fast, slow):
            if op in (0, 1, 2):
                tlb.insert(asid, vpn, vpn + 50, True)
            elif op == 3:
                tlb.flush_page(asid, vpn)
            elif op == 4:
                tlb.flush_asid(asid)
            else:
                tlb.flush_range(asid, vpn, vpn + 4)
        assert len(fast) == len(slow)
        assert fast.flushes == slow.flushes
        assert fast.flush_pages == slow.flush_pages
        for a in range(1, 4):
            for v in range(12):
                lhs, rhs = fast.probe(a, v), slow.probe(a, v)
                assert (lhs is None) == (rhs is None)
