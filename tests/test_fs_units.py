"""Direct unit tests for the filesystem substrate (no kernel)."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import (
    EACCES,
    EEXIST,
    ENAMETOOLONG,
    ENOENT,
    ENOTDIR,
    ENOTEMPTY,
    SysError,
)
from repro.fs.fdtable import FDTable
from repro.fs.file import File, O_RDONLY, O_RDWR, O_WRONLY
from repro.fs.fsys import Credentials, FileSystem
from repro.fs.inode import Inode, InodeType


@pytest.fixture
def fs():
    return FileSystem()


# ----------------------------------------------------------------------
# namei


def test_root_resolves(fs):
    assert fs.namei("/", fs.root) is fs.root


def test_nested_create_and_lookup(fs):
    fs.mkdir_p("/usr/local/bin")
    node = fs.namei("/usr/local/bin", fs.root)
    assert node.itype is InodeType.DIR


def test_relative_lookup_uses_cdir(fs):
    sub = fs.mkdir_p("/home/user")
    fs.add_file("/home/user/notes.txt", b"hi")
    found = fs.namei("notes.txt", sub)
    assert found.data == b"hi"


def test_dot_and_dotdot(fs):
    sub = fs.mkdir_p("/a/b")
    assert fs.namei(".", sub) is sub
    assert fs.namei("..", sub) is fs.namei("/a", fs.root)
    assert fs.namei("../..", sub) is fs.root
    assert fs.namei("../../..", sub) is fs.root, "cannot climb above root"


def test_chroot_barrier_in_walk(fs):
    jail = fs.mkdir_p("/jail")
    fs.add_file("/secret", b"top")
    with pytest.raises(SysError) as excinfo:
        fs.namei("../secret", jail, rdir=jail)
    assert excinfo.value.errno == ENOENT


def test_missing_component(fs):
    with pytest.raises(SysError) as excinfo:
        fs.namei("/nope/deeper", fs.root)
    assert excinfo.value.errno == ENOENT


def test_file_used_as_directory(fs):
    fs.add_file("/plain", b"")
    with pytest.raises(SysError) as excinfo:
        fs.namei("/plain/sub", fs.root)
    assert excinfo.value.errno == ENOTDIR


def test_long_path_rejected(fs):
    with pytest.raises(SysError) as excinfo:
        fs.namei("/" + "x" * 2000, fs.root)
    assert excinfo.value.errno == ENAMETOOLONG


def test_long_component_rejected(fs):
    with pytest.raises(SysError) as excinfo:
        fs.namei("/" + "y" * 300, fs.root)
    assert excinfo.value.errno == ENAMETOOLONG


def test_search_permission_enforced(fs):
    locked = fs.mkdir_p("/locked")
    locked.mode = 0o700
    locked.uid = 0
    fs.add_file("/locked/f", b"")
    nobody = Credentials(uid=42, gid=42)
    with pytest.raises(SysError) as excinfo:
        fs.namei("/locked/f", fs.root, cred=nobody)
    assert excinfo.value.errno == EACCES


def test_create_duplicate_is_eexist(fs):
    fs.add_file("/dup", b"")
    with pytest.raises(SysError) as excinfo:
        fs.create(fs.root, "dup", InodeType.REG, 0o644)
    assert excinfo.value.errno == EEXIST


def test_unlink_nonempty_dir_rejected(fs):
    fs.mkdir_p("/d")
    fs.add_file("/d/child", b"")
    with pytest.raises(SysError) as excinfo:
        fs.unlink(fs.root, "d")
    assert excinfo.value.errno == ENOTEMPTY


def test_unlink_drops_nlink(fs):
    node = fs.add_file("/gone", b"")
    assert node.nlink == 1
    fs.unlink(fs.root, "gone")
    assert node.nlink == 0
    assert not node.live


# ----------------------------------------------------------------------
# inode data


def test_write_read_at_offsets():
    node = Inode(InodeType.REG)
    node.write_at(0, b"hello")
    node.write_at(10, b"world")
    assert node.read_at(0, 5) == b"hello"
    assert node.read_at(5, 5) == b"\x00" * 5
    assert node.read_at(10, 5) == b"world"
    assert node.size == 15
    assert node.read_at(100, 5) == b""


def test_inode_permission_classes():
    node = Inode(InodeType.REG, mode=0o640, uid=10, gid=20)
    from repro.fs.inode import IREAD, IWRITE

    node.access(10, 99, IWRITE)  # owner: rw
    node.access(11, 20, IREAD)  # group: r
    with pytest.raises(SysError):
        node.access(11, 20, IWRITE)  # group: no w
    with pytest.raises(SysError):
        node.access(99, 99, IREAD)  # other: nothing
    node.access(0, 0, IWRITE)  # root bypasses


# ----------------------------------------------------------------------
# file table entries


def test_file_refcounting_releases_inode():
    node = Inode(InodeType.REG)
    node.hold()
    base_refs = node.refcount
    file = File(node, O_RDWR)
    assert node.refcount == base_refs + 1
    file.hold()
    assert not file.release()
    assert file.release()
    assert node.refcount == base_refs


def test_file_access_mode_checks():
    node = Inode(InodeType.REG)
    reader = File(node, O_RDONLY)
    writer = File(node, O_WRONLY)
    reader.require_readable()
    writer.require_writable()
    with pytest.raises(SysError):
        reader.require_writable()
    with pytest.raises(SysError):
        writer.require_readable()


# ----------------------------------------------------------------------
# fd table


def make_file():
    return File(Inode(InodeType.REG), O_RDWR)


def test_fdtable_allocates_lowest_free():
    table = FDTable(8)
    fds = [table.alloc(make_file()) for _ in range(3)]
    assert fds == [0, 1, 2]
    table.remove(1).release()
    assert table.alloc(make_file()) == 1


def test_fdtable_overflow_is_emfile():
    table = FDTable(2)
    table.alloc(make_file())
    table.alloc(make_file())
    from repro.errors import EMFILE

    with pytest.raises(SysError) as excinfo:
        table.alloc(make_file())
    assert excinfo.value.errno == EMFILE


def test_fdtable_dup_full_table_releases_held_reference():
    table = FDTable(1)
    file = make_file()
    table.alloc(file)
    base_refs = file.refcount
    with pytest.raises(SysError) as excinfo:
        table.dup(0)
    from repro.errors import EMFILE

    assert excinfo.value.errno == EMFILE
    assert file.refcount == base_refs


def test_fdtable_dup2_bad_newfd_releases_held_reference():
    table = FDTable(4)
    file = make_file()
    fd = table.alloc(file)
    base_refs = file.refcount
    for newfd in (-1, 4, 99):
        with pytest.raises(SysError) as excinfo:
            table.dup2(fd, newfd)
        from repro.errors import EBADF

        assert excinfo.value.errno == EBADF
        assert file.refcount == base_refs


def test_fdtable_dup_and_dup2_still_hold_on_success():
    table = FDTable(4)
    file = make_file()
    fd = table.alloc(file)
    base_refs = file.refcount
    newfd = table.dup(fd)
    assert table.get(newfd) is file
    assert file.refcount == base_refs + 1
    table.dup2(fd, 3)
    assert table.get(3) is file
    assert file.refcount == base_refs + 2


def test_fdtable_sync_from_counts_and_references():
    table = FDTable(8)
    shared = make_file()
    master = [None] * 8
    master[3] = shared
    changed = table.sync_from(master)
    assert changed == 1
    assert table.get(3) is shared
    assert shared.refcount == 2  # creator + this table
    # drop it from the master: table releases its reference
    changed = table.sync_from([None] * 8)
    assert changed == 1
    assert shared.refcount == 1


def test_fdtable_sync_is_idempotent():
    table = FDTable(4)
    shared = make_file()
    master = [shared, None, None, None]
    table.sync_from(master)
    assert table.sync_from(master) == 0


@given(st.lists(st.sampled_from(["open", "close", "dup"]), max_size=40))
def test_fdtable_invariants_under_random_ops(ops):
    """Property: slots hold live files; alloc always picks lowest free."""
    table = FDTable(16)
    for op in ops:
        open_fds = table.open_fds()
        if op == "open":
            try:
                fd = table.alloc(make_file())
            except SysError:
                continue
            free_before = [n for n in range(16) if n not in open_fds]
            assert fd == free_before[0]
        elif op == "close" and open_fds:
            table.remove(open_fds[0]).release()
        elif op == "dup" and open_fds:
            source = table.get(open_fds[-1])
            before = source.refcount
            try:
                table.dup(open_fds[-1])
            except SysError:
                continue
            assert source.refcount == before + 1
    for fd in table.open_fds():
        assert table.get(fd).refcount >= 1
