"""The engine fast path: guarded step(), event reclamation, cycle identity.

The batched drain in :mod:`repro.sim.engine` is a host-speed
optimisation only — ``REPRO_ENGINE_LOOP=naive`` (or ``loop="naive"``)
selects the one-event-at-a-time reference loop, and the two must agree
on every simulated cycle.  These tests pin that contract, plus the
engine-correctness fixes that rode along: ``step()`` goes through the
same guarded path as ``run()``, and cancelled events are both counted
exactly and physically reclaimed from the heap.
"""

import hashlib
import json

import pytest

from repro import PR_SALL, System
from repro.errors import SimulationError
from repro.sim.engine import (
    _INLINE_PARK_MAX,
    ENGINE_LOOP_MODES,
    ENGINE_QUEUE_MODES,
    Engine,
    default_engine_loop,
)
from repro.sim.trace import Tracer


# ----------------------------------------------------------------------
# step() goes through the guarded run() path (satellite: step bypassed
# the _running guard, the backwards-time check and profiler bracketing)


def test_step_raises_on_reentry():
    eng = Engine()
    seen = []

    def reenter():
        seen.append(eng.now)
        with pytest.raises(SimulationError):
            eng.step()

    eng.schedule(5, reenter)
    eng.run()
    assert seen == [5]


def test_step_raises_on_backwards_time():
    eng = Engine()
    eng.schedule(5, lambda: None)
    eng.now = 10  # simulate clock corruption
    with pytest.raises(SimulationError):
        eng.step()


def test_step_counts_and_reports_progress():
    eng = Engine()
    fired = []
    eng.schedule(1, lambda: fired.append(1))
    eng.schedule(2, lambda: fired.append(2))
    assert eng.step() is True
    assert fired == [1]
    assert eng.events_processed == 1
    assert eng.step() is True
    assert eng.step() is False  # queue empty, no progress
    assert fired == [1, 2]


def test_run_rejects_reentry():
    eng = Engine()

    def reenter():
        eng.run()

    eng.schedule(0, reenter)
    with pytest.raises(SimulationError):
        eng.run()


# ----------------------------------------------------------------------
# cancellation accounting and heap reclamation (satellite: pending was
# an O(n) scan and cancelled entries were never removed from the heap)


def test_cancel_storm_keeps_heap_bounded():
    eng = Engine()
    floor = eng.pending
    for _ in range(50):
        events = [eng.schedule(1000 + i, lambda: None) for i in range(100)]
        for event in events:
            event.cancel()
        assert eng.pending == floor
    # compaction must have reclaimed the 5000 dead entries
    assert len(eng._queue) < 200


def test_pending_is_exact_under_cancellation():
    eng = Engine()
    events = [eng.schedule(10 + i, lambda: None) for i in range(10)]
    assert eng.pending == 10
    events[3].cancel()
    events[7].cancel()
    assert eng.pending == 8
    # double-cancel is idempotent
    events[3].cancel()
    assert eng.pending == 8
    assert not eng.idle()
    eng.run()
    assert eng.pending == 0
    assert eng.idle()
    assert eng.events_processed == 8


def test_cancel_after_fire_is_a_noop():
    eng = Engine()
    event = eng.schedule(1, lambda: None)
    eng.schedule(2, lambda: None)
    eng.run()
    assert eng.pending == 0
    event.cancel()  # already fired: must not corrupt the live count
    assert eng.pending == 0
    eng.schedule(5, lambda: None)
    assert eng.pending == 1


def test_schedule_call_delivers_token():
    eng = Engine()
    got = []
    eng.schedule_call(1, got.append, "tok")
    eng.schedule_call(2, got.append, None)  # None is a real token too
    eng.run()
    assert got == ["tok", None]


def test_cancelled_head_does_not_stall_until():
    eng = Engine()
    eng.schedule(5, lambda: None).cancel()
    eng.run(until=20)
    assert eng.now == 20
    assert eng.events_processed == 0


# ----------------------------------------------------------------------
# ablation plumbing


def test_unknown_loop_mode_rejected():
    with pytest.raises(SimulationError):
        Engine(loop="turbo")
    # Machine validates config with ValueError, matching vm_index
    with pytest.raises(ValueError):
        System(ncpus=1, engine_loop="turbo")


def test_default_loop_reads_env(monkeypatch):
    monkeypatch.delenv("REPRO_ENGINE_LOOP", raising=False)
    assert default_engine_loop() == "fast"
    monkeypatch.setenv("REPRO_ENGINE_LOOP", "naive")
    assert default_engine_loop() == "naive"
    assert Engine().loop == "naive"
    monkeypatch.setenv("REPRO_ENGINE_LOOP", "warp")
    with pytest.raises(SimulationError):
        default_engine_loop()


# ----------------------------------------------------------------------
# the inline-continuation park (engine.resched_inline): trampoline-
# eliding dispatch for the CPU's steady-state hops


def test_resched_inline_fires_like_schedule_call():
    eng = Engine(loop="fast")
    got = []
    eng.resched_inline(5, got.append, "hop")
    assert eng.pending == 1
    assert not eng.idle()
    eng.run()
    assert got == ["hop"]
    assert eng.now == 5
    assert eng.inline_hops == 1
    assert eng.inline_fallbacks == 0
    assert eng.events_processed == 1
    assert eng.pending == 0
    assert eng.idle()


def test_inline_chain_advances_clock_without_queue_traffic():
    eng = Engine(loop="fast")
    ticks = []

    def hop(token):
        ticks.append(eng.now)
        if len(ticks) < 5:
            eng.resched_inline(3, hop, None)

    eng.resched_inline(3, hop, None)
    eng.run()
    assert ticks == [3, 6, 9, 12, 15]
    assert eng.inline_hops == 5
    assert eng.events_processed == 5
    assert len(eng._queue) == 0  # nothing ever touched the heap


def test_parked_hop_waits_for_earlier_queued_event():
    eng = Engine(loop="fast")
    order = []
    eng.schedule_call(3, order.append, "early-event")
    eng.resched_inline(5, order.append, "hop")
    eng.schedule_call(5, order.append, "tie-later")  # later seq than the hop
    eng.run()
    assert order == ["early-event", "hop", "tie-later"]
    assert eng.inline_hops == 1
    assert eng.inline_fallbacks == 0


def test_park_tie_respects_reserved_seq():
    # seq is reserved at park time, so a same-cycle tie resolves exactly
    # as if the continuation had been queued: schedule order.
    eng = Engine(loop="fast")
    order = []
    eng.schedule_call(5, order.append, "queued-first")
    eng.resched_inline(5, order.append, "hop")
    eng.schedule_call(5, order.append, "queued-last")
    eng.run()
    assert order == ["queued-first", "hop", "queued-last"]
    assert eng.inline_hops == 1


def test_until_leaves_parked_hops_parked():
    eng = Engine(loop="fast")
    got = []
    eng.resched_inline(10, got.append, "hop")
    eng.run(until=4)
    assert eng.now == 4
    assert got == []
    assert eng.pending == 1  # still owed; pending counts parked hops
    eng.run(until=10)  # boundary is inclusive: the hop is due, fires
    assert got == ["hop"]
    assert eng.now == 10
    assert eng.idle()


def test_step_fires_parked_hop():
    eng = Engine(loop="fast")
    got = []
    eng.resched_inline(2, got.append, "hop")
    assert eng.step() is True
    assert got == ["hop"]
    assert eng.step() is False


def test_resched_inline_rejects_negative_delay():
    eng = Engine(loop="fast")
    with pytest.raises(SimulationError):
        eng.resched_inline(-1, lambda token: None, None)


def test_naive_loop_materializes_inline_fallbacks():
    eng = Engine(loop="naive")
    got = []
    eng.resched_inline(5, got.append, "hop")
    assert eng.inline_fallbacks == 1
    assert eng.pending == 1
    eng.run()
    assert got == ["hop"]
    assert eng.now == 5
    assert eng.inline_hops == 0  # everything went through the queue


def test_park_bound_demotes_to_real_events():
    eng = Engine(loop="fast")
    got = []
    extra = 5
    for i in range(_INLINE_PARK_MAX + extra):
        eng.resched_inline(1, got.append, i)
    assert eng.inline_fallbacks == extra
    assert eng.pending == _INLINE_PARK_MAX + extra
    eng.run()
    # all at cycle 1: reserved seqs interleave parked and demoted hops
    # in exact submission order
    assert got == list(range(_INLINE_PARK_MAX + extra))
    assert eng.inline_hops == _INLINE_PARK_MAX


# ----------------------------------------------------------------------
# cycle identity: the fast drain must be bit-identical to the naive
# reference loop, kstats and chrome trace included, under perturbation


def _member(api, arg):
    yield from api.compute(30_000)
    base = yield from api.sbrk(8192)
    yield from api.store_word(base, 7)
    yield from api.load_word(base)
    yield from api.alarm(5_000)
    yield from api.compute(20_000)
    yield from api.alarm(0)  # cancel: exercises heap garbage on both loops
    yield from api.sched_yield()
    yield from api.compute(9_000)
    return 0


def _main(api, ctx):
    for _ in range(4):
        yield from api.sproc(_member, PR_SALL)
    for _ in range(4):
        yield from api.wait()
    return 0


def _fingerprint(loop, seed, queue="heap"):
    sim = System(ncpus=3, perturb_seed=seed, engine_loop=loop, engine_queue=queue)
    tracer = Tracer.attach(sim.kernel, capacity=100_000)
    sim.spawn(_main, {})
    sim.run()
    blob = json.dumps(sim.kstat.snapshot(), sort_keys=True) + json.dumps(
        tracer.to_chrome_trace(), sort_keys=True, default=str
    )
    return sim.now, hashlib.sha256(blob.encode()).hexdigest()


@pytest.mark.parametrize("seed", [None, 0, 3])
def test_all_loop_queue_combos_are_cycle_identical(seed):
    """{fast, naive} x {heap, wheel}: one fingerprint, four mechanisms."""
    assert set(ENGINE_LOOP_MODES) == {"fast", "naive"}
    assert set(ENGINE_QUEUE_MODES) == {"heap", "wheel"}
    prints = {
        (loop, queue): _fingerprint(loop, seed, queue)
        for loop in ENGINE_LOOP_MODES
        for queue in ENGINE_QUEUE_MODES
    }
    assert len(set(prints.values())) == 1, prints
