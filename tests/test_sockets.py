"""Local sockets: connect/accept, data transfer, descriptor passing."""


from repro import O_CREAT, O_RDWR, SEEK_SET
from repro.errors import ECONNREFUSED, ENOTCONN, ENOTSOCK, EPIPE
from tests.conftest import run_program


def test_socketpair_bidirectional():
    def main(api, out):
        a, b = yield from api.socketpair()
        yield from api.send(a, b"ping")
        out["b_got"] = yield from api.recv(b, 16)
        yield from api.send(b, b"pong")
        out["a_got"] = yield from api.recv(a, 16)
        return 0

    out, _ = run_program(main)
    assert out["b_got"] == b"ping"
    assert out["a_got"] == b"pong"


def test_connect_accept_flow():
    def server(api, out):
        s = yield from api.socket()
        yield from api.bind(s, "srv")
        yield from api.listen(s, 4)
        conn = yield from api.accept(s)
        data = yield from api.recv(conn, 64)
        yield from api.send(conn, b"ACK:" + data)
        return 0

    def client(api, out):
        yield from api.compute(30_000)
        s = yield from api.socket()
        yield from api.connect(s, "srv")
        yield from api.send(s, b"req")
        out["reply"] = yield from api.recv(s, 64)
        return 0

    def main(api, out):
        yield from api.fork(server, out)
        yield from api.fork(client, out)
        yield from api.wait()
        yield from api.wait()
        return 0

    out, _ = run_program(main)
    assert out["reply"] == b"ACK:req"


def test_connect_to_unbound_name_refused():
    def main(api, out):
        s = yield from api.socket()
        rc = yield from api.connect(s, "nobody")
        out["errno"] = yield from api.errno()
        return 0

    out, _ = run_program(main)
    assert out["errno"] == ECONNREFUSED


def test_connect_without_listen_refused():
    def main(api, out):
        s = yield from api.socket()
        yield from api.bind(s, "bound-not-listening")
        c = yield from api.socket()
        rc = yield from api.connect(c, "bound-not-listening")
        out["errno"] = yield from api.errno()
        return 0

    out, _ = run_program(main)
    assert out["errno"] == ECONNREFUSED


def test_send_on_unconnected_is_enotconn():
    def main(api, out):
        s = yield from api.socket()
        rc = yield from api.send(s, b"x")
        out["errno"] = yield from api.errno()
        return 0

    out, _ = run_program(main)
    assert out["errno"] == ENOTCONN


def test_socket_ops_on_regular_fd_are_enotsock():
    def main(api, out):
        fd = yield from api.open("/f", O_RDWR | O_CREAT)
        rc = yield from api.send(fd, b"x")
        out["errno"] = yield from api.errno()
        return 0

    out, _ = run_program(main)
    assert out["errno"] == ENOTSOCK


def test_recv_eof_after_peer_close():
    def main(api, out):
        a, b = yield from api.socketpair()
        yield from api.send(a, b"tail")
        yield from api.close(a)
        out["data"] = yield from api.recv(b, 16)
        out["eof"] = yield from api.recv(b, 16)
        return 0

    out, _ = run_program(main)
    assert out["data"] == b"tail"
    assert out["eof"] == b""


def test_send_after_peer_close_is_epipe():
    from repro import SIG_IGN, SIGPIPE

    def main(api, out):
        a, b = yield from api.socketpair()
        yield from api.close(b)
        yield from api.signal(SIGPIPE, SIG_IGN)
        rc = yield from api.send(a, b"x")
        out["errno"] = yield from api.errno()
        return 0

    out, _ = run_program(main)
    assert out["errno"] == EPIPE


def test_large_transfer_blocks_and_completes():
    from repro.ipc.socket import SOCK_BUF

    def sender(api, fd):
        yield from api.send(fd, b"z" * (SOCK_BUF * 3))
        yield from api.close(fd)
        return 0

    def main(api, out):
        a, b = yield from api.socketpair()
        yield from api.fork(sender, a)
        yield from api.close(a)
        total = 0
        while True:
            chunk = yield from api.recv(b, 4096)
            if not chunk:
                break
            total += len(chunk)
        out["total"] = total
        yield from api.wait()
        return 0

    out, _ = run_program(main, ncpus=2)
    from repro.ipc.socket import SOCK_BUF

    assert out["total"] == SOCK_BUF * 3


def test_descriptor_passing_transfers_open_file():
    """The paper's introduction example: a server opens a descriptor and
    hands it to a waiting child over a queue."""

    def server(api, out):
        s = yield from api.socket()
        yield from api.bind(s, "passer")
        yield from api.listen(s)
        conn = yield from api.accept(s)
        fd = yield from api.open("/payload", O_RDWR | O_CREAT)
        yield from api.write(fd, b"delivered")
        yield from api.sendfd(conn, fd)
        yield from api.close(fd)  # server's copy can go; the file lives on
        return 0

    def worker(api, out):
        yield from api.compute(30_000)
        s = yield from api.socket()
        yield from api.connect(s, "passer")
        fd = yield from api.recvfd(s)
        yield from api.lseek(fd, 0, SEEK_SET)
        out["data"] = yield from api.read(fd, 64)
        return 0

    def main(api, out):
        yield from api.fork(server, out)
        yield from api.fork(worker, out)
        yield from api.wait()
        yield from api.wait()
        return 0

    out, _ = run_program(main)
    assert out["data"] == b"delivered"


def test_backlog_limit_refuses_excess_connections():
    def main(api, out):
        s = yield from api.socket()
        yield from api.bind(s, "tiny")
        yield from api.listen(s, 1)
        c1 = yield from api.socket()
        yield from api.connect(c1, "tiny")  # fills the backlog
        c2 = yield from api.socket()
        rc = yield from api.connect(c2, "tiny")
        out["errno"] = yield from api.errno()
        out["rc"] = rc
        return 0

    out, _ = run_program(main)
    assert out["rc"] == -1
    assert out["errno"] == ECONNREFUSED


def test_accept_blocks_until_connection():
    def late_client(api, arg):
        yield from api.compute(50_000)
        s = yield from api.socket()
        yield from api.connect(s, "patient")
        yield from api.send(s, b"hi")
        return 0

    def main(api, out):
        s = yield from api.socket()
        yield from api.bind(s, "patient")
        yield from api.listen(s)
        yield from api.fork(late_client)
        start = api.now
        conn = yield from api.accept(s)
        out["waited"] = api.now - start
        out["data"] = yield from api.recv(conn, 16)
        yield from api.wait()
        return 0

    out, _ = run_program(main, ncpus=2)
    assert out["waited"] >= 40_000
    assert out["data"] == b"hi"
