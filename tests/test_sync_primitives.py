"""Kernel sync primitives exercised through real workloads: spinlocks,
semaphores, and the paper's shared read lock."""

import pytest

from repro import PR_SALL, System
from repro.sync.semaphore import Semaphore
from repro.sync.sharedlock import ExclusiveAblationLock, SharedReadLock
from repro.sync.spinlock import SpinLock
from repro.errors import SimulationError
from tests.conftest import run_program


# ----------------------------------------------------------------------
# spinlock


def test_spinlock_mutual_exclusion_under_contention():
    """N group members increment a counter under a user spinlock; no
    increments may be lost (kernel CAS path + spinlock discipline)."""
    from repro.runtime.ulocks import USpinLock

    def member(api, ctx):
        base, rounds = ctx
        lock = USpinLock(base)
        for _ in range(rounds):
            yield from lock.acquire(api)
            value = yield from api.load_word(base + 4)
            yield from api.compute(50)  # widen the race window
            yield from api.store_word(base + 4, value + 1)
            yield from lock.release(api)
        return 0

    def main(api, out):
        base = yield from api.mmap(4096)
        rounds = 25
        nprocs = 4
        for _ in range(nprocs):
            yield from api.sproc(member, PR_SALL, (base, rounds))
        for _ in range(nprocs):
            yield from api.wait()
        out["count"] = yield from api.load_word(base + 4)
        out["expected"] = rounds * nprocs
        return 0

    out, _ = run_program(main, ncpus=4)
    assert out["count"] == out["expected"]


def test_kernel_spinlock_basics():
    from repro.sim.machine import Machine

    machine = Machine(ncpus=1)
    lock = SpinLock(machine, "t")
    assert lock.try_acquire()
    assert not lock.try_acquire()
    lock.release()
    assert not lock.held
    with pytest.raises(SimulationError):
        lock.release()


# ----------------------------------------------------------------------
# semaphore (driven through pipe/wait machinery elsewhere; direct here)


class _StubWaker:
    def __init__(self):
        self.woken = []

    def wakeup(self, proc):
        self.woken.append(proc)


class _StubProc:
    SLEEPING = "sleeping"

    def __init__(self):
        self.state = None
        self.sleeping_on = None
        self.sleep_interruptible = False
        self.resume_value = None


def _drive(gen, resume=None):
    """Run a generator until Block or completion; returns (done, value)."""
    from repro.sim.effects import Block, Delay

    value = resume
    while True:
        try:
            effect = gen.send(value)
        except StopIteration as stop:
            return True, stop.value
        if isinstance(effect, Delay):
            value = None
            continue
        if isinstance(effect, Block):
            return False, None
        raise AssertionError("unexpected effect %r" % effect)


def test_semaphore_p_succeeds_with_value():
    from repro.sim.machine import Machine

    machine = Machine(ncpus=1)
    waker = _StubWaker()
    sema = Semaphore(machine, waker, value=1)
    done, result = _drive(sema.p(_StubProc()))
    assert done and result is True
    assert sema.value == 0


def test_semaphore_p_blocks_then_v_wakes_fifo():
    from repro.sim.machine import Machine

    machine = Machine(ncpus=1)
    waker = _StubWaker()
    sema = Semaphore(machine, waker, value=0)
    first, second = _StubProc(), _StubProc()
    gen1, gen2 = sema.p(first), sema.p(second)
    assert _drive(gen1) == (False, None)
    assert _drive(gen2) == (False, None)
    assert sema.nwaiters == 2
    sema.v()
    assert waker.woken == [first], "FIFO wakeup order"
    done, result = _drive(gen1, resume=None)
    assert done and result is True


def test_semaphore_cancel_interrupts_sleeper():
    from repro.sim.machine import Machine
    from repro.sync.semaphore import INTERRUPTED

    machine = Machine(ncpus=1)
    waker = _StubWaker()
    sema = Semaphore(machine, waker, value=0)
    proc = _StubProc()
    gen = sema.p(proc, interruptible=True)
    assert _drive(gen) == (False, None)
    assert sema.cancel(proc)
    done, result = _drive(gen, resume=INTERRUPTED)
    assert done and result is False
    assert not sema.cancel(proc), "second cancel finds nothing"


def test_semaphore_cp_never_blocks():
    from repro.sim.machine import Machine

    machine = Machine(ncpus=1)
    sema = Semaphore(machine, _StubWaker(), value=1)
    assert sema.cp()
    assert not sema.cp()


# ----------------------------------------------------------------------
# shared read lock (section 6.2): semantics through real page faults


def _fault_storm(api, ctx):
    """Each member touches many fresh pages (read-lock scans)."""
    base, npages, index = ctx
    from repro.mem.frames import PAGE_SIZE

    for page in range(npages):
        yield from api.store_word(base + (index * npages + page) * PAGE_SIZE, 1)
    return 0


def test_concurrent_faults_proceed_under_shared_lock():
    def main(api, out):
        nprocs, npages = 4, 16
        base = yield from api.mmap(nprocs * npages * 4096)
        for index in range(nprocs):
            yield from api.sproc(_fault_storm, PR_SALL, (base, npages, index))
        for _ in range(nprocs):
            yield from api.wait()
        return 0

    out, sim = run_program(main, ncpus=4)
    shaddr_lock_reads = sim.stats["faults"]
    assert shaddr_lock_reads >= 64


def test_exclusive_ablation_lock_still_correct_but_serial():
    """The E4 ablation must produce identical results, only slower."""

    def main(api, out):
        nprocs, npages = 4, 16
        base = yield from api.mmap(nprocs * npages * 4096)
        for index in range(nprocs):
            yield from api.sproc(_fault_storm, PR_SALL, (base, npages, index))
        for _ in range(nprocs):
            yield from api.wait()
        out["cycles"] = api.now
        return 0

    out_shared = {}
    sim_shared = System(ncpus=4)
    sim_shared.spawn(lambda api, a: main(api, out_shared))
    sim_shared.run()

    out_excl = {}
    sim_excl = System(ncpus=4, vm_lock_factory=ExclusiveAblationLock)
    sim_excl.spawn(lambda api, a: main(api, out_excl))
    sim_excl.run()

    assert out_excl["cycles"] >= out_shared["cycles"], (
        "exclusive lock cannot be faster than the shared read lock"
    )


def test_sharedlock_updates_block_readers():
    """While an update (munmap with shootdown) runs, faulting members
    wait; afterwards everything proceeds — no lost wakeups (the run
    completing at all is the assertion, via deadlock detection)."""

    def faulter(api, ctx):
        base, npages = ctx
        from repro.mem.frames import PAGE_SIZE

        for page in range(npages):
            yield from api.store_word(base + page * PAGE_SIZE, page)
        return 0

    def unmapper(api, scratch):
        for _ in range(4):
            block = yield from api.mmap(8 * 4096)
            yield from api.store_word(block, 1)
            yield from api.munmap(block)
        return 0

    def main(api, out):
        base = yield from api.mmap(64 * 4096)
        yield from api.sproc(faulter, PR_SALL, (base, 64))
        yield from api.sproc(unmapper, PR_SALL, 0)
        yield from api.wait()
        yield from api.wait()
        return 0

    out, sim = run_program(main, ncpus=2)
    assert sim.stats["shootdowns"] >= 4


def test_sharedlock_direct_invariants():
    from repro.sim.machine import Machine

    machine = Machine(ncpus=1)
    waker = _StubWaker()
    lock = SharedReadLock(machine, waker)
    reader = _StubProc()
    done, _ = _drive(lock.acquire_read(reader))
    assert done
    assert lock.readers == 1
    updater = _StubProc()
    gen = lock.acquire_update(updater)
    assert _drive(gen) == (False, None), "updater must wait for the reader"
    done, _ = _drive(lock.release_read(reader))
    assert done
    assert waker.woken == [updater]
    done, _ = _drive(gen)
    assert done
    assert lock.updating
    done, _ = _drive(lock.release_update(updater))
    assert done
    assert not lock.updating


def test_sharedlock_misuse_detected():
    from repro.sim.machine import Machine

    machine = Machine(ncpus=1)
    lock = SharedReadLock(machine, _StubWaker())
    with pytest.raises(SimulationError):
        _drive(lock.release_read(_StubProc()))
    with pytest.raises(SimulationError):
        _drive(lock.release_update(_StubProc()))


def test_sharedlock_broadcast_drains_mixed_waiters():
    """Readers and an updater asleep together: one _broadcast must wake
    all of them, the readers re-acquire, and the updater re-contends
    without losing its wakeup."""
    from repro.sim.machine import Machine

    machine = Machine(ncpus=1)
    waker = _StubWaker()
    lock = SharedReadLock(machine, waker, name="mix")

    upd1 = _StubProc()
    done, _ = _drive(lock.acquire_update(upd1))
    assert done and lock.updating

    readers = [_StubProc() for _ in range(3)]
    reader_gens = [lock.acquire_read(reader) for reader in readers]
    for gen in reader_gens:
        assert _drive(gen) == (False, None), "readers must wait out the update"
    upd2 = _StubProc()
    upd2_gen = lock.acquire_update(upd2)
    assert _drive(upd2_gen) == (False, None)
    assert lock._waitcnt == 4
    assert lock.read_blocks == 3
    assert lock.update_blocks == 1  # upd1 acquired uncontended

    # ending the update wakes every sleeper exactly once, FIFO
    done, _ = _drive(lock.release_update(upd1))
    assert done
    assert waker.woken == readers + [upd2]
    assert lock._waitcnt == 0

    # the readers get in; the updater finds them active and re-banks
    for gen in reader_gens:
        done, _ = _drive(gen)
        assert done
    assert lock.readers == 3
    assert _drive(upd2_gen) == (False, None)
    assert lock.update_blocks == 2
    assert lock._waitcnt == 1

    # intermediate reader exits broadcast nothing; the last one pays out
    done, _ = _drive(lock.release_read(readers[0]))
    assert done
    done, _ = _drive(lock.release_read(readers[1]))
    assert done
    assert len(waker.woken) == 4, "no broadcast while readers remain"
    done, _ = _drive(lock.release_read(readers[2]))
    assert done
    assert waker.woken[-1] is upd2

    done, _ = _drive(upd2_gen)
    assert done and lock.updating
    done, _ = _drive(lock.release_update(upd2))
    assert done

    assert lock.read_acquires == 3
    assert lock.update_acquires == 2
    assert lock.read_blocks == 3
    assert lock._waitcnt == 0
    assert not lock.updating and lock.readers == 0
    assert lock._updwait.nwaiters == 0, "no sleeper left behind"


def test_ablation_lock_attributes_read_side_stats():
    """Regression: the E4 ablation's acquire_read recorded its lockstats
    on the update side, leaving the read-side profile empty."""
    from repro.sim.machine import Machine

    machine = Machine(ncpus=1)
    lock = ExclusiveAblationLock(machine, _StubWaker(), name="abl")
    reader = _StubProc()
    done, _ = _drive(lock.acquire_read(reader))
    assert done
    assert lock.updating, "ablation reads hold the lock exclusively"
    assert lock.read_acquires == 1
    assert lock.update_acquires == 0
    done, _ = _drive(lock.release_read(reader))
    assert done

    rd = machine.lockstats.get("abl.read")
    upd = machine.lockstats.get("abl.update")
    assert rd.acquisitions == 1
    assert rd.hold_count == 1
    assert upd.acquisitions == 0
    assert upd.hold_count == 0

    # a real update still lands on the update side
    updater = _StubProc()
    done, _ = _drive(lock.acquire_update(updater))
    assert done
    done, _ = _drive(lock.release_update(updater))
    assert done
    assert upd.acquisitions == 1
    assert rd.acquisitions == 1


def test_ablation_read_block_counts_on_read_side():
    from repro.sim.machine import Machine

    machine = Machine(ncpus=1)
    waker = _StubWaker()
    lock = ExclusiveAblationLock(machine, waker, name="abl2")
    holder = _StubProc()
    done, _ = _drive(lock.acquire_read(holder))
    assert done
    blocked_reader = _StubProc()
    gen = lock.acquire_read(blocked_reader)
    assert _drive(gen) == (False, None), "second ablation read must wait"
    assert lock.read_blocks == 1
    assert lock.update_blocks == 0
    done, _ = _drive(lock.release_read(holder))
    assert done
    done, _ = _drive(gen)
    assert done
    assert lock.read_acquires == 2
    assert machine.lockstats.get("abl2.read").contended == 1


# ----------------------------------------------------------------------
# shared read lock ownership guards (regression: an unbalanced release
# used to silently consume some other process's read grant)


def test_release_read_by_non_reader_raises():
    from repro.sim.machine import Machine

    machine = Machine(ncpus=1)
    lock = SharedReadLock(machine, _StubWaker(), name="own")
    owner, thief = _StubProc(), _StubProc()
    done, _ = _drive(lock.acquire_read(owner))
    assert done
    with pytest.raises(SimulationError, match="holds no read lock"):
        _drive(lock.release_read(thief))
    assert lock.readers == 1, "the bogus release must not consume the grant"
    done, _ = _drive(lock.release_read(owner))
    assert done
    assert lock.readers == 0


def test_release_read_more_times_than_acquired_raises():
    from repro.sim.machine import Machine

    machine = Machine(ncpus=1)
    lock = SharedReadLock(machine, _StubWaker(), name="own2")
    owner = _StubProc()
    done, _ = _drive(lock.acquire_read(owner))
    assert done
    done, _ = _drive(lock.acquire_read(owner))
    assert done
    for _ in range(2):
        done, _ = _drive(lock.release_read(owner))
        assert done
    with pytest.raises(SimulationError):
        _drive(lock.release_read(owner))


def test_release_update_by_non_updater_raises():
    from repro.sim.machine import Machine

    machine = Machine(ncpus=1)
    lock = SharedReadLock(machine, _StubWaker(), name="own3")
    updater, thief = _StubProc(), _StubProc()
    done, _ = _drive(lock.acquire_update(updater))
    assert done
    with pytest.raises(SimulationError, match="not the updater"):
        _drive(lock.release_update(thief))
    assert lock.updating, "the update grant must survive the bogus release"
    done, _ = _drive(lock.release_update(updater))
    assert done
    assert not lock.updating
