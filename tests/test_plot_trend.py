"""The trend plotter turns BENCH_TREND.json into SVG + markdown."""

import importlib.util
import json
import os
import xml.dom.minidom

_SPEC = importlib.util.spec_from_file_location(
    "plot_trend",
    os.path.join(os.path.dirname(__file__), os.pardir,
                 "benchmarks", "plot_trend.py"))
plot_trend = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(plot_trend)


def _entry(sha, tput, p99, host=None):
    entry = {
        "experiment": "E17",
        "time": 1_700_000_000,
        "sha": sha,
        "seeds": 3,
        "metrics": {
            row: {
                "throughput_per_kcycle": {
                    "mean": tput * mult, "ci_lo": tput * mult * 0.98,
                    "ci_hi": tput * mult * 1.02, "n": 3,
                },
                "p99_cycles": {
                    "mean": p99 * mult, "ci_lo": p99 * mult * 0.9,
                    "ci_hi": p99 * mult * 1.1, "n": 3,
                },
            }
            for row, mult in (("x0.30", 0.4), ("x1.80", 1.0))
        },
    }
    if host:
        entry["host"] = {"sim_cycles_per_host_sec": host,
                         "wall_seconds": 10.0, "sim_cycles": host * 10}
    return entry


def test_render_all_writes_valid_artifacts(tmp_path):
    trend = tmp_path / "BENCH_TREND.json"
    trend.write_text(json.dumps({"entries": [
        _entry("aaa111", 3.0, 4_000_000, host=180_000),
        _entry("bbb222", 3.3, 3_600_000, host=200_000),
    ]}))
    out = tmp_path / "out"
    written = plot_trend.render_all(str(trend), str(out))
    names = {os.path.basename(path) for path in written}
    assert names == {"trend_E17.svg", "trend_host.svg", "TREND.md"}
    for path in written:
        assert os.path.getsize(path) > 0
        if path.endswith(".svg"):
            xml.dom.minidom.parse(path)  # well-formed

    digest = (out / "TREND.md").read_text()
    assert "E17" in digest and "bbb222" in digest
    assert "throughput_per_kcycle" in digest
    assert "+10.0%" in digest          # 3.0 -> 3.3 delta vs previous run
    assert "sim cycles / host second" in digest


def test_headline_metric_priority():
    runs = [{"metrics": {"row": {"p99_cycles": {}, "zzz": {},
                                 "throughput_per_kcycle": {}}}}]
    assert plot_trend.headline_metric(runs) == "throughput_per_kcycle"
    assert plot_trend.headline_metric([{"metrics": {}}]) is None


def test_empty_trend_still_writes_digest(tmp_path):
    trend = tmp_path / "BENCH_TREND.json"
    trend.write_text(json.dumps({"entries": []}))
    written = plot_trend.render_all(str(trend), str(tmp_path / "out"))
    assert [os.path.basename(p) for p in written] == ["TREND.md"]
