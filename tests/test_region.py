"""Unit and property tests for regions (page tables, COW, grow/shrink)."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import SimulationError
from repro.mem.frames import FrameAllocator
from repro.mem.region import Region, RegionType


def make(npages=4, nframes=64):
    alloc = FrameAllocator(nframes)
    return alloc, Region(alloc, npages, RegionType.DATA)


def test_pages_start_nonresident():
    _, region = make()
    assert region.resident_pages() == 0
    assert region.npages == 4


def test_ensure_page_is_idempotent():
    _, region = make()
    frame1 = region.ensure_page(0)
    frame2 = region.ensure_page(0)
    assert frame1 is frame2
    assert region.resident_pages() == 1


def test_release_frees_frames():
    alloc, region = make()
    region.hold()
    region.ensure_page(0)
    region.ensure_page(3)
    region.release()
    assert alloc.allocated == 0
    assert region.freed


def test_release_without_hold_is_error():
    _, region = make()
    with pytest.raises(SimulationError):
        region.release()


def test_dup_cow_shares_frames_and_marks_both_sides():
    alloc, region = make()
    frame = region.ensure_page(1)
    frame.data[0] = 0xAB
    clone = region.dup_cow()
    assert clone.pages[1] is frame
    assert frame.refcount == 2
    assert region.is_cow(1)
    assert clone.is_cow(1)
    # non-resident pages stay non-resident in the clone
    assert clone.pages[0] is None


def test_break_cow_copies_when_shared():
    alloc, region = make()
    frame = region.ensure_page(1)
    frame.data[:4] = b"\x01\x02\x03\x04"
    clone = region.dup_cow()
    fresh = clone.break_cow(1)
    assert fresh is not frame
    assert bytes(fresh.data[:4]) == b"\x01\x02\x03\x04"
    assert frame.refcount == 1
    assert not clone.is_cow(1)
    # writes to the copy do not touch the original
    fresh.data[0] = 0xFF
    assert frame.data[0] == 0x01


def test_break_cow_takes_ownership_when_last_ref():
    alloc, region = make()
    frame = region.ensure_page(2)
    clone = region.dup_cow()
    clone.hold()
    clone.release()  # free the clone, dropping its frame refs
    kept = region.break_cow(2)
    assert kept is frame, "sole owner should not copy"
    assert not region.is_cow(2)


def test_grow_and_shrink():
    alloc, region = make(npages=2)
    region.grow(3)
    assert region.npages == 5
    region.ensure_page(4)
    region.shrink(2)
    assert region.npages == 3
    assert alloc.allocated == 0  # page 4's frame was freed


def test_shrink_below_zero_is_error():
    _, region = make(npages=2)
    with pytest.raises(SimulationError):
        region.shrink(3)


def test_grow_front_preserves_contents():
    _, region = make(npages=2)
    frame = region.ensure_page(0)
    frame.data[0] = 0x42
    region.grow_front(2)
    assert region.npages == 4
    assert region.pages[2] is frame
    assert region.pages[0] is None


def test_dup_copy_is_eager_and_independent():
    alloc, region = make()
    frame = region.ensure_page(0)
    frame.data[0] = 7
    clone = region.dup_copy()
    assert clone.pages[0] is not frame
    assert clone.pages[0].data[0] == 7
    assert frame.refcount == 1


@given(st.lists(st.sampled_from(["grow", "shrink", "touch"]), max_size=60))
def test_grow_shrink_touch_frame_accounting(ops):
    """Property: allocator count always equals resident page count."""
    alloc = FrameAllocator(256)
    region = Region(alloc, 1, RegionType.DATA)
    region.hold()
    touched = 0
    for op in ops:
        if op == "grow":
            region.grow(1)
        elif op == "shrink" and region.npages > 0:
            region.shrink(1)
        elif op == "touch" and region.npages > 0:
            region.ensure_page(region.npages - 1)
        assert alloc.allocated == region.resident_pages()
    region.release()
    assert alloc.allocated == 0
