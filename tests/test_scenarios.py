"""End-to-end scenarios: multi-program applications on the full system."""


from repro import (
    O_CREAT,
    O_RDONLY,
    O_RDWR,
    O_WRONLY,
    PR_SALL,
    System,
    status_code,
)
from tests.conftest import run_program


def test_shell_style_pipeline_with_exec():
    """cat | upper | count: three exec'd images glued with pipes and
    dup2 onto stdin/stdout — the classic shell contract."""

    def cat(api, arg):
        fd = yield from api.open("/input.txt", O_RDONLY)
        while True:
            chunk = yield from api.read(fd, 64)
            if not chunk:
                break
            yield from api.write(1, chunk)
        yield from api.close(1)
        return 0

    def upper(api, arg):
        while True:
            chunk = yield from api.read(0, 64)
            if not chunk:
                break
            yield from api.write(1, bytes(chunk).upper())
        yield from api.close(1)
        return 0

    def count(api, arg):
        total = 0
        while True:
            chunk = yield from api.read(0, 64)
            if not chunk:
                break
            total += len(chunk)
        out_fd = yield from api.open("/result.txt", O_WRONLY | O_CREAT)
        yield from api.write(out_fd, b"%d" % total)
        return 0

    def stage(api, ctx):
        """fork helper: wire stdin/stdout then exec the image."""
        stdin_fd, stdout_fd, close_fds, path = ctx
        if stdin_fd is not None:
            yield from api.dup2(stdin_fd, 0)
        if stdout_fd is not None:
            yield from api.dup2(stdout_fd, 1)
        for fd in close_fds:
            yield from api.close(fd)
        yield from api.exec(path)
        return 127

    def main(api, out):
        # occupy fds 0/1/2 the way a real shell's stdio would, so the
        # pipes land above the standard descriptors
        for _ in range(3):
            yield from api.open("/dev/null", O_RDWR)
        fd = yield from api.creat("/input.txt")
        yield from api.write(fd, b"hello pipeline world")
        yield from api.close(fd)

        p1_r, p1_w = yield from api.pipe()
        p2_r, p2_w = yield from api.pipe()
        all_fds = [p1_r, p1_w, p2_r, p2_w]

        def others(*keep):
            return [fd for fd in all_fds if fd not in keep]

        yield from api.fork(stage, (None, p1_w, others(p1_w), "/bin/cat"))
        yield from api.fork(stage, (p1_r, p2_w, others(p1_r, p2_w), "/bin/upper"))
        yield from api.fork(stage, (p2_r, None, others(p2_r), "/bin/count"))
        for fd in all_fds:
            yield from api.close(fd)
        for _ in range(3):
            _, status = yield from api.wait()
            assert status_code(status) == 0, status
        result_fd = yield from api.open("/result.txt", O_RDONLY)
        out["count"] = yield from api.read(result_fd, 16)
        return 0

    out = {}
    sim = System(ncpus=2)
    for name, func in (("cat", cat), ("upper", upper), ("count", count)):
        sim.register_program("/bin/%s" % name, func)
    sim.spawn(lambda api, a: main(api, out))
    sim.run()
    assert out["count"] == b"20"


def test_logging_server_collects_from_many_clients():
    """N clients connect and send records; the server appends them to a
    log file.  Verifies every record arrives exactly once."""
    nclients = 5

    def server(api, arg):
        listener = yield from api.socket()
        yield from api.bind(listener, "logd")
        yield from api.listen(listener, nclients)
        log_fd = yield from api.open("/var/log/app", O_RDWR | O_CREAT)
        for _ in range(nclients):
            conn = yield from api.accept(listener)
            record = bytearray()
            while True:
                chunk = yield from api.recv(conn, 64)
                if not chunk:
                    break
                record += chunk
            yield from api.write(log_fd, bytes(record) + b"\n")
            yield from api.close(conn)
        return 0

    def client(api, index):
        yield from api.compute(20_000 + index * 7_000)
        sock = yield from api.socket()
        yield from api.connect(sock, "logd")
        yield from api.send(sock, b"record-%d" % index)
        yield from api.close(sock)
        return 0

    def main(api, out):
        yield from api.mkdir("/var")
        yield from api.mkdir("/var/log")
        yield from api.fork(server)
        for index in range(nclients):
            yield from api.fork(client, index)
        for _ in range(nclients + 1):
            _, status = yield from api.wait()
            assert status_code(status) == 0
        fd = yield from api.open("/var/log/app", O_RDONLY)
        out["log"] = yield from api.read(fd, 4096)
        return 0

    out, _ = run_program(main, ncpus=3)
    lines = sorted(out["log"].split())
    assert lines == [b"record-%d" % index for index in range(nclients)]


def test_two_independent_share_groups_coexist():
    """Two groups on one machine: no cross-talk in resources or stats."""

    def member(api, ctx):
        base, tag = ctx
        for _ in range(50):
            yield from api.fetch_add(base, tag)
        return 0

    def group_leader(api, ctx):
        out, tag = ctx
        base = yield from api.mmap(4096)
        for _ in range(2):
            yield from api.sproc(member, PR_SALL, (base, tag))
        for _ in range(2):
            yield from api.wait()
        out["sum_%d" % tag] = yield from api.load_word(base)
        return 0

    def main(api, out):
        yield from api.fork(group_leader, (out, 1))
        yield from api.fork(group_leader, (out, 3))
        yield from api.wait()
        yield from api.wait()
        return 0

    out, sim = run_program(main, ncpus=4)
    assert out["sum_1"] == 100
    assert out["sum_3"] == 300
    assert sim.stats["groups_created"] == 2
    assert sim.stats["groups_freed"] == 2


def test_group_with_aio_and_workqueue_together():
    """The runtime pieces compose: a pool consumes work items that name
    file blocks, fetched through a shared aio ring."""
    from repro.runtime import AioRing, WorkQueue

    def consumer(api, ctx):
        ring_base, queue_base, results = ctx["ring"], ctx["queue"], ctx["results"]
        from repro.runtime.aio import AioRing as Ring
        from repro.runtime.workqueue import WorkQueue as Queue

        ring = yield from Ring.attach(api, ring_base)
        queue = yield from Queue.attach(api, queue_base)
        buf = yield from api.mmap(4096)
        while True:
            block = yield from queue.pop(api)
            if block is None:
                return 0
            handle = yield from ring.submit_read(api, ctx["fd"], buf, 16, block * 16)
            n = yield from ring.wait(api, handle)
            data = yield from api.load(buf, n)
            results.append(bytes(data))

    def main(api, out):
        fd = yield from api.open("/blocks", O_RDWR | O_CREAT)
        payload = b"".join(b"%015d\n" % index for index in range(8))
        yield from api.write(fd, payload)
        ring = yield from AioRing.create(api, nworkers=2)
        queue = yield from WorkQueue.create(api, 16)
        results = []
        ctx = {
            "ring": ring.ctl_base,
            "queue": queue.base,
            "results": results,
            "fd": fd,
        }
        for _ in range(2):
            yield from api.sproc(consumer, PR_SALL, ctx)
        for block in range(8):
            yield from queue.push(api, block)
        yield from queue.close(api)
        for _ in range(2):
            yield from api.wait()
        yield from ring.shutdown(api)
        out["blocks"] = sorted(results)
        return 0

    out, _ = run_program(main, ncpus=4)
    assert out["blocks"] == [b"%015d\n" % index for index in range(8)]


def test_chrooted_group_confined_together():
    """chroot by one member confines the whole sharing group."""

    def prober(api, out):
        yield from api.getpid()  # pick up the shared rdir
        out["escape"] = yield from api.stat("/outside")
        out["inside"] = yield from api.stat("/inner")
        return 0

    def main(api, out):
        yield from api.mkdir("/jail")
        fd = yield from api.creat("/jail/inner")
        yield from api.close(fd)
        fd = yield from api.creat("/outside")
        yield from api.close(fd)
        yield from api.sproc(_chrooter, PR_SALL)
        yield from api.wait()
        yield from api.sproc(prober, PR_SALL, out)
        yield from api.wait()
        return 0

    out, _ = run_program(main)
    assert out["escape"] == -1, "the group must be confined"
    assert out["inside"] != -1


def _chrooter(api, arg):
    yield from api.chroot("/jail")
    yield from api.chdir("/")
    return 0


def test_producer_consumer_tree_with_mixed_mechanisms():
    """A group hub fans work out to a non-group fork child over a pipe
    while group members share results in memory — mechanisms mix freely."""

    def outside_squarer(api, ctx):
        rfd, wfd = ctx[0], ctx[1]
        # close the fork-duplicated copies of the parent's ends
        for extra in ctx[2]:
            yield from api.close(extra)
        while True:
            raw = yield from api.read(rfd, 4)
            if not raw:
                break
            value = int.from_bytes(raw, "little")
            yield from api.write(wfd, (value * value).to_bytes(4, "little"))
        yield from api.close(wfd)
        return 0

    def member_adder(api, ctx):
        base, n = ctx
        for index in range(n):
            yield from api.fetch_add(base, index)
        return 0

    def main(api, out):
        base = yield from api.mmap(4096)
        down_r, down_w = yield from api.pipe()
        up_r, up_w = yield from api.pipe()
        yield from api.fork(outside_squarer, (down_r, up_w, (down_w, up_r)))
        yield from api.close(down_r)
        yield from api.close(up_w)
        yield from api.sproc(member_adder, PR_SALL, (base, 10))
        total = 0
        for value in (3, 4, 5):
            yield from api.write(down_w, value.to_bytes(4, "little"))
            raw = yield from api.read(up_r, 4)
            total += int.from_bytes(raw, "little")
        yield from api.close(down_w)
        yield from api.wait()
        yield from api.wait()
        out["squares"] = total
        out["adds"] = yield from api.load_word(base)
        return 0

    out, _ = run_program(main, ncpus=3)
    assert out["squares"] == 9 + 16 + 25
    assert out["adds"] == sum(range(10))
