"""The calendar-queue event structure (``Engine(queue="wheel")``).

The TimeWheel hashes entries into fixed-width buckets keyed by the
*absolute* bucket id ``time // width`` and drains them in the same
``(time, seq)`` total order the binary heap produces — that identity is
what lets ``REPRO_ENGINE_QUEUE=wheel`` ride under the unchanged drain
loops.  These tests pin the bucket layout, the lazy activation/merge
machinery, and the Engine-level plumbing.
"""

import pytest

from repro import System
from repro.errors import SimulationError
from repro.sim.engine import (
    DEFAULT_WHEEL_WIDTH,
    Engine,
    Event,
    TimeWheel,
    default_engine_queue,
)


def _entry(time, seq):
    return (time, seq, Event(time, seq, lambda: None))


# ----------------------------------------------------------------------
# TimeWheel unit behavior


def test_bucket_ids_are_absolute_time_over_width():
    wheel = TimeWheel(10)
    wheel.push(*_entry(5, 1))
    wheel.push(*_entry(105, 2))
    wheel.push(*_entry(9, 3))
    assert set(wheel._buckets) == {0, 10}
    assert len(wheel) == 3


def test_pops_follow_time_seq_total_order():
    wheel = TimeWheel(8)
    # scrambled submission across several windows, with a same-time tie
    for time, seq in [(40, 4), (3, 1), (17, 3), (3, 2), (100, 5), (40, 6)]:
        wheel.push(*_entry(time, seq))
    popped = []
    while True:
        entry = wheel.pop()
        if entry is None:
            break
        popped.append(entry[:2])
    assert popped == [(3, 1), (3, 2), (17, 3), (40, 4), (40, 6), (100, 5)]
    assert len(wheel) == 0


def test_peek_is_stable_and_pop_removes_exactly_it():
    wheel = TimeWheel(16)
    wheel.push(*_entry(30, 2))
    wheel.push(*_entry(7, 1))
    assert wheel.peek()[:2] == (7, 1)
    assert wheel.peek()[:2] == (7, 1)  # peek does not consume
    assert wheel.pop()[:2] == (7, 1)
    assert wheel.pop()[:2] == (30, 2)
    assert wheel.pop() is None
    assert wheel.peek() is None


def test_earlier_bucket_pushed_after_activation_merges_in_front():
    # activating bucket 5 must not hide a later push into bucket 1:
    # peek re-activates and merges the earlier window ahead of the
    # current drain remainder.
    wheel = TimeWheel(10)
    wheel.push(*_entry(50, 1))
    assert wheel.peek()[:2] == (50, 1)  # bucket 5 is now the drain window
    wheel.push(*_entry(12, 2))
    assert wheel.peek()[:2] == (12, 2)
    assert wheel.pop()[:2] == (12, 2)
    assert wheel.pop()[:2] == (50, 1)


def test_push_into_current_window_lands_sorted():
    wheel = TimeWheel(100)
    wheel.push(*_entry(10, 1))
    wheel.push(*_entry(90, 2))
    assert wheel.pop()[:2] == (10, 1)
    # bucket 0 is the active window now; a push into it must slot
    # between the consumed prefix and the remainder
    wheel.push(*_entry(40, 3))
    wheel.push(*_entry(95, 4))
    assert wheel.pop()[:2] == (40, 3)
    assert wheel.pop()[:2] == (90, 2)
    assert wheel.pop()[:2] == (95, 4)


def test_drain_prefix_is_trimmed():
    # the consumed prefix is physically dropped once it is both large
    # and the majority of the drain list, so a long run through one
    # window does not retain every fired entry
    wheel = TimeWheel(1 << 30)
    total = 1200
    for i in range(total):
        wheel.push(*_entry(i, i + 1))
    for i in range(total):
        assert wheel.pop()[:2] == (i, i + 1)
    assert len(wheel._drain) < total
    assert len(wheel) == 0


def test_compact_drops_cancelled_everywhere():
    wheel = TimeWheel(10)
    keep_a = _entry(5, 1)
    dead_drain = _entry(6, 2)
    keep_b = _entry(500, 3)
    dead_bucket = _entry(505, 4)
    for entry in (keep_a, dead_drain, keep_b, dead_bucket):
        wheel.push(*entry)
    assert wheel.peek()[:2] == (5, 1)  # activates bucket 0
    dead_drain[2].cancelled = True
    dead_bucket[2].cancelled = True
    assert wheel.compact() == 2
    assert len(wheel) == 2
    assert wheel.pop()[:2] == (5, 1)
    assert wheel.pop()[:2] == (500, 3)
    assert wheel.pop() is None


def test_width_must_be_positive():
    with pytest.raises(SimulationError):
        TimeWheel(0)
    with pytest.raises(SimulationError):
        Engine(queue="wheel", wheel_width=-4)


# ----------------------------------------------------------------------
# Engine plumbing


def test_unknown_queue_mode_rejected():
    with pytest.raises(SimulationError):
        Engine(queue="ring")
    # Machine validates config with ValueError, matching engine_loop
    with pytest.raises(ValueError):
        System(ncpus=1, engine_queue="ring")


def test_default_queue_reads_env(monkeypatch):
    monkeypatch.delenv("REPRO_ENGINE_QUEUE", raising=False)
    assert default_engine_queue() == "heap"
    assert Engine().queue == "heap"
    monkeypatch.setenv("REPRO_ENGINE_QUEUE", "wheel")
    assert default_engine_queue() == "wheel"
    eng = Engine()
    assert eng.queue == "wheel"
    assert eng._wheel is not None
    assert eng._wheel.width == DEFAULT_WHEEL_WIDTH
    monkeypatch.setenv("REPRO_ENGINE_QUEUE", "drum")
    with pytest.raises(SimulationError):
        default_engine_queue()


def test_sparse_timeline_does_not_scan_empty_buckets():
    eng = Engine(queue="wheel")
    fired = []
    eng.schedule(10_000_000, lambda: fired.append(eng.now))
    eng.schedule(5, lambda: fired.append(eng.now))
    eng.run()
    assert fired == [5, 10_000_000]
    assert eng.now == 10_000_000
    # the 10M-cycle gap cost two buckets, not 10M/width of them
    assert len(eng._wheel._buckets) == 0


def test_zero_delay_child_fires_within_current_cycle():
    eng = Engine(queue="wheel", wheel_width=8)
    order = []

    def first():
        order.append("first")
        eng.schedule(0, lambda: order.append("child"))

    eng.schedule(1, first)
    eng.schedule(2, lambda: order.append("second"))
    eng.run()
    assert order == ["first", "child", "second"]


def test_cancel_storm_keeps_wheel_bounded():
    eng = Engine(queue="wheel")
    floor = eng.pending
    for _ in range(50):
        events = [eng.schedule(1000 + i, lambda: None) for i in range(100)]
        for event in events:
            event.cancel()
        assert eng.pending == floor
    # compaction must have reclaimed the 5000 dead entries
    assert eng.queue_size() < 200


def test_until_and_max_events_respected_under_wheel():
    eng = Engine(queue="wheel", wheel_width=4)
    fired = []
    for delay in (2, 4, 6, 8):
        eng.schedule_call(delay, fired.append, delay)
    eng.run(until=5)
    assert fired == [2, 4]
    assert eng.now == 5
    eng.run(max_events=1)
    assert fired == [2, 4, 6]
    eng.run()
    assert fired == [2, 4, 6, 8]
    assert eng.now == 8
