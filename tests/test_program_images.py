"""Program images, registration, and image-shaped address spaces."""

import pytest

from repro import System
from repro.kernel.kernel import DEFAULT_DATA, DEFAULT_TEXT, ProgramImage
from repro.mem import layout
from repro.mem.region import RegionType
from tests.conftest import run_program


def test_register_program_binds_path_and_registry():
    def image(api, arg):
        return 0
        yield

    sim = System(ncpus=1)
    sim.register_program("/usr/bin/tool", image)
    assert "tool" in sim.kernel.programs
    node = sim.kernel.fs.namei("/usr/bin/tool", sim.kernel.fs.root)
    assert node.program == "tool"


def test_exec_uses_registered_segment_sizes():
    probe = {}

    def image(api, arg):
        from repro.mem.region import RegionType

        yield from api.getpid()
        pregions = {
            pregion.rtype: pregion.region.nbytes
            for pregion, _ in api.proc.vm.iter_pregions()
        }
        probe["text"] = pregions[RegionType.TEXT]
        probe["data"] = pregions[RegionType.DATA]
        return 0

    def main(api, out):
        yield from api.exec("/bin/big")
        return 9

    sim = System(ncpus=1)
    sim.register_program(
        "/bin/big", image, text_bytes=256 * 1024, data_bytes=512 * 1024
    )
    sim.spawn(main)
    sim.run()
    assert probe["text"] == 256 * 1024
    assert probe["data"] == 512 * 1024


def test_default_image_layout():
    def main(api, out):
        found = {}
        for pregion, shared in api.proc.vm.iter_pregions():
            found[pregion.rtype] = pregion
        out["prda_at"] = found[RegionType.PRDA].vbase
        out["text_at"] = found[RegionType.TEXT].vbase
        out["data_at"] = found[RegionType.DATA].vbase
        out["text_size"] = found[RegionType.TEXT].region.nbytes
        out["data_size"] = found[RegionType.DATA].region.nbytes
        out["stack_high"] = found[RegionType.STACK].vhigh
        return 0
        yield

    out, _ = run_program(main)
    assert out["prda_at"] == layout.PRDA_BASE
    assert out["text_at"] == layout.TEXT_BASE
    assert out["data_at"] == layout.DATA_BASE
    assert out["text_size"] == DEFAULT_TEXT
    assert out["data_size"] == DEFAULT_DATA
    assert out["stack_high"] == layout.stack_slot(0)


def test_text_segment_is_not_writable():
    from repro import SIGSEGV, status_signal

    def scribbler(api, arg):
        yield from api.store_word(layout.TEXT_BASE, 0xBAD)
        return 0

    def main(api, out):
        yield from api.fork(scribbler)
        _, status = yield from api.wait()
        out["sig"] = status_signal(status)
        return 0

    out, _ = run_program(main)
    from repro import SIGSEGV

    assert out["sig"] == SIGSEGV


def test_spawn_uid_flows_into_credentials():
    def main(api, out):
        out["uid"] = yield from api.getuid()
        return 0

    out = {}
    sim = System(ncpus=1)
    sim.spawn(main, out, uid=42)
    sim.run()
    assert out["uid"] == 42


def test_program_image_repr_and_defaults():
    image = ProgramImage("demo", lambda api, arg: iter(()))
    assert image.text_bytes == DEFAULT_TEXT
    assert image.data_bytes == DEFAULT_DATA
    assert "demo" in repr(image)


def test_non_generator_program_gets_clear_diagnostic():
    from repro.errors import SimulationError

    def oops(api, arg):
        return 0  # no yield anywhere: not a generator function

    sim = System(ncpus=1)
    sim.spawn(oops)
    with pytest.raises(SimulationError) as excinfo:
        sim.run()
    assert "not a generator function" in str(excinfo.value)
