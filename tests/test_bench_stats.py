"""The statistical claims harness: bootstrap CIs, sweeps, gating."""

import importlib.util
import json
import os

import pytest

from repro.bench.harness import ExperimentResult
from repro.bench.stats import (
    append_trend,
    bootstrap_ci,
    extract_metrics,
    run_sweep,
    summarize,
    trend_entry,
)


# ----------------------------------------------------------------------
# the bootstrap


def test_bootstrap_ci_is_seed_deterministic_and_ordered():
    values = [10.0, 12.0, 9.0, 11.0, 13.0, 10.5]
    lo1, hi1 = bootstrap_ci(values, seed=0)
    lo2, hi2 = bootstrap_ci(values, seed=0)
    assert (lo1, hi1) == (lo2, hi2)
    assert lo1 <= sum(values) / len(values) <= hi1
    assert min(values) <= lo1 <= hi1 <= max(values)


def test_bootstrap_ci_degenerate_inputs():
    assert bootstrap_ci([]) == (0.0, 0.0)
    assert bootstrap_ci([7.0]) == (7.0, 7.0)
    # identical samples -> zero-width interval
    lo, hi = bootstrap_ci([5.0] * 8)
    assert lo == hi == 5.0


def test_summarize_shape():
    stat = summarize([1.0, 2.0, 3.0])
    assert stat["n"] == 3
    assert stat["mean"] == 2.0
    assert stat["min"] == 1.0 and stat["max"] == 3.0
    assert stat["ci_lo"] <= stat["mean"] <= stat["ci_hi"]
    assert stat["values"] == [1.0, 2.0, 3.0]


# ----------------------------------------------------------------------
# metric extraction


def test_extract_metrics_takes_numeric_columns_keyed_by_first():
    result = ExperimentResult("EX", "t", ["mode", "cycles", "label", "ratio"])
    result.add_row(mode="fast", cycles=100, label="x", ratio=1.5)
    result.add_row(mode="slow", cycles=300, label="y", ratio=4.5)
    metrics = extract_metrics(result)
    assert metrics == {
        "fast": {"cycles": 100.0, "ratio": 1.5},
        "slow": {"cycles": 300.0, "ratio": 4.5},
    }


def test_experiment_result_json_includes_stats_when_attached(tmp_path):
    result = ExperimentResult("EX", "t", ["mode", "cycles"])
    result.add_row(mode="fast", cycles=100)
    assert "stats" not in result.to_json_dict()
    result.stats = {"fast": {"cycles": summarize([100.0, 102.0])}}
    doc = json.loads(json.dumps(result.to_json_dict()))
    assert doc["stats"]["fast"]["cycles"]["n"] == 2


# ----------------------------------------------------------------------
# the sweep (serial path; the Pool path differs only in transport)


def test_sweep_serial_collects_per_seed_samples_and_cis():
    sweep = run_sweep("e15", nseeds=2, jobs=1, rounds=4)
    assert sweep.failed_claims == []
    samples = sweep.samples()
    assert set(samples) == {"global", "percpu"}
    assert len(samples["percpu"]["makespan_cycles"]) == 2
    stats = sweep.stats(n_resamples=200)
    stat = stats["percpu"]["makespan_cycles"]
    assert stat["n"] == 2
    assert stat["ci_lo"] <= stat["mean"] <= stat["ci_hi"]
    assert "makespan_cycles" in sweep.render()


def test_sweep_same_seed_reproduces_identical_metrics():
    one = run_sweep("e15", nseeds=1, jobs=1, rounds=4)
    two = run_sweep("e15", nseeds=1, jobs=1, rounds=4)
    assert one.runs[0]["metrics"] == two.runs[0]["metrics"]


def test_sweep_profiled_ships_host_summaries():
    sweep = run_sweep("e15", nseeds=1, jobs=1, profiled=True, rounds=4)
    host = sweep.host_summary()
    assert host is not None
    assert host["sim_cycles"] > 0
    assert "engine.loop" in host["phases"]
    # and the session did not leak into later Systems
    from repro.obs.profile import active_session

    assert active_session() is None


# ----------------------------------------------------------------------
# the trend file


def test_append_trend_accumulates_entries(tmp_path):
    path = str(tmp_path / "BENCH_TREND.json")
    append_trend(path, {"experiment": "E15", "seeds": 3})
    doc = append_trend(path, {"experiment": "E16", "seeds": 3})
    assert [e["experiment"] for e in doc["entries"]] == ["E15", "E16"]
    with open(path) as handle:
        assert len(json.load(handle)["entries"]) == 2


def test_append_trend_survives_corrupt_file(tmp_path):
    path = str(tmp_path / "BENCH_TREND.json")
    with open(path, "w") as handle:
        handle.write("not json {")
    doc = append_trend(path, {"experiment": "E15"})
    assert len(doc["entries"]) == 1


def test_trend_entry_shapes_metrics_and_host():
    sweep = run_sweep("e15", nseeds=1, jobs=1, rounds=4)
    entry = trend_entry("e15", sweep, host={"sim_cycles_per_host_sec": 5.0,
                                            "wall_seconds": 2.0,
                                            "sim_cycles": 10})
    assert entry["experiment"] == "E15"
    assert entry["seeds"] == 1
    assert "mean" in entry["metrics"]["percpu"]["makespan_cycles"]
    assert entry["host"]["sim_cycles_per_host_sec"] == 5.0


# ----------------------------------------------------------------------
# the CI-overlap gate in benchmarks/compare_bench.py


def _load_compare_bench():
    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    path = os.path.join(root, "benchmarks", "compare_bench.py")
    spec = importlib.util.spec_from_file_location("compare_bench", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _bench_json(tmp_path, name, value, ci, with_stats=True):
    doc = {
        "experiment": "E15",
        "columns": ["scheduler", "scan_per_pick"],
        "rows": [{"scheduler": "percpu", "scan_per_pick": value}],
    }
    if with_stats:
        doc["stats"] = {
            "percpu": {
                "scan_per_pick": {
                    "mean": value, "ci_lo": ci[0], "ci_hi": ci[1], "n": 10,
                }
            }
        }
    path = str(tmp_path / name)
    with open(path, "w") as handle:
        json.dump(doc, handle)
    return path


@pytest.mark.parametrize(
    "base_ci,cand_ci,cand,expected",
    [
        # overlapping CIs: not a resolved regression
        ((4.0, 5.0), (4.8, 6.0), 5.4, 0),
        # candidate CI entirely above baseline CI: regression
        ((4.0, 5.0), (5.1, 6.0), 5.5, 1),
        # candidate improved: fine
        ((4.0, 5.0), (3.0, 3.9), 3.5, 0),
    ],
)
def test_compare_bench_gates_on_ci_overlap(tmp_path, base_ci, cand_ci,
                                           cand, expected, capsys):
    compare_bench = _load_compare_bench()
    prev = _bench_json(tmp_path, "prev.json", sum(base_ci) / 2, base_ci)
    cur = _bench_json(tmp_path, "cur.json", cand, cand_ci)
    code = compare_bench.main([
        "--previous", prev, "--current", cur,
        "--key", "scheduler", "--gate", "percpu",
        "--metric", "scan_per_pick",
    ])
    out = capsys.readouterr().out
    assert code == expected
    assert "CI overlap" in out
    if expected:
        assert "REGRESSION" in out
        assert "scan_per_pick" in out  # the delta table names the metric


def test_compare_bench_falls_back_to_threshold_without_stats(tmp_path, capsys):
    compare_bench = _load_compare_bench()
    prev = _bench_json(tmp_path, "prev.json", 4.0, (0, 0), with_stats=False)
    cur = _bench_json(tmp_path, "cur.json", 5.5, (0, 0), with_stats=False)
    code = compare_bench.main([
        "--previous", prev, "--current", cur,
        "--key", "scheduler", "--gate", "percpu",
        "--metric", "scan_per_pick", "--threshold", "0.25",
    ])
    out = capsys.readouterr().out
    assert code == 1
    assert "threshold" in out


def test_compare_bench_host_mode_gates_on_rate(tmp_path, capsys):
    compare_bench = _load_compare_bench()

    def host_json(name, rate):
        path = str(tmp_path / name)
        with open(path, "w") as handle:
            json.dump({"sim_cycles_per_host_sec": rate,
                       "wall_seconds": 1.0}, handle)
        return path

    ok = compare_bench.main([
        "--host",
        "--previous", host_json("p.json", 1_000_000.0),
        "--current", host_json("c.json", 900_000.0),
    ])
    assert ok == 0  # within the generous runner-noise threshold
    bad = compare_bench.main([
        "--host",
        "--previous", host_json("p2.json", 1_000_000.0),
        "--current", host_json("c2.json", 400_000.0),
    ])
    assert bad == 1
    assert "REGRESSION" in capsys.readouterr().out
