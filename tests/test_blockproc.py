"""blockproc/unblockproc and whole-group block (section 8 extension)."""


from repro import PR_SALL, status_code
from repro.errors import ESRCH
from repro.share.prctl import PR_BLOCKGRP, PR_UNBLKGRP
from tests.conftest import run_program


def test_block_suspends_until_unblock():
    def victim(api, base):
        while True:
            yield from api.fetch_add(base, 1)
            yield from api.compute(1000)

    def main(api, out):
        base = yield from api.mmap(4096)
        pid = yield from api.sproc(victim, PR_SALL, base)
        yield from api.compute(20_000)
        yield from api.blockproc(pid)
        yield from api.compute(5_000)  # let it hit a boundary and park
        frozen = yield from api.load_word(base)
        yield from api.compute(50_000)
        still = yield from api.load_word(base)
        out["frozen"] = frozen
        out["still"] = still
        yield from api.unblockproc(pid)
        yield from api.compute(30_000)
        out["after"] = yield from api.load_word(base)
        from repro import SIGKILL

        yield from api.kill(pid, SIGKILL)
        yield from api.wait()
        return 0

    out, _ = run_program(main, ncpus=2)
    assert out["still"] <= out["frozen"] + 1, "blocked proc kept running"
    assert out["after"] > out["still"], "unblock must resume it"


def test_block_counts_nest():
    """Two blockproc calls need two unblockproc calls (IRIX semantics)."""

    def victim(api, base):
        while True:
            yield from api.fetch_add(base, 1)
            yield from api.compute(1000)

    def main(api, out):
        base = yield from api.mmap(4096)
        pid = yield from api.sproc(victim, PR_SALL, base)
        yield from api.compute(10_000)
        yield from api.blockproc(pid)
        yield from api.blockproc(pid)
        yield from api.compute(10_000)
        snap1 = yield from api.load_word(base)
        yield from api.unblockproc(pid)  # count -1: still blocked
        yield from api.compute(30_000)
        snap2 = yield from api.load_word(base)
        out["still_blocked"] = snap2 <= snap1 + 1
        yield from api.unblockproc(pid)  # count 0: runs
        yield from api.compute(30_000)
        snap3 = yield from api.load_word(base)
        out["resumed"] = snap3 > snap2
        from repro import SIGKILL

        yield from api.kill(pid, SIGKILL)
        yield from api.wait()
        return 0

    out, _ = run_program(main, ncpus=2)
    assert out["still_blocked"]
    assert out["resumed"]


def test_self_block_waits_for_peer_unblock():
    def sleeper(api, ctx):
        out, main_pid = ctx
        me = yield from api.getpid()
        yield from api.store_word(out, me)
        yield from api.blockproc(me)  # self-block: suspends right here
        return 42  # only reachable after an unblock

    def main(api, out):
        cell = yield from api.mmap(4096)
        pid = yield from api.sproc(sleeper, PR_SALL, (cell, 0))
        while (yield from api.load_word(cell)) == 0:
            yield from api.yield_cpu()
        yield from api.compute(30_000)
        yield from api.unblockproc(pid)
        _, status = yield from api.wait()
        out["code"] = status_code(status)
        return 0

    out, _ = run_program(main, ncpus=2)
    assert out["code"] == 42


def test_group_block_unblock_via_prctl():
    def member(api, base):
        while True:
            yield from api.fetch_add(base, 1)
            yield from api.compute(500)

    def main(api, out):
        base = yield from api.mmap(4096)
        pids = []
        for _ in range(3):
            pids.append((yield from api.sproc(member, PR_SALL, base)))
        yield from api.compute(20_000)
        yield from api.prctl(PR_BLOCKGRP)
        yield from api.compute(10_000)
        frozen = yield from api.load_word(base)
        yield from api.compute(50_000)
        out["held"] = (yield from api.load_word(base)) <= frozen + 3
        yield from api.prctl(PR_UNBLKGRP)
        yield from api.compute(30_000)
        out["resumed"] = (yield from api.load_word(base)) > frozen + 3
        from repro import SIGKILL

        for pid in pids:
            yield from api.kill(pid, SIGKILL)
        for _ in pids:
            yield from api.wait()
        return 0

    out, _ = run_program(main, ncpus=4)
    assert out["held"], "PR_BLOCKGRP must freeze the other members"
    assert out["resumed"], "PR_UNBLKGRP must thaw them"


def test_blockproc_unknown_pid():
    def main(api, out):
        rc = yield from api.blockproc(999)
        out["errno"] = yield from api.errno()
        return 0

    out, _ = run_program(main)
    assert out["errno"] == ESRCH
