"""Figure 5 / section 6.1: the shared address block, field for field.

The paper prints ``shaddr_t`` in full; these tests pin the structure and
its lifecycle invariants so the reproduction cannot silently drift from
the published layout.
"""

import pytest

from repro import O_CREAT, O_RDWR, PR_SALL
from repro.share.shaddr import SharedAddressBlock
from repro.sync.semaphore import Semaphore
from repro.sync.sharedlock import SharedReadLock
from repro.sync.spinlock import SpinLock
from tests.conftest import run_program


def fresh_block():
    from repro.sim.machine import Machine

    machine = Machine(ncpus=2)

    class _Waker:
        def wakeup(self, proc):
            pass

    return SharedAddressBlock(machine, _Waker())


# ----------------------------------------------------------------------
# the paper's fields


def test_pregion_handling_fields():
    """s_region + the shared-read-lock counters (s_acclck, s_updwait,
    s_acccnt, s_waitcnt) from the paper's listing."""
    block = fresh_block()
    assert block.shared_vm.pregions == []  # s_region
    lock = block.vm_lock
    assert isinstance(lock, SharedReadLock)
    assert isinstance(lock._acclck, SpinLock)  # s_acclck
    assert isinstance(lock._updwait, Semaphore)  # s_updwait
    assert lock._acccnt == 0  # s_acccnt
    assert lock._waitcnt == 0  # s_waitcnt


def test_generic_shared_process_fields():
    """s_plink, s_refcnt, s_listlock."""
    block = fresh_block()
    assert block._members == []  # s_plink
    assert block.s_refcnt == 0
    assert isinstance(block.s_listlock, SpinLock)


def test_file_update_fields():
    """s_fupdsema single-threads open-file updating; s_ofile/s_pofile are
    the descriptor copies."""
    block = fresh_block()
    assert isinstance(block.s_fupdsema, Semaphore)
    assert block.s_fupdsema.value == 1, "semaphore starts open"
    assert block.s_ofile == []
    assert block.s_pofile == []


def test_directory_and_misc_fields():
    """s_cdir, s_rdir, s_rupdlock, s_cmask, s_limit, s_uid, s_gid."""
    block = fresh_block()
    assert block.s_cdir is None
    assert block.s_rdir is None
    assert isinstance(block.s_rupdlock, SpinLock)
    assert block.s_cmask == 0
    assert block.s_limit == 0
    assert block.s_uid == 0
    assert block.s_gid == 0


# ----------------------------------------------------------------------
# lifecycle invariants (paper: "dynamically allocated the first time
# that a process invokes the sproc(2) system call ... thrown away once
# the last member exits")


def test_block_allocated_on_first_sproc_and_freed_with_last_member():
    observed = {}

    def child(api, arg):
        yield from api.compute(100)
        return 0

    def main(api, out):
        assert api.proc.shaddr is None
        yield from api.sproc(child, PR_SALL)
        block = api.proc.shaddr
        out["allocated"] = block is not None
        out["refcnt_during"] = block.s_refcnt
        out["linked"] = api.proc in block._members
        yield from api.wait()
        out["refcnt_after_child"] = block.s_refcnt
        return 0

    out, sim = run_program(main)
    assert out["allocated"]
    assert out["refcnt_during"] == 2
    assert out["linked"]
    assert out["refcnt_after_child"] == 1
    assert sim.stats["groups_freed"] == 1


def test_proc_entry_points_at_block_and_members_share_it():
    blocks = []

    def child(api, arg):
        blocks.append(api.proc.shaddr)
        yield from api.compute(10)
        return 0

    def main(api, out):
        yield from api.sproc(child, PR_SALL)
        blocks.append(api.proc.shaddr)
        yield from api.wait()
        return 0

    run_program(main)
    assert blocks[0] is blocks[1], "one shaddr_t per group"


def test_block_holds_reference_counts_for_files_and_inodes():
    """Paper: 'Those resources which have reference counts (file
    descriptors and inodes) have the count bumped one for the shared
    address block', preventing the updater-exits-early race."""

    def opener(api, out):
        fd = yield from api.open("/f", O_RDWR | O_CREAT)
        file = api.proc.uarea.fdtable.get(fd)
        out["refs_after_open"] = file.refcount
        out["file"] = file
        return 0  # exiting releases *this member's* reference only

    def main(api, out):
        yield from api.sproc(opener, PR_SALL, out)
        yield from api.wait()
        # updater is gone; the block still holds the file for us
        out["refs_after_exit"] = out["file"].refcount
        yield from api.getpid()  # sync our own table from s_ofile
        out["mine"] = api.proc.uarea.fdtable.get(0) is out["file"]
        return 0

    out, _ = run_program(main)
    # opener's table + shaddr copy (+ main's table after its own open sync)
    assert out["refs_after_open"] >= 2
    assert out["refs_after_exit"] >= 1, "the block kept the file alive"
    assert out["mine"]


def test_block_holds_directory_inode_references():
    def mover(api, arg):
        yield from api.chdir("/sub")
        return 0

    def main(api, out):
        yield from api.mkdir("/sub")
        sub = api.kernel.fs.namei("/sub", api.kernel.fs.root)
        before = sub.refcount
        yield from api.sproc(mover, PR_SALL)
        yield from api.wait()
        block = api.proc.shaddr
        out["s_cdir_is_sub"] = block.s_cdir is sub
        out["ref_grew"] = sub.refcount > before
        return 0

    out, _ = run_program(main)
    assert out["s_cdir_is_sub"]
    assert out["ref_grew"]


def test_update_counters_track_resource_changes():
    def changer(api, arg):
        yield from api.umask(0o077)
        yield from api.chdir("/")
        fd = yield from api.open("/x", O_RDWR | O_CREAT)
        return 0

    def main(api, out):
        yield from api.sproc(changer, PR_SALL)
        yield from api.wait()
        block_stats = dict(api.proc.shaddr.updates)
        out["stats"] = block_stats
        return 0

    out, _ = run_program(main)
    assert out["stats"]["umask"] == 1
    assert out["stats"]["dir"] == 1
    assert out["stats"]["fds"] == 1


def test_freeing_nonempty_block_is_rejected():
    from repro.errors import SimulationError

    block = fresh_block()

    class _Proc:
        pid = 1

    block.add_member(_Proc())
    with pytest.raises(SimulationError):
        block.free()
