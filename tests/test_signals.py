"""Signals: handlers, defaults, EINTR, uncatchable SIGKILL."""


from repro import (
    SIG_DFL,
    SIG_IGN,
    SIGCHLD,
    SIGINT,
    SIGKILL,
    SIGPIPE,
    SIGTERM,
    SIGUSR1,
    SIGUSR2,
    status_code,
    status_exited,
    status_signal,
)
from repro.errors import EINTR, EINVAL, EPERM
from tests.conftest import run_program


def test_default_action_terminates():
    def victim(api, arg):
        yield from api.pause()
        return 0

    def main(api, out):
        pid = yield from api.fork(victim)
        yield from api.compute(20_000)
        yield from api.kill(pid, SIGTERM)
        _, status = yield from api.wait()
        out["sig"] = status_signal(status)
        out["exited"] = status_exited(status)
        return 0

    out, _ = run_program(main)
    assert out["sig"] == SIGTERM
    assert not out["exited"]


def test_handler_runs_and_pause_returns_eintr():
    def handler(api, sig):
        yield from api.store_word(0x3000_0000, sig)  # unreachable w/o map
        return

    def victim(api, base):
        hits = []

        def note(api, sig):
            yield from api.store_word(base, sig)

        yield from api.signal(SIGUSR1, note)
        rc = yield from api.pause()
        err = yield from api.errno()
        got = yield from api.load_word(base)
        return 0 if (rc == -1 and err == EINTR and got == SIGUSR1) else 1

    def main(api, out):
        base = yield from api.mmap(4096)
        pid = yield from api.fork(victim, base)
        yield from api.compute(20_000)
        yield from api.kill(pid, SIGUSR1)
        _, status = yield from api.wait()
        out["code"] = status_code(status)
        return 0

    out, _ = run_program(main)
    assert out["code"] == 0


def test_ignored_signal_is_dropped():
    def victim(api, arg):
        yield from api.signal(SIGUSR2, SIG_IGN)
        yield from api.compute(60_000)
        return 9

    def main(api, out):
        pid = yield from api.fork(victim)
        yield from api.compute(10_000)
        yield from api.kill(pid, SIGUSR2)
        _, status = yield from api.wait()
        out["code"] = status_code(status)
        out["exited"] = status_exited(status)
        return 0

    out, _ = run_program(main, ncpus=2)
    assert out["exited"]
    assert out["code"] == 9


def test_sigkill_cannot_be_caught_or_ignored():
    def victim(api, arg):
        rc = yield from api.signal(SIGKILL, SIG_IGN)
        err = yield from api.errno()
        assert rc == -1 and err == EINVAL
        yield from api.pause()
        return 0

    def main(api, out):
        pid = yield from api.fork(victim)
        yield from api.compute(20_000)
        yield from api.kill(pid, SIGKILL)
        _, status = yield from api.wait()
        out["sig"] = status_signal(status)
        return 0

    out, _ = run_program(main)
    assert out["sig"] == SIGKILL


def test_signal_interrupts_cpu_bound_loop():
    """Async delivery: a compute-bound victim dies within a quantum."""

    def victim(api, arg):
        yield from api.compute(100_000_000)  # would run "forever"
        return 0

    def main(api, out):
        pid = yield from api.fork(victim)
        yield from api.compute(30_000)
        yield from api.kill(pid, SIGKILL)
        _, status = yield from api.wait()
        out["sig"] = status_signal(status)
        out["when"] = api.now
        return 0

    out, sim = run_program(main, ncpus=2)
    assert out["sig"] == SIGKILL
    # far less than the 100M-cycle compute
    assert out["when"] < 5_000_000


def test_sigchld_handler_fires_on_child_exit():
    def child(api, arg):
        yield from api.compute(1000)
        return 0

    def main(api, out):
        base = yield from api.mmap(4096)

        def on_chld(api, sig):
            yield from api.store_word(base, sig)

        yield from api.signal(SIGCHLD, on_chld)
        yield from api.fork(child)
        yield from api.wait()
        out["sig"] = yield from api.load_word(base)
        return 0

    out, _ = run_program(main)
    assert out["sig"] == SIGCHLD


def test_kill_permission_denied_across_uids():
    def victim(api, arg):
        yield from api.compute(200_000)
        return 0

    def unprivileged(api, victim_pid):
        yield from api.setuid(100)
        rc = yield from api.kill(victim_pid, SIGTERM)
        err = yield from api.errno()
        return 0 if (rc == -1 and err == EPERM) else 1

    def main(api, out):
        vpid = yield from api.fork(victim)
        yield from api.fork(unprivileged, vpid)
        codes = []
        for _ in range(2):
            _, status = yield from api.wait()
            codes.append(status_code(status))
        out["codes"] = codes
        return 0

    out, _ = run_program(main, ncpus=2)
    assert 0 in out["codes"]


def test_kill_zero_probes_existence():
    def child(api, arg):
        yield from api.compute(50_000)
        return 0

    def main(api, out):
        pid = yield from api.fork(child)
        rc = yield from api.kill(pid, 0)
        out["probe"] = rc
        yield from api.wait()
        return 0

    out, _ = run_program(main, ncpus=2)
    assert out["probe"] == 0


def test_signal_returns_previous_disposition():
    def main(api, out):
        def handler(api, sig):
            return
            yield

        old1 = yield from api.signal(SIGINT, handler)
        old2 = yield from api.signal(SIGINT, SIG_DFL)
        out["old1"] = old1
        out["old2_is_handler"] = old2 is handler
        return 0

    out, _ = run_program(main)
    assert out["old1"] == SIG_DFL
    assert out["old2_is_handler"]


def test_sigpipe_on_write_to_closed_pipe():
    def main(api, out):
        rfd, wfd = yield from api.pipe()
        yield from api.close(rfd)
        yield from api.signal(SIGPIPE, SIG_IGN)
        rc = yield from api.write(wfd, b"data")
        out["rc"] = rc
        out["errno"] = yield from api.errno()
        return 0

    out, _ = run_program(main)
    from repro.errors import EPIPE

    assert out["rc"] == -1
    assert out["errno"] == EPIPE


def test_sigpipe_default_kills_writer():
    def writer(api, wfd):
        yield from api.write(wfd, b"data")
        return 0

    def main(api, out):
        rfd, wfd = yield from api.pipe()
        yield from api.close(rfd)
        yield from api.fork(writer, wfd)
        _, status = yield from api.wait()
        out["sig"] = status_signal(status)
        return 0

    out, _ = run_program(main)
    assert out["sig"] == SIGPIPE


def test_signal_interrupts_blocking_read():
    def reader(api, rfd):
        def handler(api, sig):
            return
            yield

        yield from api.signal(SIGUSR1, handler)
        rc = yield from api.read(rfd, 10)  # blocks: no writer data
        err = yield from api.errno()
        return 0 if (rc == -1 and err == EINTR) else 1

    def main(api, out):
        rfd, wfd = yield from api.pipe()
        pid = yield from api.fork(reader, rfd)
        yield from api.compute(30_000)
        yield from api.kill(pid, SIGUSR1)
        _, status = yield from api.wait()
        out["code"] = status_code(status)
        return 0

    out, _ = run_program(main, ncpus=2)
    assert out["code"] == 0


def test_handler_not_interrupted_by_second_catchable_signal():
    """Classic return-to-user rule: a signal posted while a handler runs
    stays pending until the handler finishes."""

    def victim(api, base):
        def h1(api, sig):
            yield from api.store_word(base, 1)  # entered
            yield from api.compute(120_000)  # long handler
            yield from api.store_word(base + 4, 1)  # finished

        def h2(api, sig):
            first_done = yield from api.load_word(base + 4)
            yield from api.store_word(base + 8, 10 + first_done)

        yield from api.signal(SIGUSR1, h1)
        yield from api.signal(SIGUSR2, h2)
        yield from api.store_word(base + 12, 1)  # both handlers armed
        yield from api.compute(500_000)
        return 0

    def main(api, out):
        base = yield from api.mmap(4096)
        pid = yield from api.sproc(victim, 0xFFFF, base)
        while (yield from api.load_word(base + 12)) == 0:
            yield from api.yield_cpu()
        while (yield from api.load_word(base)) == 0:
            yield from api.kill(pid, SIGUSR1)
            yield from api.compute(20_000)
        yield from api.kill(pid, SIGUSR2)  # posted mid-handler
        yield from api.wait()
        out["h2_saw"] = yield from api.load_word(base + 8)
        return 0

    out, _ = run_program(main, ncpus=2)
    assert out["h2_saw"] == 11, "h2 must run only after h1 completed"


def test_sigkill_interrupts_a_running_handler():
    def victim(api, base):
        def slow_handler(api, sig):
            yield from api.store_word(base, 1)
            yield from api.compute(10_000_000)  # effectively forever

        yield from api.signal(SIGUSR1, slow_handler)
        yield from api.compute(10_000_000)
        return 0

    def main(api, out):
        base = yield from api.mmap(4096)
        pid = yield from api.sproc(victim, 0xFFFF, base)
        yield from api.compute(20_000)
        yield from api.kill(pid, SIGUSR1)
        while (yield from api.load_word(base)) == 0:
            yield from api.yield_cpu()
        yield from api.kill(pid, SIGKILL)  # must not wait for the handler
        _, status = yield from api.wait()
        out["sig"] = status_signal(status)
        out["when"] = api.now
        return 0

    out, _ = run_program(main, ncpus=2)
    assert out["sig"] == SIGKILL
    assert out["when"] < 3_000_000, "SIGKILL must cut the handler short"
