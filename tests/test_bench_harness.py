"""The benchmark harness itself: tables, claims, persistence."""

import os

import pytest

from repro.bench.harness import ExperimentResult, mean, ratio


def make_result():
    result = ExperimentResult("EX", "a test experiment", ["name", "value"])
    result.add_row(name="alpha", value=10)
    result.add_row(name="beta", value=2_000_000)
    return result


def test_render_contains_rows_and_title():
    text = make_result().render()
    assert "EX — a test experiment" in text
    assert "alpha" in text
    assert "2,000,000" in text


def test_check_passes_when_all_claims_hold():
    result = make_result()
    result.claim("water is wet", True)
    assert result.check() is result


def test_check_raises_listing_failed_claims():
    result = make_result()
    result.claim("good", True)
    result.claim("bad one", False, "details here")
    with pytest.raises(AssertionError) as excinfo:
        result.check()
    message = str(excinfo.value)
    assert "bad one" in message
    assert "details here" in message
    assert "good" not in message.split("FAILED")[0]


def test_render_marks_claim_status():
    result = make_result()
    result.claim("holds", True)
    result.claim("fails", False)
    text = result.render()
    assert "[ok  ] holds" in text
    assert "[FAIL] fails" in text


def test_notes_rendered():
    result = make_result()
    result.note("this caveat matters")
    assert "note: this caveat matters" in result.render()


def test_save_writes_file(tmp_path):
    result = make_result()
    path = result.save(directory=str(tmp_path))
    assert os.path.exists(path)
    with open(path) as handle:
        assert "a test experiment" in handle.read()


def test_float_formatting():
    result = ExperimentResult("EF", "floats", ["x"])
    result.add_row(x=3.14159)
    assert "3.14" in result.render()


def test_mean_and_ratio_helpers():
    assert mean([1, 2, 3]) == 2.0
    assert mean([]) == 0.0
    assert ratio(10, 4) == 2.5
    assert ratio(1, 0) == float("inf")


def test_all_experiments_registered():
    from repro.bench import ALL_EXPERIMENTS

    assert set(ALL_EXPERIMENTS) == {
        "E1", "E2", "E3", "E4", "E5", "E6", "E7",
        "E8", "E9", "E10", "E11", "E12", "E13", "E14", "E15", "E16",
        "E17",
    }
    for func in ALL_EXPERIMENTS.values():
        assert callable(func)


def test_cli_list(capsys):
    from repro.bench.__main__ import main

    assert main(["prog", "--list"]) == 0
    out = capsys.readouterr().out
    assert "E1" in out and "E13" in out


def test_cli_rejects_unknown(capsys):
    from repro.bench.__main__ import main

    assert main(["prog", "E99"]) == 2


def test_cli_runs_one_experiment(tmp_path, monkeypatch, capsys):
    monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
    from repro.bench.__main__ import main

    assert main(["prog", "E2"]) == 0
    assert (tmp_path / "e2.txt").exists()
