"""Shared test helpers.

Most kernel-level tests run a small guest program inside a fresh
:class:`~repro.system.System` and inspect what it wrote into a host-side
``out`` dict (the zero-cost instrumentation channel).
"""

from __future__ import annotations

import pytest

from repro import System


def run_program(main, ncpus=2, out=None, arg=None, sim=None, **system_kwargs):
    """Boot a system, run ``main(api, out)`` as init, drain the engine.

    Returns ``(out, sim)``.  ``main`` may also take ``(api, arg)`` when
    ``arg`` is given explicitly.
    """
    if out is None:
        out = {}
    if sim is None:
        sim = System(ncpus=ncpus, **system_kwargs)
    passed = out if arg is None else arg
    sim.spawn(main, passed, name="init")
    sim.run()
    return out, sim


@pytest.fixture
def sim2():
    return System(ncpus=2)


@pytest.fixture
def sim4():
    return System(ncpus=4)
