"""uwait/uwake (futex-style extension) and the hybrid lock."""


from repro import PR_SALL, status_code
from repro.errors import EINTR
from repro.runtime import HybridLock
from tests.conftest import run_program


def test_uwait_sleeps_until_uwake():
    def waiter(api, base):
        rc = yield from api.uwait(base, 0)  # word is 0: sleep
        value = yield from api.load_word(base)
        return 10 + rc if value == 7 else 99

    def main(api, out):
        base = yield from api.mmap(4096)
        pid = yield from api.sproc(waiter, PR_SALL, base)
        yield from api.compute(50_000)
        yield from api.store_word(base, 7)
        woken = yield from api.uwake(base, 1)
        out["woken"] = woken
        _, status = yield from api.wait()
        out["code"] = status_code(status)
        return 0

    out, sim = run_program(main, ncpus=2)
    assert out["woken"] == 1
    assert out["code"] == 11, "uwait must return 1 after a real sleep"
    assert sim.stats["uwaits"] == 1


def test_uwait_returns_immediately_on_changed_word():
    def main(api, out):
        base = yield from api.mmap(4096)
        yield from api.store_word(base, 5)
        rc = yield from api.uwait(base, 0)  # word is 5, not 0
        out["rc"] = rc
        return 0

    out, sim = run_program(main)
    assert out["rc"] == 0
    assert sim.stats["uwaits"] == 0


def test_uwake_with_no_sleepers_is_zero():
    def main(api, out):
        base = yield from api.mmap(4096)
        out["woken"] = yield from api.uwake(base, 4)
        return 0

    out, _ = run_program(main)
    assert out["woken"] == 0


def test_uwake_wakes_requested_count():
    def waiter(api, base):
        yield from api.uwait(base, 0)
        return 0

    def main(api, out):
        base = yield from api.mmap(4096)
        for _ in range(3):
            yield from api.sproc(waiter, PR_SALL, base)
        yield from api.compute(60_000)  # all three asleep
        yield from api.store_word(base, 1)
        first = yield from api.uwake(base, 2)
        second = yield from api.uwake(base, 5)
        out["counts"] = (first, second)
        for _ in range(3):
            yield from api.wait()
        return 0

    out, _ = run_program(main, ncpus=2)
    assert out["counts"] == (2, 1)


def test_uwait_interrupted_by_signal():
    from repro import SIGUSR1

    def waiter(api, base):
        def handler(api, sig):
            return
            yield

        yield from api.signal(SIGUSR1, handler)
        rc = yield from api.uwait(base, 0)
        err = yield from api.errno()
        return 0 if (rc == -1 and err == EINTR) else 1

    def main(api, out):
        base = yield from api.mmap(4096)
        pid = yield from api.sproc(waiter, PR_SALL, base)
        yield from api.compute(40_000)
        yield from api.kill(pid, SIGUSR1)
        _, status = yield from api.wait()
        out["code"] = status_code(status)
        return 0

    out, _ = run_program(main, ncpus=2)
    assert out["code"] == 0


def test_no_lost_wakeup_race():
    """uwake landing between the waiter's user-mode check and its uwait
    must not be lost (the value re-check inside the kernel)."""

    def waiter(api, base):
        # no user-mode pre-check at all: rely on the kernel's
        value = yield from api.uwait(base, 0)
        return 0

    def main(api, out):
        base = yield from api.mmap(4096)
        pid = yield from api.sproc(waiter, PR_SALL, base)
        # immediately flip and wake — the waiter may not even be asleep yet
        yield from api.store_word(base, 1)
        yield from api.uwake(base, 1)
        _, status = yield from api.wait()
        out["done"] = True
        return 0

    out, _ = run_program(main, ncpus=1)  # 1 CPU maximizes the race window
    assert out["done"]


def test_hybrid_lock_mutual_exclusion_oversubscribed():
    def member(api, base):
        lock = HybridLock(base, spins=4)
        for _ in range(25):
            yield from lock.acquire(api)
            value = yield from api.load_word(base + 8)
            yield from api.compute(3_000)  # long hold: preemption likely
            yield from api.store_word(base + 8, value + 1)
            yield from lock.release(api)
        return 0

    def main(api, out):
        base = yield from api.mmap(4096)
        nmembers = 6
        for _ in range(nmembers):
            yield from api.sproc(member, PR_SALL, base)
        for _ in range(nmembers):
            yield from api.wait()
        out["count"] = yield from api.load_word(base + 8)
        out["expected"] = nmembers * 25
        return 0

    out, sim = run_program(main, ncpus=2)
    assert out["count"] == out["expected"]
    assert sim.stats["uwaits"] > 0, "the blocking path must actually run"


def test_waits_keyed_per_address():
    """Waiters on different words are independent."""

    def waiter(api, addr):
        yield from api.uwait(addr, 0)
        return 0

    def main(api, out):
        base = yield from api.mmap(4096)
        yield from api.sproc(waiter, PR_SALL, base)
        yield from api.sproc(waiter, PR_SALL, base + 64)
        yield from api.compute(50_000)
        woken_wrong = yield from api.uwake(base + 128, 5)
        yield from api.store_word(base, 1)
        woken_a = yield from api.uwake(base, 5)
        yield from api.store_word(base + 64, 1)
        woken_b = yield from api.uwake(base + 64, 5)
        out["counts"] = (woken_wrong, woken_a, woken_b)
        yield from api.wait()
        yield from api.wait()
        return 0

    out, _ = run_program(main, ncpus=2)
    assert out["counts"] == (0, 1, 1)
