"""Reproducibility: identical workloads must produce identical timelines."""

import pytest

from repro import PR_SALL
from repro.sim.costs import CostModel
from tests.conftest import run_program


def _mixed_workload(api, out):
    from repro.runtime import WorkQueue

    queue = yield from WorkQueue.create(api, 32)
    base = yield from api.mmap(4096)

    def worker(api, ctx):
        qbase, counter = ctx
        q = yield from WorkQueue.attach(api, qbase)
        while True:
            item = yield from q.pop(api)
            if item is None:
                return 0
            yield from api.compute(item * 111)
            yield from api.fetch_add(counter, item)

    for _ in range(3):
        yield from api.sproc(worker, PR_SALL, (queue.base, base))
    for item in range(1, 13):
        yield from queue.push(api, item)
    yield from queue.close(api)
    for _ in range(3):
        yield from api.wait()
    out["sum"] = yield from api.load_word(base)
    out["cycles"] = api.now
    return 0


def _run_once():
    out, sim = run_program(_mixed_workload, ncpus=4)
    return out, dict(sim.stats)


def test_identical_runs_produce_identical_cycles_and_stats():
    (out1, stats1) = _run_once()
    (out2, stats2) = _run_once()
    assert out1 == out2
    assert stats1 == stats2


def test_results_deterministic_across_many_runs():
    results = {tuple(sorted(_run_once()[0].items())) for _ in range(3)}
    assert len(results) == 1


def test_cost_model_changes_timing_but_not_results():
    slow = CostModel(context_switch=5000)
    out_fast, _ = run_program(_mixed_workload, ncpus=4)
    out_slow, _ = run_program(_mixed_workload, ncpus=4, costs=slow)
    assert out_fast["sum"] == out_slow["sum"]
    assert out_fast["cycles"] != out_slow["cycles"]


def test_cost_model_validation():
    with pytest.raises(ValueError):
        CostModel(mem_access=-1).validate()
    model = CostModel()
    clone = model.replace(quantum=50_000)
    assert clone.quantum == 50_000
    assert model.quantum == 100_000
    assert "quantum" in model.as_dict()
