"""The failpoint registry, the sweep driver, and injected error paths."""

import pytest

from repro import PR_SALL
from repro.check.inject import run_injected, sweep
from repro.check.invariants import audit_leaks
from repro.check.scenarios import SCENARIOS
from repro.errors import EAGAIN, EMFILE, ENOMEM
from repro.fs.file import O_CREAT, O_RDWR
from repro.inject import SITES, FailPlan, FailPointRegistry
from tests.conftest import run_program


# ----------------------------------------------------------------------
# policy parsing and registry mechanics

def test_policy_nth_fires_exactly_once():
    plan = FailPlan("fd.alloc", "nth:3")
    assert [plan.decide(n) for n in range(1, 6)] == [
        False, False, True, False, False
    ]
    assert not plan.decide(3)  # spent: never again


def test_policy_every():
    plan = FailPlan("fd.alloc", "every:2")
    assert [plan.decide(n) for n in range(1, 6)] == [
        False, True, False, True, False
    ]


def test_policy_prob_is_reproducible():
    def one_sequence():
        plan = FailPlan("fd.alloc", "prob:0.5:7")
        return [plan.decide(n) for n in range(1, 20)]

    decisions = [one_sequence(), one_sequence()]
    assert decisions[0] == decisions[1]
    assert any(decisions[0]) and not all(decisions[0])


def test_bad_site_and_bad_policy_rejected():
    with pytest.raises(ValueError):
        FailPlan("no.such.site", "nth:1")
    for bad in ("nth", "nth:0", "nth:x", "always", "prob:1.5", "every:-1"):
        with pytest.raises(ValueError):
            FailPlan("fd.alloc", bad)


def test_disarmed_registry_counts_nothing():
    registry = FailPointRegistry()
    assert not registry.fire("fd.alloc")
    assert registry.hits == {} and registry.fired == {}


def test_recording_counts_without_firing():
    registry = FailPointRegistry()
    registry.start_recording()
    for _ in range(4):
        assert not registry.fire("fd.alloc")
    assert registry.hits == {"fd.alloc": 4}
    assert registry.fired == {} and registry.total_fired() == 0


def test_fired_counter_reaches_kstat():
    def main(api, out):
        base = yield from api.mmap(4096)
        if base != -1:
            yield from api.store_word(base, 7)
        return 0

    out, sim = run_program(main, inject={"frames.alloc": "nth:1"})
    # the first frame the workload needs trips the site
    assert sim.machine.inject.total_fired() >= 1
    assert sim.kstat.snapshot()["kernel"][0]["inject_fired"] >= 1
    assert sim.kstat.snapshot()["inject"][0]["frames.alloc"] >= 1


# ----------------------------------------------------------------------
# determinism: a disarmed (or recording, or never-firing) run is
# cycle-identical to one with no injection configured at all

def test_injection_disabled_is_cycle_identical():
    scenario = SCENARIOS["fault-storm"]
    base_out, base_sim = scenario.run()
    armed_out, armed_sim = scenario.run(inject={"frames.alloc": "nth:999999"})
    rec_out, rec_sim = scenario.run(record=True)
    assert base_sim.engine.now == armed_sim.engine.now == rec_sim.engine.now
    assert base_out == armed_out == rec_out
    assert rec_sim.machine.inject.hits  # the recording pass did observe


# ----------------------------------------------------------------------
# injected failures surface as errno and unwind cleanly

def test_fd_alloc_injection_returns_emfile_then_recovers():
    def main(api, out):
        rc = yield from api.open("/f", O_RDWR | O_CREAT)
        out["rc1"], out["err"] = rc, (yield from api.errno())
        rc = yield from api.open("/f", O_RDWR | O_CREAT)
        out["rc2"] = rc
        yield from api.close(rc)
        return 0

    out, sim = run_program(main, inject={"fd.alloc": "nth:1"})
    assert out["rc1"] == -1 and out["err"] == EMFILE
    assert out["rc2"] >= 0
    assert audit_leaks(sim) == []


@pytest.mark.parametrize(
    "site,errno",
    [
        ("sproc.proc", EAGAIN),
        ("sproc.shaddr", EAGAIN),
        ("sproc.stack", ENOMEM),
        ("sproc.uarea", ENOMEM),
        ("sproc.kstack", ENOMEM),
    ],
)
def test_sproc_partial_failure_unwinds(site, errno):
    def member(api, arg):
        yield from api.compute(500)
        return 0

    def main(api, out):
        rc = yield from api.sproc(member, PR_SALL)
        out["rc1"], out["err"] = rc, (yield from api.errno())
        rc = yield from api.sproc(member, PR_SALL)
        out["rc2"] = rc
        if rc != -1:
            yield from api.wait()
        return 0

    out, sim = run_program(main, inject={site: "nth:1"})
    assert out["rc1"] == -1 and out["err"] == errno
    assert out["rc2"] != -1, "sproc must work again after the unwind"
    stats = sim.kernel.stats
    assert stats["groups_created"] == stats["groups_freed"]
    assert audit_leaks(sim) == []


def test_fork_uarea_injection_releases_cow_frames():
    def child(api, arg):
        yield from api.compute(100)
        return 0

    def main(api, out):
        rc = yield from api.fork(child)
        out["rc1"], out["err"] = rc, (yield from api.errno())
        rc = yield from api.fork(child)
        out["rc2"] = rc
        if rc != -1:
            yield from api.wait()
        return 0

    out, sim = run_program(main, inject={"fork.uarea": "nth:1"})
    assert out["rc1"] == -1 and out["err"] == ENOMEM
    assert out["rc2"] != -1
    assert audit_leaks(sim) == []


# ----------------------------------------------------------------------
# the sweep driver

def test_run_injected_classifies_clean_runs():
    result = run_injected(SCENARIOS["fault-storm"], "sproc.proc", "nth:1")
    assert result.ok and result.fired == 1


def test_run_injected_tolerates_kill_site_stall():
    # SIGKILL at a syscall boundary may stall the guest protocol; the
    # verdict is ok as long as kernel invariants hold on the stuck state.
    result = run_injected(SCENARIOS["fault-storm"], "syscall.entry", "nth:5")
    assert result.ok


def test_sweep_smoke():
    report = sweep(
        ["fault-storm"], site_names=["sproc.proc", "frames.alloc"]
    )
    assert report.ok
    assert set(report.site_coverage) == {"sproc.proc", "frames.alloc"}
    data = report.to_dict()
    assert data["ok"] and data["runs"] > 1
    assert "PASS" in report.render()


def test_cli_inject_single_run():
    from repro.check.__main__ import main

    rc = main([
        "inject", "--scenario", "fd-churn", "--site", "fd.alloc",
        "--policy", "nth:3",
    ])
    assert rc == 0


def test_cli_rejects_unknown_site():
    from repro.check.__main__ import main

    assert main(["inject", "--site", "no.such.site"]) == 2


def test_every_site_is_documented():
    for site, description in SITES.items():
        assert description, site
