"""File system calls: open/read/write/seek/dup/pipe and friends."""


from repro import (
    O_APPEND,
    O_CREAT,
    O_EXCL,
    O_RDONLY,
    O_RDWR,
    O_TRUNC,
    O_WRONLY,
    SEEK_CUR,
    SEEK_END,
    SEEK_SET,
    )
from repro.errors import (
    EACCES,
    EBADF,
    EEXIST,
    EFBIG,
    EISDIR,
    ENOENT,
    ENOTDIR,
    EPERM,
    ESPIPE,
)
from tests.conftest import run_program


def test_open_missing_file_is_enoent():
    def main(api, out):
        rc = yield from api.open("/missing")
        out["rc"] = rc
        out["errno"] = yield from api.errno()
        return 0

    out, _ = run_program(main)
    assert out["rc"] == -1
    assert out["errno"] == ENOENT


def test_create_write_read_roundtrip():
    def main(api, out):
        fd = yield from api.open("/f", O_RDWR | O_CREAT)
        n = yield from api.write(fd, b"some bytes here")
        yield from api.lseek(fd, 0, SEEK_SET)
        data = yield from api.read(fd, 64)
        out["n"] = n
        out["data"] = data
        return 0

    out, _ = run_program(main)
    assert out["n"] == 15
    assert out["data"] == b"some bytes here"


def test_o_excl_on_existing_file():
    def main(api, out):
        fd = yield from api.creat("/f")
        yield from api.close(fd)
        rc = yield from api.open("/f", O_RDWR | O_CREAT | O_EXCL)
        out["errno"] = yield from api.errno()
        out["rc"] = rc
        return 0

    out, _ = run_program(main)
    assert out["rc"] == -1
    assert out["errno"] == EEXIST


def test_o_trunc_clears_contents():
    def main(api, out):
        fd = yield from api.open("/f", O_RDWR | O_CREAT)
        yield from api.write(fd, b"old contents")
        yield from api.close(fd)
        fd = yield from api.open("/f", O_RDWR | O_TRUNC)
        st = yield from api.fstat(fd)
        out["size"] = st["size"]
        return 0

    out, _ = run_program(main)
    assert out["size"] == 0


def test_o_append_always_writes_at_end():
    def main(api, out):
        fd = yield from api.open("/f", O_RDWR | O_CREAT)
        yield from api.write(fd, b"12345")
        fd2 = yield from api.open("/f", O_WRONLY | O_APPEND)
        yield from api.write(fd2, b"END")
        yield from api.lseek(fd, 0, SEEK_SET)
        out["data"] = yield from api.read(fd, 64)
        return 0

    out, _ = run_program(main)
    assert out["data"] == b"12345END"


def test_lseek_whences_and_espipe():
    def main(api, out):
        fd = yield from api.open("/f", O_RDWR | O_CREAT)
        yield from api.write(fd, b"0123456789")
        out["cur"] = yield from api.lseek(fd, -3, SEEK_CUR)
        out["end"] = yield from api.lseek(fd, -2, SEEK_END)
        out["set"] = yield from api.lseek(fd, 4, SEEK_SET)
        rfd, wfd = yield from api.pipe()
        rc = yield from api.lseek(rfd, 0, SEEK_SET)
        out["pipe_rc"] = rc
        out["pipe_errno"] = yield from api.errno()
        return 0

    out, _ = run_program(main)
    assert out["cur"] == 7
    assert out["end"] == 8
    assert out["set"] == 4
    assert out["pipe_rc"] == -1
    assert out["pipe_errno"] == ESPIPE


def test_read_from_writeonly_fd_is_ebadf():
    def main(api, out):
        fd = yield from api.open("/f", O_WRONLY | O_CREAT)
        rc = yield from api.read(fd, 4)
        out["errno"] = yield from api.errno()
        out["rc"] = rc
        return 0

    out, _ = run_program(main)
    assert out["rc"] == -1
    assert out["errno"] == EBADF


def test_dup_shares_offset_dup2_replaces():
    def main(api, out):
        fd = yield from api.open("/f", O_RDWR | O_CREAT)
        yield from api.write(fd, b"abcdef")
        fd2 = yield from api.dup(fd)
        yield from api.lseek(fd, 1, SEEK_SET)
        out["via_dup"] = yield from api.read(fd2, 2)  # shared offset
        fd3 = yield from api.open("/f")
        yield from api.dup2(fd, fd3)
        out["after_dup2"] = yield from api.read(fd3, 2)
        return 0

    out, _ = run_program(main)
    assert out["via_dup"] == b"bc"
    assert out["after_dup2"] == b"de"


def test_guest_buffer_read_write_v():
    def main(api, out):
        buf = yield from api.mmap(4096)
        fd = yield from api.open("/f", O_RDWR | O_CREAT)
        yield from api.store(buf, b"guest!")
        n = yield from api.write_v(fd, buf, 6)
        yield from api.lseek(fd, 0, SEEK_SET)
        n2 = yield from api.read_v(fd, buf + 100, 6)
        out["n"] = (n, n2)
        out["copy"] = yield from api.load(buf + 100, 6)
        return 0

    out, _ = run_program(main)
    assert out["n"] == (6, 6)
    assert out["copy"] == b"guest!"


def test_mkdir_chdir_relative_paths():
    def main(api, out):
        yield from api.mkdir("/a")
        yield from api.mkdir("/a/b")
        yield from api.chdir("/a/b")
        fd = yield from api.creat("deep")
        yield from api.close(fd)
        st = yield from api.stat("/a/b/deep")
        out["ok"] = st != -1
        st2 = yield from api.stat("../b/deep")
        out["dotdot"] = st2 != -1
        return 0

    out, _ = run_program(main)
    assert out["ok"] and out["dotdot"]


def test_chdir_to_file_is_enotdir():
    def main(api, out):
        fd = yield from api.creat("/plain")
        yield from api.close(fd)
        rc = yield from api.chdir("/plain")
        out["errno"] = yield from api.errno()
        return 0

    out, _ = run_program(main)
    assert out["errno"] == ENOTDIR


def test_chroot_confines_lookups():
    def main(api, out):
        yield from api.mkdir("/jail")
        fd = yield from api.creat("/jail/inside")
        yield from api.close(fd)
        fd = yield from api.creat("/outside")
        yield from api.close(fd)
        yield from api.chroot("/jail")
        yield from api.chdir("/")
        out["inside"] = (yield from api.stat("/inside")) != -1
        out["outside_rc"] = yield from api.stat("/outside")
        out["escape_rc"] = yield from api.stat("../../outside")
        return 0

    out, _ = run_program(main)
    assert out["inside"]
    assert out["outside_rc"] == -1
    assert out["escape_rc"] == -1, "dot-dot must not escape the chroot"


def test_chroot_requires_root():
    def main(api, out):
        yield from api.mkdir("/jail")
        yield from api.setuid(10)
        rc = yield from api.chroot("/jail")
        out["errno"] = yield from api.errno()
        return 0

    out, _ = run_program(main)
    assert out["errno"] == EPERM


def test_umask_masks_creation_mode():
    def main(api, out):
        yield from api.umask(0o027)
        fd = yield from api.open("/f", O_RDWR | O_CREAT, 0o777)
        st = yield from api.fstat(fd)
        out["mode"] = st["mode"]
        return 0

    out, _ = run_program(main)
    assert out["mode"] == 0o750


def test_permission_checks_respect_uid():
    def main(api, out):
        fd = yield from api.open("/secret", O_RDWR | O_CREAT, 0o600)
        yield from api.close(fd)
        yield from api.setuid(42)
        rc = yield from api.open("/secret", O_RDONLY)
        out["errno"] = yield from api.errno()
        return 0

    out, _ = run_program(main)
    assert out["errno"] == EACCES


def test_ulimit_blocks_big_writes():
    def main(api, out):
        yield from api.ulimit(2, 10)
        fd = yield from api.open("/f", O_RDWR | O_CREAT)
        ok = yield from api.write(fd, b"123456789")
        rc = yield from api.write(fd, b"XY")  # would pass offset 10
        out["ok"] = ok
        out["rc"] = rc
        out["errno"] = yield from api.errno()
        return 0

    out, _ = run_program(main)
    assert out["ok"] == 9
    assert out["rc"] == -1
    assert out["errno"] == EFBIG


def test_unlink_removes_name_but_open_fd_survives():
    def main(api, out):
        fd = yield from api.open("/f", O_RDWR | O_CREAT)
        yield from api.write(fd, b"still here")
        yield from api.unlink("/f")
        out["stat_rc"] = yield from api.stat("/f")
        yield from api.lseek(fd, 0, SEEK_SET)
        out["data"] = yield from api.read(fd, 64)
        return 0

    out, _ = run_program(main)
    assert out["stat_rc"] == -1
    assert out["data"] == b"still here"


def test_write_to_directory_fd_is_eisdir():
    def main(api, out):
        yield from api.mkdir("/d")
        rc = yield from api.open("/d", O_WRONLY)
        out["errno"] = yield from api.errno()
        return 0

    out, _ = run_program(main)
    assert out["errno"] == EISDIR


# ----------------------------------------------------------------------
# pipes


def test_pipe_roundtrip_and_eof():
    def writer(api, wfd):
        yield from api.write(wfd, b"through the pipe")
        yield from api.close(wfd)
        return 0

    def main(api, out):
        rfd, wfd = yield from api.pipe()
        yield from api.fork(writer, wfd)
        yield from api.close(wfd)
        chunks = []
        while True:
            chunk = yield from api.read(rfd, 7)
            if not chunk:
                break
            chunks.append(chunk)
        out["data"] = b"".join(chunks)
        yield from api.wait()
        return 0

    out, _ = run_program(main)
    assert out["data"] == b"through the pipe"


def test_pipe_blocks_writer_when_full():
    from repro.fs.pipe import PIPE_BUF

    def writer(api, wfd):
        # two full buffers: must block until the reader drains
        yield from api.write(wfd, b"x" * (PIPE_BUF * 2))
        yield from api.close(wfd)
        return 0

    def main(api, out):
        rfd, wfd = yield from api.pipe()
        yield from api.fork(writer, wfd)
        yield from api.close(wfd)
        total = 0
        while True:
            chunk = yield from api.read(rfd, 1024)
            if not chunk:
                break
            total += len(chunk)
        out["total"] = total
        yield from api.wait()
        return 0

    out, _ = run_program(main, ncpus=2)
    from repro.fs.pipe import PIPE_BUF

    assert out["total"] == PIPE_BUF * 2


def test_pipe_reader_blocks_until_data():
    def writer(api, wfd):
        yield from api.compute(40_000)
        yield from api.write(wfd, b"late")
        yield from api.close(wfd)
        return 0

    def main(api, out):
        rfd, wfd = yield from api.pipe()
        yield from api.fork(writer, wfd)
        yield from api.close(wfd)
        start = api.now
        data = yield from api.read(rfd, 4)
        out["waited"] = api.now - start
        out["data"] = data
        yield from api.wait()
        return 0

    out, _ = run_program(main, ncpus=2)
    assert out["data"] == b"late"
    assert out["waited"] >= 30_000
