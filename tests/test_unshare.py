"""Transactional PR_UNSHARE / PR_SETSHMASK: the dynamic sharing
lifecycle, its error paths, and the crash-safe partial-failure unwinds.

The injection tests are the heart: each named ``unshare.*`` failpoint is
armed on its first hit and the caller must come out fully in the group —
same mask, same membership, sharing still functional — with a retry of
the same unshare succeeding and the post-run audit spotless.
"""

import pytest

from repro import (
    O_CREAT,
    O_RDWR,
    PR_GETNSHARE,
    PR_GETSHMASK,
    PR_SADDR,
    PR_SALL,
    PR_SDIR,
    PR_SFDS,
    PR_SETSHMASK,
    PR_UNSHARE,
    System,
    status_code,
)
from repro.errors import EBADF, EINVAL, ENOMEM
from repro.kernel.flags import ALL_SYNC
from repro.share.mask import NONVM_SYNC_BITS, PR_PRIVDATA
from repro.check.invariants import (
    audit_leaks,
    check_shmask_consistency,
    run_invariants,
)
from tests.conftest import run_program


# ----------------------------------------------------------------------
# fd table detach


def test_unshare_fds_detaches_descriptor_table():
    def member(api, out):
        fd = yield from api.open("/pre", O_RDWR | O_CREAT)
        out["fd"] = fd
        rc = yield from api.prctl(PR_UNSHARE, PR_SFDS)
        out["rc"] = rc
        # opened through the now-private table: must NOT propagate
        fd2 = yield from api.open("/post", O_RDWR | O_CREAT)
        out["fd2"] = fd2
        yield from api.write(fd2, b"private")
        return 0

    def main(api, out):
        yield from api.sproc(member, PR_SALL, out)
        yield from api.wait()
        yield from api.getpid()  # sync entry: pick up pending fd updates
        # /pre was opened while sharing: the slot must be here
        data = yield from api.read(out["fd"], 8)
        out["pre_ok"] = data != -1
        # /post was opened after the detach: the slot must NOT be here
        rc = yield from api.read(out["fd2"], 8)
        out["post_rc"] = rc
        out["post_errno"] = yield from api.errno()
        return 0

    out, sim = run_program(main, ncpus=2)
    assert out["rc"] == PR_SALL & ~PR_SFDS
    assert out["pre_ok"]
    assert out["post_rc"] == -1 and out["post_errno"] == EBADF
    assert sim.kernel.stats["unshares"] == 1
    assert sim.kernel.stats["unshare_unwinds"] == 0
    assert audit_leaks(sim) == []


# ----------------------------------------------------------------------
# PR_SADDR detach


def test_saddr_detach_gives_private_cow_image():
    def member(api, arg):
        out, base = arg
        rc = yield from api.prctl(PR_UNSHARE, PR_SADDR)
        out["rc"] = rc
        out["mask"] = yield from api.prctl(PR_GETSHMASK)
        out["nshare"] = yield from api.prctl(PR_GETNSHARE)
        out["seen"] = yield from api.load_word(base)  # COW read of 111
        yield from api.store_word(base, 222)  # private COW break
        out["member_view"] = yield from api.load_word(base)
        return 0

    def main(api, out):
        base = yield from api.mmap(4096)
        yield from api.store_word(base, 111)
        yield from api.sproc(member, PR_SALL, (out, base))
        yield from api.wait()
        out["parent_view"] = yield from api.load_word(base)
        return 0

    out, sim = run_program(main, ncpus=2)
    assert out["rc"] == PR_SALL & ~PR_SADDR
    assert out["mask"] == PR_SALL & ~PR_SADDR
    assert out["nshare"] == 2, "still a member for the non-VM resources"
    assert out["seen"] == 111
    assert out["member_view"] == 222
    assert out["parent_view"] == 111, "private write never reached the group"
    assert audit_leaks(sim) == []


def test_group_writes_invisible_after_saddr_detach():
    def member(api, arg):
        out, base, done_w, go_r = arg
        yield from api.prctl(PR_UNSHARE, PR_SADDR)
        yield from api.write(done_w, b"d")  # detach committed
        yield from api.read(go_r, 1)  # wait for the parent's store
        out["member_view"] = yield from api.load_word(base)
        return 0

    def main(api, out):
        base = yield from api.mmap(4096)
        yield from api.store_word(base, 5)
        done = yield from api.pipe()
        go = yield from api.pipe()
        yield from api.sproc(member, PR_SALL, (out, base, done[1], go[0]))
        yield from api.read(done[0], 1)  # member has detached
        yield from api.store_word(base, 6)  # shared-side write
        yield from api.write(go[1], b"g")
        yield from api.wait()
        out["parent_view"] = yield from api.load_word(base)
        return 0

    out, sim = run_program(main, ncpus=2)
    assert out["member_view"] == 5, "group write after detach stayed invisible"
    assert out["parent_view"] == 6
    assert audit_leaks(sim) == []


# ----------------------------------------------------------------------
# departure and mask-validation semantics


def test_unshare_all_leaves_group():
    def member(api, out):
        rc = yield from api.prctl(PR_UNSHARE, PR_SALL)
        out["rc"] = rc
        out["nshare"] = yield from api.prctl(PR_GETNSHARE)
        out["mask"] = yield from api.prctl(PR_GETSHMASK)
        return 0

    def main(api, out):
        yield from api.sproc(member, PR_SALL, out)
        yield from api.wait()
        out["main_nshare"] = yield from api.prctl(PR_GETNSHARE)
        return 0

    out, sim = run_program(main, ncpus=2)
    assert out["rc"] == 0
    assert out["nshare"] == 0 and out["mask"] == 0
    assert out["main_nshare"] == 1
    assert audit_leaks(sim) == []
    assert sim.kernel.stats["groups_freed"] == 1


def test_unshare_rejects_bits_outside_pr_sall():
    def member(api, out):
        rc = yield from api.prctl(PR_UNSHARE, PR_PRIVDATA | PR_SFDS)
        out["rc"] = rc
        out["errno"] = yield from api.errno()
        out["mask"] = yield from api.prctl(PR_GETSHMASK)
        return 0

    def main(api, out):
        yield from api.sproc(member, PR_SALL, out)
        yield from api.wait()
        return 0

    out, sim = run_program(main, ncpus=2)
    assert out["rc"] == -1 and out["errno"] == EINVAL
    assert out["mask"] == PR_SALL, "rejected mask must not clear anything"
    assert sim.kernel.stats["unshares"] == 0


def test_unshare_outside_group_is_einval():
    def main(api, out):
        rc = yield from api.prctl(PR_UNSHARE, PR_SFDS)
        out["rc"] = rc
        out["errno"] = yield from api.errno()
        return 0

    out, _sim = run_program(main)
    assert out["rc"] == -1 and out["errno"] == EINVAL


# ----------------------------------------------------------------------
# PR_SETSHMASK: tighten-only


def test_setshmask_tightens_and_rejects_widening():
    def member(api, out):
        yield from api.prctl(PR_UNSHARE, PR_SFDS)  # now PR_SALL & ~PR_SFDS
        rc = yield from api.prctl(PR_SETSHMASK, PR_SALL)  # widen back: no
        out["widen_rc"] = rc
        out["widen_errno"] = yield from api.errno()
        rc = yield from api.prctl(PR_SETSHMASK, PR_PRIVDATA)
        out["bad_rc"] = rc
        out["bad_errno"] = yield from api.errno()
        rc = yield from api.prctl(PR_SETSHMASK, PR_SADDR | PR_SDIR)
        out["tight_rc"] = rc
        out["mask"] = yield from api.prctl(PR_GETSHMASK)
        out["nshare"] = yield from api.prctl(PR_GETNSHARE)
        return 0

    def main(api, out):
        yield from api.sproc(member, PR_SALL, out)
        yield from api.wait()
        return 0

    out, sim = run_program(main, ncpus=2)
    assert out["widen_rc"] == -1 and out["widen_errno"] == EINVAL
    assert out["bad_rc"] == -1 and out["bad_errno"] == EINVAL
    assert out["tight_rc"] == PR_SADDR | PR_SDIR
    assert out["mask"] == PR_SADDR | PR_SDIR
    assert out["nshare"] == 2
    assert audit_leaks(sim) == []


def test_setshmask_outside_group_is_einval():
    def main(api, out):
        rc = yield from api.prctl(PR_SETSHMASK, 0)
        out["rc"] = rc
        out["errno"] = yield from api.errno()
        return 0

    out, _sim = run_program(main)
    assert out["rc"] == -1 and out["errno"] == EINVAL


def test_setshmask_to_zero_leaves_group():
    def member(api, out):
        rc = yield from api.prctl(PR_SETSHMASK, 0)
        out["rc"] = rc
        out["nshare"] = yield from api.prctl(PR_GETNSHARE)
        return 0

    def main(api, out):
        yield from api.sproc(member, PR_SALL, out)
        yield from api.wait()
        return 0

    out, sim = run_program(main, ncpus=2)
    assert out["rc"] == 0 and out["nshare"] == 0
    assert sim.kernel.stats["groups_freed"] == 1
    assert audit_leaks(sim) == []


# ----------------------------------------------------------------------
# injected partial failures: the transaction must unwind


@pytest.mark.parametrize(
    "site",
    ["unshare.uarea", "unshare.fds", "unshare.aspace", "unshare.pregion"],
)
def test_injected_unshare_failure_unwinds(site):
    def member(api, arg):
        out, base = arg
        fd = yield from api.open("/u", O_RDWR | O_CREAT)
        rc = yield from api.prctl(PR_UNSHARE, PR_SALL)
        out["rc"] = rc
        out["errno"] = yield from api.errno()
        out["mask"] = yield from api.prctl(PR_GETSHMASK)
        out["nshare"] = yield from api.prctl(PR_GETNSHARE)
        # sharing must still work end to end after the failed attempt:
        yield from api.store_word(base, 77)  # via the still-shared VM
        yield from api.write(fd, b"x")  # via the still-shared fd table
        # the nth:1 plan is spent, so the same transaction now commits
        rc2 = yield from api.prctl(PR_UNSHARE, PR_SALL)
        out["rc2"] = rc2
        return 0

    def main(api, out):
        base = yield from api.mmap(4096)
        yield from api.sproc(member, PR_SALL, (out, base))
        yield from api.wait()
        out["shared_view"] = yield from api.load_word(base)
        return 0

    out = {}
    sim = System(ncpus=2, lockdep=True, inject={site: "nth:1"})
    sim.spawn(main, out)
    sim.run()
    assert out["rc"] == -1 and out["errno"] == ENOMEM
    assert out["mask"] == PR_SALL, "failed unshare must not drop any bit"
    assert out["nshare"] == 2, "caller stayed a full member"
    assert out["shared_view"] == 77
    assert out["rc2"] == 0, "retry after the injected failure succeeds"
    assert sim.kernel.stats["unshare_unwinds"] == 1
    assert sim.machine.inject.fired.get(site) == 1
    assert sim.lockdep.violations == []
    assert audit_leaks(sim) == []


# ----------------------------------------------------------------------
# exec-leaves-group semantics


def test_exec_keep_group_with_only_saddr_leaves_group():
    def fresh(api, arg):
        n = yield from api.prctl(PR_GETNSHARE)
        return n

    def execer(api, arg):
        yield from api.exec("/bin/fresh", keep_group=True)
        return 99

    def main(api, out):
        yield from api.sproc(execer, PR_SADDR)
        pid, status = yield from api.wait()
        out["code"] = status_code(status)
        return 0

    out = {}
    sim = System(ncpus=2)
    sim.register_program("/bin/fresh", fresh)
    sim.spawn(lambda api, a: main(api, out))
    sim.run()
    # Only the address space was shared; exec replaces it, so keeping
    # membership would share nothing — the image must run groupless.
    assert out["code"] == 0
    assert audit_leaks(sim) == []


# ----------------------------------------------------------------------
# the shmask-consistency checker itself


def test_shmask_checker_flags_manufactured_inconsistencies():
    def spinner(api, arg):
        while True:
            yield from api.yield_cpu()

    def main(api, arg):
        yield from api.sproc(spinner, PR_SALL)
        while True:
            yield from api.yield_cpu()

    sim = System(ncpus=2)
    sim.spawn(main)
    sim.run(until=20_000, check_deadlock=False)
    assert check_shmask_consistency(sim) == []
    member = next(
        proc for proc in sim.kernel.proc_table.all_procs()
        if proc.alive() and proc.shaddr is not None and proc.pid != 1
    )
    # 1. PR_SADDR clear while still attached to the shared VM
    member.p_shmask &= ~PR_SADDR
    assert any(
        "PR_SADDR clear" in f for f in check_shmask_consistency(sim)
    )
    member.p_shmask |= PR_SADDR
    # 2. sync flag pending for an already-unshared resource
    member.p_flag |= NONVM_SYNC_BITS[PR_SFDS]
    member.p_shmask &= ~PR_SFDS
    assert any(
        "sync flag" in f for f in check_shmask_consistency(sim)
    )
    member.p_shmask |= PR_SFDS
    member.p_flag &= ~ALL_SYNC
    # 3. a mask (and shared VM) without any group
    block = member.shaddr
    member.shaddr = None
    findings = check_shmask_consistency(sim)
    assert any("no share group" in f for f in findings)
    member.shaddr = block
    assert check_shmask_consistency(sim) == []
    assert "shmask-consistency" not in " ".join(run_invariants(sim))


# ----------------------------------------------------------------------
# the unshare-churn scenario: determinism and sweep coverage


def test_unshare_churn_cycle_identical_across_observability():
    from repro.check.scenarios import SCENARIOS

    sc = SCENARIOS["unshare-churn"]
    results = []
    for lockdep, metrics in ((False, False), (True, True)):
        out = {}
        sim = System(ncpus=sc.ncpus, lockdep=lockdep, metrics_enabled=metrics)
        sim.spawn(sc.main, out, name=sc.name)
        sim.run()
        assert audit_leaks(sim) == []
        results.append((dict(out), sim.now))
    assert results[0] == results[1]
    expected = {
        "lifecycle-0": 900, "lifecycle-1": 901, "tightener": 302,
        "faulter": 102, "shared-0": 200, "shared-1": 201,
        "shared-2": 302, "exiter": 403,
    }
    assert results[0][0] == expected


def test_unshare_churn_reaches_every_unshare_site():
    from repro.check.inject import record_hits
    from repro.check.scenarios import SCENARIOS

    hits, findings = record_hits(SCENARIOS["unshare-churn"])
    assert findings == []
    for site in (
        "unshare.uarea", "unshare.fds", "unshare.aspace", "unshare.pregion"
    ):
        assert hits.get(site, 0) >= 1, "scenario never reached %s" % site


def test_unshare_kstat_counters():
    from repro.check.scenarios import SCENARIOS

    sc = SCENARIOS["unshare-churn"]
    out = {}
    sim = System(ncpus=sc.ncpus, metrics_enabled=True)
    sim.spawn(sc.main, out, name=sc.name)
    sim.run()
    kstat = sim.machine.kstat
    assert kstat.get("kernel", 0, "unshare_calls") == sim.kernel.stats["unshares"]
    assert kstat.get("kernel", 0, "unshare_calls") >= 7
    assert kstat.get("kernel", 0, "unshare_unwinds") == 0
    assert kstat.get("kernel", 0, "unshare_fds_copied") >= 1
    assert kstat.get("kernel", 0, "unshare_pregions_copied") >= 1
