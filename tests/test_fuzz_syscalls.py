"""Property-based system fuzzing: random syscall programs must never
corrupt kernel invariants.

Hypothesis generates short straight-line programs from a safe op
vocabulary; after each run we assert the global health conditions: no
frame leaks beyond the live processes' footprints, no TLB entries into
freed frames, semaphores quiescent, zero live non-zombie processes.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro import O_CREAT, O_RDWR, PR_SALL, System
from repro.mem.frames import PAGE_SIZE


OPS = st.sampled_from([
    "open", "close0", "dup0", "write", "read", "pipe",
    "mkdir", "chdir_root", "umask", "sbrk", "mmap", "munmap_last",
    "getpid", "fork_noop", "sproc_noop", "thread_noop", "touch",
    "socketpair", "shm",
])


def _noop(api, arg):
    yield from api.compute(50)
    return 0


def _interpreter(api, ops):
    """Run one op list; never raises (bad guest calls just return -1)."""
    opened = []
    mapped = []
    children = 0
    serial = 0
    for op in ops:
        serial += 1
        if op == "open":
            fd = yield from api.open("/fz%d" % serial, O_RDWR | O_CREAT)
            if fd != -1:
                opened.append(fd)
        elif op == "close0" and opened:
            yield from api.close(opened.pop(0))
        elif op == "dup0" and opened:
            fd = yield from api.dup(opened[0])
            if fd != -1:
                opened.append(fd)
        elif op == "write" and opened:
            yield from api.write(opened[-1], b"x" * (serial % 50 + 1))
        elif op == "read" and opened:
            yield from api.lseek(opened[-1], 0, 0)
            yield from api.read(opened[-1], 16)
        elif op == "pipe":
            fds = yield from api.pipe()
            if fds != -1:
                rfd, wfd = fds
                yield from api.write(wfd, b"t")
                yield from api.read(rfd, 1)
                yield from api.close(rfd)
                yield from api.close(wfd)
        elif op == "mkdir":
            yield from api.mkdir("/dir%d" % serial)
        elif op == "chdir_root":
            yield from api.chdir("/")
        elif op == "umask":
            yield from api.umask(serial % 0o100)
        elif op == "sbrk":
            yield from api.sbrk(PAGE_SIZE)
        elif op == "mmap":
            base = yield from api.mmap(2 * PAGE_SIZE)
            if base != -1:
                yield from api.store_word(base, serial)
                mapped.append(base)
        elif op == "munmap_last" and mapped:
            yield from api.munmap(mapped.pop())
        elif op == "getpid":
            yield from api.getpid()
        elif op == "fork_noop":
            if (yield from api.fork(_noop)) != -1:
                children += 1
        elif op == "sproc_noop":
            if (yield from api.sproc(_noop, PR_SALL)) != -1:
                children += 1
        elif op == "thread_noop":
            if (yield from api.thread_create(_noop)) != -1:
                children += 1
        elif op == "touch" and mapped:
            yield from api.store_word(mapped[-1] + PAGE_SIZE, serial)
        elif op == "socketpair":
            fds = yield from api.socketpair()
            if fds != -1:
                yield from api.send(fds[0], b"z")
                yield from api.recv(fds[1], 1)
                yield from api.close(fds[0])
                yield from api.close(fds[1])
        elif op == "shm":
            from repro import IPC_CREAT, IPC_PRIVATE

            shmid = yield from api.shmget(IPC_PRIVATE, PAGE_SIZE, IPC_CREAT)
            if shmid != -1:
                base = yield from api.shmat(shmid)
                if base != -1:
                    yield from api.store_word(base, 1)
                    yield from api.shmdt(base)
                yield from api.shm_rmid(shmid)
    for _ in range(children):
        yield from api.wait()
    return 0


def _check_health(sim):
    # every process ended (init exits last; zombies are fine)
    for proc in sim.kernel.proc_table.all_procs():
        assert proc.state is proc.ZOMBIE, proc
    # no TLB entry points at a freed frame
    for cpu in sim.machine.cpus:
        for entry in cpu.tlb.entries():
            sim.machine.frames.get(entry.pfn)  # raises if freed
    # allocator counts match the regions still alive (zombies hold none)
    # — all user frames should be gone once init exited
    assert sim.machine.frames.allocated == 0, (
        "leaked %d frames" % sim.machine.frames.allocated
    )


@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(st.lists(OPS, max_size=25), st.integers(1, 4))
def test_random_programs_leave_kernel_healthy(ops, ncpus):
    sim = System(ncpus=ncpus, memory_mb=8)
    sim.spawn(_interpreter, ops)
    sim.run(max_events=3_000_000)
    assert sim.engine.idle(), "runaway program (should be impossible)"
    _check_health(sim)


@settings(max_examples=15, deadline=None)
@given(st.lists(OPS, max_size=15))
def test_random_programs_run_identically_twice(ops):
    """Determinism holds for arbitrary programs, not just curated ones."""

    def run():
        sim = System(ncpus=2, memory_mb=8)
        sim.spawn(_interpreter, list(ops))
        sim.run(max_events=3_000_000)
        return sim.now, dict(sim.stats)

    assert run() == run()
