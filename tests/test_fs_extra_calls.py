"""link, ftruncate, readdir, and /dev interactions."""


from repro import O_CREAT, O_RDONLY, O_RDWR, SEEK_SET
from repro.errors import EEXIST, EINVAL, EISDIR, ENOENT
from tests.conftest import run_program


def test_link_shares_the_inode():
    def main(api, out):
        fd = yield from api.open("/a", O_RDWR | O_CREAT)
        yield from api.write(fd, b"linked data")
        yield from api.link("/a", "/b")
        st_a = yield from api.stat("/a")
        st_b = yield from api.stat("/b")
        out["same_ino"] = st_a["ino"] == st_b["ino"]
        out["nlink"] = st_b["nlink"]
        fd_b = yield from api.open("/b", O_RDONLY)
        out["data"] = yield from api.read(fd_b, 32)
        return 0

    out, _ = run_program(main)
    assert out["same_ino"]
    assert out["nlink"] == 2
    assert out["data"] == b"linked data"


def test_link_survives_unlink_of_original():
    def main(api, out):
        fd = yield from api.creat("/orig")
        yield from api.write(fd, b"persist")
        yield from api.close(fd)
        yield from api.link("/orig", "/other")
        yield from api.unlink("/orig")
        st = yield from api.stat("/other")
        out["nlink"] = st["nlink"]
        out["size"] = st["size"]
        return 0

    out, _ = run_program(main)
    assert out["nlink"] == 1
    assert out["size"] == 7


def test_link_to_existing_name_is_eexist():
    def main(api, out):
        fd = yield from api.creat("/x")
        yield from api.close(fd)
        fd = yield from api.creat("/y")
        yield from api.close(fd)
        rc = yield from api.link("/x", "/y")
        out["errno"] = yield from api.errno()
        return 0

    out, _ = run_program(main)
    assert out["errno"] == EEXIST


def test_link_directory_rejected():
    def main(api, out):
        yield from api.mkdir("/d")
        rc = yield from api.link("/d", "/d2")
        out["errno"] = yield from api.errno()
        return 0

    out, _ = run_program(main)
    assert out["errno"] == EISDIR


def test_ftruncate_shrinks_file():
    def main(api, out):
        fd = yield from api.open("/f", O_RDWR | O_CREAT)
        yield from api.write(fd, b"0123456789")
        yield from api.ftruncate(fd, 4)
        st = yield from api.fstat(fd)
        out["size"] = st["size"]
        yield from api.lseek(fd, 0, SEEK_SET)
        out["data"] = yield from api.read(fd, 16)
        rc = yield from api.ftruncate(fd, -1)
        out["errno"] = yield from api.errno()
        return 0

    out, _ = run_program(main)
    assert out["size"] == 4
    assert out["data"] == b"0123"
    assert out["errno"] == EINVAL


def test_readdir_lists_sorted_entries():
    def main(api, out):
        yield from api.mkdir("/dir")
        for name in ("zeta", "alpha", "mid"):
            fd = yield from api.creat("/dir/%s" % name)
            yield from api.close(fd)
        out["names"] = yield from api.readdir("/dir")
        out["root_has_dev"] = "dev" in (yield from api.readdir("/"))
        rc = yield from api.readdir("/missing")
        out["errno"] = yield from api.errno()
        return 0

    out, _ = run_program(main)
    assert out["names"] == ["alpha", "mid", "zeta"]
    assert out["root_has_dev"]
    assert out["errno"] == ENOENT
