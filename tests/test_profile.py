"""The host-side self-profiler: phase math, sessions, cycle-identity."""

from repro import PR_SALL, System
from repro.obs.profile import (
    NULL_PROFILER,
    HostProfiler,
    ProfileSession,
    active_session,
    begin_session,
    end_session,
)


class FakeClock:
    """A scripted perf_counter: each call returns the next tick."""

    def __init__(self, step=1.0):
        self.t = 0.0
        self.step = step

    def __call__(self):
        self.t += self.step
        return self.t


# ----------------------------------------------------------------------
# phase accounting with a deterministic clock


def test_stack_phases_are_exclusive():
    prof = HostProfiler(clock=FakeClock())
    # ticks: push outer@1, push inner@2, pop inner@3, pop outer@4
    prof.push("outer")
    prof.push("inner")
    prof.pop()
    prof.pop()
    # outer owns [1,2] and [3,4]; inner owns [2,3]
    assert prof.seconds["outer"] == 2.0
    assert prof.seconds["inner"] == 1.0
    assert prof.hits == {"outer": 1, "inner": 1}


def test_leaf_subtracts_from_enclosing_phase():
    clock = FakeClock()
    prof = HostProfiler(clock=clock)
    prof.push("outer")        # @1
    t0 = prof.clock()         # @2
    prof.leaf("hook", t0)     # @3: hook owns [2,3], outer owns [1,2]
    prof.pop()                # @4: outer owns [3,4] too
    assert prof.seconds["hook"] == 1.0
    assert prof.seconds["outer"] == 2.0
    # exclusive attribution: phase seconds sum to the profiled span
    assert sum(prof.seconds.values()) == 3.0


def test_run_bracketing_accumulates_cycles_and_rate():
    prof = HostProfiler(clock=FakeClock())
    prof.run_begin(cycles=100, events=5)
    prof.run_end(cycles=600, events=25)
    assert prof.runs == 1
    assert prof.sim_cycles == 500
    assert prof.events == 20
    assert prof.wall_seconds > 0.0
    assert prof.sim_cycles_per_host_sec == 500 / prof.wall_seconds
    summary = prof.summary()
    assert summary["phases"]["engine.loop"]["hits"] == 1
    assert summary["sim_cycles"] == 500


def test_null_profiler_is_disarmed_and_inert():
    assert NULL_PROFILER.enabled is False
    NULL_PROFILER.push("x")
    NULL_PROFILER.pop()
    NULL_PROFILER.leaf("x", 0.0)
    NULL_PROFILER.count("inline_hops", 7)
    NULL_PROFILER.run_begin(0, 0)
    NULL_PROFILER.run_end(9, 9)


# ----------------------------------------------------------------------
# named occurrence counters (inline-continuation hit-rate telemetry)


def test_counters_accumulate_and_skip_zero_deltas():
    prof = HostProfiler(clock=FakeClock())
    prof.count("inline_hops", 3)
    prof.count("inline_hops", 2)
    prof.count("inline_fallbacks", 0)  # zero deltas leave no key behind
    assert prof.counters == {"inline_hops": 5}
    assert prof.summary()["counters"] == {"inline_hops": 5}


def test_session_merges_counters_and_renders_hit_rate():
    session = ProfileSession()
    prof = HostProfiler(clock=FakeClock())
    prof.run_begin(0, 0)
    prof.run_end(1000, 100)
    prof.count("inline_hops", 60)
    prof.count("inline_fallbacks", 5)
    session.add(prof)
    session.absorb({
        "phases": {},
        "counters": {"inline_hops": 20},
        "wall_seconds": 1.0,
        "sim_cycles": 500,
        "events": 100,
        "runs": 1,
    })
    merged = session.merged()
    assert merged["counters"] == {"inline_fallbacks": 5, "inline_hops": 80}
    text = session.render()
    assert "inline_hops=80" in text
    assert "inline hit rate: 40.0%" in text  # 80 hops of 200 events


def test_engine_inline_counters_reach_the_profiler():
    prof = HostProfiler(clock=FakeClock())
    from repro.sim.engine import Engine

    eng = Engine(loop="fast")
    eng.profile = prof
    eng.resched_inline(5, lambda token: None, None)
    eng.run()
    assert eng.inline_hops == 1
    assert prof.counters.get("inline_hops") == 1
    assert "engine.inline" in prof.hits


# ----------------------------------------------------------------------
# sessions merge profilers and worker summaries


def test_session_merges_profilers_and_absorbed_summaries():
    session = ProfileSession()
    prof = HostProfiler(clock=FakeClock())
    prof.run_begin(0, 0)
    prof.run_end(1000, 10)
    session.add(prof)
    session.absorb({
        "phases": {"cpu.interp": {"seconds": 2.0, "hits": 7}},
        "wall_seconds": 2.0,
        "sim_cycles": 4000,
        "events": 40,
        "runs": 3,
    })
    merged = session.merged()
    assert merged["profilers"] == 2
    assert merged["sim_cycles"] == 5000
    assert merged["runs"] == 4
    assert merged["phases"]["cpu.interp"]["hits"] == 7
    assert merged["sim_cycles_per_host_sec"] == (
        5000 / merged["wall_seconds"]
    )
    text = session.render()
    assert "cpu.interp" in text
    assert "cycles/host-sec" in text


def test_begin_end_session_arm_systems_built_meanwhile():
    assert active_session() is None
    session = begin_session()
    try:
        sim = System(ncpus=1)
        assert sim.profile.enabled
        assert sim.profile in session.profilers
    finally:
        assert end_session() is session
    assert active_session() is None
    # outside a session the default is disarmed
    assert System(ncpus=1).profile is NULL_PROFILER


# ----------------------------------------------------------------------
# the load-bearing invariant: profiling cannot move the simulation


def _workload(api, ctx):
    ctx.setdefault("pids", [])
    for _ in range(3):
        pid = yield from api.sproc(_member, PR_SALL)
        ctx["pids"].append(pid)
    for _ in range(3):
        yield from api.wait()
    return 0


def _member(api, arg):
    yield from api.compute(5_000)
    base = yield from api.sbrk(4096)
    yield from api.store_word(base, 1)
    yield from api.load_word(base)
    return 0


def test_profiled_run_is_cycle_identical_to_disarmed():
    def run(profiled):
        sim = System(ncpus=2, profile=profiled)
        ctx = {}
        sim.spawn(_workload, ctx)
        sim.run()
        return sim

    on, off = run(True), run(False)
    assert on.now == off.now
    assert on.kstat.snapshot() == off.kstat.snapshot()
    assert on.profile.enabled and not off.profile.enabled
    # the armed run actually recorded the hot phases
    assert on.profile.sim_cycles == on.now
    assert "cpu.interp" in on.profile.seconds
    assert "engine.loop" in on.profile.seconds


def test_profile_summary_lands_in_metrics_when_armed():
    sim = System(ncpus=1, profile=True)
    sim.spawn(_member, 0)
    sim.run()
    snapshot = sim.metrics()
    assert "host" in snapshot
    assert snapshot["host"]["sim_cycles"] == sim.now
    disarmed = System(ncpus=1)
    disarmed.spawn(_member, 0)
    disarmed.run()
    assert "host" not in disarmed.metrics()
