"""Regression tests: descriptor lifecycle through the sharing protocol.

The shared address block and the member tables all hold references to
open files; whichever drops the *last* one must run the kernel's full
close path (pipe endpoint counts, socket teardown).  These tests pin the
bug where ``s_ofile``'s refresh dropped final references with a bare
``release()`` and a pipe reader waited for an EOF that never came.
"""


from repro import O_CREAT, O_RDWR, PR_SALL, status_code
from tests.conftest import run_program


def test_group_close_of_pipe_write_end_delivers_eof():
    """A non-member reader must see EOF once every member (and the
    shaddr copy) has let go of the write end."""

    def reader(api, ctx):
        rfd = ctx[0]
        for extra in ctx[1]:
            yield from api.close(extra)
        data = bytearray()
        while True:
            chunk = yield from api.read(rfd, 16)
            if not chunk:
                break
            data += chunk
        return len(data)

    def main(api, out):
        rfd, wfd = yield from api.pipe()
        yield from api.fork(reader, (rfd, (wfd,)))
        yield from api.close(rfd)
        # becoming a group captures wfd into s_ofile
        yield from api.sproc(_noop_member, PR_SALL)
        yield from api.wait()
        yield from api.write(wfd, b"payload")
        yield from api.close(wfd)  # must purge the shaddr copy too
        _, status = yield from api.wait()
        out["reader_got"] = status_code(status)
        return 0

    out, _ = run_program(main, ncpus=2)
    assert out["reader_got"] == len(b"payload")


def _noop_member(api, arg):
    yield from api.compute(10)
    return 0


def test_member_exit_does_not_close_group_descriptors():
    """The shaddr's reference keeps shared files open past any member's
    exit (the paper's exit race)."""

    def opener(api, arg):
        fd = yield from api.open("/kept", O_RDWR | O_CREAT)
        yield from api.write(fd, b"still open")
        return 0

    def main(api, out):
        yield from api.sproc(opener, PR_SALL)
        yield from api.wait()
        yield from api.getpid()  # import the descriptor
        yield from api.lseek(0, 0, 0)
        out["data"] = yield from api.read(0, 32)
        return 0

    out, _ = run_program(main)
    assert out["data"] == b"still open"


def test_socket_teardown_through_group_close():
    """Peer EOF must arrive when a socket's last reference is the shaddr
    copy being refreshed away."""

    def peer(api, ctx):
        fd = ctx[0]
        for extra in ctx[1]:
            yield from api.close(extra)
        got = bytearray()
        while True:
            chunk = yield from api.recv(fd, 16)
            if not chunk:
                break
            got += chunk
        return len(got)

    def main(api, out):
        fd_a, fd_b = yield from api.socketpair()
        yield from api.fork(peer, (fd_b, (fd_a,)))
        yield from api.close(fd_b)
        yield from api.sproc(_noop_member, PR_SALL)
        yield from api.wait()
        yield from api.send(fd_a, b"bye")
        yield from api.close(fd_a)
        _, status = yield from api.wait()
        out["peer_got"] = status_code(status)
        return 0

    out, _ = run_program(main, ncpus=2)
    assert out["peer_got"] == 3


def test_member_sync_dropping_last_ref_runs_close_path():
    """A member whose table re-sync drops the last reference to a pipe
    end must trigger the endpoint bookkeeping."""

    def sleeper_member(api, ctx):
        # hold a stale view (with the pipe write end), then sync late
        wake, rfd = ctx
        while (yield from api.load_word(wake)) == 0:
            yield from api.yield_cpu()
        yield from api.getpid()  # sync: drops our wfd copy (last ref)
        data = yield from api.read(rfd, 16)  # EOF must arrive
        return 0 if data == b"" else 1

    def main(api, out):
        wake = yield from api.mmap(4096)
        rfd, wfd = yield from api.pipe()
        pid = yield from api.sproc(sleeper_member, PR_SALL, (wake, rfd))
        yield from api.compute(20_000)
        yield from api.close(wfd)  # main's copy + shaddr purge
        yield from api.store_word(wake, 1)
        _, status = yield from api.wait()
        out["code"] = status_code(status)
        return 0

    out, _ = run_program(main, ncpus=2)
    assert out["code"] == 0
