"""Property-based tests on core data structures and invariants."""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.kernel.signals import NSIG, PendingSet, SIGKILL
from repro.mem import layout
from repro.mem.addrspace import AddressSpace, Fault
from repro.mem.frames import PAGE_SIZE, FrameAllocator
from repro.mem.pregion import PROT_RW
from repro.mem.region import Region, RegionType
from repro.share.mask import (
    PR_PRIVDATA,
    PR_SALL,
    inherit_mask,
)
from repro.sim.machine import Machine
from repro.workloads import generators as gen


# ----------------------------------------------------------------------
# share mask algebra


@given(st.integers(0, 0xFFFF), st.integers(0, 0xFFFF))
def test_inherit_mask_never_exceeds_parent(parent, requested):
    assert inherit_mask(parent, requested) & ~parent == 0


@given(st.integers(0, 0xFFFF), st.integers(0, 0xFFFF))
def test_inherit_mask_never_exceeds_request(parent, requested):
    assert inherit_mask(parent, requested) & ~requested == 0


@given(st.integers(0, 0xFFFF), st.integers(0, 0xFFFF))
def test_inherit_mask_is_idempotent(parent, requested):
    once = inherit_mask(parent, requested)
    assert inherit_mask(parent, once) == once


@given(st.integers(0, 0xFFFF), st.integers(0, 0xFFFF), st.integers(0, 0xFFFF))
def test_inherit_mask_monotone_down_generations(grandparent, parent_req, child_req):
    """A grandchild can never hold a bit its grandparent lacked."""
    parent = inherit_mask(grandparent, parent_req)
    child = inherit_mask(parent, child_req)
    assert child & ~grandparent == 0


def test_privdata_is_outside_the_inheritance_range():
    assert PR_PRIVDATA & PR_SALL == 0


# ----------------------------------------------------------------------
# pending signal set


@given(st.lists(st.integers(1, NSIG - 1), max_size=40))
def test_pendingset_take_returns_each_signal_once(signals):
    pending = PendingSet()
    for sig in signals:
        pending.post(sig)
    taken = []
    while pending:
        taken.append(pending.take())
    assert sorted(taken) == sorted(set(signals))


@given(st.lists(st.integers(1, NSIG - 1), min_size=1, max_size=20))
def test_pendingset_sigkill_always_first(signals):
    pending = PendingSet()
    for sig in signals:
        pending.post(sig)
    pending.post(SIGKILL)
    assert pending.take() == SIGKILL


@given(st.lists(st.integers(1, NSIG - 1), min_size=2, max_size=20, unique=True))
def test_pendingset_lowest_first_without_sigkill(signals):
    signals = [sig for sig in signals if sig != SIGKILL]
    if len(signals) < 2:
        return
    pending = PendingSet()
    for sig in signals:
        pending.post(sig)
    assert pending.take() == min(signals)


# ----------------------------------------------------------------------
# stack layout


@given(st.integers(0, 63), st.integers(0, 63))
def test_stack_slots_never_overlap(a, b):
    if a == b:
        return
    max_bytes = layout.DEFAULT_STACK_MAX
    top_a, top_b = layout.stack_slot(a, max_bytes), layout.stack_slot(b, max_bytes)
    low_a, low_b = top_a - max_bytes, top_b - max_bytes
    assert top_a <= low_b or top_b <= low_a


@given(st.integers(0, 200))
def test_stack_slots_monotone_decreasing(index):
    assert layout.stack_slot(index + 1) < layout.stack_slot(index)


# ----------------------------------------------------------------------
# generators


@given(st.integers(0, 2**32 - 1), st.integers(1, 500))
def test_lcg_is_deterministic(seed, count):
    a = list(zip(range(count), gen.lcg(seed)))
    b = list(zip(range(count), gen.lcg(seed)))
    assert a == b


@given(st.binary(max_size=400))
def test_pack_unpack_roundtrip(data):
    data = data[: len(data) - len(data) % 4]
    values = gen.unpack_words(data)
    assert gen.pack_words(values) == data


@given(st.binary(max_size=300), st.binary(max_size=300))
def test_checksum_is_order_sensitive(a, b):
    if a != b and len(a) == len(b):
        # not a strict inverse property, but collisions on same-length
        # inputs should be rare; allow them without failing the intent
        if gen.checksum(a) == gen.checksum(b):
            assert a != b  # tolerated collision
    assert gen.checksum(a + b) == gen.checksum(a + b)


@given(st.integers(0, 1000), st.integers(0, 2**31))
def test_payload_length_and_determinism(nbytes, seed):
    payload = gen.payload(nbytes, seed)
    assert len(payload) == nbytes
    assert payload == gen.payload(nbytes, seed)


@given(st.integers(1, 64), st.integers(1, 100_000))
def test_task_costs_bounded_around_mean(ntasks, mean_cycles):
    costs = gen.task_costs(ntasks, mean_cycles)
    assert len(costs) == ntasks
    half = max(mean_cycles // 2, 1)
    assert all(half <= cost < 3 * half + 1 for cost in costs)


# ----------------------------------------------------------------------
# address space: random map/touch/unmap sequences keep books balanced


@settings(max_examples=30, suppress_health_check=[HealthCheck.too_slow])
@given(
    st.lists(
        st.tuples(st.sampled_from(["map", "touch", "unmap"]), st.integers(0, 7)),
        max_size=40,
    )
)
def test_addrspace_random_ops_frame_accounting(ops):
    machine = Machine(ncpus=1, memory_bytes=4 * 1024 * 1024)
    space = AddressSpace(machine)
    mapped = []
    for op, which in ops:
        if op == "map":
            base = space.alloc_map_range(2 * PAGE_SIZE)
            pregion = space.map_segment(
                base, 2 * PAGE_SIZE, RegionType.SHM, PROT_RW
            )
            mapped.append(pregion)
        elif op == "touch" and mapped:
            pregion = mapped[which % len(mapped)]
            res = space.resolve(pregion.vbase, write=True)
            if res.kind in (Fault.ZERO, Fault.COW):
                space.materialize(res, pregion.vbase, True)
        elif op == "unmap" and mapped:
            pregion = mapped.pop(which % len(mapped))
            space.detach(pregion)
        resident = sum(p.region.resident_pages() for p in mapped)
        assert machine.frames.allocated == resident
    for pregion in mapped:
        space.detach(pregion)
    assert machine.frames.allocated == 0


@settings(max_examples=25, suppress_health_check=[HealthCheck.too_slow])
@given(st.lists(st.sampled_from(["fork", "write_parent", "write_child"]), max_size=12))
def test_cow_chains_preserve_isolation(ops):
    """Random fork/write sequences: every space must read back exactly
    what it last wrote (full COW isolation)."""
    machine = Machine(ncpus=1, memory_bytes=8 * 1024 * 1024)
    root = AddressSpace(machine)
    root.map_segment(layout.DATA_BASE, PAGE_SIZE, RegionType.DATA, PROT_RW)
    spaces = [root]
    expected = {id(root): 0}

    def write(space, value):
        res = space.resolve(layout.DATA_BASE, write=True)
        frame = space.materialize(res, layout.DATA_BASE, True)
        frame.data[0:4] = value.to_bytes(4, "little")
        expected[id(space)] = value

    def read(space):
        res = space.resolve(layout.DATA_BASE, write=False)
        if res.kind is Fault.ZERO:
            frame = space.materialize(res, layout.DATA_BASE, False)
        else:
            frame = res.pregion.region.pages[res.page_index]
        return int.from_bytes(frame.data[0:4], "little")

    write(root, 1)
    counter = 1
    for op in ops:
        if op == "fork":
            parent = spaces[-1]
            child = parent.dup_cow()
            expected[id(child)] = expected[id(parent)]
            spaces.append(child)
        elif op == "write_parent":
            counter += 1
            write(spaces[0], counter)
        elif op == "write_child":
            counter += 1
            write(spaces[-1], counter)
        for space in spaces:
            assert read(space) == expected[id(space)], "COW leaked a write"


# ----------------------------------------------------------------------
# region: COW clones against grow/shrink


@settings(max_examples=30)
@given(st.lists(st.sampled_from(["touch", "clone", "break"]), max_size=25))
def test_region_clone_break_accounting(ops):
    allocator = FrameAllocator(128)
    base = Region(allocator, 4, RegionType.DATA)
    base.hold()
    clones = []
    for op in ops:
        if op == "touch":
            base.ensure_page(0)
        elif op == "clone" and base.resident_pages():
            clone = base.dup_cow()
            clone.hold()
            clones.append(clone)
        elif op == "break" and clones and clones[-1].pages[0] is not None:
            clones[-1].break_cow(0)
        total_refs = 0
        seen = set()
        for region in [base] + clones:
            for frame in region.pages:
                if frame is not None:
                    seen.add(frame.pfn)
                    total_refs += 1
        live = sum(
            frame.refcount
            for frame in {
                f.pfn: f
                for region in [base] + clones
                for f in region.pages
                if f is not None
            }.values()
        )
        assert live == total_refs, "frame refcounts must equal attachments"
    for clone in clones:
        clone.release()
    base.release()
    assert allocator.allocated == 0
