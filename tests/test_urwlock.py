"""User-level rwlock and counting semaphore on shared memory."""

import pytest

from repro import PR_SALL, status_code
from repro.runtime import URWLock, USema
from tests.conftest import run_program


def test_rwlock_readers_count_and_drain():
    def main(api, out):
        base = yield from api.mmap(4096)
        lock = URWLock(base)
        yield from lock.acquire_read(api)
        yield from lock.acquire_read(api)
        out["two"] = yield from lock.readers(api)
        yield from lock.release_read(api)
        yield from lock.release_read(api)
        out["zero"] = yield from lock.readers(api)
        return 0

    out, _ = run_program(main)
    assert out["two"] == 2
    assert out["zero"] == 0


def test_rwlock_writer_excludes_writers_and_readers():
    """Concurrent increments under the write lock must not be lost, and
    readers must never observe a torn intermediate state."""

    def writer(api, base):
        lock = URWLock(base)
        for _ in range(20):
            yield from lock.acquire_write(api)
            a = yield from api.load_word(base + 8)
            yield from api.compute(30)
            yield from api.store_word(base + 8, a + 1)
            yield from api.store_word(base + 12, a + 1)  # mirror word
            yield from lock.release_write(api)
        return 0

    def reader(api, base):
        lock = URWLock(base)
        bad = 0
        for _ in range(30):
            yield from lock.acquire_read(api)
            a = yield from api.load_word(base + 8)
            yield from api.compute(10)
            b = yield from api.load_word(base + 12)
            if a != b:
                bad += 1
            yield from lock.release_read(api)
        return bad

    def main(api, out):
        base = yield from api.mmap(4096)
        pids = []
        for _ in range(2):
            pids.append((yield from api.sproc(writer, PR_SALL, base)))
        for _ in range(2):
            pids.append((yield from api.sproc(reader, PR_SALL, base)))
        torn = 0
        for _ in pids:
            _, status = yield from api.wait()
            torn += status_code(status)
        out["count"] = yield from api.load_word(base + 8)
        out["torn"] = torn
        return 0

    out, _ = run_program(main, ncpus=4)
    assert out["count"] == 40, "lost a write-locked increment"
    assert out["torn"] == 0, "reader saw a torn update"


def test_usema_bounds_concurrency():
    """A 2-permit semaphore must never admit 3 workers at once."""

    def worker(api, base):
        sema = USema(base)
        overlap_max = 0
        for _ in range(10):
            yield from sema.down(api)
            inside = yield from api.fetch_add(base + 8, 1)
            yield from api.compute(200)
            overlap_max = max(overlap_max, inside + 1)
            yield from api.fetch_add(base + 8, 0xFFFFFFFF)  # -1 mod 2^32
            yield from sema.up(api)
        return overlap_max

    def main(api, out):
        base = yield from api.mmap(4096)
        sema = USema(base)
        yield from sema.init(api, 2)
        maxima = []
        for _ in range(4):
            yield from api.sproc(worker, PR_SALL, base)
        for _ in range(4):
            _, status = yield from api.wait()
            maxima.append(status_code(status))
        out["max_inside"] = max(maxima)
        out["value"] = yield from sema.value(api)
        return 0

    out, _ = run_program(main, ncpus=4)
    assert out["max_inside"] <= 2
    assert out["value"] == 2


def test_usema_try_down():
    def main(api, out):
        base = yield from api.mmap(4096)
        sema = USema(base)
        yield from sema.init(api, 1)
        out["first"] = yield from sema.try_down(api)
        out["second"] = yield from sema.try_down(api)
        yield from sema.up(api)
        out["third"] = yield from sema.try_down(api)
        return 0

    out, _ = run_program(main)
    assert out["first"] and not out["second"] and out["third"]


# ----------------------------------------------------------------------
# word-state guards (regression: an extra release_read used to
# underflow the free word into the writer sentinel, wedging the lock)


def test_release_read_without_readers_raises():
    from repro.errors import SimulationError

    def main(api, out):
        base = yield from api.mmap(4096)
        lock = URWLock(base)
        yield from lock.release_read(api)
        return 0

    with pytest.raises(SimulationError, match="no readers"):
        run_program(main)


def test_release_read_under_writer_raises():
    from repro.errors import SimulationError

    def main(api, out):
        base = yield from api.mmap(4096)
        lock = URWLock(base)
        yield from lock.acquire_write(api)
        yield from lock.release_read(api)
        return 0

    with pytest.raises(SimulationError, match="no readers"):
        run_program(main)


def test_release_write_not_held_raises():
    from repro.errors import SimulationError

    def main(api, out):
        base = yield from api.mmap(4096)
        lock = URWLock(base)
        yield from lock.acquire_read(api)
        yield from lock.release_write(api)
        return 0

    with pytest.raises(SimulationError, match="not write-held"):
        run_program(main)


def test_lock_survives_rejected_release():
    """The guard must fire before any state change: after a rejected
    release_write the reader count is intact and the lock still works."""
    from repro.errors import SimulationError

    def main(api, out):
        base = yield from api.mmap(4096)
        lock = URWLock(base)
        yield from lock.acquire_read(api)
        try:
            yield from lock.release_write(api)
        except SimulationError:
            out["caught"] = True
        out["readers"] = yield from lock.readers(api)
        yield from lock.release_read(api)
        yield from lock.acquire_write(api)
        yield from lock.release_write(api)
        out["reusable"] = True
        return 0

    out, _ = run_program(main)
    assert out["caught"] and out["readers"] == 1 and out["reusable"]
