"""The invariant pack and the schedule explorer.

Two burdens of proof: the checkers stay silent on healthy systems (and
speak up the moment state is corrupted), and the explorer both passes
the schedule-independent scenarios and catches the deliberately racy
one — reproducibly, from nothing but the seed its report prints.
"""

import json


from repro.check import __main__ as check_cli
from repro.check.explore import explore, run_once
from repro.check.invariants import (
    check_fd_refcounts,
    check_pregion_tlb,
    check_shaddr_refcounts,
    run_invariants,
)
from repro.check.scenarios import DEFAULT_SCENARIOS, SCENARIOS, Scenario
from repro.system import System


def _partial_fd_churn():
    """fd-churn frozen mid-flight: live members, open files, warm TLBs."""
    scenario = SCENARIOS["fd-churn"]
    out = {}
    sim = System(ncpus=scenario.ncpus, lockdep=True)
    sim.spawn(scenario.main, out, name=scenario.name)
    sim.run(max_events=400, check_deadlock=False)
    assert any(proc.alive() for proc in sim.kernel.proc_table.all_procs())
    return sim


# ----------------------------------------------------------------------
# invariants: silent when healthy, loud when corrupted


def test_invariants_clean_mid_run():
    sim = _partial_fd_churn()
    assert run_invariants(sim) == []


def test_shaddr_refcount_corruption_detected():
    sim = _partial_fd_churn()
    block = next(
        proc.shaddr
        for proc in sim.kernel.proc_table.all_procs()
        if proc.alive() and proc.shaddr is not None
    )
    block.s_refcnt += 1
    findings = check_shaddr_refcounts(sim)
    assert findings and "s_refcnt" in findings[0]


def test_stale_tlb_entry_detected():
    sim = _partial_fd_churn()
    asid = next(
        proc.vm.asid
        for proc in sim.kernel.proc_table.all_procs()
        if proc.alive()
    )
    # a translation no live address space backs: a missed shootdown
    sim.machine.cpus[0].tlb.insert(asid, 0x7FF99, 4242, writable=False)
    findings = check_pregion_tlb(sim)
    assert findings and "stale entry" in findings[0]


def test_fd_refcount_leak_detected():
    sim = _partial_fd_churn()
    file = next(
        slot
        for proc in sim.kernel.proc_table.all_procs()
        if proc.alive()
        for slot in proc.uarea.fdtable.slots
        if slot is not None
    )
    file.hold()  # a reference nothing reachable accounts for
    findings = check_fd_refcounts(sim)
    assert findings and "refcount" in findings[0]
    file.release()
    assert check_fd_refcounts(sim) == []


# ----------------------------------------------------------------------
# explorer: pass, fail, reproduce, shrink


def test_default_scenarios_schedule_independent():
    report = explore(DEFAULT_SCENARIOS, nseeds=4)
    assert report.ok, report.render()
    assert report.runs == len(DEFAULT_SCENARIOS) * 5  # baseline + 4 seeds


def test_explorer_detects_lost_update_race():
    report = explore(["racy-counter"], nseeds=6)
    assert not report.ok
    assert report.failures, "lost updates must surface as divergence"
    assert all(failure.kind == "divergence" for failure in report.failures)
    rendered = report.render()
    assert "FAIL racy-counter" in rendered and "repro:" in rendered


def test_failure_reproduces_from_reported_seed():
    """The seed + shrunken feature set in the report is a real repro:
    running it again diverges from baseline the same way, twice."""
    report = explore(["racy-counter"], nseeds=6)
    failure = report.failures[0]
    assert failure.minimal_features, "shrink kept at least one feature"
    assert failure.minimal_features <= failure.features
    scenario = SCENARIOS["racy-counter"]
    baseline = run_once(scenario, seed=None)
    first = run_once(scenario, seed=failure.seed, features=failure.minimal_features)
    second = run_once(scenario, seed=failure.seed, features=failure.minimal_features)
    assert first.fingerprint == second.fingerprint, "seeded runs are deterministic"
    assert first.fingerprint != baseline.fingerprint, "the divergence is real"
    assert failure.repro_command().startswith("python -m repro.check")


def test_run_once_classifies_lost_wakeup_as_error():
    """A drained engine with blocked processes (the lost-wakeup shape)
    comes back as a classified error, not an unhandled exception."""

    def stuck(api, out):
        rfd, _wfd = yield from api.pipe()
        yield from api.read(rfd, 8)  # nobody will ever write
        return 0

    result = run_once(Scenario("stuck", stuck, 1, "blocks forever"))
    assert not result.ok
    assert result.error_kind == "DeadlockError"
    assert "blocked" in result.error


# ----------------------------------------------------------------------
# the CLI


def test_cli_list_and_smoke(capsys):
    assert check_cli.main(["--list"]) == 0
    listed = capsys.readouterr().out
    for name in SCENARIOS:
        assert name in listed

    assert check_cli.main(["--seeds", "2"]) == 0
    assert "PASS" in capsys.readouterr().out


def test_cli_detects_race_and_writes_report(tmp_path):
    path = tmp_path / "report.json"
    code = check_cli.main(
        ["--scenarios", "racy-counter", "--seeds", "3", "--report", str(path)]
    )
    assert code == 1
    report = json.loads(path.read_text())
    assert report["ok"] is False
    assert report["failures"]
    assert report["failures"][0]["repro"].startswith("python -m repro.check")


def test_cli_reproduce_mode(capsys):
    code = check_cli.main(
        ["--scenario", "racy-counter", "--seed", "0", "--features", "place"]
    )
    assert code == 0
    shown = capsys.readouterr().out
    assert "completed in" in shown and "count" in shown


def test_cli_rejects_unknown_scenario(capsys):
    assert check_cli.main(["--scenarios", "no-such-thing"]) == 2
    assert "unknown scenario" in capsys.readouterr().err
