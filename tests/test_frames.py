"""Unit and property tests for the physical frame allocator."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import SimulationError
from repro.mem.frames import PAGE_SIZE, FrameAllocator, page_round_up, pages_for


def test_alloc_returns_zeroed_frame_with_one_ref():
    alloc = FrameAllocator(4)
    frame = alloc.alloc()
    assert frame.refcount == 1
    assert bytes(frame.data) == b"\x00" * PAGE_SIZE
    assert alloc.allocated == 1


def test_exhaustion_raises_memory_error():
    alloc = FrameAllocator(2)
    alloc.alloc()
    alloc.alloc()
    with pytest.raises(MemoryError):
        alloc.alloc()


def test_release_returns_frame_to_pool():
    alloc = FrameAllocator(1)
    frame = alloc.alloc()
    alloc.release(frame)
    assert alloc.allocated == 0
    again = alloc.alloc()
    assert again.refcount == 1


def test_hold_release_refcounting():
    alloc = FrameAllocator(2)
    frame = alloc.alloc()
    alloc.hold(frame)
    assert frame.refcount == 2
    alloc.release(frame)
    assert alloc.allocated == 1
    alloc.release(frame)
    assert alloc.allocated == 0


def test_double_free_is_caught():
    alloc = FrameAllocator(2)
    frame = alloc.alloc()
    alloc.release(frame)
    with pytest.raises(SimulationError):
        alloc.release(frame)


def test_get_free_frame_is_caught():
    alloc = FrameAllocator(2)
    frame = alloc.alloc()
    pfn = frame.pfn
    alloc.release(frame)
    with pytest.raises(SimulationError):
        alloc.get(pfn)


def test_peak_tracks_high_water_mark():
    alloc = FrameAllocator(8)
    frames = [alloc.alloc() for _ in range(5)]
    for frame in frames:
        alloc.release(frame)
    assert alloc.peak == 5
    assert alloc.allocated == 0


def test_page_round_up_and_pages_for():
    assert page_round_up(0) == 0
    assert page_round_up(1) == PAGE_SIZE
    assert page_round_up(PAGE_SIZE) == PAGE_SIZE
    assert pages_for(0) == 0
    assert pages_for(1) == 1
    assert pages_for(PAGE_SIZE + 1) == 2


@given(st.lists(st.booleans(), min_size=1, max_size=200))
def test_alloc_release_never_leaks_or_double_counts(ops):
    """Property: after any alloc/release sequence, counters agree."""
    alloc = FrameAllocator(64)
    live = []
    for do_alloc in ops:
        if do_alloc and alloc.free_count:
            live.append(alloc.alloc())
        elif live:
            alloc.release(live.pop())
    assert alloc.allocated == len(live)
    assert alloc.free_count == 64 - len(live)
    pfns = [frame.pfn for frame in live]
    assert len(set(pfns)) == len(pfns), "duplicate frames handed out"
