"""Remaining kernel corners: priority preemption, multi-resource sync,
signal ordering, page-crossing guest I/O, dup2 propagation."""


from repro import (
    O_CREAT,
    O_RDWR,
    PR_SALL,
    SEEK_SET,
    SIGHUP,
    SIGUSR1,
    SIGUSR2,
    )
from repro.mem.frames import PAGE_SIZE
from tests.conftest import run_program


def test_priority_wakeup_preempts_running_hog():
    """A better-priority process waking from sleep must preempt a worse
    one mid-quantum (the scheduler's IPI path)."""

    def hog(api, out):
        yield from api.nice(15)  # make ourselves worse
        yield from api.compute(400_000)
        out["hog_done"] = api.now
        return 0

    def sleeper(api, ctx):
        out, rfd = ctx
        yield from api.read(rfd, 1)  # sleep until poked
        out["woke"] = api.now
        yield from api.compute(50_000)
        out["sleeper_done"] = api.now
        return 0

    def main(api, out):
        rfd, wfd = yield from api.pipe()
        yield from api.fork(sleeper, (out, rfd))
        yield from api.compute(10_000)  # let the sleeper block
        yield from api.fork(hog, out)
        yield from api.compute(20_000)
        yield from api.write(wfd, b"!")  # wake the good-priority sleeper
        yield from api.wait()
        yield from api.wait()
        return 0

    out, _ = run_program(main, ncpus=1)
    assert out["sleeper_done"] < out["hog_done"], (
        "the woken better-priority process must finish first"
    )


def test_multiple_resources_synced_in_one_entry():
    """One member changes fds, dir, umask, ulimit and ids; a sibling's
    single kernel entry brings all five up to date."""

    def changer(api, arg):
        yield from api.mkdir("/elsewhere")
        fd = yield from api.open("/elsewhere/f", O_RDWR | O_CREAT)
        yield from api.chdir("/elsewhere")
        yield from api.umask(0o027)
        yield from api.ulimit(2, 4096)
        yield from api.setgid(12)
        return 0

    def main(api, out):
        yield from api.sproc(changer, PR_SALL)
        yield from api.wait()
        from repro.kernel.flags import ALL_SYNC

        out["bits"] = bin(api.proc.p_flag & ALL_SYNC).count("1")
        yield from api.getpid()  # the one entry
        ua = api.proc.uarea
        out["cmask"] = ua.cmask
        out["ulimit"] = ua.ulimit
        out["gid"] = ua.gid
        st = yield from api.stat("f")  # relative: cdir must be /elsewhere
        out["dir_ok"] = st != -1
        data = yield from api.read(0, 0)  # fd 0 must exist (shared open)
        out["fd_ok"] = data != -1
        return 0

    out, _ = run_program(main)
    assert out["bits"] == 5, "all five sync bits set"
    assert out["cmask"] == 0o027
    assert out["ulimit"] == 4096
    assert out["gid"] == 12
    assert out["dir_ok"]
    assert out["fd_ok"]


def test_pending_signals_delivered_lowest_first():
    def victim(api, order_base):
        index_cell = order_base + 32

        def make_handler():
            def handler(api, sig):
                index = yield from api.fetch_add(index_cell, 1)
                yield from api.store_word(order_base + 4 * index, sig)

            return handler

        for sig in (SIGHUP, SIGUSR1, SIGUSR2):
            yield from api.signal(sig, make_handler())
        yield from api.store_word(order_base + 60, 1)  # ready
        yield from api.compute(400_000)
        return 0

    def main(api, out):
        base = yield from api.mmap(4096)
        pid = yield from api.sproc(victim, PR_SALL, base)
        while (yield from api.load_word(base + 60)) == 0:
            yield from api.yield_cpu()
        # Freeze the victim so all three signals are pending at once;
        # on resume the batch is delivered in numeric order
        # (SIGHUP=1 < SIGUSR1=16 < SIGUSR2=17), the issig() priority.
        yield from api.blockproc(pid)
        yield from api.compute(5_000)
        yield from api.kill(pid, SIGUSR2)
        yield from api.kill(pid, SIGHUP)
        yield from api.kill(pid, SIGUSR1)
        yield from api.unblockproc(pid)
        yield from api.wait()
        order = []
        for index in range(3):
            value = yield from api.load_word(base + 4 * index)
            order.append(value)
        out["order"] = order
        return 0

    out, _ = run_program(main, ncpus=2)
    assert out["order"] == sorted(out["order"]) == [SIGHUP, SIGUSR1, SIGUSR2]


def test_guest_io_buffers_crossing_page_boundaries():
    def main(api, out):
        buf = yield from api.mmap(3 * PAGE_SIZE)
        fd = yield from api.open("/f", O_RDWR | O_CREAT)
        payload = bytes(range(256)) * 24  # 6KB: crosses a page
        start = buf + PAGE_SIZE - 100  # straddles two pages
        yield from api.store(start, payload)
        n = yield from api.write_v(fd, start, len(payload))
        yield from api.lseek(fd, 0, SEEK_SET)
        n2 = yield from api.read_v(fd, buf, len(payload))
        readback = yield from api.load(buf, len(payload))
        out["ok"] = (n, n2, readback == payload)
        return 0

    out, _ = run_program(main)
    n, n2, same = out["ok"]
    assert n == n2 == 6144
    assert same


def test_dup2_propagates_through_group():
    def rewirer(api, fd):
        yield from api.dup2(fd, 10)
        return 0

    def main(api, out):
        fd = yield from api.open("/f", O_RDWR | O_CREAT)
        yield from api.write(fd, b"at ten")
        yield from api.sproc(rewirer, PR_SALL, fd)
        yield from api.wait()
        yield from api.getpid()  # sync
        yield from api.lseek(10, 0, SEEK_SET)
        out["data"] = yield from api.read(10, 16)
        return 0

    out, _ = run_program(main)
    assert out["data"] == b"at ten"


def test_thread_killed_by_signal_reports_status():
    from repro import SIGKILL, status_signal

    def spinner(api, arg):
        yield from api.compute(10_000_000)
        return 0

    def main(api, out):
        tid = yield from api.thread_create(spinner)
        yield from api.compute(50_000)
        yield from api.kill(tid, SIGKILL)
        _, status = yield from api.thread_join()
        out["sig"] = status_signal(status)
        return 0

    out, _ = run_program(main, ncpus=2)
    from repro import SIGKILL

    assert out["sig"] == SIGKILL
