"""Deterministic fault injection (failpoints) for the simulated kernel."""

from repro.inject.failpoints import (
    FailPlan,
    FailPointRegistry,
    INJECT_DELAY_CYCLES,
    SITES,
)

__all__ = [
    "FailPlan",
    "FailPointRegistry",
    "INJECT_DELAY_CYCLES",
    "SITES",
]
