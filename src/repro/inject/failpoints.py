"""Deterministic fault injection: named failpoints in the kernel.

Every kernel allocation or failure-prone step is wrapped in a *site* —
a named point that normally does nothing and costs nothing, but can be
armed with a policy to force the failure the surrounding code claims to
handle.  Because the simulation is deterministic, ``site + policy``
fully reproduces any injected failure: the Nth hit of a site is the
same hit in every run.

Policies (the ``nth:3`` strings the CLI and tests pass around):

======================= ===============================================
``nth:N``               fire on exactly the Nth hit (1-based), once
``every:K``             fire on every Kth hit
``prob:P[:SEED]``       fire each hit with probability P, from a
                        *private* seeded RNG (default seed 0)
======================= ===============================================

``prob`` deliberately does **not** draw from the engine's perturbation
RNG: injection must never change the schedule of runs it does not fail,
and the engine RNG does not exist in unperturbed runs.  A private
``random.Random(seed)`` keeps probabilistic plans reproducible from the
policy string alone.

The registry's disarmed fast path is one attribute test, mirroring
``NULL_LOCKDEP``: with no plan armed and recording off, ``fire()``
returns False without counting anything, so a run with injection
disabled is cycle-identical (and host-state-identical) to a run on a
build without failpoints at all.
"""

from __future__ import annotations

import random
from typing import Dict, Optional

from repro.obs.profile import NULL_PROFILER

#: cycles charged when a ``*.delay`` site fires (lock hold-off injection)
INJECT_DELAY_CYCLES = 400

#: every failpoint site compiled into the kernel: name -> what fails
SITES: Dict[str, str] = {
    "frames.alloc": "physical frame allocator free list empty (MemoryError)",
    "fault.zero": "demand-zero fill during a page fault (ENOMEM / OOM kill)",
    "fault.cow": "copy-on-write break during a page fault (ENOMEM / OOM kill)",
    "fault.grow": "automatic stack growth during a page fault (ENOMEM / OOM kill)",
    "fd.alloc": "descriptor slot allocation (EMFILE)",
    "open.file": "open-file table entry in sys_open (ENFILE)",
    "pipe.alloc": "pipe inode/buffer allocation in sys_pipe (ENFILE)",
    "pipe.read.sleep": "signal arrives before the pipe read sleep (EINTR)",
    "pipe.write.sleep": "signal arrives before the pipe write sleep (EINTR)",
    "fork.proc": "process table slot in fork (EAGAIN)",
    "fork.uarea": "u-area allocation in fork (ENOMEM)",
    "sproc.shaddr": "shared address block setup in sproc (EAGAIN)",
    "sproc.stack": "child stack carve / VM build in sproc (ENOMEM)",
    "sproc.uarea": "child u-area allocation in sproc (ENOMEM)",
    "sproc.proc": "process table slot in sproc (EAGAIN)",
    "sproc.kstack": "child kernel stack after the child joined the group (ENOMEM)",
    "mmap.region": "address range allocation in mmap (ENOMEM)",
    "unshare.fds": "fd slot copy-out during PR_UNSHARE (ENOMEM)",
    "unshare.aspace": "private address-space allocation for the PR_SADDR detach (ENOMEM)",
    "unshare.pregion": "per-pregion copy-out of the shared image (ENOMEM)",
    "unshare.uarea": "private u-area resource copy during PR_UNSHARE (ENOMEM)",
    "wait.sleep": "signal arrives before the wait() child sleep (EINTR)",
    "sem.sleep": "signal arrives before the semop sleep (EINTR)",
    "msg.snd.sleep": "signal arrives before the msgsnd sleep (EINTR)",
    "msg.rcv.sleep": "signal arrives before the msgrcv sleep (EINTR)",
    "usync.sleep": "signal arrives before the uwait sleep (EINTR)",
    "ipc.get": "SysV registry table entry in shmget/semget/msgget (ENOSPC)",
    "shmalloc.grow": "shared arena bump growth (MemoryError to the guest)",
    "vmlock.read.delay": "hold-off before taking the group's shared read lock",
    "vmlock.update.delay": "hold-off before taking the group's update lock",
    "syscall.entry": "SIGKILL delivered at the syscall entry boundary",
    "syscall.exit": "SIGKILL delivered at the syscall exit boundary",
}


class FailPlan:
    """One armed site: a parsed policy deciding which hits fire."""

    __slots__ = ("site", "policy", "kind", "n", "_rng", "_spent")

    def __init__(self, site: str, policy: str):
        if site not in SITES:
            raise ValueError(
                "unknown failpoint site %r (have: %s)"
                % (site, ", ".join(sorted(SITES)))
            )
        self.site = site
        self.policy = policy
        self._rng: Optional[random.Random] = None
        self._spent = False
        parts = policy.split(":")
        self.kind = parts[0]
        try:
            if self.kind == "nth":
                (count,) = parts[1:]
                self.n = int(count)
                if self.n < 1:
                    raise ValueError
            elif self.kind == "every":
                (count,) = parts[1:]
                self.n = int(count)
                if self.n < 1:
                    raise ValueError
            elif self.kind == "prob":
                if len(parts) == 2:
                    prob, seed = parts[1], 0
                else:
                    prob, seed = parts[1], int(parts[2])
                self.n = float(prob)
                if not 0.0 <= self.n <= 1.0:
                    raise ValueError
                self._rng = random.Random(seed)
            else:
                raise ValueError
        except (ValueError, IndexError):
            raise ValueError(
                "bad failpoint policy %r (want nth:N, every:K or prob:P[:SEED])"
                % policy
            ) from None

    def decide(self, hit_no: int) -> bool:
        """Should the ``hit_no``-th hit (1-based) of this site fire?"""
        if self.kind == "nth":
            if self._spent or hit_no != self.n:
                return False
            self._spent = True
            return True
        if self.kind == "every":
            return hit_no % self.n == 0
        return self._rng.random() < self.n  # type: ignore[union-attr]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<FailPlan %s %s>" % (self.site, self.policy)


class FailPointRegistry:
    """Per-machine registry of armed failpoints and their hit counts.

    The kernel (and the few leaf objects it hands the registry to)
    calls :meth:`fire` at each site; the returned bool is the injection
    decision.  ``hits``/``fired`` are host-side counters; the
    ``inject_fired`` kstat (plus one per-site counter under the
    ``inject`` kind) is the in-simulation observable.
    """

    __slots__ = (
        "_plans", "hits", "fired", "_kstat", "_active", "_recording",
        "profile",
    )

    def __init__(self, kstat=None):
        self._plans: Dict[str, FailPlan] = {}
        self.hits: Dict[str, int] = {}
        self.fired: Dict[str, int] = {}
        self._kstat = kstat
        self._active = False
        self._recording = False
        #: host profiler timing the hit checks (machine swaps in a live one)
        self.profile = NULL_PROFILER

    # ------------------------------------------------------------------

    def arm(self, site: str, policy: str) -> FailPlan:
        """Arm ``site`` with a policy string; replaces any earlier plan."""
        plan = FailPlan(site, policy)
        self._plans[site] = plan
        self._active = True
        return plan

    def arm_many(self, plans: Dict[str, str]) -> None:
        for site, policy in plans.items():
            self.arm(site, policy)

    def start_recording(self) -> None:
        """Count hits at every site without firing anything.

        Used by the sweep's baseline pass to learn which sites a
        scenario reaches (and how often) before choosing hit indices.
        """
        self._recording = True
        self._active = True

    @property
    def armed_sites(self) -> Dict[str, str]:
        return {site: plan.policy for site, plan in self._plans.items()}

    # ------------------------------------------------------------------

    def fire(self, site: str) -> bool:
        """Record a hit at ``site``; True when the armed policy fires."""
        if not self._active:
            # Disarmed probes are hit on every syscall/fault path, so the
            # no-op case returns before even the profiler bracketing —
            # there is nothing meaningful to attribute to "inject.fire".
            return False
        profile = self.profile
        if profile.enabled:
            t0 = profile.clock()
            fired = self._fire(site)
            profile.leaf("inject.fire", t0)
            return fired
        return self._fire(site)

    def _fire(self, site: str) -> bool:
        if not self._active:
            return False
        hit_no = self.hits.get(site, 0) + 1
        self.hits[site] = hit_no
        plan = self._plans.get(site)
        if plan is None or not plan.decide(hit_no):
            return False
        self.fired[site] = self.fired.get(site, 0) + 1
        if self._kstat is not None:
            self._kstat.add("kernel", 0, "inject_fired")
            self._kstat.add("inject", 0, site)
        return True

    def total_fired(self) -> int:
        return sum(self.fired.values())
