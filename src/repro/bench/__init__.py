"""Benchmark harness and the twelve paper-reproduction experiments."""

from repro.bench.experiments import ALL_EXPERIMENTS
from repro.bench.harness import Claim, ExperimentResult, mean, ratio

__all__ = ["ALL_EXPERIMENTS", "Claim", "ExperimentResult", "mean", "ratio"]
