"""Run the paper-reproduction experiments from the command line.

    python -m repro.bench            # run everything
    python -m repro.bench E1 E6      # run a subset
    python -m repro.bench --list     # show what exists

Each experiment prints its table and claim results; a non-zero exit code
means some claim failed.  Tables are also written to benchmarks/results/.
"""

from __future__ import annotations

import sys

from repro.bench.experiments import ALL_EXPERIMENTS


def main(argv) -> int:
    args = [arg.upper() for arg in argv[1:]]
    if "--LIST" in args or "-L" in args:
        for eid, func in ALL_EXPERIMENTS.items():
            doc = (func.__doc__ or "").strip().splitlines()
            print("%-4s %s" % (eid, doc[0] if doc else func.__name__))
        return 0
    chosen = args or list(ALL_EXPERIMENTS)
    unknown = [eid for eid in chosen if eid not in ALL_EXPERIMENTS]
    if unknown:
        print("unknown experiment(s): %s" % ", ".join(unknown))
        print("available: %s" % ", ".join(ALL_EXPERIMENTS))
        return 2
    failures = 0
    for eid in chosen:
        result = ALL_EXPERIMENTS[eid]()
        result.save()
        bad = [claim for claim in result.claims if not claim.holds]
        if bad:
            failures += len(bad)
    if failures:
        print("%d claim(s) FAILED" % failures)
        return 1
    print("all claims hold")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
