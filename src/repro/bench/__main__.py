"""Run the paper-reproduction experiments from the command line.

    python -m repro.bench                       # run everything once
    python -m repro.bench E1 E6                 # run a subset
    python -m repro.bench --list                # show what exists
    python -m repro.bench e15 --seeds 10 --jobs 4 --profile

Each experiment prints its table and claim results; a non-zero exit code
means some claim failed.  Tables land in benchmarks/results/ along with
a machine-readable BENCH_<eid>.json.

``--seeds N`` additionally runs each experiment under N perturbation
seeds (sharded across ``--jobs`` host processes), attaches a bootstrap
confidence interval to every metric (stored under ``"stats"`` in the
BENCH json, gated on CI overlap by benchmarks/compare_bench.py), and
requires the paper claims to hold under *every* seed, not just the
default schedule.  ``--profile`` arms the host-side self-profiler and
writes the per-phase breakdown plus ``sim_cycles_per_host_sec`` to
BENCH_HOST.json.  ``--trend PATH`` appends this run's summary to a
BENCH_TREND.json so the perf trajectory accumulates across PRs.
"""

from __future__ import annotations

import argparse
import sys

from repro.bench.experiments import ALL_EXPERIMENTS


def _list_experiments() -> int:
    for eid, func in ALL_EXPERIMENTS.items():
        doc = (func.__doc__ or "").strip().splitlines()
        print("%-4s %s" % (eid, doc[0] if doc else func.__name__))
    return 0


def _write_host_json(summary: dict) -> str:
    import json
    import os

    from repro.bench.harness import _default_results_dir

    directory = os.environ.get("REPRO_RESULTS_DIR", _default_results_dir())
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, "BENCH_HOST.json")
    with open(path, "w") as handle:
        json.dump(summary, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def main(argv) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.bench", description=__doc__.splitlines()[0]
    )
    parser.add_argument("eids", nargs="*", metavar="EID",
                        help="experiments to run (default: all)")
    parser.add_argument("--list", "-l", action="store_true",
                        help="list experiments and exit")
    parser.add_argument("--seeds", type=int, default=0, metavar="N",
                        help="run each experiment under N perturbation "
                             "seeds and attach bootstrap CIs")
    parser.add_argument("--jobs", type=int, default=None, metavar="J",
                        help="host processes for the seed sweep "
                             "(default: min(seeds, cpu_count))")
    parser.add_argument("--profile", action="store_true",
                        help="arm the host self-profiler; write "
                             "BENCH_HOST.json")
    parser.add_argument("--trend", metavar="PATH",
                        help="append results to the BENCH_TREND.json "
                             "at PATH")
    parser.add_argument("--scale", choices=("full", "quick"), default=None,
                        help="workload scale for experiments that take "
                             "one (E17): full for nightly/acceptance "
                             "runs, quick for per-PR CI")
    args = parser.parse_args(argv[1:])

    if args.list:
        return _list_experiments()

    # Host-side tuning only: bench processes are short-lived, so cyclic
    # garbage (generator frames, proc parent/child links) is reclaimed at
    # exit anyway, while collector pauses otherwise eat 10-20% of the
    # measured wall time on the event-dense experiments.
    import gc

    gc.disable()

    chosen = [eid.upper() for eid in args.eids] or list(ALL_EXPERIMENTS)
    unknown = [eid for eid in chosen if eid not in ALL_EXPERIMENTS]
    if unknown:
        print("unknown experiment(s): %s" % ", ".join(unknown))
        print("available: %s" % ", ".join(ALL_EXPERIMENTS))
        return 2

    from repro.obs import profile as profile_mod

    session = profile_mod.begin_session() if args.profile else None
    failures = 0
    try:
        for eid in chosen:
            import inspect

            func = ALL_EXPERIMENTS[eid]
            kwargs = {}
            if (args.scale is not None
                    and "scale" in inspect.signature(func).parameters):
                kwargs["scale"] = args.scale
            result = func(**kwargs)
            sweep = None
            if args.seeds > 0:
                from repro.bench.stats import run_sweep

                sweep = run_sweep(
                    eid, nseeds=args.seeds, jobs=args.jobs,
                    profiled=args.profile, **kwargs,
                )
                result.stats = sweep.stats()
                if session is not None:
                    for run in sweep.runs:
                        if run.get("host"):
                            session.absorb(run["host"])
                print(sweep.render())
                failures += len(sweep.failed_claims)
            result.save()
            result.save_json()
            failures += sum(1 for claim in result.claims if not claim.holds)
            if args.trend:
                from repro.bench.stats import append_trend, trend_entry

                # per-experiment host numbers come from that sweep's
                # shards; the whole-run summary lands in BENCH_HOST.json
                host = sweep.host_summary() if sweep is not None else None
                if host is None and session is not None:
                    host = session.merged()
                append_trend(args.trend, trend_entry(eid, sweep, host))
    finally:
        profile_mod.end_session()

    if session is not None:
        summary = session.merged()
        path = _write_host_json(summary)
        print(session.render())
        print("host profile written to %s" % path)

    if failures:
        print("%d claim(s) FAILED" % failures)
        return 1
    print("all claims hold")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
