"""Benchmark harness: experiment results, tables, and shape checks.

Every experiment produces an :class:`ExperimentResult` — rows of
simulated-cycle measurements plus *claims*: the qualitative shapes the
paper states (who wins, by roughly what factor, where crossovers fall).
``check()`` turns the claims into assertions, so a regression in the
kernel that flips a result fails the benchmark suite, not just changes a
number nobody reads.

Rendered tables are printed and also written under
``benchmarks/results/`` so EXPERIMENTS.md can reference the exact output.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional, Sequence


class Claim:
    """One qualitative assertion about an experiment's outcome."""

    def __init__(self, description: str, holds: bool, detail: str = ""):
        self.description = description
        self.holds = holds
        self.detail = detail

    def __repr__(self) -> str:  # pragma: no cover
        return "<Claim %s: %s>" % ("OK" if self.holds else "FAIL", self.description)


class ExperimentResult:
    """Rows + claims for one experiment (one paper table/figure)."""

    def __init__(self, eid: str, title: str, columns: Sequence[str]):
        self.eid = eid
        self.title = title
        self.columns = list(columns)
        self.rows: List[Dict] = []
        self.claims: List[Claim] = []
        self.notes: List[str] = []
        self.counters: Dict = {}  #: optional kstat snapshot(s), see save_json
        #: optional multi-seed bootstrap summaries attached by the
        #: ``--seeds`` sweep: ``{row: {metric: {mean, ci_lo, ci_hi, ...}}}``
        self.stats: Dict = {}

    # ------------------------------------------------------------------

    def add_row(self, **values) -> None:
        self.rows.append(values)

    def claim(self, description: str, holds: bool, detail: str = "") -> None:
        self.claims.append(Claim(description, bool(holds), detail))

    def note(self, text: str) -> None:
        self.notes.append(text)

    # ------------------------------------------------------------------

    def check(self) -> "ExperimentResult":
        """Assert every claim; raise with the failing ones listed."""
        failing = [claim for claim in self.claims if not claim.holds]
        if failing:
            lines = [
                "  FAILED: %s %s" % (claim.description, claim.detail)
                for claim in failing
            ]
            raise AssertionError(
                "%s: %d claim(s) failed:\n%s\n%s"
                % (self.eid, len(failing), "\n".join(lines), self.render())
            )
        return self

    # ------------------------------------------------------------------

    def render(self) -> str:
        """The experiment as an aligned text table with claim summary."""
        lines = ["", "=" * 72, "%s — %s" % (self.eid, self.title), "=" * 72]
        widths = {
            column: max(
                len(column),
                max((len(_fmt(row.get(column))) for row in self.rows), default=0),
            )
            for column in self.columns
        }
        header = "  ".join(column.ljust(widths[column]) for column in self.columns)
        lines.append(header)
        lines.append("-" * len(header))
        for row in self.rows:
            lines.append(
                "  ".join(
                    _fmt(row.get(column)).ljust(widths[column])
                    for column in self.columns
                )
            )
        if self.notes:
            lines.append("")
            for note in self.notes:
                lines.append("note: %s" % note)
        lines.append("")
        for claim in self.claims:
            status = "ok  " if claim.holds else "FAIL"
            detail = (" — " + claim.detail) if claim.detail else ""
            lines.append("[%s] %s%s" % (status, claim.description, detail))
        lines.append("")
        return "\n".join(lines)

    def save(self, directory: Optional[str] = None) -> str:
        """Print the table and persist it under benchmarks/results/."""
        text = self.render()
        print(text)
        directory = directory or os.environ.get(
            "REPRO_RESULTS_DIR", _default_results_dir()
        )
        os.makedirs(directory, exist_ok=True)
        path = os.path.join(directory, "%s.txt" % self.eid.lower())
        with open(path, "w") as handle:
            handle.write(text)
        return path

    def to_json_dict(self) -> Dict:
        """The experiment as one JSON-serialisable dict."""
        out = {
            "experiment": self.eid,
            "title": self.title,
            "columns": self.columns,
            "rows": self.rows,
            "claims": [
                {
                    "description": claim.description,
                    "holds": claim.holds,
                    "detail": claim.detail,
                }
                for claim in self.claims
            ],
            "notes": self.notes,
            "counters": self.counters,
        }
        if self.stats:
            out["stats"] = self.stats
        return out

    def save_json(self, directory: Optional[str] = None) -> str:
        """Persist headline numbers + counters as BENCH_<eid>.json."""
        directory = directory or os.environ.get(
            "REPRO_RESULTS_DIR", _default_results_dir()
        )
        os.makedirs(directory, exist_ok=True)
        path = os.path.join(directory, "BENCH_%s.json" % self.eid.upper())
        with open(path, "w") as handle:
            json.dump(self.to_json_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        return path


def _default_results_dir() -> str:
    """benchmarks/results next to the repository's benchmarks package."""
    here = os.path.dirname(os.path.abspath(__file__))
    # src/repro/bench -> repo root is three levels up
    root = os.path.dirname(os.path.dirname(os.path.dirname(here)))
    candidate = os.path.join(root, "benchmarks")
    if os.path.isdir(candidate):
        return os.path.join(candidate, "results")
    return os.path.join(os.getcwd(), "bench-results")


def _fmt(value) -> str:
    if value is None:
        return ""
    if isinstance(value, float):
        return "%.2f" % value
    if isinstance(value, int):
        return "{:,}".format(value)
    return str(value)


def mean(values: Sequence[float]) -> float:
    return sum(values) / len(values) if values else 0.0


def ratio(numerator: float, denominator: float) -> float:
    return numerator / denominator if denominator else float("inf")
