"""The fourteen experiments (one per paper table/figure/claim, plus two
bonus ablations).

Each ``run_eNN`` builds fresh simulated systems, runs a deterministic
workload, and returns an :class:`~repro.bench.harness.ExperimentResult`
whose *claims* encode the paper's qualitative statements.  The
``benchmarks/bench_eNN_*.py`` files drive these under pytest-benchmark;
``EXPERIMENTS.md`` indexes them against the paper text.
"""

from __future__ import annotations

from typing import Optional

from repro.fs.file import O_CREAT, O_RDWR, SEEK_SET
from repro.ipc.sysv_shm import IPC_CREAT, IPC_PRIVATE
from repro.kernel.signals import SIGKILL, SIGUSR1
from repro.mem.frames import PAGE_SIZE
from repro.runtime.aio import AioRing
from repro.runtime.ulocks import UBarrier
from repro.runtime.workqueue import WorkQueue
from repro.share.mask import PR_SADDR, PR_SALL
from repro.share.prctl import PR_SETGANG
from repro.sync.sharedlock import ExclusiveAblationLock
from repro.system import System
from repro.workloads import generators as gen
from repro.workloads.models import MODELS, run_parallel_sum, run_producer_consumer

from repro.bench.harness import ExperimentResult, mean, ratio


def _noop(api, arg):
    return 0
    yield  # pragma: no cover - marks generator


def _run(main, ctx, ncpus=2, seed=None, **system_kwargs):
    # ``seed`` is the sweep's perturbation seed; experiments that need a
    # restricted feature set (E15/E16) pass perturb_seed/perturb_features
    # explicitly, which wins over the default threading here.
    if seed is not None:
        system_kwargs.setdefault("perturb_seed", seed)
    sim = System(ncpus=ncpus, **system_kwargs)
    sim.spawn(main, ctx)
    sim.run()
    return sim


def _touch_data_pages(api, npages):
    """Generator: make ``npages`` of the data segment resident."""
    base = yield from api.sbrk(npages * PAGE_SIZE)
    for page in range(npages):
        yield from api.store_word(base + page * PAGE_SIZE, page)
    return base


# ======================================================================
# E1 — task creation cost (paper section 7 and the Mach 10x claim in
# section 3)
# ======================================================================


def _e01_main(api, ctx):
    out, mech, pages, trials = ctx["out"], ctx["mech"], ctx["pages"], ctx["trials"]
    yield from _touch_data_pages(api, pages)
    if mech.startswith("sproc"):
        yield from api.sproc(_noop, PR_SALL)  # create the group off-clock
        yield from api.wait()
    samples = []
    for _ in range(trials):
        start = api.now
        if mech == "fork":
            yield from api.fork(_noop)
        elif mech == "sproc_shared":
            yield from api.sproc(_noop, PR_SALL)
        elif mech == "sproc_copy":
            yield from api.sproc(_noop, PR_SALL & ~PR_SADDR)
        elif mech == "thread":
            yield from api.thread_create(_noop)
        samples.append(api.now - start)
        if mech == "thread":
            yield from api.thread_join()
        else:
            yield from api.wait()
    out["mean"] = mean(samples)
    return 0


def run_e01(trials: int = 8, seed: Optional[int] = None):
    result = ExperimentResult(
        "E1",
        "task creation cost: fork vs sproc vs Mach-style threads",
        ["mechanism", "resident_pages", "cycles"],
    )
    mechanisms = ("fork", "sproc_copy", "sproc_shared", "thread")
    sizes = (4, 64, 256)
    measured = {}
    for mech in mechanisms:
        for pages in sizes:
            out = {}
            _run(
                _e01_main,
                {"out": out, "mech": mech, "pages": pages, "trials": trials},
                ncpus=2,
                seed=seed,
            )
            measured[(mech, pages)] = out["mean"]
            result.add_row(
                mechanism=mech, resident_pages=pages, cycles=int(out["mean"])
            )
    for pages in sizes:
        result.claim(
            "sproc(PR_SADDR) cheaper than fork at %d pages (paper 7: "
            "'slightly less than a regular fork')" % pages,
            measured[("sproc_shared", pages)] < measured[("fork", pages)],
            "%d vs %d" % (measured[("sproc_shared", pages)], measured[("fork", pages)]),
        )
    result.claim(
        "fork cost grows with resident image size",
        measured[("fork", 256)] > measured[("fork", 4)] * 1.5,
    )
    result.claim(
        "sproc(PR_SADDR) cost is flat in image size",
        measured[("sproc_shared", 256)] < measured[("sproc_shared", 4)] * 1.25,
    )
    fork_thread = ratio(measured[("fork", 256)], measured[("thread", 256)])
    result.claim(
        "threads create ~an order of magnitude faster than fork "
        "(paper 3 quotes Mach at 10x); ratio in [4, 25]",
        4.0 <= fork_thread <= 25.0,
        "ratio %.1f" % fork_thread,
    )
    result.note("creation latency measured caller-side, child reaped between trials")
    return result


# ======================================================================
# E2 — no penalty for normal processes (design goal 4, section 7)
# ======================================================================


def _e02_storm(api, ctx):
    out, count = ctx["out"], ctx["count"]
    start = api.now
    for _ in range(count):
        yield from api.getpid()
    out["per_call"] = (api.now - start) / count
    return 0


def _e02_member_storm(api, ctx):
    out, count = ctx["out"], ctx["count"]
    sleepers = []
    for _ in range(3):
        pid = yield from api.sproc(_sleeper, PR_SALL)
        sleepers.append(pid)
    start = api.now
    for _ in range(count):
        yield from api.getpid()
    out["per_call"] = (api.now - start) / count
    for pid in sleepers:
        yield from api.kill(pid, SIGKILL)
    for _ in sleepers:
        yield from api.wait()
    return 0


def _sleeper(api, arg):
    yield from api.pause()
    return 0


def run_e02(count: int = 300, seed: Optional[int] = None):
    result = ExperimentResult(
        "E2",
        "syscall overhead: share-group support costs normal processes nothing",
        ["configuration", "cycles_per_syscall"],
    )
    configs = {}

    out = {}
    _run(_e02_storm, {"out": out, "count": count}, seed=seed,
         share_groups_enabled=False)
    configs["support compiled out"] = out["per_call"]

    out = {}
    _run(_e02_storm, {"out": out, "count": count}, seed=seed)
    configs["support on, normal process"] = out["per_call"]

    out = {}
    _run(_e02_member_storm, {"out": out, "count": count}, seed=seed)
    configs["support on, group member (no pending sync)"] = out["per_call"]

    for name, value in configs.items():
        result.add_row(configuration=name, cycles_per_syscall=round(value, 2))
    baseline = configs["support compiled out"]
    with_support = configs["support on, normal process"]
    member = configs["support on, group member (no pending sync)"]
    result.claim(
        "support adds only the batched flag test for normal processes "
        "(paper 7: 'normal UNIX processes experience no penalty')",
        with_support - baseline <= 5.0,
        "+%.2f cycles/call" % (with_support - baseline),
    )
    result.claim(
        "an idle group membership costs the same single test",
        abs(member - with_support) <= 5.0,
        "member %.2f vs normal %.2f" % (member, with_support),
    )
    return result


# ======================================================================
# E3 — resource update propagation cost vs group size (section 6.3)
# ======================================================================


def _e03_member(api, ctx):
    rfd, results = ctx["rfd"], ctx["results"]
    yield from api.read(rfd, 1)  # sleep until the update storm is over
    start = api.now
    yield from api.getpid()  # pays the sync
    synced = api.now - start
    start = api.now
    yield from api.getpid()  # baseline
    baseline = api.now - start
    results.append((synced, baseline))
    return 0


def _e03_main(api, ctx):
    out, size, opens = ctx["out"], ctx["size"], ctx["opens"]
    results = []
    rfd, wfd = yield from api.pipe()
    for _ in range(size - 1):
        yield from api.sproc(_e03_member, PR_SALL, {"rfd": rfd, "results": results})
    yield from api.compute(50_000)  # let members reach their read()
    samples = []
    for index in range(opens):
        start = api.now
        yield from api.open("/e3-%d" % index, O_RDWR | O_CREAT)
        samples.append(api.now - start)
    yield from api.write(wfd, b"x" * (size - 1))
    for _ in range(size - 1):
        yield from api.wait()
    out["open_cycles"] = mean(samples)
    out["member_sync"] = mean([synced for synced, _ in results])
    out["member_base"] = mean([base for _, base in results])
    return 0


def run_e03(sizes=(2, 4, 8, 16), opens: int = 20, seed: Optional[int] = None):
    result = ExperimentResult(
        "E3",
        "non-VM resource updates: cost at the updater and at the members",
        ["group_size", "open_cycles", "member_entry_sync", "member_entry_base"],
    )
    measured = {}
    for size in sizes:
        out = {}
        _run(_e03_main, {"out": out, "size": size, "opens": opens}, ncpus=4,
             seed=seed)
        measured[size] = out
        result.add_row(
            group_size=size,
            open_cycles=int(out["open_cycles"]),
            member_entry_sync=int(out["member_sync"]),
            member_entry_base=int(out["member_base"]),
        )
    small, large = measured[sizes[0]], measured[sizes[-1]]
    result.claim(
        "flagging every member makes the updater's cost grow with group size",
        large["open_cycles"] > small["open_cycles"],
        "%d -> %d cycles/open" % (small["open_cycles"], large["open_cycles"]),
    )
    result.claim(
        "a member pays a bounded re-sync at its next kernel entry, "
        "independent of group size",
        large["member_sync"] < small["member_sync"] * 1.5 + 50,
        "%d vs %d" % (small["member_sync"], large["member_sync"]),
    )
    result.claim(
        "after the sync the member's entries are back to baseline",
        all(m["member_base"] < m["member_sync"] for m in measured.values()),
    )
    return result


# ======================================================================
# E4 — the shared read lock lets faults scale (section 6.2)
# ======================================================================


def _e04_faulter(api, ctx):
    base, npages, index = ctx["base"], ctx["npages"], ctx["index"]
    gate = ctx["gate"]
    while (yield from api.load_word(gate)) == 0:
        yield from api.yield_cpu()
    for page in range(npages):
        yield from api.store_word(base + (index * npages + page) * PAGE_SIZE, 1)
    return 0


def _e04_main(api, ctx):
    out, nprocs, npages = ctx["out"], ctx["nprocs"], ctx["npages"]
    gate = yield from api.mmap(PAGE_SIZE)
    base = yield from api.mmap(nprocs * npages * PAGE_SIZE)
    # Create everybody first: continuous scanning starves update-lock
    # takers (sproc carves each child's stack under the update lock), a
    # property of the paper's reader-preference lock worth keeping out
    # of the fault-phase measurement.
    for index in range(nprocs):
        yield from api.sproc(
            _e04_faulter,
            PR_SALL,
            {"base": base, "npages": npages, "index": index, "gate": gate},
        )
    start = api.now
    yield from api.store_word(gate, 1)
    for _ in range(nprocs):
        yield from api.wait()
    out["cycles"] = api.now - start
    return 0


def run_e04(npages: int = 48, nprocs_list=(1, 2, 4, 8),
            seed: Optional[int] = None):
    result = ExperimentResult(
        "E4",
        "concurrent page faults: shared read lock vs exclusive-lock ablation",
        ["faulting_members", "shared_lock_cycles", "exclusive_lock_cycles", "slowdown"],
    )
    measured = {}
    for nprocs in nprocs_list:
        row = {}
        for label, factory in (
            ("shared", None),
            ("exclusive", ExclusiveAblationLock),
        ):
            out = {}
            kwargs = {"vm_lock_factory": factory} if factory else {}
            sim = _run(
                _e04_main,
                {"out": out, "nprocs": nprocs, "npages": npages},
                ncpus=8,
                seed=seed,
                **kwargs,
            )
            row[label] = out["cycles"]
            result.counters["%s_n%d" % (label, nprocs)] = {
                "kernel": sim.kstat.scope("kernel", 0),
                "locks": sim.lockstats.snapshot(),
            }
        measured[nprocs] = row
        result.add_row(
            faulting_members=nprocs,
            shared_lock_cycles=row["shared"],
            exclusive_lock_cycles=row["exclusive"],
            slowdown=round(ratio(row["exclusive"], row["shared"]), 2),
        )
    result.claim(
        "with one faulter the locks are equivalent",
        ratio(measured[1]["exclusive"], measured[1]["shared"]) < 1.15,
    )
    big = nprocs_list[-1]
    result.claim(
        "at %d concurrent faulters the exclusive ablation is >1.5x slower "
        "(the shared read lock is what lets scans proceed in parallel)" % big,
        ratio(measured[big]["exclusive"], measured[big]["shared"]) > 1.5,
        "slowdown %.2f" % ratio(measured[big]["exclusive"], measured[big]["shared"]),
    )
    result.claim(
        "shared-lock fault throughput scales: 8 members take <2.5x the "
        "1-member wall clock for 8x the faults",
        measured[big]["shared"] < measured[1]["shared"] * 2.5,
    )
    return result


# ======================================================================
# E5 — VM sync is free except shrink/detach (sections 6.2, 7)
# ======================================================================


def _e05_main(api, ctx):
    out, ops = ctx["out"], ctx["ops"]
    for _ in range(3):
        yield from api.sproc(_sleeper, PR_SALL)
    mmap_samples, grow_samples, unmap_samples = [], [], []
    bases = []
    for _ in range(ops):
        start = api.now
        base = yield from api.mmap(8 * PAGE_SIZE)
        mmap_samples.append(api.now - start)
        bases.append(base)
    for _ in range(ops):
        start = api.now
        yield from api.sbrk(2 * PAGE_SIZE)
        grow_samples.append(api.now - start)
    for base in bases:
        start = api.now
        yield from api.munmap(base)
        unmap_samples.append(api.now - start)
    out["mmap"] = mean(mmap_samples)
    out["grow"] = mean(grow_samples)
    out["munmap"] = mean(unmap_samples)
    for child in list(api.proc.children):
        yield from api.kill(child.pid, SIGKILL)
    for _ in range(3):
        yield from api.wait()
    return 0


def run_e05(ops: int = 10, ncpus_list=(1, 2, 4, 8), seed: Optional[int] = None):
    result = ExperimentResult(
        "E5",
        "VM operations in a share group: only shrink/detach is expensive",
        ["ncpus", "mmap_cycles", "sbrk_grow_cycles", "munmap_cycles", "shootdowns"],
    )
    measured = {}
    for ncpus in ncpus_list:
        out = {}
        sim = _run(_e05_main, {"out": out, "ops": ops}, ncpus=ncpus, seed=seed)
        measured[ncpus] = out
        result.counters["ncpus%d" % ncpus] = {
            "kernel": sim.kstat.scope("kernel", 0),
            "cpu": {
                idx: sim.kstat.scope("cpu", idx)
                for idx in sim.kstat.scopes("cpu")
            },
        }
        result.add_row(
            ncpus=ncpus,
            mmap_cycles=int(out["mmap"]),
            sbrk_grow_cycles=int(out["grow"]),
            munmap_cycles=int(out["munmap"]),
            shootdowns=sim.stats["shootdowns"],
        )
    first, last = measured[ncpus_list[0]], measured[ncpus_list[-1]]
    result.claim(
        "growing operations cost the same regardless of CPU count",
        abs(last["grow"] - first["grow"]) < 200 and abs(last["mmap"] - first["mmap"]) < 200,
    )
    result.claim(
        "detach pays the synchronous all-CPU TLB shootdown: cost grows "
        "with the processor count",
        last["munmap"] > first["munmap"] + 1000,
        "%d -> %d cycles" % (first["munmap"], last["munmap"]),
    )
    result.claim(
        "on the big machine, detach is several times dearer than growth "
        "(paper 7: 'negligible except when detaching or shrinking regions')",
        last["munmap"] > 2.0 * last["grow"],
        "munmap %d vs grow %d" % (last["munmap"], last["grow"]),
    )
    return result


# ======================================================================
# E6 — synchronization latency: busy-wait vs kernel mechanisms (sec. 3)
# ======================================================================


def _e6_spin_peer(api, ctx):
    base, rounds = ctx["base"], ctx["rounds"]
    for index in range(1, rounds + 1):
        while (yield from api.load_word(base)) != index:
            pass
        yield from api.store_word(base + 4, index)
    return 0


def _e6_spin_main(api, ctx):
    out, rounds = ctx["out"], ctx["rounds"]
    base = yield from api.mmap(4096)
    yield from api.sproc(_e6_spin_peer, PR_SALL, {"base": base, "rounds": rounds})
    start = api.now
    for index in range(1, rounds + 1):
        yield from api.store_word(base, index)
        while (yield from api.load_word(base + 4)) != index:
            pass
    out["per_round"] = (api.now - start) / rounds
    yield from api.wait()
    return 0


def _e6_sem_peer(api, ctx):
    semid, rounds = ctx["semid"], ctx["rounds"]
    for _ in range(rounds):
        yield from api.semop(semid, [(0, -1)])
        yield from api.semop(semid, [(1, 1)])
    return 0


def _e6_sem_main(api, ctx):
    out, rounds = ctx["out"], ctx["rounds"]
    semid = yield from api.semget(IPC_PRIVATE, 2, IPC_CREAT)
    yield from api.fork(_e6_sem_peer, {"semid": semid, "rounds": rounds})
    start = api.now
    for _ in range(rounds):
        yield from api.semop(semid, [(0, 1)])
        yield from api.semop(semid, [(1, -1)])
    out["per_round"] = (api.now - start) / rounds
    yield from api.wait()
    return 0


def _e6_pipe_peer(api, ctx):
    rfd, wfd, rounds = ctx["peer_rfd"], ctx["peer_wfd"], ctx["rounds"]
    for _ in range(rounds):
        yield from api.read(rfd, 1)
        yield from api.write(wfd, b"B")
    return 0


def _e6_pipe_main(api, ctx):
    out, rounds = ctx["out"], ctx["rounds"]
    down_r, down_w = yield from api.pipe()
    up_r, up_w = yield from api.pipe()
    yield from api.fork(
        _e6_pipe_peer, {"peer_rfd": down_r, "peer_wfd": up_w, "rounds": rounds}
    )
    start = api.now
    for _ in range(rounds):
        yield from api.write(down_w, b"A")
        yield from api.read(up_r, 1)
    out["per_round"] = (api.now - start) / rounds
    yield from api.wait()
    return 0


def _e6_sock_peer(api, ctx):
    fd, rounds = ctx["fd"], ctx["rounds"]
    for _ in range(rounds):
        yield from api.recv(fd, 1)
        yield from api.send(fd, b"B")
    return 0


def _e6_sock_main(api, ctx):
    out, rounds = ctx["out"], ctx["rounds"]
    fd_a, fd_b = yield from api.socketpair()
    yield from api.fork(_e6_sock_peer, {"fd": fd_b, "rounds": rounds})
    start = api.now
    for _ in range(rounds):
        yield from api.send(fd_a, b"A")
        yield from api.recv(fd_a, 1)
    out["per_round"] = (api.now - start) / rounds
    yield from api.wait()
    return 0


def _e6_sig_handler(api, sig):
    return
    yield  # pragma: no cover


def _e6_sig_peer(api, ctx):
    rounds, main_pid = ctx["rounds"], ctx["main_pid"]
    yield from api.signal(SIGUSR1, _e6_sig_handler)
    yield from api.store_word(ctx["ready"], 1)
    for _ in range(rounds):
        yield from api.pause()
        yield from api.kill(main_pid, SIGUSR1)
    return 0


def _e6_sig_main(api, ctx):
    out, rounds = ctx["out"], ctx["rounds"]
    ready = yield from api.mmap(4096)
    yield from api.signal(SIGUSR1, _e6_sig_handler)
    main_pid = yield from api.getpid()
    peer = yield from api.sproc(
        _e6_sig_peer,
        PR_SALL,
        {"rounds": rounds, "main_pid": main_pid, "ready": ready},
    )
    while (yield from api.load_word(ready)) == 0:
        yield from api.yield_cpu()
    start = api.now
    for _ in range(rounds):
        yield from api.kill(peer, SIGUSR1)
        yield from api.pause()
    out["per_round"] = (api.now - start) / rounds
    yield from api.wait()
    return 0


def run_e06(rounds: int = 200, seed: Optional[int] = None):
    result = ExperimentResult(
        "E6",
        "synchronization handoff latency by mechanism",
        ["mechanism", "cycles_per_roundtrip"],
    )
    mains = {
        "user spinlock (share group)": _e6_spin_main,
        "SysV semaphore": _e6_sem_main,
        "pipe": _e6_pipe_main,
        "socket": _e6_sock_main,
        "signal (kill/pause)": _e6_sig_main,
    }
    measured = {}
    for name, main in mains.items():
        out = {}
        _run(main, {"out": out, "rounds": rounds}, ncpus=2, seed=seed)
        measured[name] = out["per_round"]
        result.add_row(mechanism=name, cycles_per_roundtrip=round(out["per_round"], 1))
    spin = measured["user spinlock (share group)"]
    result.claim(
        "busy-waiting approaches memory speed: every kernel mechanism is "
        ">=5x slower (paper 3: 'best performance is obtained using some "
        "form of busy-waiting')",
        all(value >= 5 * spin for name, value in measured.items() if name != "user spinlock (share group)"),
        "spin %.0f vs others %s" % (spin, {k: int(v) for k, v in measured.items()}),
    )
    result.claim(
        "the spinlock roundtrip is within an order of magnitude of raw "
        "memory access cost",
        spin < 600,
        "%.0f cycles" % spin,
    )
    return result


# ======================================================================
# E7 — data-passing bandwidth by mechanism and transfer size (sec. 3)
# ======================================================================


def run_e07(nbytes: int = 64 * 1024, chunks=(64, 256, 1024, 4096, 8192),
            seed: Optional[int] = None):
    result = ExperimentResult(
        "E7",
        "producer->consumer bandwidth (bytes per 1000 cycles)",
        ["chunk"] + list(MODELS),
    )
    measured = {}
    for chunk in chunks:
        row = {"chunk": chunk}
        for model in MODELS:
            metrics = run_producer_consumer(
                model, nbytes=nbytes, chunk=chunk, perturb_seed=seed
            )
            row[model] = metrics["bytes_per_kcycle"]
            measured[(model, chunk)] = metrics["bytes_per_kcycle"]
        result.add_row(**row)
    queueing = ("v7_pipes", "bsd_sockets", "sysv_shm")
    for chunk in chunks:
        if chunk > 4096:
            continue
        best_queueing = max(measured[(model, chunk)] for model in queueing)
        result.claim(
            "shared-VM models beat every queueing model at %dB chunks" % chunk,
            measured[("share_group", chunk)] > best_queueing
            or measured[("mach_threads", chunk)] > best_queueing,
            "share_group %.0f vs best queueing %.0f"
            % (measured[("share_group", chunk)], best_queueing),
        )
    result.note(
        "above 4KB the single-flag ring hands off whole chunks while the "
        "kernel's pipe/socket buffers pipeline sub-chunks, so the curves "
        "converge; the paper's advantage regime is small, frequent "
        "transfers, which is where the gap is largest"
    )
    small = chunks[0]
    advantage = ratio(
        measured[("share_group", small)],
        max(measured[(model, small)] for model in queueing),
    )
    result.claim(
        "at %dB transfers the shared-memory advantage is >=4x "
        "(paper 3: queueing models only suit low-rate, small data)" % small,
        advantage >= 4.0,
        "%.1fx" % advantage,
    )
    return result


# ======================================================================
# E8 — self-scheduling pools beat dynamic task creation (section 3)
# ======================================================================


def _e8_pool_worker(api, qbase):
    queue = yield from WorkQueue.attach(api, qbase)
    while True:
        item = yield from queue.pop(api)
        if item is None:
            return 0
        yield from api.compute(item)


def _e8_task(api, cost):
    yield from api.compute(cost)
    return 0


def _e8_pool_main(api, ctx):
    out, costs, nworkers, mech = ctx["out"], ctx["costs"], ctx["nworkers"], ctx["mech"]
    queue = yield from WorkQueue.create(api, len(costs) + 4)
    start = api.now
    for _ in range(nworkers):
        if mech == "sproc":
            yield from api.sproc(_e8_pool_worker, PR_SALL, queue.base)
        else:
            yield from api.thread_create(_e8_pool_worker, queue.base)
    for cost in costs:
        yield from queue.push(api, cost)
    yield from queue.close(api)
    for _ in range(nworkers):
        if mech == "sproc":
            yield from api.wait()
        else:
            yield from api.thread_join()
    out["cycles"] = api.now - start
    return 0


def _e8_per_task_main(api, ctx):
    out, costs, nworkers, mech = ctx["out"], ctx["costs"], ctx["nworkers"], ctx["mech"]
    if mech == "fork_image":
        yield from _touch_data_pages(api, 128)
    start = api.now
    outstanding = 0
    for cost in costs:
        if outstanding >= nworkers:
            yield from api.wait()
            outstanding -= 1
        if mech == "sproc":
            yield from api.sproc(_e8_task, PR_SALL, cost)
        else:
            yield from api.fork(_e8_task, cost)
        outstanding += 1
    while outstanding:
        yield from api.wait()
        outstanding -= 1
    out["cycles"] = api.now - start
    return 0


def run_e08(ntasks: int = 48, mean_cycles: int = 20_000, ncpus: int = 4,
            seed: Optional[int] = None):
    costs = gen.task_costs(ntasks, mean_cycles)
    serial = sum(costs)
    result = ExperimentResult(
        "E8",
        "self-scheduling pool vs dynamic per-task creation (%d tasks, %d CPUs)"
        % (ntasks, ncpus),
        ["strategy", "makespan_cycles", "speedup_vs_serial"],
    )
    measured = {}

    def record(name, cycles):
        measured[name] = cycles
        result.add_row(
            strategy=name,
            makespan_cycles=cycles,
            speedup_vs_serial=round(serial / cycles, 2),
        )

    for mech, label in (("sproc", "pool of sproc workers"), ("thread", "pool of threads")):
        out = {}
        _run(
            _e8_pool_main,
            {"out": out, "costs": costs, "nworkers": ncpus, "mech": mech},
            ncpus=ncpus,
            seed=seed,
        )
        record(label, out["cycles"])
    for mech, label in (
        ("sproc", "sproc per task"),
        ("fork", "fork per task"),
        ("fork_image", "fork per task (128-page image)"),
    ):
        out = {}
        _run(
            _e8_per_task_main,
            {"out": out, "costs": costs, "nworkers": ncpus, "mech": mech},
            ncpus=ncpus,
            seed=seed,
        )
        record(label, out["cycles"])

    pool = measured["pool of sproc workers"]
    result.claim(
        "the preallocated pool eliminates creation cost: faster than every "
        "per-task strategy (paper 3: 'the speed penalties of process "
        "creation are eliminated by creating a pool of processes')",
        all(pool <= value for name, value in measured.items() if "per task" in name),
    )
    result.claim(
        "a pool of sproc'd processes matches a pool of threads within 10% "
        "(creation speed is irrelevant once tasks are preallocated)",
        measured["pool of sproc workers"] <= measured["pool of threads"] * 1.10,
        "%d vs %d" % (measured["pool of sproc workers"], measured["pool of threads"]),
    )
    result.claim(
        "per-task fork with a big image is the worst strategy",
        measured["fork per task (128-page image)"]
        >= max(v for k, v in measured.items() if k != "fork per task (128-page image)"),
    )
    result.claim(
        "the pool achieves >2.5x speedup on 4 CPUs",
        serial / pool > 2.5,
        "%.2fx" % (serial / pool),
    )
    return result


# ======================================================================
# E9 — user-level asynchronous I/O (the section 4 example)
# ======================================================================


def _e9_sync_main(api, ctx):
    out, nblocks, block, compute = ctx["out"], ctx["nblocks"], ctx["block"], ctx["compute"]
    fd = yield from api.open("/data", O_RDWR | O_CREAT)
    yield from api.write(fd, gen.payload(nblocks * block, 3))
    yield from api.lseek(fd, 0, SEEK_SET)
    start = api.now
    for _ in range(nblocks):
        yield from api.read(fd, block)
        yield from api.compute(compute)
    out["cycles"] = api.now - start
    return 0


def _e9_aio_main(api, ctx):
    out, nblocks, block, compute = ctx["out"], ctx["nblocks"], ctx["block"], ctx["compute"]
    nworkers = ctx["nworkers"]
    fd = yield from api.open("/data", O_RDWR | O_CREAT)
    yield from api.write(fd, gen.payload(nblocks * block, 3))
    ring = yield from AioRing.create(api, nworkers=nworkers)
    buf = yield from api.mmap(nblocks * block + 4096)
    start = api.now
    handles = []
    for index in range(nblocks):
        handle = yield from ring.submit_read(
            api, fd, buf + index * block, block, index * block
        )
        handles.append(handle)
    for _ in range(nblocks):
        yield from api.compute(compute)
    for handle in handles:
        yield from ring.wait(api, handle)
    out["cycles"] = api.now - start
    yield from ring.shutdown(api)
    return 0


def run_e09(nblocks: int = 16, block: int = 4096, compute: int = 15_000,
            seed: Optional[int] = None):
    result = ExperimentResult(
        "E9",
        "asynchronous I/O via PR_SADDR|PR_SFDS workers (section 4 example)",
        ["strategy", "total_cycles", "vs_sync"],
    )
    out = {}
    _run(
        _e9_sync_main,
        {"out": out, "nblocks": nblocks, "block": block, "compute": compute},
        ncpus=4,
        seed=seed,
    )
    sync_cycles = out["cycles"]
    result.add_row(strategy="synchronous read+compute", total_cycles=sync_cycles, vs_sync=1.0)
    measured = {}
    for nworkers in (1, 2, 4):
        out = {}
        _run(
            _e9_aio_main,
            {
                "out": out,
                "nblocks": nblocks,
                "block": block,
                "compute": compute,
                "nworkers": nworkers,
            },
            ncpus=4,
            seed=seed,
        )
        measured[nworkers] = out["cycles"]
        result.add_row(
            strategy="aio ring, %d workers" % nworkers,
            total_cycles=out["cycles"],
            vs_sync=round(out["cycles"] / sync_cycles, 2),
        )
    result.claim(
        "overlapping I/O with compute beats the synchronous loop",
        measured[2] < sync_cycles * 0.8,
        "%.2fx" % (measured[2] / sync_cycles),
    )
    result.claim(
        "more workers help until the disk is saturated",
        measured[2] <= measured[1],
    )
    compute_total = nblocks * compute
    result.claim(
        "with enough workers the run approaches the compute-bound floor",
        measured[4] < compute_total * 1.8,
        "%d vs floor %d" % (measured[4], compute_total),
    )
    return result


# ======================================================================
# E10 — the programming models head to head (Figures 1-4)
# ======================================================================


def run_e10(seed: Optional[int] = None):
    result = ExperimentResult(
        "E10",
        "one application, five programming models (executable Figures 1-4)",
        ["model", "stream_cycles", "parallel_sum_cycles"],
    )
    stream, par = {}, {}
    for model in MODELS:
        stream[model] = run_producer_consumer(
            model, nbytes=32 * 1024, chunk=256, perturb_seed=seed
        )["cycles"]
        par[model] = run_parallel_sum(
            model, nwords=4096, nworkers=4, perturb_seed=seed
        )["cycles"]
        result.add_row(
            model=model,
            stream_cycles=stream[model],
            parallel_sum_cycles=par[model],
        )
    result.claim(
        "the share group beats every queueing model on the fine-grained "
        "stream",
        all(
            stream["share_group"] < stream[model]
            for model in ("v7_pipes", "sysv_shm", "bsd_sockets")
        ),
    )
    result.claim(
        "the share group beats the copy-based models on the parallel sum",
        all(
            par["share_group"] < par[model]
            for model in ("v7_pipes", "bsd_sockets", "sysv_shm")
        ),
    )
    result.claim(
        "share groups stay within 35% of raw threads while keeping full "
        "UNIX process semantics (the paper's bargain)",
        stream["share_group"] <= stream["mach_threads"] * 1.35
        and par["share_group"] <= par["mach_threads"] * 2.5,
        "stream %d vs %d, sum %d vs %d"
        % (
            stream["share_group"],
            stream["mach_threads"],
            par["share_group"],
            par["mach_threads"],
        ),
    )
    return result


# ======================================================================
# E11 — the batched p_flag test (section 6.3 design point)
# ======================================================================


def run_e11(count: int = 300, seed: Optional[int] = None):
    result = ExperimentResult(
        "E11",
        "syscall entry checks: batched flag test vs per-resource tests",
        ["kernel_variant", "cycles_per_syscall"],
    )
    measured = {}
    for batched, label in ((True, "single batched test"), (False, "per-resource tests")):
        out = {}
        _run(
            _e02_member_storm,
            {"out": out, "count": count},
            ncpus=2,
            seed=seed,
            batched_flag_test=batched,
        )
        measured[label] = out["per_call"]
        result.add_row(kernel_variant=label, cycles_per_syscall=round(out["per_call"], 2))
    saved = measured["per-resource tests"] - measured["single batched test"]
    result.claim(
        "batching the sync bits into one test lowers per-syscall overhead "
        "(paper 6.3: 'thus lowering the system call overhead for most "
        "system calls')",
        saved > 20,
        "saves %.1f cycles per syscall" % saved,
    )
    return result


# ======================================================================
# E12 — gang scheduling the group (section 8 extension)
# ======================================================================


def _e12_member(api, ctx):
    barrier = UBarrier(ctx["base"], ctx["nmembers"])
    for _ in range(ctx["rounds"]):
        yield from api.compute(ctx["step"])
        yield from barrier.wait(api)
    return 0


def _e12_hog(api, cycles):
    yield from api.compute(cycles)
    return 0


def _e12_main(api, ctx):
    out = ctx["out"]
    nmembers, rounds, step = ctx["nmembers"], ctx["rounds"], ctx["step"]
    base = yield from api.mmap(4096)
    for _ in range(3):
        yield from api.fork(_e12_hog, 3_000_000)
    member_ctx = {
        "base": base,
        "nmembers": nmembers,
        "rounds": rounds,
        "step": step,
    }
    pids = []
    for _ in range(nmembers):
        pid = yield from api.sproc(_e12_member, PR_SALL, member_ctx)
        pids.append(pid)
    if ctx["gang"]:
        yield from api.prctl(PR_SETGANG, 1)
    start = api.now
    remaining = nmembers + 3
    members_left = set(pids)
    while members_left:
        pid, _status = yield from api.wait()
        members_left.discard(pid)
        remaining -= 1
    out["members_done"] = api.now - start
    for _ in range(remaining):
        yield from api.wait()
    return 0


def run_e12(nmembers: int = 3, rounds: int = 60, step: int = 2000,
            seed: Optional[int] = None):
    result = ExperimentResult(
        "E12",
        "gang scheduling a spin-synchronized group against background load",
        ["gang_mode", "member_phase_cycles", "gang_dispatches"],
    )
    # Like E15, the sweep varies only wakeup/steal orderings here: the
    # "enqueue"/"place" features randomise placement, and gang
    # scheduling's benefit *is* a placement property — perturbing it
    # measures the perturber, not the gang.
    perturb = ("wakeup", "select") if seed is not None else None
    measured = {}
    for gang in (False, True):
        out = {}
        sim = _run(
            _e12_main,
            {
                "out": out,
                "nmembers": nmembers,
                "rounds": rounds,
                "step": step,
                "gang": gang,
            },
            ncpus=4,
            perturb_seed=seed,
            perturb_features=perturb,
        )
        label = "gang" if gang else "independent"
        measured[label] = out["members_done"]
        result.add_row(
            gang_mode=label,
            member_phase_cycles=out["members_done"],
            gang_dispatches=sim.kernel.sched.gang_dispatches,
        )
    result.claim(
        "co-scheduling the group cuts the barrier workload's completion "
        "time under background load (paper 8: the group should run in "
        "parallel or not at all)",
        measured["gang"] < measured["independent"] * 0.8,
        "%d vs %d" % (measured["gang"], measured["independent"]),
    )
    return result


# ======================================================================
# E13 (bonus ablation) — the shared-ASID context-switch economy
# ======================================================================


def _e13_peer(api, ctx):
    rfd, wfd, rounds = ctx["peer_rfd"], ctx["peer_wfd"], ctx["rounds"]
    for _ in range(rounds):
        yield from api.read(rfd, 1)
        yield from api.write(wfd, b"B")
    return 0


def _e13_main(api, ctx):
    out, rounds, related = ctx["out"], ctx["rounds"], ctx["related"]
    down_r, down_w = yield from api.pipe()
    up_r, up_w = yield from api.pipe()
    peer_ctx = {"peer_rfd": down_r, "peer_wfd": up_w, "rounds": rounds}
    if related == "sproc":
        yield from api.sproc(_e13_peer, PR_SALL, peer_ctx)
    else:
        yield from api.fork(_e13_peer, peer_ctx)
    start = api.now
    for _ in range(rounds):
        yield from api.write(down_w, b"A")
        yield from api.read(up_r, 1)
    out["per_round"] = (api.now - start) / rounds
    yield from api.wait()
    return 0


def run_e13(rounds: int = 200, seed: Optional[int] = None):
    """Bonus ablation: group members share one address-space ID, so
    switching between them on a CPU is cheap and keeps the TLB warm —
    the quiet win of section 6.2's single shared image."""
    result = ExperimentResult(
        "E13",
        "context-switch cost between group members vs unrelated processes "
        "(single CPU, pipe ping-pong forces a switch per hop)",
        ["relationship", "cycles_per_roundtrip"],
    )
    measured = {}
    for related, label in (
        ("sproc", "share group members (same ASID)"),
        ("fork", "unrelated processes (own ASIDs)"),
    ):
        out = {}
        _run(
            _e13_main,
            {"out": out, "rounds": rounds, "related": related},
            ncpus=1,
            seed=seed,
        )
        measured[label] = out["per_round"]
        result.add_row(
            relationship=label, cycles_per_roundtrip=round(out["per_round"], 1)
        )
    same = measured["share group members (same ASID)"]
    other = measured["unrelated processes (own ASIDs)"]
    result.claim(
        "switching between members of one share group is cheaper than "
        "between unrelated processes (shared address space => shared "
        "ASID, warm TLB, lighter switch)",
        same < other,
        "%.0f vs %.0f cycles/roundtrip" % (same, other),
    )
    result.claim(
        "the saving is on the order of the context-switch cost "
        "difference (two switches per roundtrip)",
        (other - same) > 800,
        "delta %.0f" % (other - same),
    )
    return result


# ======================================================================
# E14 (bonus ablation) — spin vs spin-then-block under oversubscription
# ======================================================================


def _e14_member(api, ctx):
    base, rounds, hold, kind = ctx["base"], ctx["rounds"], ctx["hold"], ctx["kind"]
    from repro.runtime.hybridlock import HybridLock
    from repro.runtime.ulocks import USpinLock

    if kind == "hybrid":
        lock = HybridLock(base, spins=8)
    elif kind == "spin_yield":
        lock = USpinLock(base)  # yields the CPU after a burst of polls
    else:
        lock = USpinLock(base, spins_before_yield=10**9)  # pure busy-wait
    for _ in range(rounds):
        yield from lock.acquire(api)
        value = yield from api.load_word(base + 8)
        yield from api.compute(hold)
        yield from api.store_word(base + 8, value + 1)
        yield from lock.release(api)
    return 0


def _e14_main(api, ctx):
    out = ctx["out"]
    base = yield from api.mmap(4096)
    member_ctx = {**ctx, "base": base}
    start = api.now
    for _ in range(ctx["nmembers"]):
        yield from api.sproc(_e14_member, PR_SALL, member_ctx)
    for _ in range(ctx["nmembers"]):
        yield from api.wait()
    out["cycles"] = api.now - start
    out["count"] = yield from api.load_word(base + 8)
    return 0


def run_e14(nmembers: int = 6, rounds: int = 40, hold: int = 3_000,
            ncpus: int = 2, seed: Optional[int] = None):
    """Bonus ablation: the paper backs pure busy-waiting (section 3) and
    offers gang scheduling for the oversubscribed case (section 8); the
    usync extension solves the same pathology from the lock side by
    sleeping in the kernel after a brief spin."""
    result = ExperimentResult(
        "E14",
        "lock handoff with %d members on %d CPUs (oversubscribed %gx)"
        % (nmembers, ncpus, nmembers / ncpus),
        ["lock", "total_cycles", "kernel_sleeps"],
    )
    labels = {
        "spin": "pure busy-wait (paper 3, literally)",
        "spin_yield": "spin + sched_yield backoff",
        "hybrid": "spin-then-block (usync ext.)",
    }
    # Oversubscribed lock handoff is acutely placement-sensitive: who
    # shares a CPU with the holder decides how long a yield backoff
    # spins.  The sweep varies wakeup/steal orderings only (E15's rule).
    perturb = ("wakeup", "select") if seed is not None else None
    measured = {}
    for kind in ("spin", "spin_yield", "hybrid"):
        out = {}
        sim = _run(
            _e14_main,
            {
                "out": out,
                "nmembers": nmembers,
                "rounds": rounds,
                "hold": hold,
                "kind": kind,
            },
            ncpus=ncpus,
            perturb_seed=seed,
            perturb_features=perturb,
        )
        assert out["count"] == nmembers * rounds, "lost an increment!"
        measured[kind] = out["cycles"]
        result.add_row(
            lock=labels[kind],
            total_cycles=out["cycles"],
            kernel_sleeps=sim.stats["uwaits"],
        )
    result.claim(
        "when spinners outnumber processors, literal busy-waiting is the "
        "worst strategy (the paper's advice assumes the holder keeps "
        "running)",
        measured["spin"] > measured["spin_yield"]
        and measured["spin"] > measured["hybrid"],
        "pure %d vs yield %d vs hybrid %d"
        % (measured["spin"], measured["spin_yield"], measured["hybrid"]),
    )
    result.claim(
        "giving the CPU away while the holder is descheduled (yield "
        "backoff or kernel sleep) recovers most of the loss",
        measured["hybrid"] < measured["spin"] * 0.7,
        "%.2fx of pure spin" % (measured["hybrid"] / measured["spin"]),
    )
    result.note(
        "with nmembers <= ncpus all three are equivalent: the sleep and "
        "yield paths never trigger and the paper's advice stands as-is"
    )
    return result


# ======================================================================
# E15 (bonus ablation) — per-CPU run queues vs the global run queue
# ======================================================================


def _e15_member(api, ctx):
    rounds, step = ctx["rounds"], ctx["step"]
    for _ in range(rounds):
        yield from api.compute(step)
        yield from api.yield_cpu()
    return 0


def _e15_leader(api, ctx):
    nmembers = ctx["nmembers"]
    for _ in range(nmembers):
        yield from api.sproc(_e15_member, PR_SALL, ctx)
    for _ in range(nmembers):
        yield from api.wait()
    return 0


def _e15_main(api, ctx):
    out, ngroups = ctx["out"], ctx["ngroups"]
    start = api.now
    for _ in range(ngroups):
        yield from api.fork(_e15_leader, ctx)
    for _ in range(ngroups):
        yield from api.wait()
    out["makespan"] = api.now - start
    return 0


def run_e15(
    ngroups: int = 6,
    nmembers: int = 4,
    rounds: int = 10,
    step: int = 8_000,
    ncpus: int = 4,
    seed: Optional[int] = None,
):
    """Bonus ablation: the scheduler hot path itself.  A many-group
    fan-out keeps ~ngroups*nmembers processes cycling through wakeup,
    dispatch and quantum checks.  The global run queue pays O(runnable)
    per decision; the per-CPU queues pay O(ncpus) peeks and place waking
    processes back on the CPU whose cache and (shared-ASID) TLB they
    warmed.  Scheduler bookkeeping is host-side, so the overhead is
    reported as queue entries examined per dispatch decision, and
    turning metrics off must not move a single simulated cycle."""
    result = ExperimentResult(
        "E15",
        "per-CPU run queues vs one global queue, %d groups x %d members "
        "on %d CPUs" % (ngroups, nmembers, ncpus),
        [
            "scheduler",
            "makespan_cycles",
            "scan_per_pick",
            "affinity_hits",
            "migrations",
            "steals",
        ],
    )
    ctx_proto = {
        "ngroups": ngroups,
        "nmembers": nmembers,
        "rounds": rounds,
        "step": step,
    }
    # The seed sweep varies legal schedule orderings, but the "place"
    # and "enqueue" features *bypass* the last_cpu affinity preference —
    # randomised placement would be measuring the perturber, not the
    # scheduler the affinity claim is about.
    perturb = ("wakeup", "select") if seed is not None else None
    measured = {}
    for kind in ("global", "percpu"):
        out = {}
        sim = _run(
            _e15_main, dict(ctx_proto, out=out), ncpus=ncpus, scheduler=kind,
            perturb_seed=seed, perturb_features=perturb,
        )
        sched = sim.kernel.sched
        scan_per_pick = sched.scan_steps / max(sched.picks, 1)
        measured[kind] = {
            "makespan": out["makespan"],
            "scan_per_pick": scan_per_pick,
            "affinity_hits": sched.affinity_hits,
            "migrations": sched.migrations,
            "steals": sched.steals,
        }
        result.add_row(
            scheduler=kind,
            makespan_cycles=out["makespan"],
            scan_per_pick=round(scan_per_pick, 2),
            affinity_hits=sched.affinity_hits,
            migrations=sched.migrations,
            steals=sched.steals,
        )
        result.counters[kind] = sim.kstat.snapshot().get("kernel", {})

        # determinism guard: instrumentation off, same simulated history
        quiet_out = {}
        quiet = _run(
            _e15_main,
            dict(ctx_proto, out=quiet_out),
            ncpus=ncpus,
            scheduler=kind,
            metrics_enabled=False,
            perturb_seed=seed,
            perturb_features=perturb,
        )
        measured[kind]["quiet_identical"] = (
            quiet_out["makespan"] == out["makespan"] and quiet.now == sim.now
        )
    gq, pq = measured["global"], measured["percpu"]
    result.claim(
        "per-CPU dispatch overhead is bounded by the CPU count (one "
        "head peek per queue plus the local-preference pass) while the "
        "global scan grows with the runnable population (the point of "
        "the rewrite)",
        pq["scan_per_pick"] <= 2 * ncpus
        and pq["scan_per_pick"] < gq["scan_per_pick"],
        "%.2f vs %.2f entries/pick on %d CPUs"
        % (pq["scan_per_pick"], gq["scan_per_pick"], ncpus),
    )
    result.claim(
        "affinity keeps most dispatches on the process's previous CPU, "
        "so the shared-ASID TLB economy (E13) survives queueing",
        pq["affinity_hits"] > pq["migrations"],
        "%d hits vs %d migrations (%d steals)"
        % (pq["affinity_hits"], pq["migrations"], pq["steals"]),
    )
    result.claim(
        "work stealing keeps the distributed queues work-conserving: "
        "makespan stays within 10%% of the global queue's",
        pq["makespan"] <= gq["makespan"] * 1.10,
        "%d vs %d cycles" % (pq["makespan"], gq["makespan"]),
    )
    result.claim(
        "disabling metrics changes no simulated outcome for either "
        "scheduler (instrumentation is host-side only)",
        gq["quiet_identical"] and pq["quiet_identical"],
    )
    return result


# ======================================================================
# E16 (bonus ablation) — the VM translation fast path
# ======================================================================


def _e16_member(api, ctx):
    bases, victim = ctx["bases"], ctx["victim"]
    barrier = UBarrier(ctx["bar_base"], ctx["nmembers"] + 1)
    # Phase A: warm a TLB entry for every mapping.
    for base in bases:
        yield from api.load_word(base)
    yield from barrier.wait(api)
    # Creator unmaps the victim between these barriers.
    yield from barrier.wait(api)
    # Phase B: re-touch everything that should still be warm.
    for base in bases:
        if base != victim:
            yield from api.load_word(base)
    yield from barrier.wait(api)
    return 0


def _e16_churn(api, ctx):
    """An unrelated process whose shrinks exercise per-ASID flushing.

    Runs outside the share group with its own ASID.  Every negative
    sbrk invalidates translations: the linear TLB scans every resident
    entry on every CPU (including the group's warm set), the ASID index
    touches only this process's own handful.
    """
    for _ in range(ctx["churn_rounds"]):
        base = yield from api.sbrk(4 * PAGE_SIZE)
        for page in range(4):
            yield from api.store_word(base + page * PAGE_SIZE, page)
        yield from api.sbrk(-4 * PAGE_SIZE)
        yield from api.compute(2_000)
    return 0


def _e16_main(api, ctx):
    out, nmaps, nmembers = ctx["out"], ctx["nmaps"], ctx["nmembers"]
    bases = []
    for _ in range(nmaps):
        base = yield from api.mmap(PAGE_SIZE)
        yield from api.store_word(base, 1)  # resident before members run
        bases.append(base)
    bar_base = yield from api.mmap(PAGE_SIZE)
    yield from api.store_word(bar_base, 0)
    yield from api.store_word(bar_base + 4, 0)
    ctx["bases"] = bases
    ctx["bar_base"] = bar_base
    ctx["victim"] = victim = bases[nmaps // 2]
    start = api.now
    for _ in range(nmembers):
        yield from api.sproc(_e16_member, PR_SALL, ctx)
    barrier = UBarrier(bar_base, nmembers + 1)
    yield from barrier.wait(api)  # everyone's TLB is warm
    yield from api.munmap(victim)  # range shootdown (full flush if linear)
    out["miss_before"] = ctx["snap"]()
    yield from barrier.wait(api)  # release the re-touch phase
    yield from barrier.wait(api)  # re-touch complete
    out["miss_after"] = ctx["snap"]()
    for _ in range(nmembers):
        yield from api.wait()
    out["makespan"] = api.now - start
    return 0


def run_e16(
    nmembers: int = 4,
    nmaps: int = 24,
    churn_rounds: int = 6,
    ncpus: int = 4,
    seed: Optional[int] = None,
):
    """Bonus ablation: the VM translation hot path itself.  A share group
    with many mappings makes every TLB refill walk the pregion lists; the
    linear scan pays O(n) per fault while the interval index pays
    O(log n) bisect steps (kstat ``pregion_scan_len`` counts both).  The
    unmap of one victim page then contrasts shootdown strategies: the
    targeted range flush drops one translation per CPU, the old full
    per-ASID flush cold-starts every member's working set and triggers a
    refill storm.  All counting is host-side; metrics off must not move
    a single simulated cycle."""
    result = ExperimentResult(
        "E16",
        "VM fast path: indexed pregion lookup + targeted shootdown vs "
        "linear, %d members x %d mappings on %d CPUs"
        % (nmembers, nmaps, ncpus),
        [
            "vm_index",
            "makespan_cycles",
            "scan_per_fault",
            "refill_storm",
            "shootdown_pages",
            "asid_flush_scanned",
            "flush_pages",
        ],
    )
    measured = {}
    for mode in ("linear", "indexed"):
        out = {}
        ctx = {"out": out, "nmaps": nmaps, "nmembers": nmembers}
        sim = System(ncpus=ncpus, vm_index=mode, perturb_seed=seed)
        # Host-side probe: total refills across CPUs, zero-cycle to read.
        ctx["snap"] = lambda sim=sim: sum(
            cpu.tlb.misses for cpu in sim.machine.cpus
        )
        sim.spawn(_e16_main, ctx)
        sim.spawn(_e16_churn, {"churn_rounds": churn_rounds}, name="churn")
        sim.run()
        kernel_ks = sim.kstat.scope("kernel", 0)
        scan_per_fault = kernel_ks.get("pregion_scan_len", 0) / max(
            kernel_ks.get("vm_lookups", 0), 1
        )
        refill_storm = out["miss_after"] - out["miss_before"]
        asid_flush_scanned = sum(
            sim.kstat.get("cpu", cpu.idx, "tlb_asid_flush_scanned")
            for cpu in sim.machine.cpus
        )
        flush_pages = sum(cpu.tlb.flush_pages for cpu in sim.machine.cpus)
        measured[mode] = {
            "makespan": out["makespan"],
            "scan_per_fault": scan_per_fault,
            "refill_storm": refill_storm,
            "shootdown_pages": kernel_ks.get("shootdown_pages", 0),
            "asid_flush_scanned": asid_flush_scanned,
        }
        result.add_row(
            vm_index=mode,
            makespan_cycles=out["makespan"],
            scan_per_fault=round(scan_per_fault, 2),
            refill_storm=refill_storm,
            shootdown_pages=kernel_ks.get("shootdown_pages", 0),
            asid_flush_scanned=asid_flush_scanned,
            flush_pages=flush_pages,
        )
        result.counters[mode] = sim.kstat.snapshot().get("kernel", {})

        # determinism guard: instrumentation off, same simulated history
        quiet_out = {}
        quiet_ctx = {"out": quiet_out, "nmaps": nmaps, "nmembers": nmembers}
        quiet = System(
            ncpus=ncpus, vm_index=mode, metrics_enabled=False,
            perturb_seed=seed,
        )
        quiet_ctx["snap"] = lambda sim=quiet: sum(
            cpu.tlb.misses for cpu in sim.machine.cpus
        )
        quiet.spawn(_e16_main, quiet_ctx)
        quiet.spawn(_e16_churn, {"churn_rounds": churn_rounds}, name="churn")
        quiet.run()
        measured[mode]["quiet_identical"] = (
            quiet_out["makespan"] == out["makespan"] and quiet.now == sim.now
        )
    lin, idx = measured["linear"], measured["indexed"]
    # Everything a refill can see: the mappings, the barrier page, one
    # stack per member, and the creator's text/data/stack/PRDA segments.
    visible = nmaps + 1 + nmembers + 4
    bisect_bound = 2 * visible.bit_length() + 4
    result.claim(
        "the interval index resolves a fault in O(log n) bisect steps "
        "while the linear scan grows with the pregion count",
        idx["scan_per_fault"] <= bisect_bound
        and idx["scan_per_fault"] < lin["scan_per_fault"],
        "%.2f vs %.2f entries/fault over ~%d visible pregions (bound %d)"
        % (idx["scan_per_fault"], lin["scan_per_fault"], visible,
           bisect_bound),
    )
    result.claim(
        "a targeted range shootdown leaves unrelated warm entries intact: "
        "the refill storm after the unmap is strictly below the full-ASID "
        "baseline",
        idx["refill_storm"] < lin["refill_storm"],
        "%d vs %d refills after the victim unmap"
        % (idx["refill_storm"], lin["refill_storm"]),
    )
    result.claim(
        "the indexed shootdown invalidates exactly the victim's pages "
        "(the linear ablation has no page-granular shootdowns at all)",
        idx["shootdown_pages"] == 1 and lin["shootdown_pages"] == 0,
        "%d vs %d pages" % (idx["shootdown_pages"], lin["shootdown_pages"]),
    )
    result.claim(
        "per-ASID flushes examine only the victim space's entries under "
        "the index, not the whole TLB (the churn process's shrinks would "
        "otherwise rescan the group's warm set every round)",
        idx["asid_flush_scanned"] < lin["asid_flush_scanned"],
        "%d vs %d entries examined"
        % (idx["asid_flush_scanned"], lin["asid_flush_scanned"]),
    )
    result.claim(
        "fewer refills make the fast path at least as fast end-to-end",
        idx["makespan"] <= lin["makespan"],
        "%d vs %d cycles" % (idx["makespan"], lin["makespan"]),
    )
    result.claim(
        "disabling metrics changes no simulated outcome in either mode "
        "(all new counters are host-side only)",
        lin["quiet_identical"] and idx["quiet_identical"],
    )
    return result


#: E17 arrival-rate sweep: label -> (multiplier of the nominal capacity,
#: full-scale requests, quick-scale requests).  Labels are the row keys
#: compare_bench matches across runs, so they are scale-independent.
E17_RATES = [
    ("x0.30", 0.30, 150_000, 6_000),
    ("x0.60", 0.60, 150_000, 6_000),
    ("x0.90", 0.90, 200_000, 8_000),
    ("x1.20", 1.20, 250_000, 8_000),
    ("x1.80", 1.80, 1_050_000, 24_000),
]

#: goodput/offered ratio below which a rate counts as past the knee
E17_KNEE_RATIO = 0.90


def _e17_config(scale: str, label: str, mult: float, nreq_full: int,
                nreq_quick: int):
    from repro.workloads.server import ServerConfig

    if scale == "full":
        nominal = 7.0
        return ServerConfig(
            ngroups=8, nworkers=6, naio=12, batch=128, keyspace=512,
            cache_capacity=448, nshards=8, npages=64,
            nrequests=nreq_full, rate_per_kcycle=nominal * mult,
        ), 8
    nominal = 2.8
    return ServerConfig(
        ngroups=2, nworkers=4, naio=8, batch=64, keyspace=128,
        cache_capacity=112, nshards=4, npages=32,
        nrequests=nreq_quick, rate_per_kcycle=nominal * mult,
    ), 4


def run_e17(scale: str = "full", seed: Optional[int] = None):
    """Flagship multi-tier server workload (E17): an open-loop arrival
    sweep over the three-tier share-group server (generator -> accept
    loop -> worker groups with a shared LRU cache arena and AIO-backed
    disk reads).  Each rate is one end-to-end run; latency is measured
    against the *scheduled* arrival instant, so overload queueing is
    fully visible (no coordinated omission).  The sweep locates the
    saturation knee — the highest rate whose goodput still tracks the
    offered load — and shows the tail-latency blowup and run-queue
    depths past it.  ``scale="quick"`` is the per-PR CI variant; the
    full preset serves >=1M requests at the top arrival rate."""
    from repro.workloads.server import run_server

    result = ExperimentResult(
        "E17",
        "multi-tier server capacity sweep (%s scale): throughput, "
        "tail latency and run-queue depth vs offered load" % scale,
        [
            "rate",
            "offered_per_kcycle",
            "throughput_per_kcycle",
            "goodput_ratio",
            "p50_cycles",
            "p95_cycles",
            "p99_cycles",
            "hit_pct",
            "evictions",
            "shootdown_pages",
            "runq_p95",
            "max_inflight",
            "completed",
        ],
    )
    rows = {}
    for label, mult, nreq_full, nreq_quick in E17_RATES:
        cfg, ncpus = _e17_config(scale, label, mult, nreq_full, nreq_quick)
        out = run_server(cfg, ncpus=ncpus, perturb_seed=seed,
                         system_cls=System)
        sim = out["system"]
        hist = sim.kstat.hist("kernel", 0, "request_latency")
        runq = sim.kstat.hist("kernel", 0, "runq_depth_sample")
        ratio = (out["throughput_per_kcycle"] / out["offered_per_kcycle"]
                 if out["offered_per_kcycle"] else 0.0)
        row = {
            "offered": out["offered_per_kcycle"],
            "tput": out["throughput_per_kcycle"],
            "ratio": ratio,
            "p50": hist.percentile(50) if hist else out["p50"],
            "p95": hist.percentile(95) if hist else out["p95"],
            "p99": hist.percentile(99) if hist else out["p99"],
            "runq_p95": runq.percentile(95) if runq else 0.0,
            "shootdowns": sim.kstat.get("kernel", 0, "shootdown_pages"),
            "evictions": out["evictions"],
            "collapsed": out["collapsed"],
            "verify_failures": out["verify_failures"],
            "completed": out["completed"],
            "nrequests": cfg.nrequests,
            "max_inflight": out["max_inflight"],
        }
        rows[label] = row
        result.add_row(
            rate=label,
            offered_per_kcycle=round(row["offered"], 3),
            throughput_per_kcycle=round(row["tput"], 3),
            goodput_ratio=round(row["ratio"], 3),
            p50_cycles=int(row["p50"]),
            p95_cycles=int(row["p95"]),
            p99_cycles=int(row["p99"]),
            hit_pct=round(out["hit_pct"], 1),
            evictions=row["evictions"],
            shootdown_pages=row["shootdowns"],
            runq_p95=round(row["runq_p95"], 1),
            max_inflight=out["max_inflight"],
            completed=row["completed"],
        )

    labels = [label for label, _, _, _ in E17_RATES]
    low, top = rows[labels[0]], rows[labels[-1]]
    plateau = rows[labels[-2]]
    knee = None
    for label in labels:
        if rows[label]["ratio"] >= E17_KNEE_RATIO:
            knee = label
    result.claim(
        "below the knee the served throughput tracks the offered load",
        low["ratio"] >= E17_KNEE_RATIO,
        "goodput/offered %.3f at %s" % (low["ratio"], labels[0]),
    )
    result.claim(
        "the sweep crosses an identifiable saturation knee",
        knee is not None and knee != labels[-1]
        and top["ratio"] < 0.80,
        "knee at %s; top-rate goodput ratio %.3f" % (knee, top["ratio"]),
    )
    result.claim(
        "past the knee throughput plateaus at capacity instead of "
        "collapsing",
        top["tput"] <= 1.25 * plateau["tput"]
        and top["tput"] >= 0.75 * plateau["tput"],
        "%.2f vs %.2f req/kcycle at %s vs %s"
        % (top["tput"], plateau["tput"], labels[-1], labels[-2]),
    )
    result.claim(
        "overload queueing blows the tail up: p99 latency at the top "
        "rate is several times the below-knee p99",
        top["p99"] >= 3.0 * low["p99"] > 0,
        "p99 %d vs %d cycles" % (int(top["p99"]), int(low["p99"])),
    )
    result.claim(
        "the open-loop backlog deepens under overload (arrivals keep "
        "queueing while service saturates)",
        top["max_inflight"] >= 4 * max(1, low["max_inflight"]),
        "max in-flight %d vs %d" % (top["max_inflight"], low["max_inflight"]),
    )
    if scale == "full":
        result.claim(
            "run queues deepen under overload",
            top["runq_p95"] >= low["runq_p95"] + 2,
            "runq p95 %.1f vs %.1f" % (top["runq_p95"], low["runq_p95"]),
        )
    result.claim(
        "the shared cache stays coherent under eviction/shootdown churn: "
        "every page served verified, with live evictions, shootdowns and "
        "collapsed duplicate misses",
        all(row["verify_failures"] == 0 for row in rows.values())
        and all(row["completed"] == row["nrequests"] for row in rows.values())
        and top["evictions"] > 0 and top["shootdowns"] > 0
        and sum(row["collapsed"] for row in rows.values()) > 0,
        "verify failures %d, evictions %d, shootdown pages %d"
        % (sum(row["verify_failures"] for row in rows.values()),
           top["evictions"], top["shootdowns"]),
    )
    if scale == "full":
        result.claim(
            "the top arrival rate serves at least one million simulated "
            "requests",
            top["completed"] >= 1_000_000,
            "%d requests at %s" % (top["completed"], labels[-1]),
        )

    # determinism guard: kstat off, same simulated history (results come
    # from host-side ServerStats, never from the metrics layer)
    ident_cfg, ident_ncpus = _e17_config("quick", "x0.60", 0.60, 0, 4_000)
    ident_on = run_server(ident_cfg, ncpus=ident_ncpus, perturb_seed=seed,
                          system_cls=System)
    ident_off = run_server(ident_cfg, ncpus=ident_ncpus,
                           metrics_enabled=False, perturb_seed=seed,
                           system_cls=System)
    result.claim(
        "disabling metrics changes no simulated outcome (same final "
        "cycle, same completions, same per-batch latencies)",
        ident_on["sim_now"] == ident_off["sim_now"]
        and ident_on["completed"] == ident_off["completed"]
        and ident_on["stats"].latencies == ident_off["stats"].latencies,
        "sim_now %d vs %d" % (ident_on["sim_now"], ident_off["sim_now"]),
    )
    return result


ALL_EXPERIMENTS = {
    "E1": run_e01,
    "E2": run_e02,
    "E3": run_e03,
    "E4": run_e04,
    "E5": run_e05,
    "E6": run_e06,
    "E7": run_e07,
    "E8": run_e08,
    "E9": run_e09,
    "E10": run_e10,
    "E11": run_e11,
    "E12": run_e12,
    "E13": run_e13,
    "E14": run_e14,
    "E15": run_e15,
    "E16": run_e16,
    "E17": run_e17,
}
