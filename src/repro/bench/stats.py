"""Statistical claims harness: N-seed sweeps, bootstrap CIs, trend files.

A single seeded run is a point estimate; the paper-reproduction claims
deserve error bars.  This module runs any E-benchmark over ``N``
perturbation seeds (sharded across host cores with ``multiprocessing``),
collects every numeric metric each run reports, and attaches a
*nonparametric bootstrap confidence interval* (percentile method, seeded
resampler — no distributional assumptions) to each one.  Downstream,
``benchmarks/compare_bench.py`` gates regressions on **CI overlap**
instead of a raw percentage threshold, and ``append_trend`` keeps a
per-PR ``BENCH_TREND.json`` so the perf trajectory is a queryable
artifact rather than archaeology through CI logs.

Determinism: seed ``s`` always produces the same run (the engine's
perturbation RNG is seeded), and the bootstrap resampler is its own
``random.Random(seed)`` — the whole pipeline is reproducible from the
command line that ran it.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import random
import time
from inspect import signature
from typing import Dict, List, Optional, Sequence

#: resamples for the percentile bootstrap (enough for stable 95% bounds)
DEFAULT_RESAMPLES = 2000

#: the default confidence level reported everywhere
DEFAULT_ALPHA = 0.05


# ----------------------------------------------------------------------
# the bootstrap itself


def bootstrap_ci(
    values: Sequence[float],
    n_resamples: int = DEFAULT_RESAMPLES,
    alpha: float = DEFAULT_ALPHA,
    seed: int = 0,
):
    """Percentile-method bootstrap CI for the mean of ``values``.

    Resample with replacement ``n_resamples`` times, take each
    resample's mean, and report the ``alpha/2`` and ``1 - alpha/2``
    empirical quantiles.  A private ``random.Random(seed)`` makes the
    interval a pure function of ``(values, n_resamples, alpha, seed)``.
    """
    values = list(values)
    n = len(values)
    if n == 0:
        return (0.0, 0.0)
    if n == 1:
        return (float(values[0]), float(values[0]))
    rng = random.Random(seed)
    means = []
    for _ in range(n_resamples):
        total = 0.0
        for _ in range(n):
            total += values[rng.randrange(n)]
        means.append(total / n)
    means.sort()
    lo_rank = int(alpha / 2.0 * n_resamples)
    hi_rank = min(n_resamples - 1, int((1.0 - alpha / 2.0) * n_resamples))
    return (means[lo_rank], means[hi_rank])


def summarize(
    values: Sequence[float],
    n_resamples: int = DEFAULT_RESAMPLES,
    alpha: float = DEFAULT_ALPHA,
    seed: int = 0,
) -> dict:
    """Mean, spread and bootstrap CI of one metric's per-seed values."""
    values = [float(v) for v in values]
    lo, hi = bootstrap_ci(values, n_resamples=n_resamples, alpha=alpha,
                          seed=seed)
    n = len(values)
    return {
        "n": n,
        "mean": sum(values) / n if n else 0.0,
        "min": min(values) if values else 0.0,
        "max": max(values) if values else 0.0,
        "ci_lo": lo,
        "ci_hi": hi,
        "alpha": alpha,
        "values": values,
    }


# ----------------------------------------------------------------------
# running one experiment under one seed


def run_experiment(eid: str, seed: Optional[int] = None, **kwargs):
    """Run experiment ``eid`` once; pass ``seed`` if the function takes it.

    Experiments that accept a ``seed`` parameter thread it into their
    ``System(perturb_seed=...)`` builds so distinct seeds explore
    distinct legal schedules; the rest are fully deterministic and every
    seed reproduces the same numbers (their CIs collapse to a point,
    which the overlap gate handles fine).
    """
    from repro.bench.experiments import ALL_EXPERIMENTS

    func = ALL_EXPERIMENTS[eid.upper()]
    if seed is not None and "seed" in signature(func).parameters:
        return func(seed=seed, **kwargs)
    return func(**kwargs)


def extract_metrics(result) -> Dict[str, Dict[str, float]]:
    """Flatten an ExperimentResult's rows into ``{row_key: {metric: v}}``.

    The first column identifies the row (``scheduler``, ``vm_index``,
    ``mechanism`` ...); every other numeric column is a metric.
    """
    key = result.columns[0]
    out: Dict[str, Dict[str, float]] = {}
    for row in result.rows:
        name = str(row.get(key))
        metrics = {}
        for column in result.columns[1:]:
            value = row.get(column)
            if isinstance(value, bool):
                value = int(value)
            if isinstance(value, (int, float)):
                metrics[column] = float(value)
        out[name] = metrics
    return out


def _sweep_worker(job):
    """Top-level worker (multiprocessing needs it importable)."""
    eid, seed, profiled, kwargs = job
    import gc

    from repro.obs import profile as profile_mod

    # Same host-side tuning as the CLI entry point: sweep shards are
    # short-lived, and collector pauses would pollute the profiled wall
    # time they report.
    gc.disable()

    session = profile_mod.begin_session() if profiled else None
    try:
        result = run_experiment(eid, seed=seed, **kwargs)
    finally:
        profile_mod.end_session()
    failed = [c.description for c in result.claims if not c.holds]
    host = session.merged() if session is not None else None
    return {
        "seed": seed,
        "metrics": extract_metrics(result),
        "failed_claims": failed,
        "host": host,
    }


# ----------------------------------------------------------------------
# the sweep


class SweepResult:
    """Per-seed metric samples plus their bootstrap summaries."""

    def __init__(self, eid: str, seeds: List[int], jobs: int):
        self.eid = eid
        self.seeds = seeds
        self.jobs = jobs
        self.runs: List[dict] = []  #: one _sweep_worker payload per seed

    # ------------------------------------------------------------------

    @property
    def failed_claims(self) -> List[str]:
        out = []
        for run in self.runs:
            for description in run["failed_claims"]:
                out.append("seed %s: %s" % (run["seed"], description))
        return out

    def samples(self) -> Dict[str, Dict[str, List[float]]]:
        """``{row: {metric: [per-seed values]}}`` in seed order."""
        out: Dict[str, Dict[str, List[float]]] = {}
        for run in sorted(self.runs, key=lambda r: r["seed"]):
            for row, metrics in run["metrics"].items():
                slot = out.setdefault(row, {})
                for metric, value in metrics.items():
                    slot.setdefault(metric, []).append(value)
        return out

    def stats(self, n_resamples: int = DEFAULT_RESAMPLES,
              alpha: float = DEFAULT_ALPHA) -> Dict[str, Dict[str, dict]]:
        """``{row: {metric: summarize(...)}}`` over the whole sweep."""
        return {
            row: {
                metric: summarize(values, n_resamples=n_resamples,
                                  alpha=alpha)
                for metric, values in metrics.items()
            }
            for row, metrics in self.samples().items()
        }

    def host_summary(self) -> Optional[dict]:
        """Merged profiler output across every profiled shard, if any."""
        from repro.obs.profile import ProfileSession

        session = ProfileSession()
        found = False
        for run in self.runs:
            if run.get("host"):
                session.absorb(run["host"])
                found = True
        return session.merged() if found else None

    def render(self, alpha: float = DEFAULT_ALPHA) -> str:
        """The CI table: one line per (row, metric)."""
        pct = int(round((1.0 - alpha) * 100))
        lines = [
            "%s over %d seed(s), %d job(s) — mean [%d%% bootstrap CI]"
            % (self.eid, len(self.seeds), self.jobs, pct),
        ]
        header = "%-12s %-20s %12s %26s" % ("row", "metric", "mean",
                                            "ci (lo, hi)")
        lines.append(header)
        lines.append("-" * len(header))
        for row, metrics in sorted(self.stats(alpha=alpha).items()):
            for metric, stat in sorted(metrics.items()):
                lines.append(
                    "%-12s %-20s %12.3f %26s"
                    % (row, metric, stat["mean"],
                       "[%.3f, %.3f]" % (stat["ci_lo"], stat["ci_hi"]))
                )
        if self.failed_claims:
            lines.append("")
            for failure in self.failed_claims:
                lines.append("CLAIM FAILED %s" % failure)
        return "\n".join(lines)


def run_sweep(
    eid: str,
    nseeds: int = 10,
    jobs: Optional[int] = None,
    profiled: bool = False,
    **kwargs,
) -> SweepResult:
    """Run ``eid`` under seeds ``0..nseeds-1`` sharded across ``jobs``.

    ``jobs=1`` (or a single seed) runs in-process — no fork, no pickle —
    which is what the tests use; anything larger spins a Pool.  Worker
    payloads are plain dicts, so profiled sweeps ship their host-time
    summaries back with the metrics.
    """
    eid = eid.upper()
    seeds = list(range(nseeds))
    if jobs is None:
        jobs = min(len(seeds), os.cpu_count() or 1)
    jobs = max(1, min(jobs, len(seeds) or 1))
    sweep = SweepResult(eid, seeds, jobs)
    payload = [(eid, seed, profiled, kwargs) for seed in seeds]
    if jobs == 1:
        sweep.runs = [_sweep_worker(job) for job in payload]
    else:
        with multiprocessing.Pool(jobs) as pool:
            sweep.runs = pool.map(_sweep_worker, payload)
    return sweep


# ----------------------------------------------------------------------
# the trend file


def append_trend(path: str, entry: dict) -> dict:
    """Append ``entry`` to the BENCH_TREND.json at ``path``.

    The file is ``{"entries": [...]}`` — one entry per (PR, experiment)
    — so plotting the perf trajectory is a one-liner and a regression's
    onset is a lookup, not a bisect.  Corrupt or legacy files start
    fresh rather than poisoning the artifact chain.
    """
    doc = {"entries": []}
    if os.path.exists(path):
        try:
            with open(path) as handle:
                loaded = json.load(handle)
            if isinstance(loaded, dict) and isinstance(
                loaded.get("entries"), list
            ):
                doc = loaded
        except (OSError, ValueError):
            pass
    doc["entries"].append(entry)
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    with open(path, "w") as handle:
        json.dump(doc, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return doc


def trend_entry(
    eid: str,
    sweep: Optional[SweepResult] = None,
    host: Optional[dict] = None,
) -> dict:
    """One BENCH_TREND entry: identity, CI'd metrics, host speed."""
    entry = {
        "experiment": eid.upper(),
        "time": int(time.time()),
        "sha": os.environ.get("GITHUB_SHA"),
    }
    if sweep is not None:
        entry["seeds"] = len(sweep.seeds)
        entry["metrics"] = {
            row: {
                metric: {
                    "mean": stat["mean"],
                    "ci_lo": stat["ci_lo"],
                    "ci_hi": stat["ci_hi"],
                    "n": stat["n"],
                }
                for metric, stat in metrics.items()
            }
            for row, metrics in sweep.stats().items()
        }
    if host is not None:
        entry["host"] = {
            "sim_cycles_per_host_sec": host.get("sim_cycles_per_host_sec"),
            "wall_seconds": host.get("wall_seconds"),
            "sim_cycles": host.get("sim_cycles"),
        }
    return entry
