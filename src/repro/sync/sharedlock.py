"""The paper's shared read lock (section 6.2).

Protects a share group's shared pregion list: any number of processes may
*scan* it concurrently (page faults, the pager), but a process that needs
to *update* the list — fork, exec, mmap, sbrk, region shrink — must wait
until all scanners are done and then holds the list exclusively.

The structure is exactly the paper's: a spin lock (``s_acclck``) guards
two counters — ``s_acccnt``, the number of active readers (or -1 while an
updater holds the lock), and ``s_waitcnt``, the number of processes
asleep on the ``s_updwait`` semaphore waiting for the lock to change
state.  Since updates are rare compared to scans, the read path almost
never blocks — which experiment E4 measures.
"""

from __future__ import annotations

from repro.errors import SimulationError
from repro.sync.semaphore import Semaphore
from repro.sync.spinlock import SpinLock


class SharedReadLock:
    """Many concurrent readers, one exclusive updater."""

    def __init__(self, machine, waker, name: str = "shared"):
        self.machine = machine
        self.name = name
        self._acclck = SpinLock(machine, name + ".acclck")
        self._updwait = Semaphore(machine, waker, 0, name + ".updwait")
        self._acccnt = 0  #: readers active, or -1 while updating
        self._waitcnt = 0  #: sleepers on _updwait
        self.read_acquires = 0
        self.update_acquires = 0
        self.read_blocks = 0
        self.update_blocks = 0
        self._rd_stats = machine.lockstats.get(name + ".read")
        self._upd_stats = machine.lockstats.get(name + ".update")
        self._lockdep = machine.lockdep
        #: id(proc) -> stack of grant cycles; the owner record for the
        #: read side (a releaser absent from this map never acquired)
        self._rd_since = {}
        self._upd_since = 0
        self._upd_owner = None  #: id(proc) of the current exclusive holder

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<SharedReadLock %s acccnt=%d wait=%d>" % (
            self.name, self._acccnt, self._waitcnt,
        )

    # ------------------------------------------------------------------
    # read (scan) side

    def acquire_read(self, proc):
        """Generator: join the scanners, sleeping out any update."""
        entered = self.machine.engine.now
        blocked = False
        self._lockdep.attempt(self, proc, "read")
        yield from self._acclck.acquire(proc)
        while self._acccnt < 0:
            self._waitcnt += 1
            self.read_blocks += 1
            blocked = True
            self._acclck.release(proc)
            yield from self._updwait.p(proc)
            yield from self._acclck.acquire(proc)
        self._acccnt += 1
        self.read_acquires += 1
        now = self.machine.engine.now
        self._rd_stats.record_acquire(now - entered, blocked)
        self._rd_since.setdefault(id(proc), []).append(now)
        self._lockdep.acquired(self, proc, "read")
        self._acclck.release(proc)

    def release_read(self, proc):
        """Generator: leave the scanners; wake waiters when last out."""
        yield from self._acclck.acquire(proc)
        if self._acccnt <= 0:
            self._acclck.release(proc)
            raise SimulationError("release_read with no readers on %s" % self.name)
        grants = self._rd_since.get(id(proc))
        if not grants:
            # Somebody else's read grant would be consumed: the classic
            # unbalanced-unlock bug the owner record exists to catch.
            self._acclck.release(proc)
            raise SimulationError(
                "release_read on %s by pid %s, which holds no read lock"
                % (self.name, getattr(proc, "pid", "?"))
            )
        self._acccnt -= 1
        since = grants.pop()
        if not grants:
            del self._rd_since[id(proc)]
        self._rd_stats.record_hold(self.machine.engine.now - since)
        self._lockdep.released(self, proc)
        if self._acccnt == 0:
            self._broadcast()
        self._acclck.release(proc)

    # ------------------------------------------------------------------
    # update side

    def acquire_update(self, proc):
        """Generator: wait for all scanners to drain, then hold exclusively."""
        yield from self._acquire_exclusive(proc, update_side=True)

    def release_update(self, proc):
        """Generator: end the update; wake everyone to re-contend."""
        yield from self._release_exclusive(proc, update_side=True)

    def _acquire_exclusive(self, proc, update_side: bool):
        """Generator: the exclusive path, attributed to either side's
        statistics (the E4 ablation takes it for reads too)."""
        entered = self.machine.engine.now
        blocked = False
        self._lockdep.attempt(self, proc, "update")
        yield from self._acclck.acquire(proc)
        while self._acccnt != 0:
            self._waitcnt += 1
            if update_side:
                self.update_blocks += 1
            else:
                self.read_blocks += 1
            blocked = True
            self._acclck.release(proc)
            yield from self._updwait.p(proc)
            yield from self._acclck.acquire(proc)
        self._acccnt = -1
        now = self.machine.engine.now
        if update_side:
            self.update_acquires += 1
            self._upd_stats.record_acquire(now - entered, blocked)
        else:
            self.read_acquires += 1
            self._rd_stats.record_acquire(now - entered, blocked)
        self._upd_since = now
        self._upd_owner = id(proc)
        self._lockdep.acquired(self, proc, "update")
        self._acclck.release(proc)

    def _release_exclusive(self, proc, update_side: bool):
        yield from self._acclck.acquire(proc)
        if self._acccnt != -1:
            self._acclck.release(proc)
            raise SimulationError("release_update without update on %s" % self.name)
        if self._upd_owner != id(proc):
            self._acclck.release(proc)
            raise SimulationError(
                "release_update on %s by pid %s, which is not the updater"
                % (self.name, getattr(proc, "pid", "?"))
            )
        self._acccnt = 0
        self._upd_owner = None
        held = self.machine.engine.now - self._upd_since
        if update_side:
            self._upd_stats.record_hold(held)
        else:
            self._rd_stats.record_hold(held)
        self._lockdep.released(self, proc)
        self._broadcast()
        self._acclck.release(proc)

    # ------------------------------------------------------------------

    def _broadcast(self) -> None:
        """Wake every process sleeping for a state change."""
        for _ in range(self._waitcnt):
            self._updwait.v()
        self._waitcnt = 0

    @property
    def readers(self) -> int:
        return max(self._acccnt, 0)

    @property
    def updating(self) -> bool:
        return self._acccnt == -1


class ExclusiveAblationLock(SharedReadLock):
    """Ablation for experiment E4: every scan takes the lock exclusively.

    This is what a naive port without the shared read lock would do —
    page faults serialize against each other, not just against updates.
    """

    def acquire_read(self, proc):
        # exclusive, but charged to the read-side counters and lockstats
        # so the experiment harness can still compare sides
        yield from self._acquire_exclusive(proc, update_side=False)

    def release_read(self, proc):
        yield from self._release_exclusive(proc, update_side=False)
