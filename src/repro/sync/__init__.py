"""Kernel synchronization primitives: spinlocks, semaphores, shared read lock."""

from repro.sync.semaphore import INTERRUPTED, Semaphore
from repro.sync.sharedlock import ExclusiveAblationLock, SharedReadLock
from repro.sync.spinlock import SpinLock

__all__ = [
    "ExclusiveAblationLock",
    "INTERRUPTED",
    "Semaphore",
    "SharedReadLock",
    "SpinLock",
]
