"""Kernel sleeping semaphores (the paper's ``sema_t``).

Blocking on a semaphore gives up the CPU; the ``V`` side hands the wakeup
to the scheduler (any object with a ``wakeup(proc)`` method, so the
primitive is testable without a full kernel).

Interruptible sleeps implement the classic UNIX rule: a signal aimed at a
process sleeping interruptibly removes it from the wait queue and its
``p()`` returns ``False``, which kernel callers translate into ``EINTR``.
"""

from __future__ import annotations

from collections import deque
from typing import Deque

from repro.errors import SimulationError
from repro.sim.effects import Block, kdelay


class _Interrupted:
    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover
        return "<interrupted>"


#: resume value delivered to a sleeper kicked off the queue by a signal
INTERRUPTED = _Interrupted()


class Semaphore:
    """A counting semaphore whose waiters sleep (no busy waiting)."""

    def __init__(self, machine, waker, value: int = 0, name: str = "sema"):
        if value < 0:
            raise ValueError("semaphore value cannot be negative")
        self.machine = machine
        self.costs = machine.costs
        self.waker = waker
        self.name = name
        self._value = value
        self._waiters: Deque = deque()
        self.sleeps = 0
        self.wakeups = 0
        self._stats = machine.lockstats.get(name)
        self._lockdep = machine.lockdep

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<Semaphore %s v=%d w=%d>" % (self.name, self._value, len(self._waiters))

    # ------------------------------------------------------------------

    def p(self, proc, interruptible: bool = False):
        """Generator: decrement, sleeping while the count is zero.

        Returns ``True`` normally, ``False`` if the sleep was interrupted
        by a signal (only possible when ``interruptible``).
        """
        self._lockdep.attempt(self, proc, "sema")
        yield kdelay(self.costs.sema_op)
        if self._value > 0:
            self._value -= 1
            self._stats.record_acquire(0, False)
            return True
        if interruptible and getattr(proc, "pending", None):
            # A signal arrived on our way in (classic sleep()-with-PCATCH
            # check): interrupt rather than sleep past it.
            return False
        self._lockdep.sleeping(proc, "P(%s)" % self.name)
        self._waiters.append(proc)
        proc.sleeping_on = self
        proc.sleep_interruptible = interruptible
        proc.state = proc.SLEEPING
        self.sleeps += 1
        slept_from = self.machine.engine.now
        result = yield Block("P(%s)" % self.name)
        proc.sleeping_on = None
        proc.sleep_interruptible = False
        if result is INTERRUPTED:
            return False
        self._stats.record_acquire(
            self.machine.engine.now - slept_from, True
        )
        return True

    def cp(self) -> bool:
        """Conditional P: take the semaphore only if it will not block."""
        if self._value > 0:
            self._value -= 1
            return True
        return False

    def v(self) -> None:
        """Increment; hand the unit straight to the longest waiter.

        Under seeded perturbation (``Engine(seed=...)``, the schedule
        explorer) the unit goes to a *random* waiter instead: any waiter
        is a legal recipient, and varying the choice explores wakeup
        orders the FIFO default would never produce.
        """
        if self._waiters:
            engine = self.machine.engine
            if len(self._waiters) > 1 and engine.perturbs("wakeup"):
                index = engine.rng.randrange(len(self._waiters))
                proc = self._waiters[index]
                del self._waiters[index]
            else:
                proc = self._waiters.popleft()
            proc.sleeping_on = None
            proc.resume_value = None
            self.wakeups += 1
            self.waker.wakeup(proc)
        else:
            self._value += 1

    def v_all(self) -> None:
        """Wake every waiter (broadcast); the count is untouched."""
        while self._waiters:
            self.v()

    # ------------------------------------------------------------------
    # signal interaction

    def cancel(self, proc) -> bool:
        """Kick ``proc`` off the wait queue because a signal arrived.

        The sleeper resumes with :data:`INTERRUPTED`.  Returns ``False``
        if the process was not actually waiting here (lost race with a
        concurrent ``v()`` — the unit is kept and the sleep completes
        normally, as in the real kernel).
        """
        try:
            self._waiters.remove(proc)
        except ValueError:
            return False
        proc.sleeping_on = None
        proc.resume_value = INTERRUPTED
        self.waker.wakeup(proc)
        return True

    # ------------------------------------------------------------------

    @property
    def value(self) -> int:
        return self._value

    @property
    def nwaiters(self) -> int:
        return len(self._waiters)

    def _assert_consistent(self) -> None:
        if self._value > 0 and self._waiters:
            raise SimulationError("semaphore %s has value and waiters" % self.name)
