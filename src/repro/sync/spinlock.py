"""Kernel spin locks (the paper's ``lock_t``).

A spinning CPU genuinely burns simulated cycles while it polls, so lock
contention shows up in the measurements exactly the way it would on the
real machine.  Atomicity of the test-and-set comes from the discrete-
event engine: no other CPU can interleave between two yields, which is
the simulation's model of an interlocked bus operation.
"""

from __future__ import annotations

from repro.errors import SimulationError
from repro.sim.effects import kdelay


class SpinLock:
    """A busy-waiting mutual-exclusion lock for short kernel sections."""

    def __init__(self, machine, name: str = "lock"):
        self.machine = machine
        self.costs = machine.costs
        self.name = name
        self._held = False
        self.owner = None
        self.acquisitions = 0
        self.contended_polls = 0
        self._stats = machine.lockstats.get(name)
        self._lockdep = machine.lockdep
        self._acquired_at = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "held" if self._held else "free"
        return "<SpinLock %s %s>" % (self.name, state)

    def acquire(self, proc=None):
        """Generator: spin until the lock is ours."""
        self._lockdep.attempt(self, proc, "spin")
        yield kdelay(self.costs.spin_acquire)
        spun_from = self.machine.engine.now
        polls = 0
        while self._held:
            self.contended_polls += 1
            polls += 1
            yield kdelay(self.costs.spin_poll)
        self._held = True
        self.owner = proc
        self.acquisitions += 1
        self._acquired_at = self.machine.engine.now
        self._lockdep.acquired(self, proc, "spin")
        self._stats.record_acquire(
            self.machine.engine.now - spun_from, polls > 0
        )

    def try_acquire(self, proc=None) -> bool:
        """Non-blocking attempt (no cycles charged; callers charge)."""
        if self._held:
            return False
        self._lockdep.attempt(self, proc, "spin")
        self._held = True
        self.owner = proc
        self.acquisitions += 1
        self._acquired_at = self.machine.engine.now
        self._lockdep.acquired(self, proc, "spin")
        self._stats.record_acquire(0, False)
        return True

    def release(self, proc=None) -> None:
        """Free the lock.  ``proc`` is optional; when given, lockdep can
        verify the releaser actually owns the lock."""
        if not self._held:
            raise SimulationError("release of free spinlock %s" % self.name)
        self._lockdep.released(self, proc)
        self._held = False
        self.owner = None
        self._stats.record_hold(self.machine.engine.now - self._acquired_at)

    @property
    def held(self) -> bool:
        return self._held
