"""Workloads: deterministic generators and the five programming models."""

from repro.workloads.generators import (
    checksum,
    lcg,
    pack_words,
    payload,
    task_costs,
    unpack_words,
    words,
)
from repro.workloads.models import (
    MODELS,
    run_parallel_sum,
    run_producer_consumer,
)

__all__ = [
    "MODELS",
    "checksum",
    "lcg",
    "pack_words",
    "payload",
    "run_parallel_sum",
    "run_producer_consumer",
    "task_costs",
    "unpack_words",
    "words",
]
