"""Workloads: deterministic generators, the five programming models,
and the flagship multi-tier server (E17)."""

from repro.workloads.generators import (
    checksum,
    lcg,
    pack_words,
    payload,
    task_costs,
    unpack_words,
    words,
)
from repro.workloads.models import (
    MODELS,
    run_parallel_sum,
    run_producer_consumer,
)
from repro.workloads.server import (
    ArrivalSchedule,
    ServerConfig,
    ShardedCache,
    run_server,
)

__all__ = [
    "MODELS",
    "ArrivalSchedule",
    "ServerConfig",
    "ShardedCache",
    "checksum",
    "lcg",
    "pack_words",
    "payload",
    "run_parallel_sum",
    "run_producer_consumer",
    "run_server",
    "task_costs",
    "unpack_words",
    "words",
]
