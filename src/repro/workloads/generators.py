"""Deterministic workload generators for tests and benchmarks.

Everything is seeded: the same parameters always produce the same bytes
and the same task lists, so benchmark runs are exactly reproducible.
``Date``-free and ``random``-free by design.
"""

from __future__ import annotations

from typing import Iterator, List


def lcg(seed: int) -> Iterator[int]:
    """A 32-bit linear congruential generator (Numerical Recipes params)."""
    state = seed & 0xFFFFFFFF
    while True:
        state = (1664525 * state + 1013904223) & 0xFFFFFFFF
        yield state


def words(count: int, seed: int = 1) -> List[int]:
    """``count`` deterministic 16-bit values."""
    gen = lcg(seed)
    return [next(gen) & 0xFFFF for _ in range(count)]


def payload(nbytes: int, seed: int = 1) -> bytes:
    """``nbytes`` of deterministic pseudo-random bytes."""
    gen = lcg(seed)
    out = bytearray()
    while len(out) < nbytes:
        out += next(gen).to_bytes(4, "little")
    return bytes(out[:nbytes])


def task_costs(ntasks: int, mean_cycles: int, seed: int = 7) -> List[int]:
    """Per-task compute costs, uniform in [mean/2, 3*mean/2]."""
    gen = lcg(seed)
    half = max(mean_cycles // 2, 1)
    return [half + next(gen) % (2 * half) for _ in range(ntasks)]


def checksum(data: bytes) -> int:
    """A cheap order-sensitive checksum used to verify transfers."""
    total = 0
    for index, byte in enumerate(data):
        total = (total + (index + 1) * byte) & 0xFFFFFFFF
    return total


def pack_words(values: List[int]) -> bytes:
    return b"".join((v & 0xFFFFFFFF).to_bytes(4, "little") for v in values)


def unpack_words(data: bytes) -> List[int]:
    return [
        int.from_bytes(data[i:i + 4], "little") for i in range(0, len(data), 4)
    ]
