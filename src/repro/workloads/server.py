"""Flagship multi-tier server workload (E17): share groups under traffic.

This is the paper's raison d'etre at production scale: server processes
cooperating on heavy request traffic through shared address spaces
(PR_SADDR) and shared descriptor tables (PR_SFDS).  The topology is a
classic three-tier server:

* an **arrival generator** drives the system *open loop* — request
  batches are stamped with a precomputed schedule and sent over a
  socket at their scheduled instants (``alarm``/``pause``), so server
  backlog cannot slow the offered load down (no coordinated omission);
* an **accept-loop process** recv's batch ids and routes each to its
  worker group over a per-group pipe;
* a pool of **worker share groups** — each a fork'd leader that
  ``sproc``'s workers with ``PR_SADDR | PR_SFDS`` — pops batches from a
  blocking work queue, serves the batch keys out of a **shared cache
  arena** (``shmalloc`` + LRU), and on a miss reads the page from
  "disk" through the group's **AIO ring**.  Cache eviction ``munmap``'s
  the victim page, firing range TLB shootdowns across the whole group;
  every batch also opens/appends/closes a response log in the *shared*
  fd table, churning descriptor slots concurrently.

Latency per request is measured against the *scheduled* arrival time,
so queueing delay under overload is fully visible; the arrival-rate
sweep in ``bench/experiments.py`` (E17) turns these runs into a
capacity curve with a saturation knee.

All instrumentation is host-side (plain counters on :class:`ServerStats`
plus kstat, which is no-op when disabled): a run is cycle-identical with
metrics on or off.
"""

from __future__ import annotations

import math
from typing import Dict, Iterator, List, Tuple

from repro.fs.file import O_APPEND, O_CREAT, O_RDONLY, O_RDWR, O_WRONLY
from repro.kernel.signals import SIGALRM
from repro.runtime.aio import AioRing
from repro.runtime.shmalloc import Arena
from repro.runtime.ulocks import USpinLock
from repro.runtime.workqueue import BlockingWorkQueue
from repro.share.mask import PR_SADDR, PR_SFDS
from repro.workloads.generators import lcg, payload

#: batch id that shuts the whole pipeline down (flows generator ->
#: accept loop -> pipes -> queue close -> ring shutdown)
SENTINEL = 0xFFFFFFFF

#: shortest interval worth an alarm()/pause() pair: anything inside the
#: syscall-boundary window risks the classic lost-SIGALRM pause() race
_MIN_ALARM_SLEEP = 500

_PAGE = 4096

#: cache entry layout (word offsets from the entry base)
_E_KEY = 0
_E_PAGE = 4      # data page vaddr; 0 while the fill I/O is in flight
_E_PREV = 8
_E_NEXT = 12
_ENTRY_WORDS = 4

#: cache control block layout (word offsets from ctl base)
_C_LOCK = 0
_C_COUNT = 4
_C_HEAD = 8
_C_TAIL = 12

#: extra entry slots past ``capacity`` for the all-mid-fill corner: a
#: miss that finds every resident entry pending may run over capacity
#: by at most the number of in-flight fills
_CACHE_SLACK = 64


class ServerConfig:
    """Knobs for one server run.  Everything is deterministic in ``seed``."""

    def __init__(
        self,
        ngroups: int = 8,
        nworkers: int = 6,
        naio: int = 2,
        batch: int = 128,
        keyspace: int = 256,
        cache_capacity: int = 192,
        nshards: int = 4,
        npages: int = 64,
        nrequests: int = 50_000,
        rate_per_kcycle: float = 20.0,
        svc_cycles: int = 120,
        queue_capacity: int = 256,
        burst_every: int = 16,
        burst_len: int = 4,
        burst_factor: int = 8,
        seed: int = 1,
    ):
        self.ngroups = ngroups
        self.nworkers = nworkers
        self.naio = naio
        self.batch = batch
        self.keyspace = keyspace
        self.cache_capacity = cache_capacity
        self.nshards = nshards
        self.npages = npages
        self.nrequests = nrequests
        self.rate_per_kcycle = rate_per_kcycle
        self.svc_cycles = svc_cycles
        self.queue_capacity = queue_capacity
        self.burst_every = burst_every
        self.burst_len = burst_len
        self.burst_factor = burst_factor
        self.seed = seed

    @property
    def nbatches(self) -> int:
        return (self.nrequests + self.batch - 1) // self.batch

    @property
    def nprocs(self) -> int:
        """Total simulated processes the topology stands up."""
        return 2 + self.ngroups * (1 + self.nworkers + self.naio)


class Batch:
    """One scheduled arrival: ``nreq`` requests over ``keys`` (coalesced)."""

    __slots__ = ("bid", "group", "offset", "keys", "nreq")

    def __init__(self, bid: int, group: int, offset: int,
                 keys: List[Tuple[int, int]], nreq: int):
        self.bid = bid
        self.group = group
        self.offset = offset
        self.keys = keys
        self.nreq = nreq


class ArrivalSchedule:
    """A deterministic open-loop Poisson/burst arrival plan.

    Precomputed host-side from the workload seed: batch arrival offsets
    are exponential inter-arrival gaps (with periodic bursts compressed
    by ``burst_factor``), each batch is routed to ``bid %``-independent
    group drawn from the stream, and its keys follow a quintic-skew
    popular-key distribution over the group's keyspace.  The same seed
    always yields the same schedule (tested).
    """

    def __init__(self, cfg: ServerConfig):
        self.cfg = cfg
        gen = lcg(cfg.seed)
        mean_gap = cfg.batch * 1000.0 / cfg.rate_per_kcycle
        self.batches: List[Batch] = []
        offset = 0
        remaining = cfg.nrequests
        for bid in range(cfg.nbatches):
            gap = self._exp_gap(gen, mean_gap)
            if cfg.burst_every and (bid % cfg.burst_every) < cfg.burst_len:
                gap = max(1, gap // cfg.burst_factor)
            offset += gap
            nreq = min(cfg.batch, remaining)
            remaining -= nreq
            group = next(gen) % cfg.ngroups
            keys = self._draw_keys(gen, nreq, cfg.keyspace)
            self.batches.append(Batch(bid, group, offset, keys, nreq))
        self.horizon = offset

    @staticmethod
    def _exp_gap(gen: Iterator[int], mean: float) -> int:
        u = (next(gen) + 1) / 4294967296.0
        return max(1, int(-mean * math.log(u)))

    @staticmethod
    def _draw_keys(gen: Iterator[int], nreq: int,
                   keyspace: int) -> List[Tuple[int, int]]:
        counts: Dict[int, int] = {}
        for _ in range(nreq):
            u = next(gen) / 4294967296.0
            u2 = u * u
            key = min(keyspace - 1, int(u2 * u2 * u * keyspace))
            counts[key] = counts.get(key, 0) + 1
        return sorted(counts.items())

    @property
    def offered_per_kcycle(self) -> float:
        return self.cfg.nrequests * 1000.0 / self.horizon if self.horizon else 0.0


class ServerStats:
    """Host-side run accounting (never charges simulated cycles)."""

    def __init__(self):
        self.t0 = 0                 # generator start cycle
        self.t_first_send = 0
        self.t_last_done = 0
        self.sent_reqs = 0
        self.done_reqs = 0
        self.done_batches = 0
        self.hits = 0
        self.misses = 0
        self.collapsed = 0
        self.evictions = 0
        self.verify_failures = 0
        self.max_inflight = 0
        self.latencies: List[Tuple[int, int]] = []   # (latency, nreq)

    def record_send(self, nreq: int) -> None:
        self.sent_reqs += nreq
        inflight = self.sent_reqs - self.done_reqs
        if inflight > self.max_inflight:
            self.max_inflight = inflight

    def record_done(self, now: int, latency: int, nreq: int) -> None:
        self.done_reqs += nreq
        self.done_batches += 1
        self.t_last_done = now
        self.latencies.append((latency, nreq))


def weighted_percentile(samples: List[Tuple[int, int]], pct: float) -> float:
    """Exact percentile of a weighted sample list ``[(value, count)]``."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    total = sum(n for _, n in ordered)
    rank = pct / 100.0 * total
    cumulative = 0
    for value, n in ordered:
        cumulative += n
        if cumulative >= rank:
            return float(value)
    return float(ordered[-1][0])


# ----------------------------------------------------------------------
# shared LRU cache on a shmalloc arena


class SharedCache:
    """A direct-mapped key table + LRU list in a group's shared arena.

    One word per key in ``table`` points into a *static array* of entry
    blocks carved from the arena at create time (capacity plus slack —
    no allocator traffic on the miss path; an evicted entry's block is
    reused in place for the replacement).  Entries form a doubly-linked
    LRU list.  All state transitions happen under one user spinlock;
    data pages are read *under the lock* too, which pins the page
    across the read (an entry can only be evicted — and its page
    ``munmap``'d — by a lock holder).  A miss inserts the entry
    *pending* (page word 0) so concurrent requests for the same key
    collapse instead of duplicating the disk read, then fills the page
    word with a single atomic store once the I/O completed and the
    payload was verified.

    The hot paths move whole 16-byte entry blocks with one bulk
    load/store (same simulated cycle charge, one event) — at millions
    of requests the cache dominates the host event count.
    """

    def __init__(self, ctl: int, table: int, entries: int,
                 capacity: int, keyspace: int):
        self.ctl = ctl
        self.table = table
        self.entries = entries
        self.capacity = capacity
        self.keyspace = keyspace
        self.lock = USpinLock(ctl + _C_LOCK)

    @classmethod
    def create(cls, api, arena: Arena, capacity: int, keyspace: int):
        """Generator: carve control block, table and entry array from
        ``arena``."""
        ctl = yield from arena.alloc_words(api, 4)
        table = yield from arena.alloc_words(api, keyspace)
        entries = yield from arena.alloc_words(
            api, (capacity + _CACHE_SLACK) * _ENTRY_WORDS)
        yield from api.store(ctl, b"\x00" * 16)
        yield from api.store(table, b"\x00" * (keyspace * 4))
        return cls(ctl, table, entries, capacity, keyspace)

    # ------------------------------------------------------------------

    def access(self, api, key: int):
        """Generator: one key lookup.

        Returns ``(outcome, value, entry, victim)`` where outcome is
        ``"hit"`` (value = first data word, read under the lock),
        ``"collapsed"`` (another worker's fill is in flight) or
        ``"miss"`` (entry reserved pending; caller must fill).  On a
        miss at capacity, ``victim`` is the evicted entry's data page —
        the caller must ``munmap`` it *after* releasing the lock
        (teardown is off the critical section on purpose); the victim's
        entry block itself is reused for the new pending entry.
        """
        slot = self.table + key * 4
        while True:
            yield from self.lock.acquire(api)
            entry = yield from api.load_word(slot)
            if entry:
                blk = yield from api.load(entry, 16)
                page = int.from_bytes(blk[4:8], "little")
                if page == 0:
                    yield from self.lock.release(api)
                    return "collapsed", 0, entry, None
                head = yield from api.load_word(self.ctl + _C_HEAD)
                if head != entry:
                    # move to front: entry != head implies prev != 0
                    prev = int.from_bytes(blk[8:12], "little")
                    nxt = int.from_bytes(blk[12:16], "little")
                    yield from api.store_word(prev + _E_NEXT, nxt)
                    if nxt:
                        yield from api.store_word(nxt + _E_PREV, prev)
                    else:
                        yield from api.store_word(self.ctl + _C_TAIL, prev)
                    yield from api.store(
                        entry + _E_PREV,
                        b"\x00\x00\x00\x00" + head.to_bytes(4, "little"))
                    yield from api.store_word(head + _E_PREV, entry)
                    yield from api.store_word(self.ctl + _C_HEAD, entry)
                value = yield from api.load_word(page)
                yield from self.lock.release(api)
                return "hit", value, entry, None

            # miss: evict if at capacity (skipping entries mid-fill),
            # then reserve a pending entry so duplicate misses collapse
            ctl_blk = yield from api.load(self.ctl + _C_COUNT, 12)
            count = int.from_bytes(ctl_blk[0:4], "little")
            head = int.from_bytes(ctl_blk[4:8], "little")
            tail = int.from_bytes(ctl_blk[8:12], "little")
            victim = None
            new = 0
            if count >= self.capacity:
                cand = tail
                cblk = b""
                while cand:
                    cblk = yield from api.load(cand, 16)
                    if int.from_bytes(cblk[4:8], "little"):
                        break
                    cand = int.from_bytes(cblk[8:12], "little")
                if cand:
                    ckey = int.from_bytes(cblk[0:4], "little")
                    victim = int.from_bytes(cblk[4:8], "little")
                    cprev = int.from_bytes(cblk[8:12], "little")
                    cnxt = int.from_bytes(cblk[12:16], "little")
                    yield from api.store_word(self.table + ckey * 4, 0)
                    if cprev:
                        yield from api.store_word(cprev + _E_NEXT, cnxt)
                    else:
                        head = cnxt
                    if cnxt:
                        yield from api.store_word(cnxt + _E_PREV, cprev)
                    else:
                        tail = cprev
                    new = cand
            if not new:
                if count >= self.capacity + _CACHE_SLACK:
                    # even the slack slots are mid-fill: wait for some
                    # fill to land, then look again
                    yield from self.lock.release(api)
                    yield from api.yield_cpu()
                    continue
                new = self.entries + count * _ENTRY_WORDS * 4
                count += 1
            # insert pending at the LRU front: key, page=0, prev=0,
            # next=old head — one block store
            yield from api.store(
                new, key.to_bytes(4, "little") + b"\x00" * 8 +
                head.to_bytes(4, "little"))
            if head:
                yield from api.store_word(head + _E_PREV, new)
            else:
                tail = new
            head = new
            yield from api.store_word(slot, new)
            yield from api.store(
                self.ctl + _C_COUNT,
                count.to_bytes(4, "little") + head.to_bytes(4, "little") +
                tail.to_bytes(4, "little"))
            yield from self.lock.release(api)
            return "miss", 0, new, victim


class ShardedCache:
    """N independent :class:`SharedCache` shards, one lock + LRU each.

    A single cache lock convoys once a dozen workers and AIO completions
    hammer it; sharding by the key's low bits (the quintic-skew hot keys
    are the low key numbers, so consecutive hot keys land on *different*
    shards) divides both the hold time collisions and the spin traffic.
    Eviction stays LRU within each shard, which is how sharded LRU
    caches behave in practice.
    """

    def __init__(self, shards: List[SharedCache]):
        self.shards = shards
        self.nshards = len(shards)

    @classmethod
    def create(cls, api, arena: Arena, capacity: int, keyspace: int,
               nshards: int = 4):
        nshards = max(1, min(nshards, capacity))
        per_cap = (capacity + nshards - 1) // nshards
        per_keys = (keyspace + nshards - 1) // nshards
        shards = []
        for _ in range(nshards):
            shard = yield from SharedCache.create(api, arena, per_cap, per_keys)
            shards.append(shard)
        return cls(shards)

    @property
    def capacity(self) -> int:
        return sum(s.capacity for s in self.shards)

    def access(self, api, key: int):
        result = yield from self.shards[key % self.nshards].access(
            api, key // self.nshards)
        return result

    def resident(self, api):
        """Generator: total entries across shards (for tests)."""
        total = 0
        for shard in self.shards:
            count = yield from api.load_word(shard.ctl + _C_COUNT)
            total += count
        return total

    def fill(self, api, entry: int, page: int):
        """Generator: publish a fetched page (single atomic word store)."""
        yield from api.store_word(entry + _E_PAGE, page)


# ----------------------------------------------------------------------
# the three tiers


def _read_exact(api, fd: int, n: int):
    data = b""
    while len(data) < n:
        chunk = yield from api.read(fd, n - len(data))
        if not isinstance(chunk, bytes) or chunk == b"":
            return None
        data += chunk
    return data


def _recv_exact(api, fd: int, n: int):
    data = b""
    while len(data) < n:
        chunk = yield from api.recv(fd, n - len(data))
        if not isinstance(chunk, bytes) or chunk == b"":
            return None
        data += chunk
    return data


def _send_all(api, fd: int, data: bytes):
    sent = 0
    while sent < len(data):
        count = yield from api.send(fd, data[sent:])
        if not isinstance(count, int) or count <= 0:
            return -1
        sent += count
    return sent


def _alarm_handler(api, sig):
    return
    yield  # pragma: no cover - make this a (no-op) generator handler


def generator_proc(api, ctx):
    """The open-loop load source: fire each batch at its scheduled time."""
    schedule: ArrivalSchedule = ctx["schedule"]
    stats: ServerStats = ctx["stats"]

    yield from api.signal(SIGALRM, _alarm_handler)
    sock = yield from api.socket()
    while True:
        rc = yield from api.connect(sock, ctx["sockname"])
        if rc == 0:
            break
        yield from api.compute(2_000)

    start = api.now
    stats.t0 = start
    ctx["t0"] = start
    for batch in schedule.batches:
        target = start + batch.offset
        delta = target - api.now
        if delta > _MIN_ALARM_SLEEP:
            yield from api.alarm(delta)
            yield from api.pause()
        elif delta > 0:
            # The classic pause() race, faithfully simulated: an alarm
            # shorter than the syscall-exit window is delivered at the
            # alarm() boundary itself, the handler consumes it, and the
            # following pause() sleeps forever.  Short waits burn user
            # cycles instead of arming a timer they could lose.
            yield from api.compute(delta)
        if stats.t_first_send == 0:
            stats.t_first_send = api.now
        stats.record_send(batch.nreq)
        rc = yield from _send_all(api, sock, batch.bid.to_bytes(4, "little"))
        if rc < 0:
            break
    yield from _send_all(api, sock, SENTINEL.to_bytes(4, "little"))
    yield from api.close(sock)
    return 0


def accept_proc(api, ctx, sock):
    """The accept loop: recv batch ids, route each down its group pipe."""
    schedule: ArrivalSchedule = ctx["schedule"]
    pipe_w: List[int] = ctx["pipe_w"]
    conn = yield from api.accept(sock)
    while True:
        rec = yield from _recv_exact(api, conn, 4)
        if rec is None:
            break
        bid = int.from_bytes(rec, "little")
        if bid == SENTINEL:
            break
        group = schedule.batches[bid].group
        yield from api.write(pipe_w[group], rec)
    for wfd in pipe_w:
        yield from api.write(wfd, SENTINEL.to_bytes(4, "little"))
    yield from api.close(conn)
    return 0


def leader_proc(api, arg):
    """A worker-group leader: build the group, then feed it from the pipe."""
    group, rfd, ctx = arg
    cfg: ServerConfig = ctx["cfg"]

    arena = yield from Arena.create(api, ctx["arena_bytes"])
    cache = yield from ShardedCache.create(
        api, arena, cfg.cache_capacity, cfg.keyspace, cfg.nshards)
    queue = yield from BlockingWorkQueue.create(api, cfg.queue_capacity)
    disk_fd = yield from api.open(ctx["diskpath"], O_RDONLY)
    ring = yield from AioRing.create(
        api, nworkers=cfg.naio, queue_capacity=cfg.queue_capacity,
        blocking=True, arena_bytes=64 * 1024)

    wctx = {
        "group": group, "queue": queue, "cache": cache,
        "ring": ring, "disk_fd": disk_fd, "ctx": ctx,
    }
    for _ in range(cfg.nworkers):
        yield from api.sproc(worker_proc, PR_SADDR | PR_SFDS, wctx)

    while True:
        rec = yield from _read_exact(api, rfd, 4)
        if rec is None:
            break
        bid = int.from_bytes(rec, "little")
        if bid == SENTINEL:
            break
        yield from queue.push(api, bid)

    yield from queue.close(api)
    for _ in range(cfg.nworkers):
        yield from api.wait()
    yield from ring.shutdown(api)
    return 0


def worker_proc(api, wctx):
    """A share-group worker: pop a batch, serve its keys, log, account."""
    cfg: ServerConfig = wctx["ctx"]["cfg"]
    schedule: ArrivalSchedule = wctx["ctx"]["schedule"]
    stats: ServerStats = wctx["ctx"]["stats"]
    expected: List[int] = wctx["ctx"]["expected"]
    queue: BlockingWorkQueue = wctx["queue"]
    cache: ShardedCache = wctx["cache"]
    ring: AioRing = wctx["ring"]
    disk_fd: int = wctx["disk_fd"]
    group: int = wctx["group"]
    kstat = api.kernel.kstat
    ncpus = len(api.kernel.machine.cpus)
    logpath = "/srv-log-%d" % group

    # reusable request blocks: one per possible miss, so the arena
    # allocator stays entirely off the steady-state I/O path
    reqblocks = yield from ring.prep_requests(api, cfg.batch)

    while True:
        bid = yield from queue.pop(api)
        if bid is None:
            return 0
        batch = schedule.batches[bid]
        hits = misses = collapsed = 0
        pending = []   # (entry, page, page_no, request): misses staged
        # rotate the sweep phase per batch so concurrent workers don't
        # march over the cache shards in lockstep
        keys = batch.keys
        rot = bid % len(keys)
        for key, _count in keys[rot:] + keys[:rot]:
            outcome, value, entry, victim = yield from cache.access(api, key)
            page_no = key % cfg.npages
            if outcome == "hit":
                hits += 1
                if value != expected[page_no]:
                    stats.verify_failures += 1
            elif outcome == "collapsed":
                collapsed += 1
            else:
                misses += 1
                if victim is not None:
                    # teardown outside the cache lock: the munmap fires
                    # a range shootdown across the whole share group
                    yield from api.munmap(victim)
                    stats.evictions += 1
                    kstat.add("group", group, "server_evictions")
                page = yield from api.mmap(_PAGE)
                request = reqblocks[len(pending)]
                yield from ring.submit_read_into(
                    api, request, disk_fd, page, _PAGE, page_no * _PAGE)
                pending.append((entry, page, page_no, request))
        if pending:
            # one enqueue for the whole miss wave, then collect: the
            # disk round-trips overlap, so the batch pays ~one disk
            # latency instead of one per miss
            yield from ring.kick(api, [req for _, _, _, req in pending])
        for entry, page, page_no, request in pending:
            yield from ring.wait_block(api, request, free=False)
            value = yield from api.load_word(page)
            if value != expected[page_no]:
                stats.verify_failures += 1
            yield from cache.fill(api, entry, page)

        # per-request service time, amortized into one preemptible burst
        yield from api.compute(batch.nreq * cfg.svc_cycles)

        # response log: open/append/close churns the *shared* fd table
        log_fd = yield from api.open(logpath, O_CREAT | O_WRONLY | O_APPEND)
        yield from api.write(log_fd, bid.to_bytes(4, "little") +
                             batch.nreq.to_bytes(4, "little"))
        yield from api.close(log_fd)

        now = api.now
        latency = now - (wctx["ctx"]["t0"] + batch.offset)
        stats.hits += hits
        stats.misses += misses
        stats.collapsed += collapsed
        stats.record_done(now, latency, batch.nreq)
        kstat.observe_n("kernel", 0, "request_latency", latency, batch.nreq)
        kstat.add("kernel", 0, "server_requests", batch.nreq)
        for cpu in range(ncpus):
            kstat.observe("kernel", 0, "runq_depth_sample",
                          kstat.get("cpu", cpu, "runq_depth"))


def server_root(api, ctx):
    """The init process: write the disk image, stand the tiers up."""
    cfg: ServerConfig = ctx["cfg"]

    disk_fd = yield from api.open(ctx["diskpath"], O_CREAT | O_RDWR)
    image = ctx["disk_image"]
    for off in range(0, len(image), _PAGE):
        yield from api.write(disk_fd, image[off:off + _PAGE])
    yield from api.close(disk_fd)

    sock = yield from api.socket()
    yield from api.bind(sock, ctx["sockname"])
    yield from api.listen(sock, 4)

    pipe_w: List[int] = []
    for group in range(cfg.ngroups):
        rfd, wfd = yield from api.pipe()
        pipe_w.append(wfd)
        yield from api.fork(leader_proc, (group, rfd, ctx))
    ctx["pipe_w"] = pipe_w

    yield from api.fork(generator_proc, ctx)
    yield from accept_proc(api, ctx, sock)

    for _ in range(cfg.ngroups + 1):
        yield from api.wait()
    return 0


# ----------------------------------------------------------------------
# driving a run


def run_server(cfg: ServerConfig, ncpus: int = 8, memory_mb: int = 64,
               metrics_enabled: bool = True, perturb_seed=None,
               system_cls=None, **system_kwargs) -> dict:
    """Run one server scenario; returns host-exact result metrics.

    The returned dict is computed from :class:`ServerStats` (exact,
    host-side), so results are identical with kstat metrics on or off —
    the cycle-identity test relies on that.
    """
    from repro.system import System
    cls = system_cls or System
    schedule = ArrivalSchedule(cfg)
    stats = ServerStats()
    disk_image = payload(cfg.npages * _PAGE, seed=cfg.seed + 7)
    expected = [
        int.from_bytes(disk_image[p * _PAGE:p * _PAGE + 4], "little")
        for p in range(cfg.npages)
    ]
    # arena: cache table + static entry arrays (with per-shard slack)
    arena_bytes = 1 << max(
        16, (cfg.keyspace * 4
             + (cfg.cache_capacity + cfg.nshards * _CACHE_SLACK) * 32
             + 8192).bit_length())
    ctx = {
        "cfg": cfg, "schedule": schedule, "stats": stats,
        "expected": expected, "disk_image": disk_image,
        "arena_bytes": arena_bytes,
        "sockname": "e17-server", "diskpath": "/srv-disk",
        "t0": 0,
    }
    system = cls(ncpus=ncpus, memory_mb=memory_mb,
                 metrics_enabled=metrics_enabled,
                 perturb_seed=perturb_seed, **system_kwargs)
    system.spawn(server_root, ctx, name="e17-root")
    system.run()

    makespan = max(1, stats.t_last_done - stats.t0)
    accesses = stats.hits + stats.misses + stats.collapsed
    return {
        "system": system,
        "stats": stats,
        "offered_per_kcycle": schedule.offered_per_kcycle,
        "completed": stats.done_reqs,
        "throughput_per_kcycle": stats.done_reqs * 1000.0 / makespan,
        "makespan": makespan,
        "sim_now": system.machine.engine.now,
        "p50": weighted_percentile(stats.latencies, 50.0),
        "p95": weighted_percentile(stats.latencies, 95.0),
        "p99": weighted_percentile(stats.latencies, 99.0),
        "mean_latency": (
            sum(lat * n for lat, n in stats.latencies)
            / max(1, sum(n for _, n in stats.latencies))
        ),
        "hits": stats.hits,
        "misses": stats.misses,
        "collapsed": stats.collapsed,
        "hit_pct": 100.0 * stats.hits / accesses if accesses else 0.0,
        "evictions": stats.evictions,
        "verify_failures": stats.verify_failures,
        "max_inflight": stats.max_inflight,
    }
