"""The paper's programming models as executable workloads (Figures 1-4).

Two applications — a producer/consumer stream and a data-parallel sum —
are each written five ways:

``v7_pipes``
    Figure 1: independent fork()ed processes, a pipe as the only channel.
``sysv_shm``
    Figure 2 (System V): explicit shared memory segments, kernel
    semaphores for every synchronization.
``bsd_sockets``
    Figure 2 (BSD): a socket byte stream, data copied through the kernel.
``mach_threads``
    Figure 3: share-everything threads in one task, busy-wait sync.
``share_group``
    Figure 4: sproc() with PR_SALL — shared VM and descriptors, user
    spinlocks, full UNIX semantics retained.

Every run verifies its answer (checksum or exact sum) before reporting a
time, so a model can never look fast by being wrong.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.ipc.sysv_shm import IPC_CREAT
from repro.share.mask import PR_SALL
from repro.sim.costs import CostModel
from repro.system import System
from repro.workloads import generators as gen

MODELS = ("v7_pipes", "sysv_shm", "bsd_sockets", "mach_threads", "share_group")


def _spin_until(api, addr: int, wanted: int):
    """Generator: busy-wait (politely) for a shared word to change."""
    polls = 0
    while True:
        value = yield from api.load_word(addr)
        if value == wanted:
            return
        polls += 1
        if polls >= 32:
            yield from api.yield_cpu()
            polls = 0


# ======================================================================
# application 1: producer -> consumer byte stream
# ======================================================================


def _pipe_consumer(api, ctx):
    out, rfd = ctx["out"], ctx["rfd"]
    # fork duplicated the write end into this process: close it or the
    # pipe never delivers EOF (the oldest trick in UNIX).
    yield from api.close(ctx["wfd"])
    total = 0
    checksum_parts = bytearray()
    while True:
        chunk = yield from api.read(rfd, ctx["chunk"])
        if not chunk:
            break
        checksum_parts += chunk
        total += len(chunk)
    out["received"] = total
    out["checksum"] = gen.checksum(bytes(checksum_parts))
    return 0


def _stream_pipes(api, ctx):
    out = ctx["out"]
    data = ctx["data"]
    rfd, wfd = yield from api.pipe()
    start = api.now
    yield from api.fork(_pipe_consumer, {**ctx, "rfd": rfd, "wfd": wfd})
    yield from api.close(rfd)
    for index in range(0, len(data), ctx["chunk"]):
        yield from api.write(wfd, data[index:index + ctx["chunk"]])
    yield from api.close(wfd)
    yield from api.wait()
    out["cycles"] = api.now - start
    return 0


def _socket_consumer(api, ctx):
    out, fd = ctx["out"], ctx["fd"]
    # close the fork-duplicated copy of the parent's endpoint so the
    # stream can reach EOF when the parent closes its side
    yield from api.close(ctx["parent_fd"])
    received = bytearray()
    while True:
        chunk = yield from api.recv(fd, ctx["chunk"])
        if not chunk:
            break
        received += chunk
    out["received"] = len(received)
    out["checksum"] = gen.checksum(bytes(received))
    return 0


def _stream_sockets(api, ctx):
    out = ctx["out"]
    data = ctx["data"]
    fd_a, fd_b = yield from api.socketpair()
    start = api.now
    yield from api.fork(_socket_consumer, {**ctx, "fd": fd_b, "parent_fd": fd_a})
    yield from api.close(fd_b)
    for index in range(0, len(data), ctx["chunk"]):
        yield from api.send(fd_a, data[index:index + ctx["chunk"]])
    yield from api.close(fd_a)
    yield from api.wait()
    out["cycles"] = api.now - start
    return 0


#: ring of shared buffers: per-slot header is flag word + length word.
#: Multiple slots let the producer fill slot k+1 while the consumer
#: drains slot k — the same pipelining a pipe's kernel buffer provides,
#: but at memory speed with no kernel entries.
_RING_SLOTS = 4
_BUF_FLAG = 0
_BUF_LEN = 4
_BUF_DATA = 8


def _ring_stride(chunk: int) -> int:
    return (chunk + _BUF_DATA + 15) & ~15


def _ring_bytes(chunk: int) -> int:
    return _RING_SLOTS * _ring_stride(chunk) + 4096


def _shm_spin_consumer(api, ctx):
    """Consumer over the shared ring with spin-flag handshakes."""
    out, base, chunk = ctx["out"], ctx["base"], ctx["chunk"]
    stride = _ring_stride(chunk)
    received = bytearray()
    index = 0
    while True:
        slot = base + (index % _RING_SLOTS) * stride
        yield from _spin_until(api, slot + _BUF_FLAG, 1)
        length = yield from api.load_word(slot + _BUF_LEN)
        if length == 0:
            break
        piece = yield from api.load(slot + _BUF_DATA, length)
        received += piece
        yield from api.store_word(slot + _BUF_FLAG, 0)
        index += 1
    out["received"] = len(received)
    out["checksum"] = gen.checksum(bytes(received))
    return 0


def _shm_spin_producer_body(api, ctx, base):
    data, chunk = ctx["data"], ctx["chunk"]
    stride = _ring_stride(chunk)
    index = 0
    for offset in range(0, len(data), chunk):
        piece = data[offset:offset + chunk]
        slot = base + (index % _RING_SLOTS) * stride
        yield from _spin_until(api, slot + _BUF_FLAG, 0)
        yield from api.store(slot + _BUF_DATA, piece)
        yield from api.store_word(slot + _BUF_LEN, len(piece))
        yield from api.store_word(slot + _BUF_FLAG, 1)
        index += 1
    slot = base + (index % _RING_SLOTS) * stride
    yield from _spin_until(api, slot + _BUF_FLAG, 0)
    yield from api.store_word(slot + _BUF_LEN, 0)
    yield from api.store_word(slot + _BUF_FLAG, 1)


def _stream_share_group(api, ctx):
    out = ctx["out"]
    base = yield from api.mmap(_ring_bytes(ctx["chunk"]))
    start = api.now
    yield from api.sproc(_shm_spin_consumer, PR_SALL, {**ctx, "base": base})
    yield from _shm_spin_producer_body(api, ctx, base)
    yield from api.wait()
    out["cycles"] = api.now - start
    return 0


def _stream_threads(api, ctx):
    out = ctx["out"]
    base = yield from api.mmap(_ring_bytes(ctx["chunk"]))
    start = api.now
    yield from api.thread_create(_shm_spin_consumer, {**ctx, "base": base})
    yield from _shm_spin_producer_body(api, ctx, base)
    yield from api.thread_join()
    out["cycles"] = api.now - start
    return 0


def _sysv_consumer(api, ctx):
    """SysV model: the same ring, but every handshake is a semop()."""
    out, chunk = ctx["out"], ctx["chunk"]
    shmid = yield from api.shmget(ctx["key"], _ring_bytes(chunk), 0)
    base = yield from api.shmat(shmid)
    semid = yield from api.semget(ctx["key"], 2, 0)
    stride = _ring_stride(chunk)
    received = bytearray()
    index = 0
    while True:
        yield from api.semop(semid, [(0, -1)])  # wait "full"
        slot = base + (index % _RING_SLOTS) * stride
        length = yield from api.load_word(slot + _BUF_LEN)
        if length == 0:
            break
        piece = yield from api.load(slot + _BUF_DATA, length)
        received += piece
        yield from api.semop(semid, [(1, 1)])  # post "empty"
        index += 1
    out["received"] = len(received)
    out["checksum"] = gen.checksum(bytes(received))
    return 0


def _stream_sysv(api, ctx):
    out = ctx["out"]
    data, chunk = ctx["data"], ctx["chunk"]
    shmid = yield from api.shmget(ctx["key"], _ring_bytes(chunk), IPC_CREAT)
    base = yield from api.shmat(shmid)
    semid = yield from api.semget(ctx["key"], 2, IPC_CREAT)
    yield from api.semop(semid, [(1, _RING_SLOTS)])  # all slots empty
    stride = _ring_stride(chunk)
    start = api.now
    yield from api.fork(_sysv_consumer, ctx)
    index = 0
    for offset in range(0, len(data), chunk):
        piece = data[offset:offset + chunk]
        yield from api.semop(semid, [(1, -1)])
        slot = base + (index % _RING_SLOTS) * stride
        yield from api.store(slot + _BUF_DATA, piece)
        yield from api.store_word(slot + _BUF_LEN, len(piece))
        yield from api.semop(semid, [(0, 1)])
        index += 1
    yield from api.semop(semid, [(1, -1)])
    slot = base + (index % _RING_SLOTS) * stride
    yield from api.store_word(slot + _BUF_LEN, 0)
    yield from api.semop(semid, [(0, 1)])
    yield from api.wait()
    out["cycles"] = api.now - start
    return 0


_STREAM_MAINS = {
    "v7_pipes": _stream_pipes,
    "sysv_shm": _stream_sysv,
    "bsd_sockets": _stream_sockets,
    "mach_threads": _stream_threads,
    "share_group": _stream_share_group,
}


def run_producer_consumer(
    model: str,
    nbytes: int = 64 * 1024,
    chunk: int = 4096,
    ncpus: int = 2,
    costs: Optional[CostModel] = None,
    seed: int = 11,
    perturb_seed: Optional[int] = None,
) -> Dict[str, Any]:
    """Run the streaming app in one model; returns verified metrics.

    ``seed`` shapes the payload data; ``perturb_seed`` (distinct on
    purpose) seeds the engine's schedule perturber.
    """
    data = gen.payload(nbytes, seed)
    expected = gen.checksum(data)
    out: Dict[str, int] = {}
    ctx = {"out": out, "data": data, "chunk": chunk, "key": 424242}
    sim = System(ncpus=ncpus, costs=costs, perturb_seed=perturb_seed)
    sim.spawn(_STREAM_MAINS[model], ctx, name=model)
    sim.run()
    if out.get("received") != nbytes or out.get("checksum") != expected:
        raise AssertionError(
            "%s corrupted the stream: %r" % (model, out)
        )
    return {
        "model": model,
        "cycles": out["cycles"],
        "bytes": nbytes,
        "bytes_per_kcycle": round(nbytes * 1000 / out["cycles"], 1),
    }


# ======================================================================
# application 2: data-parallel sum
# ======================================================================


def _sum_pipe_worker(api, ctx):
    rfd, wfd, nbytes = ctx["rfd"], ctx["wfd"], ctx["nbytes"]
    received = bytearray()
    while len(received) < nbytes:
        chunk = yield from api.read(rfd, nbytes - len(received))
        if not chunk:
            break
        received += chunk
    values = gen.unpack_words(bytes(received))
    yield from api.compute(len(values))  # one cycle per add
    total = sum(values) & 0xFFFFFFFF
    yield from api.write(wfd, total.to_bytes(4, "little"))
    return 0


def _parallel_sum_pipes(api, ctx):
    out, values, nworkers = ctx["out"], ctx["values"], ctx["nworkers"]
    slices = _slices(values, nworkers)
    start = api.now
    channels = []
    for piece in slices:
        down_r, down_w = yield from api.pipe()
        up_r, up_w = yield from api.pipe()
        yield from api.fork(
            _sum_pipe_worker,
            {"rfd": down_r, "wfd": up_w, "nbytes": len(piece) * 4},
        )
        yield from api.close(down_r)
        yield from api.close(up_w)
        channels.append((down_w, up_r, piece))
    total = 0
    for down_w, up_r, piece in channels:
        yield from api.write(down_w, gen.pack_words(piece))
        yield from api.close(down_w)
    for down_w, up_r, piece in channels:
        raw = yield from api.read(up_r, 4)
        total = (total + int.from_bytes(raw, "little")) & 0xFFFFFFFF
        yield from api.close(up_r)
    for _ in channels:
        yield from api.wait()
    out["total"] = total
    out["cycles"] = api.now - start
    return 0


def _sum_socket_worker(api, ctx):
    fd, nbytes = ctx["fd"], ctx["nbytes"]
    received = bytearray()
    while len(received) < nbytes:
        chunk = yield from api.recv(fd, nbytes - len(received))
        if not chunk:
            break
        received += chunk
    values = gen.unpack_words(bytes(received))
    yield from api.compute(len(values))
    total = sum(values) & 0xFFFFFFFF
    yield from api.send(fd, total.to_bytes(4, "little"))
    return 0


def _parallel_sum_sockets(api, ctx):
    out, values, nworkers = ctx["out"], ctx["values"], ctx["nworkers"]
    slices = _slices(values, nworkers)
    start = api.now
    channels = []
    for piece in slices:
        fd_a, fd_b = yield from api.socketpair()
        yield from api.fork(
            _sum_socket_worker, {"fd": fd_b, "nbytes": len(piece) * 4}
        )
        yield from api.close(fd_b)
        channels.append((fd_a, piece))
    for fd_a, piece in channels:
        yield from api.send(fd_a, gen.pack_words(piece))
    total = 0
    for fd_a, _piece in channels:
        raw = yield from api.recv(fd_a, 4)
        total = (total + int.from_bytes(raw, "little")) & 0xFFFFFFFF
        yield from api.close(fd_a)
    for _ in channels:
        yield from api.wait()
    out["total"] = total
    out["cycles"] = api.now - start
    return 0


def _sum_shared_worker(api, ctx):
    """Workers for the shared-VM models: slice the in-place array."""
    base, begin, count, accum = ctx["base"], ctx["begin"], ctx["count"], ctx["accum"]
    raw = yield from api.load(base + begin * 4, count * 4)
    values = gen.unpack_words(raw)
    yield from api.compute(len(values))
    total = sum(values) & 0xFFFFFFFF
    yield from api.fetch_add(accum, total)
    yield from api.fetch_add(accum + 4, 1)  # completion count
    return 0


def _parallel_sum_shared(api, ctx, spawn, join):
    out, values, nworkers = ctx["out"], ctx["values"], ctx["nworkers"]
    base = yield from api.mmap(len(values) * 4 + 4096)
    accum = yield from api.mmap(4096)
    yield from api.store(base, gen.pack_words(values))
    start = api.now
    begin = 0
    for piece in _slices(values, nworkers):
        yield from spawn(
            _sum_shared_worker,
            {"base": base, "begin": begin, "count": len(piece), "accum": accum},
        )
        begin += len(piece)
    for _ in range(nworkers):
        yield from join()
    out["total"] = yield from api.load_word(accum)
    out["cycles"] = api.now - start
    return 0


def _parallel_sum_share_group(api, ctx):
    def spawn(entry, arg):
        pid = yield from api.sproc(entry, PR_SALL, arg)
        return pid

    def join():
        result = yield from api.wait()
        return result

    result = yield from _parallel_sum_shared(api, ctx, spawn, join)
    return result


def _parallel_sum_threads(api, ctx):
    def spawn(entry, arg):
        tid = yield from api.thread_create(entry, arg)
        return tid

    def join():
        result = yield from api.thread_join()
        return result

    result = yield from _parallel_sum_shared(api, ctx, spawn, join)
    return result


def _sysv_sum_worker(api, ctx):
    key, begin, count, index = ctx["key"], ctx["begin"], ctx["count"], ctx["index"]
    shmid = yield from api.shmget(key, 0, 0)
    base = yield from api.shmat(shmid)
    raw = yield from api.load(base + 4096 + begin * 4, count * 4)
    values = gen.unpack_words(raw)
    yield from api.compute(len(values))
    total = sum(values) & 0xFFFFFFFF
    yield from api.store_word(base + 16 + index * 4, total)
    semid = yield from api.semget(key, 1, 0)
    yield from api.semop(semid, [(0, 1)])
    return 0


def _parallel_sum_sysv(api, ctx):
    out, values, nworkers = ctx["out"], ctx["values"], ctx["nworkers"]
    key = ctx["key"]
    nbytes = 4096 + len(values) * 4
    shmid = yield from api.shmget(key, nbytes, IPC_CREAT)
    base = yield from api.shmat(shmid)
    semid = yield from api.semget(key, 1, IPC_CREAT)
    yield from api.store(base + 4096, gen.pack_words(values))
    start = api.now
    begin = 0
    for index, piece in enumerate(_slices(values, nworkers)):
        yield from api.fork(
            _sysv_sum_worker,
            {"key": key, "begin": begin, "count": len(piece), "index": index},
        )
        begin += len(piece)
    yield from api.semop(semid, [(0, -nworkers)])
    total = 0
    for index in range(nworkers):
        part = yield from api.load_word(base + 16 + index * 4)
        total = (total + part) & 0xFFFFFFFF
    for _ in range(nworkers):
        yield from api.wait()
    out["total"] = total
    out["cycles"] = api.now - start
    return 0


_SUM_MAINS = {
    "v7_pipes": _parallel_sum_pipes,
    "sysv_shm": _parallel_sum_sysv,
    "bsd_sockets": _parallel_sum_sockets,
    "mach_threads": _parallel_sum_threads,
    "share_group": _parallel_sum_share_group,
}


def _slices(values, nworkers):
    per = (len(values) + nworkers - 1) // nworkers
    return [values[i:i + per] for i in range(0, len(values), per)]


def run_parallel_sum(
    model: str,
    nwords: int = 4096,
    nworkers: int = 4,
    ncpus: int = 4,
    costs: Optional[CostModel] = None,
    seed: int = 23,
    perturb_seed: Optional[int] = None,
) -> Dict[str, Any]:
    """Run the data-parallel sum in one model; returns verified metrics.

    ``seed`` shapes the summed values; ``perturb_seed`` (distinct on
    purpose) seeds the engine's schedule perturber.
    """
    values = gen.words(nwords, seed)
    expected = sum(values) & 0xFFFFFFFF
    out: Dict[str, int] = {}
    ctx = {
        "out": out,
        "values": values,
        "nworkers": nworkers,
        "key": 31337,
    }
    sim = System(ncpus=ncpus, costs=costs, perturb_seed=perturb_seed)
    sim.spawn(_SUM_MAINS[model], ctx, name=model)
    sim.run()
    if out.get("total") != expected:
        raise AssertionError(
            "%s computed %r, expected %d" % (model, out.get("total"), expected)
        )
    return {
        "model": model,
        "cycles": out["cycles"],
        "nwords": nwords,
        "nworkers": nworkers,
    }
