"""The fault-injection sweep: every failpoint, every error path.

The schedule explorer answers "does a different interleaving break the
protocol?"; this module answers "does the *error path* break it?".  For
each scenario it first makes a **recording** pass (failpoints count
their hits but never fire) to learn which sites the workload reaches and
how often, then re-runs the scenario with one site armed at a time —
first hit, last hit and (``deep``) midpoints — and demands that:

* the run still completes (injected failures surface as ``-1``/errno,
  which the scenarios are written to survive), and
* :func:`repro.check.invariants.audit_leaks` finds nothing afterwards —
  no leaked frames, no unbalanced share groups, no stranded waiters.

The two abrupt-kill sites (``syscall.entry``/``syscall.exit``) are the
exception: SIGKILL mid-protocol may legitimately stall the *guest*
program (a peer waiting on a dead participant), so for those a deadlock
verdict is tolerated as long as the kernel invariants hold on the stuck
state.  Every failure prints a single re-runnable command, and the hit
index is shrunk toward 1 so the repro is as short as the bug allows.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.check.invariants import audit_leaks, run_invariants
from repro.check.scenarios import SCENARIOS, Scenario
from repro.errors import DeadlockError, SimulationError
from repro.obs.lockdep import LockOrderViolation
from repro.system import System

#: scenarios the sweep drives by default — racy-counter is fine here
#: (the judge checks leaks, not final-state equality)
SWEEP_SCENARIOS = (
    "fault-storm", "fd-churn", "mmap-churn", "unshare-churn", "racy-counter"
)

#: sites that deliver SIGKILL rather than an errno — a stalled guest
#: protocol is tolerated for these, a dirty kernel state is not
KILL_SITES = frozenset({"syscall.entry", "syscall.exit"})


class InjectResult:
    """One scenario run with one site armed."""

    def __init__(
        self,
        scenario: str,
        site: str,
        policy: str,
        status: str,
        detail: str,
        fired: int,
        cycles: int,
    ):
        self.scenario = scenario
        self.site = site
        self.policy = policy
        self.status = status  # ok | leak | error | stalled
        self.detail = detail
        self.fired = fired
        self.cycles = cycles

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def to_dict(self) -> dict:
        return {
            "scenario": self.scenario,
            "site": self.site,
            "policy": self.policy,
            "status": self.status,
            "detail": self.detail,
            "fired": self.fired,
            "cycles": self.cycles,
        }


def run_injected(scenario: Scenario, site: str, policy: str) -> InjectResult:
    """Run once with ``site`` armed; classify, never raise.

    Boots the system by hand rather than through :meth:`Scenario.run`
    so the simulator object survives a :class:`DeadlockError` — the
    stuck state is exactly what the kill-site verdict must inspect.
    """
    out: dict = {}
    sim = System(ncpus=scenario.ncpus, lockdep=True, inject={site: policy})
    sim.spawn(scenario.main, out, name=scenario.name)
    status, detail = "ok", ""
    try:
        sim.run()
    except LockOrderViolation as exc:
        status, detail = "error", "lockdep: %s" % exc
    except DeadlockError as exc:
        findings = run_invariants(sim)
        if site in KILL_SITES and not findings:
            status = "ok"
            detail = "stalled after kill (tolerated; invariants clean)"
        elif findings:
            status, detail = "stalled", "%s; invariants: %s" % (
                exc, "; ".join(findings))
        else:
            status, detail = "stalled", str(exc)
    except SimulationError as exc:
        status, detail = "error", "%s: %s" % (type(exc).__name__, exc)
    else:
        findings = audit_leaks(sim)
        if findings:
            status, detail = "leak", "; ".join(findings)
    fired = sim.machine.inject.fired.get(site, 0)
    return InjectResult(
        scenario.name, site, policy, status, detail, fired, sim.engine.now
    )


def record_hits(scenario: Scenario) -> Tuple[Dict[str, int], List[str]]:
    """Recording pass: which sites does the workload reach, and is it
    clean without any injection at all?"""
    out, sim = scenario.run(lockdep=True, record=True)
    return dict(sim.machine.inject.hits), audit_leaks(sim)


def _hit_indices(total: int, deep: bool) -> List[int]:
    """Which hit numbers to arm for a site hit ``total`` times."""
    if total <= 0:
        return []
    picks = {1, total}
    if deep:
        picks.update(
            n for n in (total // 4, total // 2, (3 * total) // 4) if n >= 1
        )
    return sorted(picks)


def shrink_hit(scenario: Scenario, site: str, failing_hit: int) -> int:
    """Greedily walk the failing hit index toward 1."""
    for candidate in sorted({1, failing_hit // 4, failing_hit // 2}):
        if 1 <= candidate < failing_hit:
            if not run_injected(scenario, site, "nth:%d" % candidate).ok:
                return candidate
    return failing_hit


class InjectFailure:
    """A reproducible sweep finding."""

    def __init__(self, result: InjectResult, minimal_policy: Optional[str] = None):
        self.result = result
        self.minimal_policy = minimal_policy

    def repro_command(self) -> str:
        policy = self.minimal_policy or self.result.policy
        return (
            "python -m repro.check inject --scenario %s --site %s --policy %s"
            % (self.result.scenario, self.result.site, policy)
        )

    def to_dict(self) -> dict:
        data = self.result.to_dict()
        data["minimal_policy"] = self.minimal_policy
        data["repro"] = self.repro_command()
        return data

    def render(self) -> str:
        result = self.result
        lines = [
            "FAIL %s site=%s policy=%s status=%s"
            % (result.scenario, result.site, result.policy, result.status),
            "  repro: %s" % self.repro_command(),
        ]
        for detail_line in result.detail.splitlines():
            lines.append("  | " + detail_line)
        return "\n".join(lines)


class InjectReport:
    """Everything one sweep invocation learned."""

    def __init__(self, deep: bool):
        self.deep = deep
        self.scenarios: List[str] = []
        self.runs = 0
        self.failures: List[InjectFailure] = []
        self.baseline_errors: List[Tuple[str, str]] = []
        self.site_coverage: Dict[str, List[str]] = {}  # site -> scenarios

    @property
    def ok(self) -> bool:
        return not self.failures and not self.baseline_errors

    def sites_swept(self) -> List[str]:
        return sorted(self.site_coverage)

    def to_dict(self) -> dict:
        return {
            "deep": self.deep,
            "scenarios": self.scenarios,
            "runs": self.runs,
            "ok": self.ok,
            "sites_swept": self.sites_swept(),
            "site_coverage": {
                site: sorted(names)
                for site, names in sorted(self.site_coverage.items())
            },
            "baseline_errors": [
                {"scenario": name, "detail": detail}
                for name, detail in self.baseline_errors
            ],
            "failures": [failure.to_dict() for failure in self.failures],
        }

    def render(self) -> str:
        lines = [
            "fault-injection sweep: %d scenario(s), %d runs, "
            "%d distinct sites reached%s"
            % (len(self.scenarios), self.runs, len(self.site_coverage),
               " (deep)" if self.deep else "")
        ]
        for site in self.sites_swept():
            lines.append(
                "  %-20s via %s" % (site, ",".join(sorted(self.site_coverage[site])))
            )
        for name, detail in self.baseline_errors:
            lines.append("BASELINE FAIL %s" % name)
            lines.extend("  | " + line for line in detail.splitlines())
        for failure in self.failures:
            lines.append(failure.render())
        lines.append("result: %s" % ("PASS" if self.ok else "FAIL"))
        return "\n".join(lines)


def sweep(
    scenario_names: Optional[Iterable[str]] = None,
    site_names: Optional[Iterable[str]] = None,
    deep: bool = False,
    shrink_failures: bool = True,
) -> InjectReport:
    """Record each scenario, then inject every reached site in turn."""
    names = list(scenario_names) if scenario_names else list(SWEEP_SCENARIOS)
    wanted = frozenset(site_names) if site_names else None
    report = InjectReport(deep)
    report.scenarios = names
    for name in names:
        scenario = SCENARIOS[name]
        try:
            hits, baseline_findings = record_hits(scenario)
        except SimulationError as exc:
            report.baseline_errors.append((name, str(exc)))
            continue
        report.runs += 1
        if baseline_findings:
            report.baseline_errors.append((name, "; ".join(baseline_findings)))
            continue
        for site in sorted(hits):
            if wanted is not None and site not in wanted:
                continue
            report.site_coverage.setdefault(site, []).append(name)
            for hit_no in _hit_indices(hits[site], deep):
                result = run_injected(scenario, site, "nth:%d" % hit_no)
                report.runs += 1
                if result.ok:
                    continue
                minimal = None
                if shrink_failures and hit_no > 1:
                    best = shrink_hit(scenario, site, hit_no)
                    if best != hit_no:
                        minimal = "nth:%d" % best
                report.failures.append(InjectFailure(result, minimal))
                break  # one failure per site is enough signal
    return report
