"""Workloads the schedule explorer drives.

Each scenario is a small guest program chosen to stress one of the
paper's sharing protocols hard enough that a reordered schedule would
expose a protocol bug — yet written so its *final* state is schedule
independent.  The explorer runs a scenario many times under different
seeded perturbations and demands the fingerprint (the ``out`` dict, the
invariant pack, frame accounting) never changes.

``racy-counter`` is the deliberate exception: a textbook lost-update
race whose final count depends on the interleaving.  It is excluded
from :data:`DEFAULT_SCENARIOS` and exists so tests can prove the
explorer actually detects divergence.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Optional, Tuple

from repro.fs.file import O_CREAT, O_RDWR
from repro.mem.frames import PAGE_SIZE
from repro.share.mask import (
    PR_SADDR,
    PR_SALL,
    PR_SDIR,
    PR_SFDS,
    PR_SID,
    PR_SULIMIT,
    PR_SUMASK,
)
from repro.share.prctl import PR_SETSHMASK, PR_UNSHARE
from repro.system import System


class Scenario:
    """A named guest workload bootable under any seed/perturbation."""

    def __init__(self, name: str, main: Callable, ncpus: int, description: str):
        self.name = name
        self.main = main
        self.ncpus = ncpus
        self.description = description

    def run(
        self,
        seed: Optional[int] = None,
        features: Optional[Iterable[str]] = None,
        lockdep: bool = True,
        inject: Optional[Dict[str, str]] = None,
        record: bool = False,
    ) -> Tuple[dict, System]:
        """Boot a fresh system, run to completion, return ``(out, sim)``.

        ``inject`` arms failpoints (site -> policy); ``record`` counts
        failpoint hits without firing any (the sweep's discovery pass).
        """
        out: dict = {}
        sim = System(
            ncpus=self.ncpus,
            lockdep=lockdep,
            perturb_seed=seed,
            perturb_features=features,
            inject=inject,
        )
        if record:
            sim.machine.inject.start_recording()
        sim.spawn(self.main, out, name=self.name)
        sim.run()
        return out, sim


# ----------------------------------------------------------------------
# fault-storm: concurrent scans of one shared region (section 6.2)

_FS_PAGES = 12
_FS_PROCS = 4


def _fault_storm_member(api, arg):
    base, acc = arg
    for index in range(_FS_PAGES):
        vaddr = base + index * PAGE_SIZE
        value = yield from api.load_word(vaddr)
        yield from api.store_word(vaddr, value)  # idempotent dirtying
        yield from api.fetch_add(acc, value)
        if index % 4 == 3:
            yield from api.yield_cpu()
    return 0


def _fault_storm_main(api, out):
    # Failure-only branches (base == -1, started < N) keep the scenario
    # usable under fault injection; an unperturbed run never takes them.
    base = yield from api.mmap((_FS_PAGES + 1) * PAGE_SIZE)
    if base == -1:
        return 1
    acc = base + _FS_PAGES * PAGE_SIZE
    for index in range(_FS_PAGES):
        yield from api.store_word(base + index * PAGE_SIZE, index + 1)
    started = 0
    for _ in range(_FS_PROCS):
        pid = yield from api.sproc(_fault_storm_member, PR_SALL, (base, acc))
        if pid != -1:
            started += 1
    for _ in range(started):
        yield from api.wait()
    out["acc"] = yield from api.load_word(acc)
    out["expected"] = _FS_PROCS * sum(range(1, _FS_PAGES + 1))
    return 0


# ----------------------------------------------------------------------
# fd-churn: descriptor updates through s_fupdsema (section 6.3)

_FD_MESSAGES = 8
_FD_MSG = b"8 bytes."


def _fd_reader(api, arg):
    # Reads an exact byte count rather than waiting for EOF: a member
    # asleep in read() cannot resync its descriptor table, so it would
    # itself keep the write end referenced and the EOF pending.
    out, rfd = arg
    expected = _FD_MESSAGES * len(_FD_MSG)
    total = 0
    while total < expected:
        chunk = yield from api.read(rfd, 16)
        if chunk == -1:
            continue  # EINTR under injection: retry
        if not chunk:
            break  # EOF: every writer is gone
        total += len(chunk)
    yield from api.close(rfd)
    out["bytes"] = total
    return 0


def _fd_writer(api, arg):
    wfd = arg
    for _ in range(_FD_MESSAGES):
        yield from api.write(wfd, _FD_MSG)
        yield from api.yield_cpu()
    yield from api.close(wfd)
    return 0


def _fd_churner(api, arg):
    index = arg
    for round_no in range(6):
        fd = yield from api.open(
            "/churn-%d-%d" % (index, round_no), O_RDWR | O_CREAT
        )
        dup = yield from api.dup(fd)
        yield from api.write(dup, b"x")
        yield from api.close(dup)
        yield from api.close(fd)
    return 0


def _fd_churn_main(api, out):
    fds = yield from api.pipe()
    if fds == -1:
        return 1
    rfd, wfd = fds
    started = 0
    for entry, arg in (
        (_fd_reader, (out, rfd)),
        (_fd_writer, wfd),
        (_fd_churner, 0),
        (_fd_churner, 1),
    ):
        pid = yield from api.sproc(entry, PR_SALL, arg)
        if pid != -1:
            started += 1
    if started < 4:
        # Some member never ran: feed the reader its full byte count
        # ourselves so an error-site injection cannot strand it.
        yield from api.write(wfd, _FD_MSG * _FD_MESSAGES)
    for _ in range(started):
        yield from api.wait()
    out["expected"] = _FD_MESSAGES * len(_FD_MSG)
    return 0


# ----------------------------------------------------------------------
# mmap-churn: shared pregion list updates + TLB shootdowns (section 6.2)

_MC_PROCS = 3
_MC_ROUNDS = 4


def _mmap_churner(api, arg):
    out, index = arg
    total = 0
    for round_no in range(_MC_ROUNDS):
        base = yield from api.mmap(2 * PAGE_SIZE)
        if base == -1:
            continue  # injection refused the mapping: skip the round
        yield from api.store_word(base, index * 1000 + round_no)
        yield from api.store_word(base + PAGE_SIZE, round_no)
        total += yield from api.load_word(base)
        total += yield from api.load_word(base + PAGE_SIZE)
        yield from api.munmap(base)
        yield from api.yield_cpu()
    out["member-%d" % index] = total
    return 0


def _mmap_faulter(api, arg):
    out, base, npages = arg
    total = 0
    for _round in range(3):
        for index in range(npages):
            total += yield from api.load_word(base + index * PAGE_SIZE)
        yield from api.yield_cpu()
    out["faulter"] = total
    return 0


def _mmap_churn_main(api, out):
    npages = 6
    base = yield from api.mmap(npages * PAGE_SIZE)
    if base == -1:
        return 1
    for index in range(npages):
        yield from api.store_word(base + index * PAGE_SIZE, 10 + index)
    started = 0
    for index in range(_MC_PROCS):
        pid = yield from api.sproc(_mmap_churner, PR_SALL, (out, index))
        if pid != -1:
            started += 1
    pid = yield from api.sproc(_mmap_faulter, PR_SALL, (out, base, npages))
    if pid != -1:
        started += 1
    for _ in range(started):
        yield from api.wait()
    return 0


# ----------------------------------------------------------------------
# unshare-churn: members race transactional unshare against faults,
# fd churn, and member exit (the dynamic sharing lifecycle)

_UC_SLOTS = 4
_UC_CONST = 4


def _uc_lifecycle(api, arg):
    """Full lifecycle: share everything, then peel resources off in
    stages — fds+misc first, then the address space, then the rest
    (departing the group) — churning between stages."""
    out, base, index = arg
    slot = base + index * PAGE_SIZE
    yield from api.store_word(slot, 100 + index)
    fd = yield from api.open("/uc-%d" % index, O_RDWR | O_CREAT)
    if fd != -1:
        yield from api.write(fd, b"shared")
    yield from api.prctl(PR_UNSHARE, PR_SFDS | PR_SUMASK | PR_SULIMIT)
    if fd != -1:
        yield from api.close(fd)  # private close after the fd detach
    priv = yield from api.open("/uc-priv-%d" % index, O_RDWR | O_CREAT)
    if priv != -1:
        yield from api.write(priv, b"private")
        yield from api.close(priv)
    yield from api.store_word(slot, 200 + index)  # still PR_SADDR-shared
    yield from api.prctl(PR_UNSHARE, PR_SADDR)
    yield from api.store_word(slot, 900 + index)  # private COW break
    out["lifecycle-%d" % index] = yield from api.load_word(slot)
    yield from api.prctl(PR_UNSHARE, PR_SDIR | PR_SID)  # mask -> 0: departs
    return 0


def _uc_tightener(api, arg):
    """PR_SETSHMASK down to VM+cwd only, then private fd traffic."""
    out, base, index = arg
    slot = base + index * PAGE_SIZE
    yield from api.store_word(slot, 300 + index)
    yield from api.prctl(PR_SETSHMASK, PR_SADDR | PR_SDIR)
    fd = yield from api.open("/uc-tight", O_RDWR | O_CREAT)
    if fd != -1:
        yield from api.close(fd)
    out["tightener"] = yield from api.load_word(slot)
    return 0


def _uc_exiter(api, arg):
    """Exits immediately: races the others' copy-outs against departure."""
    base, index = arg
    yield from api.store_word(base + index * PAGE_SIZE, 400 + index)
    return 0


def _uc_faulter(api, arg):
    """Rescans constant shared pages while the others detach around it."""
    out, base = arg
    total = 0
    for _round in range(3):
        for page in range(_UC_SLOTS, _UC_SLOTS + _UC_CONST):
            total += yield from api.load_word(base + page * PAGE_SIZE)
        yield from api.yield_cpu()
    out["faulter"] = total
    return 0


def _unshare_churn_main(api, out):
    base = yield from api.mmap((_UC_SLOTS + _UC_CONST) * PAGE_SIZE)
    if base == -1:
        return 1
    for page in range(_UC_CONST):
        yield from api.store_word(
            base + (_UC_SLOTS + page) * PAGE_SIZE, 7 + page
        )
    started = 0
    for entry, arg in (
        (_uc_lifecycle, (out, base, 0)),
        (_uc_lifecycle, (out, base, 1)),
        (_uc_tightener, (out, base, 2)),
        (_uc_exiter, (base, 3)),
        (_uc_faulter, (out, base)),
    ):
        pid = yield from api.sproc(entry, PR_SALL, arg)
        if pid != -1:
            started += 1
    for _ in range(started):
        yield from api.wait()
    # The shared side of every slot: lifecycle members' last *shared*
    # store wins (their 900+i store hit a private clone).
    out["shared-0"] = yield from api.load_word(base)
    out["shared-1"] = yield from api.load_word(base + PAGE_SIZE)
    out["shared-2"] = yield from api.load_word(base + 2 * PAGE_SIZE)
    out["exiter"] = yield from api.load_word(base + 3 * PAGE_SIZE)
    return 0


# ----------------------------------------------------------------------
# racy-counter: a deliberate lost-update race (test fixture)

_RC_PROCS = 4
_RC_ROUNDS = 10


def _racy_member(api, base):
    for _round in range(_RC_ROUNDS):
        value = yield from api.load_word(base)
        yield from api.compute(120)
        yield from api.store_word(base, value + 1)
        yield from api.yield_cpu()
    return 0


def _racy_counter_main(api, out):
    base = yield from api.mmap(PAGE_SIZE)
    if base == -1:
        return 1
    started = 0
    for _ in range(_RC_PROCS):
        pid = yield from api.sproc(_racy_member, PR_SALL, base)
        if pid != -1:
            started += 1
    for _ in range(started):
        yield from api.wait()
    out["count"] = yield from api.load_word(base)
    return 0


# ----------------------------------------------------------------------

SCENARIOS: Dict[str, Scenario] = {
    scenario.name: scenario
    for scenario in (
        Scenario(
            "fault-storm", _fault_storm_main, 4,
            "%d members scan one shared region under the shared read lock"
            % _FS_PROCS,
        ),
        Scenario(
            "fd-churn", _fd_churn_main, 2,
            "pipe traffic plus open/dup/close churn through s_fupdsema",
        ),
        Scenario(
            "mmap-churn", _mmap_churn_main, 4,
            "members mmap/munmap private windows while a faulter rescans",
        ),
        Scenario(
            "unshare-churn", _unshare_churn_main, 4,
            "members race transactional unshare against faults, fd churn "
            "and member exit",
        ),
        Scenario(
            "racy-counter", _racy_counter_main, 2,
            "deliberate lost-update race; final count is schedule-dependent",
        ),
    )
}

#: the scenarios ``python -m repro.check`` explores by default —
#: everything whose final state must be schedule independent
DEFAULT_SCENARIOS = ("fault-storm", "fd-churn", "mmap-churn", "unshare-churn")
