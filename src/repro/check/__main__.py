"""``python -m repro.check`` — the race-check CLI CI runs.

Two modes:

* **explore** (default): every scenario in ``--scenarios`` runs once
  unperturbed and once per seed in ``0..N-1``; exit 1 on any error,
  invariant finding, lockdep violation or final-state divergence.

      python -m repro.check --seeds 8
      python -m repro.check --seeds 200 --report report.json

* **reproduce** (``--seed``): one run of one scenario under one seed —
  exactly the command a failure report prints.

      python -m repro.check --scenario racy-counter --seed 3 --features place
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional

from repro.check.explore import explore, run_once
from repro.check.scenarios import DEFAULT_SCENARIOS, SCENARIOS
from repro.sim.engine import PERTURB_FEATURES


def _parse_args(argv) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        prog="python -m repro.check",
        description="schedule explorer / invariant checker",
    )
    parser.add_argument(
        "--seeds", type=int, default=8, metavar="N",
        help="perturbation seeds per scenario (default 8)",
    )
    parser.add_argument(
        "--scenarios", default=",".join(DEFAULT_SCENARIOS), metavar="A,B",
        help="comma-separated scenario names (default: %s)"
        % ",".join(DEFAULT_SCENARIOS),
    )
    parser.add_argument(
        "--scenario", default=None, metavar="NAME",
        help="single scenario for --seed reproduction mode",
    )
    parser.add_argument(
        "--seed", type=int, default=None, metavar="S",
        help="reproduce one run under this seed and exit",
    )
    parser.add_argument(
        "--features", default=None, metavar="F,G",
        help="perturbation features for --seed mode (default: all of %s)"
        % ",".join(sorted(PERTURB_FEATURES)),
    )
    parser.add_argument(
        "--no-shrink", action="store_true",
        help="skip minimizing the feature set of failures",
    )
    parser.add_argument(
        "--report", default=None, metavar="PATH",
        help="write a JSON report here",
    )
    parser.add_argument(
        "--list", action="store_true", help="list scenarios and exit",
    )
    return parser.parse_args(argv)


def _resolve(names) -> Optional[str]:
    """Returns an error message when a scenario name is unknown."""
    unknown = [name for name in names if name not in SCENARIOS]
    if unknown:
        return "unknown scenario(s): %s (have: %s)" % (
            ", ".join(unknown), ", ".join(sorted(SCENARIOS)))
    return None


def _reproduce(args) -> int:
    name = args.scenario or args.scenarios.split(",")[0]
    error = _resolve([name])
    if error:
        print(error, file=sys.stderr)
        return 2
    features = (
        frozenset(args.features.split(",")) if args.features else PERTURB_FEATURES
    )
    result = run_once(SCENARIOS[name], seed=args.seed, features=features)
    print(
        "%s seed=%d features=%s"
        % (name, args.seed, ",".join(sorted(features)))
    )
    if result.error is not None:
        print("error (%s):" % result.error_kind)
        for line in result.error.splitlines():
            print("  " + line)
    else:
        print("completed in %d cycles" % result.cycles)
        print(json.dumps(result.fingerprint, indent=2, sort_keys=True))
    if args.report:
        with open(args.report, "w") as fh:
            json.dump(result.to_dict(), fh, indent=2, sort_keys=True)
    return 0 if result.ok else 1


def main(argv=None) -> int:
    args = _parse_args(argv)
    if args.list:
        for name in sorted(SCENARIOS):
            scenario = SCENARIOS[name]
            default = " (default)" if name in DEFAULT_SCENARIOS else ""
            print("%-14s %s%s" % (name, scenario.description, default))
        return 0
    if args.seed is not None:
        return _reproduce(args)
    names = [name for name in args.scenarios.split(",") if name]
    error = _resolve(names)
    if error:
        print(error, file=sys.stderr)
        return 2
    report = explore(
        names, nseeds=args.seeds, shrink_failures=not args.no_shrink
    )
    print(report.render())
    if args.report:
        with open(args.report, "w") as fh:
            json.dump(report.to_dict(), fh, indent=2, sort_keys=True)
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())
