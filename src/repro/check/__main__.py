"""``python -m repro.check`` — the race-check / fault-injection CLI.

Modes (first positional argument, default ``explore``):

* **explore**: every scenario in ``--scenarios`` runs once unperturbed
  and once per seed in ``0..N-1``; exit 1 on any error, invariant
  finding, lockdep violation or final-state divergence.

      python -m repro.check --seeds 8
      python -m repro.check --seeds 200 --report report.json

  With ``--seed`` it reproduces one run of one scenario — exactly the
  command a failure report prints:

      python -m repro.check --scenario racy-counter --seed 3 --features place

* **inject**: the fault-injection sweep — record which failpoints each
  scenario reaches, then arm them one at a time and audit for leaks.

      python -m repro.check inject
      python -m repro.check inject --deep --report inject-report.json

  With ``--site``/``--policy`` it runs one injection — again exactly
  what a failure report prints:

      python -m repro.check inject --scenario fd-churn --site fd.alloc --policy nth:3
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional

from repro.check.explore import explore, run_once
from repro.check.inject import SWEEP_SCENARIOS, run_injected, sweep
from repro.check.scenarios import DEFAULT_SCENARIOS, SCENARIOS
from repro.inject import SITES
from repro.sim.engine import PERTURB_FEATURES


def _parse_args(argv) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        prog="python -m repro.check",
        description="schedule explorer / invariant checker / fault injector",
    )
    parser.add_argument(
        "mode", nargs="?", default="explore", choices=["explore", "inject"],
        help="explore schedules (default) or sweep fault-injection sites",
    )
    parser.add_argument(
        "--seeds", type=int, default=8, metavar="N",
        help="perturbation seeds per scenario (default 8, explore mode)",
    )
    parser.add_argument(
        "--scenarios", default=None, metavar="A,B",
        help="comma-separated scenario names (default: %s for explore, "
        "%s for inject)"
        % (",".join(DEFAULT_SCENARIOS), ",".join(SWEEP_SCENARIOS)),
    )
    parser.add_argument(
        "--scenario", default=None, metavar="NAME",
        help="single scenario for --seed / --site reproduction modes",
    )
    parser.add_argument(
        "--seed", type=int, default=None, metavar="S",
        help="reproduce one explore run under this seed and exit",
    )
    parser.add_argument(
        "--features", default=None, metavar="F,G",
        help="perturbation features for --seed mode (default: all of %s)"
        % ",".join(sorted(PERTURB_FEATURES)),
    )
    parser.add_argument(
        "--site", default=None, metavar="SITE",
        help="inject mode: reproduce one injection at this failpoint",
    )
    parser.add_argument(
        "--policy", default="nth:1", metavar="P",
        help="inject mode: failpoint policy for --site (default nth:1)",
    )
    parser.add_argument(
        "--sites", default=None, metavar="A,B",
        help="inject mode: restrict the sweep to these sites",
    )
    parser.add_argument(
        "--deep", action="store_true",
        help="inject mode: also arm midpoint hit indices (nightly matrix)",
    )
    parser.add_argument(
        "--no-shrink", action="store_true",
        help="skip minimizing failures (features / hit indices)",
    )
    parser.add_argument(
        "--report", default=None, metavar="PATH",
        help="write a JSON report here",
    )
    parser.add_argument(
        "--list", action="store_true",
        help="list scenarios (and inject sites) and exit",
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="arm the host self-profiler; print the per-phase host-time "
        "breakdown after the run",
    )
    return parser.parse_args(argv)


def _resolve(names, universe=SCENARIOS, what="scenario") -> Optional[str]:
    """Returns an error message when a name is unknown."""
    unknown = [name for name in names if name not in universe]
    if unknown:
        return "unknown %s(s): %s (have: %s)" % (
            what, ", ".join(unknown), ", ".join(sorted(universe)))
    return None


def _reproduce(args) -> int:
    name = args.scenario or (args.scenarios or ",".join(DEFAULT_SCENARIOS)).split(",")[0]
    error = _resolve([name])
    if error:
        print(error, file=sys.stderr)
        return 2
    features = (
        frozenset(args.features.split(",")) if args.features else PERTURB_FEATURES
    )
    result = run_once(SCENARIOS[name], seed=args.seed, features=features)
    print(
        "%s seed=%d features=%s"
        % (name, args.seed, ",".join(sorted(features)))
    )
    if result.error is not None:
        print("error (%s):" % result.error_kind)
        for line in result.error.splitlines():
            print("  " + line)
    else:
        print("completed in %d cycles" % result.cycles)
        print(json.dumps(result.fingerprint, indent=2, sort_keys=True))
    if args.report:
        with open(args.report, "w") as fh:
            json.dump(result.to_dict(), fh, indent=2, sort_keys=True)
    return 0 if result.ok else 1


def _inject_one(args) -> int:
    name = args.scenario or (args.scenarios or ",".join(SWEEP_SCENARIOS)).split(",")[0]
    error = _resolve([name]) or _resolve([args.site], SITES, "site")
    if error:
        print(error, file=sys.stderr)
        return 2
    result = run_injected(SCENARIOS[name], args.site, args.policy)
    print(
        "%s site=%s policy=%s -> %s (fired %d, %d cycles)"
        % (name, args.site, args.policy, result.status, result.fired,
           result.cycles)
    )
    for line in result.detail.splitlines():
        print("  | " + line)
    if args.report:
        with open(args.report, "w") as fh:
            json.dump(result.to_dict(), fh, indent=2, sort_keys=True)
    return 0 if result.ok else 1


def _inject_sweep(args) -> int:
    names = [name for name in (args.scenarios or "").split(",") if name] or None
    error = _resolve(names or [])
    if error:
        print(error, file=sys.stderr)
        return 2
    sites = [site for site in (args.sites or "").split(",") if site] or None
    error = _resolve(sites or [], SITES, "site")
    if error:
        print(error, file=sys.stderr)
        return 2
    report = sweep(
        names, site_names=sites, deep=args.deep,
        shrink_failures=not args.no_shrink,
    )
    print(report.render())
    if args.report:
        with open(args.report, "w") as fh:
            json.dump(report.to_dict(), fh, indent=2, sort_keys=True)
    return 0 if report.ok else 1


def main(argv=None) -> int:
    args = _parse_args(argv)
    if args.profile:
        from repro.obs import profile as profile_mod

        profile_mod.begin_session()
        try:
            status = _dispatch(args)
        finally:
            session = profile_mod.end_session()
        if session is not None:
            print()
            print(session.render())
        return status
    return _dispatch(args)


def _dispatch(args) -> int:
    if args.list:
        for name in sorted(SCENARIOS):
            scenario = SCENARIOS[name]
            default = " (default)" if name in DEFAULT_SCENARIOS else ""
            print("%-14s %s%s" % (name, scenario.description, default))
        if args.mode == "inject":
            print()
            for site in sorted(SITES):
                print("%-22s %s" % (site, SITES[site]))
        return 0
    if args.mode == "inject":
        if args.site is not None:
            return _inject_one(args)
        return _inject_sweep(args)
    if args.seed is not None:
        return _reproduce(args)
    names = [
        name
        for name in (args.scenarios or ",".join(DEFAULT_SCENARIOS)).split(",")
        if name
    ]
    error = _resolve(names)
    if error:
        print(error, file=sys.stderr)
        return 2
    report = explore(
        names, nseeds=args.seeds, shrink_failures=not args.no_shrink
    )
    print(report.render())
    if args.report:
        with open(args.report, "w") as fh:
            json.dump(report.to_dict(), fh, indent=2, sort_keys=True)
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())
