"""Cross-structure state invariants for a simulated system.

Each checker inspects one relationship the kernel maintains across
several locks and returns a list of human-readable findings (empty when
the invariant holds).  They never mutate state and never charge cycles,
so tests and the schedule explorer can call them after — or even during
— a run.

The three relationships, straight from the paper:

* **shaddr refcounts** (section 6.1): ``s_refcnt`` counts the member
  list, every member points back at the block, and nobody dead lingers
  on the list.
* **pregion vs TLB residency** (section 6.2): every cached translation
  for a live address space must agree with what a page-table walk finds
  *now* — a stale entry after an munmap/shrink means a missed shootdown.
* **fd refcounts** (section 6.3): an open file's reference count equals
  the descriptor slots naming it across all live processes plus the one
  reference each share group's ``s_ofile`` copy holds.
* **shmask consistency** (the dynamic-unshare lifecycle): a process's
  share mask, its sync flags, and its VM attachment must agree — a
  cleared ``PR_SADDR`` means a private address space, a set one means
  the group's, and a pending sync flag is only legal while the matching
  mask bit is still set.
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.kernel.flags import ALL_SYNC
from repro.mem.frames import PAGE_SHIFT
from repro.share.mask import NONVM_SYNC_BITS, PR_SADDR


def _live_procs(sim) -> List:
    return [proc for proc in sim.kernel.proc_table.all_procs() if proc.alive()]


def _live_blocks(sim) -> List:
    """Distinct shared address blocks reachable from live processes."""
    blocks = []
    seen = set()
    for proc in _live_procs(sim):
        block = proc.shaddr
        if block is not None and id(block) not in seen:
            seen.add(id(block))
            blocks.append(block)
    return blocks


# ----------------------------------------------------------------------
# shaddr: reference count vs member list

def check_shaddr_refcounts(sim) -> List[str]:
    """``s_refcnt`` == member count; membership is mutual and alive."""
    findings = []
    live = _live_procs(sim)
    for block in _live_blocks(sim):
        members = block.members()
        if block.s_refcnt != len(members):
            findings.append(
                "shaddr sgid=%d: s_refcnt=%d but %d members on s_plink"
                % (block.sgid, block.s_refcnt, len(members))
            )
        for member in members:
            if member.shaddr is not block:
                findings.append(
                    "shaddr sgid=%d: member pid %d points at a different block"
                    % (block.sgid, member.pid)
                )
            if not member.alive():
                findings.append(
                    "shaddr sgid=%d: member pid %d is %s (dead member on list)"
                    % (block.sgid, member.pid, member.state.value)
                )
    for proc in live:
        if proc.shaddr is not None and proc not in proc.shaddr.members():
            findings.append(
                "pid %d has shaddr sgid=%d but is not on its member list"
                % (proc.pid, proc.shaddr.sgid)
            )
    return findings


# ----------------------------------------------------------------------
# pregion lists vs TLB residency

def check_pregion_tlb(sim) -> List[str]:
    """Every TLB entry for a live ASID must match a current translation.

    Share-group members run under one ASID but each keeps a private
    PRDA pregion at the same virtual address, so an entry is valid if
    *any* live address space with that ASID resolves the page to a
    resident frame with the cached pfn.  A writable entry additionally
    requires the page to be writable now (not copy-on-write) in the
    space that matched.  Entries for retired ASIDs are skipped: ASIDs
    are never recycled, so they can only belong to exited processes.
    """
    findings = []
    spaces: Dict[int, List] = {}
    for proc in _live_procs(sim):
        spaces.setdefault(proc.vm.asid, []).append(proc.vm)
    for cpu in sim.machine.cpus:
        for entry in cpu.tlb.entries():
            vms = spaces.get(entry.asid)
            if vms is None:
                continue
            vaddr = entry.vpn << PAGE_SHIFT
            matched = False
            for vm in vms:
                pregion, _shared = vm.find(vaddr)
                if pregion is None:
                    continue
                index = pregion.page_index(vaddr)
                frame = pregion.region.pages[index]
                if frame is None or frame.pfn != entry.pfn:
                    continue
                if entry.writable and not vm.writable_now(pregion, index):
                    continue
                matched = True
                break
            if not matched:
                findings.append(
                    "cpu%d TLB: stale entry asid=%d vpn=%#x pfn=%d%s "
                    "(no live space maps it)"
                    % (cpu.idx, entry.asid, entry.vpn, entry.pfn,
                       " rw" if entry.writable else "")
                )
    return findings


# ----------------------------------------------------------------------
# TLB per-ASID index coherence

def check_tlb_asid_index(sim) -> List[str]:
    """Every CPU's per-ASID TLB index mirrors its primary entry map.

    Trivially clean under ``vm_index="linear"`` (no index exists).
    """
    findings = []
    for cpu in sim.machine.cpus:
        findings.extend(
            "cpu%d TLB: %s" % (cpu.idx, error)
            for error in cpu.tlb.index_errors()
        )
    return findings


# ----------------------------------------------------------------------
# fd table refcounts

def check_fd_refcounts(sim) -> List[str]:
    """Open-file refcounts equal descriptor slots plus shaddr copies."""
    findings = []
    expected: Dict[int, int] = {}
    files: Dict[int, Any] = {}

    def note(file) -> None:
        if file is not None:
            files[id(file)] = file
            expected[id(file)] = expected.get(id(file), 0) + 1

    for proc in _live_procs(sim):
        for slot in proc.uarea.fdtable.slots:
            note(slot)
    for block in _live_blocks(sim):
        for slot in block.s_ofile:
            note(slot)
    for key, file in sorted(files.items(), key=lambda item: item[0]):
        want = expected[key]
        if file.refcount != want:
            findings.append(
                "file %r: refcount=%d but %d references reachable "
                "(fd slots + shaddr copies)" % (file, file.refcount, want)
            )
    return findings


# ----------------------------------------------------------------------
# share mask vs actual resource attachment

def check_shmask_consistency(sim) -> List[str]:
    """A proc's share mask must agree with what it actually shares.

    Outside a group the mask, the sync flags, and the VM attachment are
    all clear.  Inside one, a set ``PR_SADDR`` means the proc runs on
    the group's shared VM and a cleared one means a private space (a
    completed detach); a pending sync flag without its mask bit would
    make ``sync_on_entry`` overwrite a privatized resource.  A member
    with mask 0 is *not* flagged: ``sproc`` deliberately enrolls even
    mask-0 children in the group.
    """
    findings = []
    for proc in _live_procs(sim):
        block = proc.shaddr
        mask = proc.p_shmask
        sync = proc.p_flag & ALL_SYNC
        if block is None:
            if mask != 0:
                findings.append(
                    "pid %d: share mask %#x but no share group" % (proc.pid, mask)
                )
            if sync != 0:
                findings.append(
                    "pid %d: sync flags %#x but no share group" % (proc.pid, sync)
                )
            if proc.vm.shared is not None:
                findings.append(
                    "pid %d: attached to a shared VM but no share group"
                    % proc.pid
                )
            continue
        if mask & PR_SADDR:
            if proc.vm.shared is not block.shared_vm:
                findings.append(
                    "pid %d: PR_SADDR set but not running on the group's "
                    "shared VM" % proc.pid
                )
        elif proc.vm.shared is not None:
            findings.append(
                "pid %d: PR_SADDR clear but still attached to a shared VM"
                % proc.pid
            )
        for pr_bit, sync_bit in sorted(NONVM_SYNC_BITS.items()):
            if sync & sync_bit and not mask & pr_bit:
                findings.append(
                    "pid %d: sync flag %#x pending for unshared resource "
                    "bit %#x" % (proc.pid, sync_bit, pr_bit)
                )
    return findings


# ----------------------------------------------------------------------

#: name -> checker, the order reports list them in
CHECKERS = {
    "shaddr-refcounts": check_shaddr_refcounts,
    "pregion-tlb": check_pregion_tlb,
    "tlb-asid-index": check_tlb_asid_index,
    "fd-refcounts": check_fd_refcounts,
    "shmask-consistency": check_shmask_consistency,
}


def run_invariants(sim) -> List[str]:
    """Run every checker; returns all findings, prefixed by checker name."""
    findings = []
    for name, checker in CHECKERS.items():
        findings.extend("%s: %s" % (name, finding) for finding in checker(sim))
    return findings


# ----------------------------------------------------------------------
# resource leak audit (fault-injection support)

def snapshot_resources(sim) -> Dict[str, int]:
    """Measure the resources a clean run must return to their baseline.

    SysV shm segments keep their frames until ``shmctl_rmid``, so they
    are counted separately and subtracted from the frame balance.
    """
    shm_frames = 0
    for segment in sim.kernel.shm._by_id.values():
        if not getattr(segment, "removed", False):
            shm_frames += segment.region.resident_pages()
    return {
        "frames": sim.machine.frames.allocated,
        "shm_frames": shm_frames,
        "group_balance": (
            sim.kernel.stats["groups_created"] - sim.kernel.stats["groups_freed"]
        ),
        "live_procs": sim.kernel.live_procs,
    }


def audit_leaks(sim, baseline=None) -> List[str]:
    """Post-run leak audit: invariants plus resource-balance checks.

    ``baseline`` is a :func:`snapshot_resources` taken before the
    workload ran (defaults to an empty system).  Meant to be called
    after every process has exited — anything still held is a leak in
    some error path.
    """
    if baseline is None:
        baseline = {"frames": 0, "shm_frames": 0, "group_balance": 0,
                    "live_procs": 0}
    findings = run_invariants(sim)
    now = snapshot_resources(sim)
    frame_delta = (now["frames"] - now["shm_frames"]) - (
        baseline["frames"] - baseline["shm_frames"]
    )
    if frame_delta != 0:
        findings.append(
            "frames: %+d physical frames leaked (now %d, shm holds %d)"
            % (frame_delta, now["frames"], now["shm_frames"])
        )
    if now["group_balance"] != baseline["group_balance"]:
        findings.append(
            "share-groups: %d created but only %d freed"
            % (sim.kernel.stats["groups_created"], sim.kernel.stats["groups_freed"])
        )
    if now["live_procs"] != baseline["live_procs"]:
        findings.append(
            "procs: %d still counted live after the run" % now["live_procs"]
        )
    for (asid, vaddr), channel in sorted(sim.kernel._usync.items()):
        if channel.waiters != 0 or channel.sema.nwaiters != 0:
            findings.append(
                "usync @%#x asid=%d: %d banked waiters, %d sleepers left"
                % (vaddr, asid, channel.waiters, channel.sema.nwaiters)
            )
    for semset in sim.kernel.sem._by_id.values():
        if semset.waiters != 0 or semset.change.nwaiters != 0:
            findings.append(
                "semset id=%d: %d banked waiters, %d sleepers left"
                % (semset.semid, semset.waiters, semset.change.nwaiters)
            )
    for queue in sim.kernel.msg._by_id.values():
        if (queue.send_waiters or queue.recv_waiters
                or queue.send_wait.nwaiters or queue.recv_wait.nwaiters):
            findings.append(
                "msgq id=%d: snd=%d/%d rcv=%d/%d waiters left"
                % (queue.msqid, queue.send_waiters, queue.send_wait.nwaiters,
                   queue.recv_waiters, queue.recv_wait.nwaiters)
            )
    return findings
