"""The schedule explorer: seeded perturbation with shrinking.

One deterministic run proves nothing about a protocol — the bug lives
in the interleaving the default schedule never produces.  The explorer
re-runs a scenario under N *seeded* scheduler perturbations (randomized
wakeup order, enqueue placement, idle-CPU choice and run-queue
tie-breaks — see :data:`repro.sim.engine.PERTURB_FEATURES`) and holds
three things invariant across every run:

* the run completes — no deadlock, no lost wakeup, no lockdep violation;
* the invariant pack (:mod:`repro.check.invariants`) finds nothing;
* the final-state fingerprint (the guest's ``out`` dict, live frame
  count, share-group create/free balance) is identical to the
  unperturbed baseline.  Cycle counts are *excluded* — wall-clock
  legitimately depends on the schedule.

Every failure is reproducible: the report carries the seed and the
perturbation feature set, and :func:`shrink` greedily drops features to
the minimal subset that still fails, so the repro is as small as the
bug allows.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

from repro.check.invariants import run_invariants
from repro.check.scenarios import DEFAULT_SCENARIOS, SCENARIOS, Scenario
from repro.errors import SimulationError
from repro.obs.lockdep import LockOrderViolation
from repro.sim.engine import PERTURB_FEATURES


def _canonical(value):
    """``out`` dicts come back with tuple keys/values; make them JSON-safe."""
    if isinstance(value, dict):
        return {str(key): _canonical(value[key]) for key in sorted(value, key=str)}
    if isinstance(value, (list, tuple)):
        return [_canonical(item) for item in value]
    if isinstance(value, bytes):
        return value.decode("latin-1")
    return value


class RunResult:
    """One scenario execution under one (seed, features) choice."""

    def __init__(
        self,
        scenario: str,
        seed: Optional[int],
        features: Optional[frozenset],
        fingerprint: Optional[dict],
        error: Optional[str],
        error_kind: Optional[str],
        cycles: int,
    ):
        self.scenario = scenario
        self.seed = seed
        self.features = features
        self.fingerprint = fingerprint
        self.error = error
        self.error_kind = error_kind
        self.cycles = cycles

    @property
    def ok(self) -> bool:
        return self.error is None and not (
            self.fingerprint and self.fingerprint.get("invariants")
        )

    def to_dict(self) -> dict:
        return {
            "scenario": self.scenario,
            "seed": self.seed,
            "features": sorted(self.features) if self.features is not None else None,
            "ok": self.ok,
            "fingerprint": self.fingerprint,
            "error": self.error,
            "error_kind": self.error_kind,
            "cycles": self.cycles,
        }


def run_once(
    scenario: Scenario,
    seed: Optional[int] = None,
    features: Optional[Iterable[str]] = None,
    lockdep: bool = True,
) -> RunResult:
    """Run a scenario once; never raises, classifies what happened."""
    feature_set = frozenset(features) if features is not None else None
    error = error_kind = None
    fingerprint = None
    cycles = 0
    try:
        out, sim = scenario.run(seed=seed, features=features, lockdep=lockdep)
    except LockOrderViolation as exc:
        error, error_kind = str(exc), "lockdep"
    except SimulationError as exc:  # includes DeadlockError (lost wakeups)
        error, error_kind = str(exc), type(exc).__name__
    else:
        cycles = sim.engine.now
        stats = sim.kernel.stats
        fingerprint = {
            "out": _canonical(out),
            "frames": sim.machine.frames.allocated,
            "group_balance": stats["groups_created"] - stats["groups_freed"],
            "invariants": run_invariants(sim),
        }
        if fingerprint["invariants"]:
            error_kind = "invariant"
            error = "; ".join(fingerprint["invariants"])
    return RunResult(
        scenario.name, seed, feature_set, fingerprint, error, error_kind, cycles
    )


class Failure:
    """A reproducible explorer finding."""

    def __init__(
        self,
        scenario: str,
        seed: int,
        features: frozenset,
        kind: str,
        detail: str,
        minimal_features: Optional[frozenset] = None,
    ):
        self.scenario = scenario
        self.seed = seed
        self.features = features
        self.kind = kind
        self.detail = detail
        self.minimal_features = minimal_features

    def repro_command(self) -> str:
        features = self.minimal_features or self.features
        return (
            "python -m repro.check --scenario %s --seed %d --features %s"
            % (self.scenario, self.seed, ",".join(sorted(features)))
        )

    def to_dict(self) -> dict:
        return {
            "scenario": self.scenario,
            "seed": self.seed,
            "features": sorted(self.features),
            "minimal_features": sorted(self.minimal_features)
            if self.minimal_features is not None else None,
            "kind": self.kind,
            "detail": self.detail,
            "repro": self.repro_command(),
        }

    def render(self) -> str:
        lines = [
            "FAIL %s seed=%d kind=%s" % (self.scenario, self.seed, self.kind),
            "  features: %s" % ",".join(sorted(self.features)),
        ]
        if self.minimal_features is not None:
            lines.append(
                "  minimal:  %s" % (",".join(sorted(self.minimal_features)) or "(none)")
            )
        lines.append("  repro:    %s" % self.repro_command())
        for detail_line in self.detail.splitlines():
            lines.append("  | " + detail_line)
        return "\n".join(lines)


def _judge(
    scenario: Scenario,
    seed: int,
    features: frozenset,
    baseline: RunResult,
) -> Tuple[bool, str, str]:
    """Run once and compare to baseline: (failed, kind, detail)."""
    result = run_once(scenario, seed=seed, features=features)
    if result.error is not None:
        return True, result.error_kind or "error", result.error
    if baseline.fingerprint is not None and result.fingerprint != baseline.fingerprint:
        return True, "divergence", (
            "final state differs from unperturbed baseline\n"
            "baseline:  %r\nperturbed: %r"
            % (baseline.fingerprint, result.fingerprint)
        )
    return False, "", ""


def shrink(
    scenario: Scenario,
    seed: int,
    baseline: RunResult,
    features: frozenset = PERTURB_FEATURES,
) -> frozenset:
    """Greedily drop perturbation features while the failure persists."""
    current = frozenset(features)
    for feature in sorted(features):
        if feature not in current:
            continue
        trial = current - {feature}
        failed, _kind, _detail = _judge(scenario, seed, trial, baseline)
        if failed:
            current = trial
    return current


class ExploreReport:
    """Everything one explorer invocation learned."""

    def __init__(self, nseeds: int):
        self.nseeds = nseeds
        self.scenarios: List[str] = []
        self.runs = 0
        self.failures: List[Failure] = []
        self.baseline_errors: List[Tuple[str, str]] = []

    @property
    def ok(self) -> bool:
        return not self.failures and not self.baseline_errors

    def to_dict(self) -> dict:
        return {
            "nseeds": self.nseeds,
            "scenarios": self.scenarios,
            "runs": self.runs,
            "ok": self.ok,
            "baseline_errors": [
                {"scenario": name, "detail": detail}
                for name, detail in self.baseline_errors
            ],
            "failures": [failure.to_dict() for failure in self.failures],
        }

    def render(self) -> str:
        lines = [
            "schedule explorer: %d scenario(s) x %d seed(s), %d runs"
            % (len(self.scenarios), self.nseeds, self.runs)
        ]
        for name, detail in self.baseline_errors:
            lines.append("BASELINE FAIL %s" % name)
            lines.extend("  | " + line for line in detail.splitlines())
        for failure in self.failures:
            lines.append(failure.render())
        lines.append("result: %s" % ("PASS" if self.ok else "FAIL"))
        return "\n".join(lines)


def explore(
    scenario_names: Optional[Iterable[str]] = None,
    nseeds: int = 8,
    shrink_failures: bool = True,
    max_failures_per_scenario: int = 3,
) -> ExploreReport:
    """Run each scenario unperturbed, then under ``nseeds`` seeds."""
    names = list(scenario_names) if scenario_names else list(DEFAULT_SCENARIOS)
    report = ExploreReport(nseeds)
    report.scenarios = names
    for name in names:
        scenario = SCENARIOS[name]
        baseline = run_once(scenario, seed=None)
        report.runs += 1
        if not baseline.ok:
            detail = baseline.error
            if detail is None and baseline.fingerprint is not None:
                detail = "; ".join(baseline.fingerprint.get("invariants", []))
            report.baseline_errors.append((name, detail or "unknown failure"))
            continue
        failures_here = 0
        for seed in range(nseeds):
            failed, kind, detail = _judge(scenario, seed, PERTURB_FEATURES, baseline)
            report.runs += 1
            if not failed:
                continue
            minimal = None
            if shrink_failures:
                minimal = shrink(scenario, seed, baseline)
            report.failures.append(
                Failure(name, seed, PERTURB_FEATURES, kind, detail, minimal)
            )
            failures_here += 1
            if failures_here >= max_failures_per_scenario:
                break
    return report
