"""Deterministic race and deadlock checking.

The paper's correctness argument (sections 6-7) is all about invariants
that hold *between* the locks: the shared address block's reference
count tracks its member list, every cached TLB translation points at a
frame some live address space still maps, and every open file's
reference count equals the descriptors (plus shaddr copies) that name
it.  This package makes those claims executable, three ways:

* :mod:`repro.check.invariants` — the invariant pack itself, callable on
  any quiescent :class:`~repro.system.System`;
* :mod:`repro.check.explore` — the schedule explorer: re-run a scenario
  under N seeded scheduler perturbations, demand identical final state
  every time, and shrink failures to a minimal perturbation;
* :mod:`repro.check.scenarios` — the workloads the explorer drives
  (share-group fault storms, descriptor churn, mapping churn).

``python -m repro.check --seeds 8`` is the CI entry point.
"""

from repro.check.explore import ExploreReport, RunResult, explore, run_once, shrink
from repro.check.invariants import (
    check_fd_refcounts,
    check_pregion_tlb,
    check_shaddr_refcounts,
    run_invariants,
)
from repro.check.scenarios import DEFAULT_SCENARIOS, SCENARIOS, Scenario

__all__ = [
    "DEFAULT_SCENARIOS",
    "ExploreReport",
    "RunResult",
    "SCENARIOS",
    "Scenario",
    "check_fd_refcounts",
    "check_pregion_tlb",
    "check_shaddr_refcounts",
    "explore",
    "run_invariants",
    "run_once",
    "shrink",
]
