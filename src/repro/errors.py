"""UNIX error numbers and the kernel-internal error exception.

The simulated kernel follows classic System V conventions: a failing
system call returns ``-1`` to the user program and deposits an error
number in the per-process ``errno`` slot.  Because the data segment of a
share group is shared, ``errno`` cannot live in shared data; the paper
(section 5.1) places it in the PRDA, and so do we
(:mod:`repro.runtime.prda`).

Kernel handlers signal failure by raising :class:`SysError`; the syscall
trampoline in :mod:`repro.kernel.kernel` converts the exception into the
``-1``/``errno`` convention before returning to user mode.
"""

from __future__ import annotations


# Classic System V errno values (numbering follows AT&T UNIX).
EPERM = 1  # Operation not permitted
ENOENT = 2  # No such file or directory
ESRCH = 3  # No such process
EINTR = 4  # Interrupted system call
EIO = 5  # I/O error
ENXIO = 6  # No such device or address
E2BIG = 7  # Argument list too long
ENOEXEC = 8  # Exec format error
EBADF = 9  # Bad file descriptor
ECHILD = 10  # No child processes
EAGAIN = 11  # Resource temporarily unavailable
ENOMEM = 12  # Out of memory
EACCES = 13  # Permission denied
EFAULT = 14  # Bad address
ENOTBLK = 15  # Block device required
EBUSY = 16  # Device or resource busy
EEXIST = 17  # File exists
EXDEV = 18  # Cross-device link
ENODEV = 19  # No such device
ENOTDIR = 20  # Not a directory
EISDIR = 21  # Is a directory
EINVAL = 22  # Invalid argument
ENFILE = 23  # File table overflow
EMFILE = 24  # Too many open files
ENOTTY = 25  # Not a typewriter
ETXTBSY = 26  # Text file busy
EFBIG = 27  # File too large
ENOSPC = 28  # No space left on device
ESPIPE = 29  # Illegal seek
EROFS = 30  # Read-only file system
EMLINK = 31  # Too many links
EPIPE = 32  # Broken pipe
EDOM = 33  # Math argument out of domain
ERANGE = 34  # Math result not representable
EDEADLK = 45  # Deadlock would occur
ENAMETOOLONG = 78  # Path name too long
ENOTEMPTY = 93  # Directory not empty
EWOULDBLOCK = EAGAIN
ENOTSOCK = 95  # Socket operation on non-socket
EADDRINUSE = 98  # Address already in use
ECONNREFUSED = 111  # Connection refused
ENOTCONN = 134  # Socket not connected
EIDRM = 36  # Identifier removed (SysV IPC)

_NAMES = {
    value: name
    for name, value in list(globals().items())
    if name.startswith("E") and isinstance(value, int)
}


def errno_name(err: int) -> str:
    """Return the symbolic name for an errno value (``"E??"`` if unknown)."""
    return _NAMES.get(err, "E??(%d)" % err)


class SysError(Exception):
    """Raised by kernel handlers to abort a system call with an errno.

    The syscall trampoline catches this, stores ``errno`` into the calling
    process's PRDA, and returns ``-1`` to the user program.
    """

    def __init__(self, errno: int, message: str = ""):
        self.errno = errno
        super().__init__(message or errno_name(errno))


class SimulationError(RuntimeError):
    """A host-level error in the simulation itself (a bug, not a guest error)."""


class DeadlockError(SimulationError):
    """The event queue drained while runnable work still existed."""
