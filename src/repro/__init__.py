"""repro — a reproduction of "Enhanced Resource Sharing in UNIX"
(J. M. Barton & J. C. Wagner, Winter 1988 USENIX / Computing Systems 1(2)).

The package implements *process share groups* — ``sproc(2)`` with
per-resource share masks and ``prctl(2)`` — on top of a from-scratch
simulated System V.3 multiprocessor kernel: region-model virtual memory,
software-managed TLBs, a run-queue scheduler, an in-memory filesystem,
signals, pipes, System V IPC, local sockets, and a Mach-style threads
baseline.

Quick start::

    from repro import System, PR_SALL

    def worker(api, arg):
        yield from api.compute(10_000)
        return 0

    def main(api, arg):
        for _ in range(4):
            yield from api.sproc(worker, PR_SALL)
        for _ in range(4):
            yield from api.wait()
        return 0

    sim = System(ncpus=4)
    sim.spawn(main)
    sim.run()
"""

from repro.errors import DeadlockError, SimulationError, SysError, errno_name
from repro.fs.file import (
    O_APPEND,
    O_CREAT,
    O_EXCL,
    O_RDONLY,
    O_RDWR,
    O_TRUNC,
    O_WRONLY,
    SEEK_CUR,
    SEEK_END,
    SEEK_SET,
)
from repro.ipc.sysv_shm import IPC_CREAT, IPC_EXCL, IPC_PRIVATE
from repro.kernel.kernel import Kernel, ProgramImage
from repro.kernel.proccalls import status_code, status_exited, status_signal
from repro.kernel.signals import (
    SIG_DFL,
    SIG_IGN,
    SIGCHLD,
    SIGHUP,
    SIGINT,
    SIGKILL,
    SIGPIPE,
    SIGSEGV,
    SIGTERM,
    SIGUSR1,
    SIGUSR2,
)
from repro.kernel.syscalls import UserAPI
from repro.mem.layout import PRDA_BASE
from repro.share.mask import (
    PR_FDS,
    PR_SADDR,
    PR_SALL,
    PR_SDIR,
    PR_SFDS,
    PR_SID,
    PR_SULIMIT,
    PR_SUMASK,
)
from repro.share.prctl import (
    PR_GETGANG,
    PR_GETNSHARE,
    PR_GETSHMASK,
    PR_GETSTACKSIZE,
    PR_MAXPPROCS,
    PR_MAXPROCS,
    PR_SETGANG,
    PR_SETSHMASK,
    PR_SETSTACKSIZE,
    PR_UNSHARE,
)
from repro.sim.costs import CostModel, default_costs
from repro.system import System

__version__ = "1.0.0"

__all__ = [
    "CostModel",
    "DeadlockError",
    "IPC_CREAT",
    "IPC_EXCL",
    "IPC_PRIVATE",
    "Kernel",
    "O_APPEND",
    "O_CREAT",
    "O_EXCL",
    "O_RDONLY",
    "O_RDWR",
    "O_TRUNC",
    "O_WRONLY",
    "PRDA_BASE",
    "PR_FDS",
    "PR_GETGANG",
    "PR_GETNSHARE",
    "PR_GETSHMASK",
    "PR_GETSTACKSIZE",
    "PR_MAXPPROCS",
    "PR_MAXPROCS",
    "PR_SADDR",
    "PR_SALL",
    "PR_SDIR",
    "PR_SETGANG",
    "PR_SETSHMASK",
    "PR_SETSTACKSIZE",
    "PR_SFDS",
    "PR_SID",
    "PR_SULIMIT",
    "PR_SUMASK",
    "PR_UNSHARE",
    "ProgramImage",
    "SEEK_CUR",
    "SEEK_END",
    "SEEK_SET",
    "SIGCHLD",
    "SIGHUP",
    "SIGINT",
    "SIGKILL",
    "SIGPIPE",
    "SIGSEGV",
    "SIGTERM",
    "SIGUSR1",
    "SIGUSR2",
    "SIG_DFL",
    "SIG_IGN",
    "SimulationError",
    "SysError",
    "System",
    "UserAPI",
    "default_costs",
    "errno_name",
    "status_code",
    "status_exited",
    "status_signal",
]
