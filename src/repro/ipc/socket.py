"""Local stream sockets with descriptor passing.

This models the Berkeley path the paper contrasts against: a queueing and
data-copying interface with per-transfer socket-layer bookkeeping (mbuf
management and the like, folded into ``socket_op``).  Descriptor passing
(``sendfd``/``recvfd``) implements the paper's introduction example — a
network server performing security checks and handing an open descriptor
to a waiting child — so experiment E10 can compare it directly against
the share group's automatic descriptor sharing.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Optional

from repro.errors import (
    EADDRINUSE,
    ECONNREFUSED,
    EINTR,
    EINVAL,
    ENOTCONN,
    EPIPE,
    SysError,
)
from repro.sync.semaphore import Semaphore

#: per-direction buffer capacity
SOCK_BUF = 8192


class Socket:
    """One endpoint of a (possibly not-yet-connected) stream socket."""

    def __init__(self, machine, waker):
        self.machine = machine
        self.waker = waker
        self.peer: Optional["Socket"] = None
        self.bound_name: Optional[str] = None
        self.listening = False
        self.backlog: Deque["Socket"] = deque()
        self.backlog_max = 0
        self.closed = False

        # receive side state (peer pushes into these)
        self.rbuf = bytearray()
        self.rfds: Deque = deque()  #: passed descriptors awaiting recvfd
        self.read_wait = Semaphore(machine, waker, 0, "sock.read")
        self.write_wait = Semaphore(machine, waker, 0, "sock.write")
        self.accept_wait = Semaphore(machine, waker, 0, "sock.accept")
        # Banked waiter counts (paid out with v()) close the window
        # between a blocker's buffer check and its sleep; see fs/pipe.py.
        self.read_waiters = 0
        self.write_waiters = 0
        self.bytes_moved = 0

    def _wake_readers(self) -> None:
        for _ in range(self.read_waiters):
            self.read_wait.v()
        self.read_waiters = 0

    def _wake_writers(self) -> None:
        for _ in range(self.write_waiters):
            self.write_wait.v()
        self.write_waiters = 0

    def __repr__(self) -> str:  # pragma: no cover
        state = "closed" if self.closed else (
            "listening" if self.listening else
            ("connected" if self.peer is not None else "fresh")
        )
        return "<Socket %s>" % state

    # ------------------------------------------------------------------
    # connection setup

    def connect_to(self, server: "Socket") -> "Socket":
        """Create the server-side endpoint and queue it for accept."""
        if not server.listening:
            raise SysError(ECONNREFUSED)
        if len(server.backlog) >= server.backlog_max:
            raise SysError(ECONNREFUSED, "backlog full")
        other = Socket(self.machine, self.waker)
        self.peer = other
        other.peer = self
        server.backlog.append(other)
        server.accept_wait.v()
        return other

    def accept_one(self, proc):
        """Generator: block until a queued connection arrives."""
        while True:
            if self.backlog:
                return self.backlog.popleft()
            if self.closed:
                raise SysError(EINVAL, "listener closed")
            ok = yield from self.accept_wait.p(proc, interruptible=True)
            if not ok:
                raise SysError(EINTR)

    # ------------------------------------------------------------------
    # data transfer (generators; kernel layer charges costs)

    def send(self, proc, payload: bytes, kernel):
        peer = self.peer
        if peer is None:
            raise SysError(ENOTCONN)
        sent = 0
        while sent < len(payload):
            if peer.closed:
                from repro.kernel.signals import SIGPIPE

                kernel.psignal(proc, SIGPIPE)
                raise SysError(EPIPE)
            space = SOCK_BUF - len(peer.rbuf)
            if space > 0:
                chunk = payload[sent:sent + space]
                peer.rbuf.extend(chunk)
                sent += len(chunk)
                peer.bytes_moved += len(chunk)
                peer._wake_readers()
                continue
            self.write_waiters += 1
            ok = yield from self.write_wait.p(proc, interruptible=True)
            if not ok:
                raise SysError(EINTR)
        return sent

    def recv(self, proc, nbytes: int):
        while True:
            if self.rbuf:
                take = min(nbytes, len(self.rbuf))
                chunk = bytes(self.rbuf[:take])
                del self.rbuf[:take]
                if self.peer is not None:
                    self.peer._wake_writers()
                return chunk
            if self.peer is None or self.peer.closed:
                return b""  # EOF
            self.read_waiters += 1
            ok = yield from self.read_wait.p(proc, interruptible=True)
            if not ok:
                raise SysError(EINTR)

    # ------------------------------------------------------------------
    # descriptor passing

    def push_fd(self, file) -> None:
        """Queue a held File for the peer's recvfd."""
        self.rfds.append(file)
        self._wake_readers()

    def pop_fd(self, proc):
        """Generator: block until a passed descriptor arrives."""
        while True:
            if self.rfds:
                return self.rfds.popleft()
            if self.peer is None or self.peer.closed:
                raise SysError(ENOTCONN, "peer gone, no descriptor")
            self.read_waiters += 1
            ok = yield from self.read_wait.p(proc, interruptible=True)
            if not ok:
                raise SysError(EINTR)

    # ------------------------------------------------------------------
    # teardown

    def on_last_close(self) -> None:
        self.closed = True
        # drop any still-queued passed descriptors
        while self.rfds:
            self.rfds.popleft().release()
        if self.peer is not None:
            self.peer._wake_readers()
            self.peer._wake_writers()
        for queued in self.backlog:
            queued.closed = True
            if queued.peer is not None:
                queued.peer._wake_readers()
        self.backlog.clear()


class SocketNamespace:
    """Bound names (the simulation's AF_UNIX-style address space)."""

    def __init__(self):
        self._names: Dict[str, Socket] = {}

    def bind(self, name: str, socket: Socket) -> None:
        existing = self._names.get(name)
        if existing is not None and not existing.closed:
            raise SysError(EADDRINUSE, name)
        self._names[name] = socket
        socket.bound_name = name

    def lookup(self, name: str) -> Socket:
        socket = self._names.get(name)
        if socket is None or socket.closed:
            raise SysError(ECONNREFUSED, name)
        return socket

    def unbind(self, name: str) -> None:
        self._names.pop(name, None)
