"""System V message queues: typed, bounded, copying.

A queueing-and-copying model, the other half of the paper's Figure 2.
Both enqueue and dequeue copy the payload through the kernel, which is
why experiment E7's bandwidth curves put it far below shared memory.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Optional, Tuple

from repro.errors import EEXIST, EINVAL, ENOENT, SysError
from repro.sync.semaphore import Semaphore

from repro.ipc.sysv_shm import IPC_CREAT, IPC_EXCL, IPC_PRIVATE

#: default queue capacity in bytes (MSGMNB in the era's kernels)
MSGMNB = 16384


class MsgQueue:
    def __init__(self, msqid: int, key: int, machine, waker, capacity: int = MSGMNB):
        self.msqid = msqid
        self.key = key
        self.capacity = capacity
        self.bytes_used = 0
        self.messages: Deque[Tuple[int, bytes]] = deque()
        self.send_wait = Semaphore(machine, waker, 0, "msgsnd%d" % msqid)
        self.recv_wait = Semaphore(machine, waker, 0, "msgrcv%d" % msqid)
        self.send_waiters = 0
        self.recv_waiters = 0
        self.sent = 0
        self.received = 0

    # ------------------------------------------------------------------

    def has_room(self, nbytes: int) -> bool:
        return self.bytes_used + nbytes <= self.capacity

    def enqueue(self, mtype: int, payload: bytes) -> None:
        self.messages.append((mtype, payload))
        self.bytes_used += len(payload)
        self.sent += 1
        self._wake_receivers()

    def find(self, mtype: int) -> Optional[Tuple[int, bytes]]:
        """First message matching ``mtype`` (0 = any), without removing."""
        for message in self.messages:
            if mtype == 0 or message[0] == mtype:
                return message
        return None

    def dequeue(self, message: Tuple[int, bytes]) -> None:
        self.messages.remove(message)
        self.bytes_used -= len(message[1])
        self.received += 1
        self._wake_senders()

    # ------------------------------------------------------------------

    def _wake_receivers(self) -> None:
        for _ in range(self.recv_waiters):
            self.recv_wait.v()
        self.recv_waiters = 0

    def _wake_senders(self) -> None:
        for _ in range(self.send_waiters):
            self.send_wait.v()
        self.send_waiters = 0


class MsgRegistry:
    def __init__(self, machine, waker):
        self.machine = machine
        self.waker = waker
        self._by_id: Dict[int, MsgQueue] = {}
        self._by_key: Dict[int, MsgQueue] = {}
        self._next_id = 0

    def get(self, key: int, flags: int) -> MsgQueue:
        if key != IPC_PRIVATE and key in self._by_key:
            if flags & IPC_CREAT and flags & IPC_EXCL:
                raise SysError(EEXIST)
            return self._by_key[key]
        if not flags & IPC_CREAT and key != IPC_PRIVATE:
            raise SysError(ENOENT)
        self._next_id += 1
        queue = MsgQueue(self._next_id, key, self.machine, self.waker)
        self._by_id[queue.msqid] = queue
        if key != IPC_PRIVATE:
            self._by_key[key] = queue
        return queue

    def lookup(self, msqid: int) -> MsgQueue:
        queue = self._by_id.get(msqid)
        if queue is None:
            raise SysError(EINVAL)
        return queue
