"""System V shared memory segments.

The paper's Figure 2 world: processes explicitly create and attach
segments by key.  Segments are plain :class:`~repro.mem.region.Region`
objects of type ``SHM``, so attachment, faulting and teardown reuse the
whole VM substrate.
"""

from __future__ import annotations

from typing import Dict

from repro.errors import EEXIST, EIDRM, EINVAL, ENOENT, SysError
from repro.mem.frames import PAGE_MASK, PAGE_SHIFT
from repro.mem.region import Region, RegionType

IPC_CREAT = 0o1000
IPC_EXCL = 0o2000
IPC_PRIVATE = 0


class ShmSegment:
    """One key-addressed segment."""

    def __init__(self, shmid: int, key: int, region: Region, nbytes: int):
        self.shmid = shmid
        self.key = key
        self.region = region.hold()  #: the registry's own reference
        self.nbytes = nbytes
        self.removed = False
        self.attaches = 0

    def __repr__(self) -> str:  # pragma: no cover
        return "<ShmSegment id=%d key=%d %dB>" % (self.shmid, self.key, self.nbytes)


class ShmRegistry:
    """The kernel's table of shared memory segments."""

    def __init__(self, allocator):
        self.allocator = allocator
        self._by_id: Dict[int, ShmSegment] = {}
        self._by_key: Dict[int, ShmSegment] = {}
        self._next_id = 0

    def get(self, key: int, nbytes: int, flags: int) -> ShmSegment:
        if key != IPC_PRIVATE and key in self._by_key:
            segment = self._by_key[key]
            if flags & IPC_CREAT and flags & IPC_EXCL:
                raise SysError(EEXIST)
            if nbytes and nbytes > segment.nbytes:
                raise SysError(EINVAL, "segment smaller than requested")
            return segment
        if not flags & IPC_CREAT and key != IPC_PRIVATE:
            raise SysError(ENOENT)
        if nbytes <= 0:
            raise SysError(EINVAL)
        npages = (nbytes + PAGE_MASK) >> PAGE_SHIFT
        region = Region(self.allocator, npages, RegionType.SHM)
        self._next_id += 1
        segment = ShmSegment(self._next_id, key, region, nbytes)
        self._by_id[segment.shmid] = segment
        if key != IPC_PRIVATE:
            self._by_key[key] = segment
        return segment

    def lookup(self, shmid: int) -> ShmSegment:
        segment = self._by_id.get(shmid)
        if segment is None or segment.removed:
            raise SysError(EIDRM if segment is not None else EINVAL)
        return segment

    def remove(self, shmid: int) -> None:
        """IPC_RMID: the segment disappears once every attach is gone."""
        segment = self._by_id.get(shmid)
        if segment is None:
            raise SysError(EINVAL)
        if not segment.removed:
            segment.removed = True
            self._by_key.pop(segment.key, None)
            segment.region.release()  # drop the registry's reference

    def __len__(self) -> int:
        return len(self._by_id)
