"""System call layer for SysV IPC and sockets (kernel mixin)."""

from __future__ import annotations

from repro.errors import E2BIG, EINTR, EINVAL, ENOSPC, ENOTSOCK, SysError
from repro.fs.file import File, O_RDWR
from repro.fs.inode import Inode, InodeType
from repro.ipc.socket import Socket, SocketNamespace
from repro.ipc.sysv_msg import MsgRegistry
from repro.ipc.sysv_sem import SemRegistry
from repro.ipc.sysv_shm import ShmRegistry
from repro.mem.pregion import PROT_RW, Pregion
from repro.mem.region import RegionType
from repro.share import vmshare
from repro.sim.effects import kdelay


def _words(nbytes: int) -> int:
    return (nbytes + 3) // 4


class IPCSyscalls:
    """Kernel mixin: shmget/shmat, semop, message queues, sockets."""

    def init_ipc(self) -> None:
        self.shm = ShmRegistry(self.machine.frames)
        self.sem = SemRegistry(self.machine, self.sched)
        self.msg = MsgRegistry(self.machine, self.sched)
        self.socket_names = SocketNamespace()

    # ------------------------------------------------------------------
    # shared memory

    def sys_shmget(self, proc, key: int, nbytes: int, flags: int = 0):
        yield kdelay(self.costs.file_io_base)
        if self.fail("ipc.get"):
            raise SysError(ENOSPC, "injected: ipc table full")
        segment = self.shm.get(key, nbytes, flags)
        return segment.shmid

    def sys_shmat(self, proc, shmid: int):
        """Attach; returns the chosen virtual address."""
        segment = self.shm.lookup(shmid)
        sharing = vmshare.sharing_vm(proc)
        if sharing:
            yield from vmshare.update_acquire(proc)
        try:
            base = proc.vm.alloc_map_range(segment.nbytes)
            pregion = Pregion(segment.region, base, PROT_RW)
            if sharing:
                proc.vm.attach_shared(pregion)
            else:
                proc.vm.attach_private(pregion)
            segment.attaches += 1
            yield kdelay(self.costs.region_attach)
        finally:
            if sharing:
                yield from vmshare.update_release(proc)
        return base

    def sys_shmdt(self, proc, vaddr: int):
        sharing = vmshare.sharing_vm(proc)
        if sharing:
            yield from vmshare.update_acquire(proc)
        try:
            pregion, _shared = proc.vm.find(vaddr)
            if (
                pregion is None
                or pregion.vbase != vaddr
                or pregion.rtype is not RegionType.SHM
            ):
                raise SysError(EINVAL, "not an attached segment")
            if sharing:
                yield from vmshare.shootdown_range(
                    self, proc, pregion.vpn_low, pregion.vpn_high
                )
            else:
                yield from self.tlb_invalidate_range(
                    proc, pregion.vpn_low, pregion.vpn_high
                )
            proc.vm.detach(pregion)
            yield kdelay(self.costs.region_attach)
        finally:
            if sharing:
                yield from vmshare.update_release(proc)
        return 0

    def sys_shmctl_rmid(self, proc, shmid: int):
        yield kdelay(self.costs.file_io_base)
        self.shm.remove(shmid)
        return 0

    # ------------------------------------------------------------------
    # semaphores

    def sys_semget(self, proc, key: int, nsems: int, flags: int = 0):
        yield kdelay(self.costs.file_io_base)
        if self.fail("ipc.get"):
            raise SysError(ENOSPC, "injected: ipc table full")
        semset = self.sem.get(key, nsems, flags)
        return semset.semid

    def sys_semop(self, proc, semid: int, ops):
        """Apply an operation array atomically, sleeping as needed."""
        semset = self.sem.lookup(semid)
        ops = [(int(index), int(delta)) for index, delta in ops]
        yield kdelay(self.costs.sema_op)
        while True:
            if semset.can_apply(ops):
                semset.apply(ops)
                semset.broadcast()
                self.pcount(proc, "semops")
                self.trace("ipc", proc.pid, "semop id=%d" % semid)
                return 0
            if self.fail("sem.sleep"):
                raise SysError(EINTR, "injected: signal before semop sleep")
            semset.waiters += 1
            ok = yield from semset.change.p(proc, interruptible=True)
            if not ok:
                # Take our banked wakeup claim with us, or broadcast()
                # over-credits the change semaphore forever after.
                semset.waiters = max(semset.waiters - 1, 0)
                raise SysError(EINTR)

    # ------------------------------------------------------------------
    # message queues

    def sys_msgget(self, proc, key: int, flags: int = 0):
        yield kdelay(self.costs.file_io_base)
        if self.fail("ipc.get"):
            raise SysError(ENOSPC, "injected: ipc table full")
        queue = self.msg.get(key, flags)
        return queue.msqid

    def sys_msgsnd(self, proc, msqid: int, mtype: int, payload: bytes):
        if mtype <= 0:
            raise SysError(EINVAL, "message type must be positive")
        queue = self.msg.lookup(msqid)
        yield kdelay(self.costs.msg_op)
        while not queue.has_room(len(payload)):
            if self.fail("msg.snd.sleep"):
                raise SysError(EINTR, "injected: signal before msgsnd sleep")
            queue.send_waiters += 1
            ok = yield from queue.send_wait.p(proc, interruptible=True)
            if not ok:
                queue.send_waiters = max(queue.send_waiters - 1, 0)
                raise SysError(EINTR)
        yield kdelay(self.costs.copyio_per_word * _words(len(payload)))
        queue.enqueue(mtype, bytes(payload))
        self.pcount(proc, "msgs_sent")
        self.trace("ipc", proc.pid, "msgsnd id=%d n=%d" % (msqid, len(payload)))
        return 0

    def sys_msgrcv(self, proc, msqid: int, mtype: int = 0, max_bytes: int = 1 << 20):
        """Returns ``(mtype, payload)``."""
        queue = self.msg.lookup(msqid)
        yield kdelay(self.costs.msg_op)
        while True:
            message = queue.find(mtype)
            if message is not None:
                if len(message[1]) > max_bytes:
                    raise SysError(E2BIG)
                queue.dequeue(message)
                yield kdelay(self.costs.copyio_per_word * _words(len(message[1])))
                return message
            if self.fail("msg.rcv.sleep"):
                raise SysError(EINTR, "injected: signal before msgrcv sleep")
            queue.recv_waiters += 1
            ok = yield from queue.recv_wait.p(proc, interruptible=True)
            if not ok:
                queue.recv_waiters = max(queue.recv_waiters - 1, 0)
                raise SysError(EINTR)

    # ------------------------------------------------------------------
    # sockets

    def _socket_file(self) -> File:
        inode = Inode(InodeType.CHR, mode=0o666)
        file = File(inode, O_RDWR)
        file.socket = Socket(self.machine, self.sched)
        return file

    def _get_socket(self, proc, fd: int) -> Socket:
        file = proc.uarea.fdtable.get(fd)
        if file.socket is None:
            raise SysError(ENOTSOCK)
        return file.socket

    def sys_socket(self, proc):
        yield kdelay(self.costs.socket_op)

        def apply():
            return proc.uarea.fdtable.alloc(self._socket_file())
            yield  # pragma: no cover

        fd = yield from self._fd_update(proc, apply)
        return fd

    def sys_socketpair(self, proc):
        """Two already-connected sockets; returns ``(fd_a, fd_b)``."""
        yield kdelay(self.costs.socket_op)

        def apply():
            file_a = self._socket_file()
            file_b = self._socket_file()
            file_a.socket.peer = file_b.socket
            file_b.socket.peer = file_a.socket
            table = proc.uarea.fdtable
            fd_a = table.alloc(file_a)
            try:
                fd_b = table.alloc(file_b)
            except SysError:
                table.remove(fd_a)
                self.dispose_file(file_a)
                raise
            return fd_a, fd_b
            yield  # pragma: no cover

        fds = yield from self._fd_update(proc, apply)
        return fds

    def sys_bind(self, proc, fd: int, name: str):
        yield kdelay(self.costs.socket_op)
        socket = self._get_socket(proc, fd)
        self.socket_names.bind(name, socket)
        return 0

    def sys_listen(self, proc, fd: int, backlog: int = 5):
        yield kdelay(self.costs.socket_op)
        socket = self._get_socket(proc, fd)
        socket.listening = True
        socket.backlog_max = max(1, backlog)
        return 0

    def sys_connect(self, proc, fd: int, name: str):
        yield kdelay(self.costs.socket_op)
        socket = self._get_socket(proc, fd)
        server = self.socket_names.lookup(name)
        socket.connect_to(server)
        return 0

    def sys_accept(self, proc, fd: int):
        """Returns a new descriptor for the accepted connection."""
        yield kdelay(self.costs.socket_op)
        listener = self._get_socket(proc, fd)
        endpoint = yield from listener.accept_one(proc)

        def apply():
            inode = Inode(InodeType.CHR, mode=0o666)
            file = File(inode, O_RDWR)
            file.socket = endpoint
            return proc.uarea.fdtable.alloc(file)
            yield  # pragma: no cover

        newfd = yield from self._fd_update(proc, apply)
        return newfd

    def sys_send(self, proc, fd: int, payload: bytes):
        socket = self._get_socket(proc, fd)
        yield kdelay(self.costs.socket_op)
        yield kdelay(self.costs.copyio_per_word * _words(len(payload)))
        count = yield from socket.send(proc, payload, self)
        return count

    def sys_recv(self, proc, fd: int, nbytes: int):
        socket = self._get_socket(proc, fd)
        yield kdelay(self.costs.socket_op)
        data = yield from socket.recv(proc, nbytes)
        yield kdelay(self.costs.copyio_per_word * _words(len(data)))
        return data

    def sys_sendfd(self, proc, fd: int, passed_fd: int):
        """Pass an open descriptor to the peer (4.2BSD-style)."""
        socket = self._get_socket(proc, fd)
        if socket.peer is None:
            raise SysError(ENOTSOCK, "not connected")
        yield kdelay(self.costs.socket_op)
        file = proc.uarea.fdtable.get(passed_fd)
        socket.peer.push_fd(file.hold())
        return 0

    def sys_recvfd(self, proc, fd: int):
        """Receive a passed descriptor; returns the new fd."""
        socket = self._get_socket(proc, fd)
        yield kdelay(self.costs.socket_op)
        file = yield from socket.pop_fd(proc)

        def apply():
            return proc.uarea.fdtable.alloc(file)
            yield  # pragma: no cover

        newfd = yield from self._fd_update(proc, apply)
        return newfd

