"""IPC substrates: SysV shared memory/semaphores/messages and sockets."""

from repro.ipc.socket import SOCK_BUF, Socket, SocketNamespace
from repro.ipc.sysv_msg import MSGMNB, MsgQueue, MsgRegistry
from repro.ipc.sysv_sem import SemRegistry, SemSet
from repro.ipc.sysv_shm import (
    IPC_CREAT,
    IPC_EXCL,
    IPC_PRIVATE,
    ShmRegistry,
    ShmSegment,
)

__all__ = [
    "IPC_CREAT",
    "IPC_EXCL",
    "IPC_PRIVATE",
    "MSGMNB",
    "MsgQueue",
    "MsgRegistry",
    "SOCK_BUF",
    "SemRegistry",
    "SemSet",
    "ShmRegistry",
    "ShmSegment",
    "Socket",
    "SocketNamespace",
]
