"""System V semaphores.

The paper's critique of this mechanism — "synchronization mechanisms
which require kernel interaction, which negates the impact of improved
IPC mechanisms" — is exactly what experiment E6 measures: every ``semop``
pays the syscall trampoline and usually a sleep/wakeup, where a
busy-waiting user lock pays a handful of memory cycles.

``semop`` implements the classic all-or-nothing semantics: the operation
array applies atomically, and the caller sleeps until it can.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.errors import EEXIST, EINVAL, ENOENT, SysError
from repro.sync.semaphore import Semaphore

from repro.ipc.sysv_shm import IPC_CREAT, IPC_EXCL, IPC_PRIVATE


class SemSet:
    """One semaphore set."""

    def __init__(self, semid: int, key: int, nsems: int, machine, waker):
        self.semid = semid
        self.key = key
        self.values: List[int] = [0] * nsems
        #: sleepers retry after any change (classic sem_undo-free model)
        self.change = Semaphore(machine, waker, 0, "semset%d" % semid)
        self.waiters = 0
        self.ops_applied = 0

    def can_apply(self, ops: Sequence[Tuple[int, int]]) -> bool:
        for index, delta in ops:
            if not 0 <= index < len(self.values):
                raise SysError(EINVAL, "bad semaphore index %d" % index)
            if delta < 0 and self.values[index] + delta < 0:
                return False
        return True

    def apply(self, ops: Sequence[Tuple[int, int]]) -> None:
        for index, delta in ops:
            self.values[index] += delta
        self.ops_applied += 1

    def broadcast(self) -> None:
        """Wake every sleeper to retry its operation array."""
        for _ in range(self.waiters):
            self.change.v()
        self.waiters = 0


class SemRegistry:
    def __init__(self, machine, waker):
        self.machine = machine
        self.waker = waker
        self._by_id: Dict[int, SemSet] = {}
        self._by_key: Dict[int, SemSet] = {}
        self._next_id = 0

    def get(self, key: int, nsems: int, flags: int) -> SemSet:
        if key != IPC_PRIVATE and key in self._by_key:
            if flags & IPC_CREAT and flags & IPC_EXCL:
                raise SysError(EEXIST)
            return self._by_key[key]
        if not flags & IPC_CREAT and key != IPC_PRIVATE:
            raise SysError(ENOENT)
        if nsems <= 0:
            raise SysError(EINVAL)
        self._next_id += 1
        semset = SemSet(self._next_id, key, nsems, self.machine, self.waker)
        self._by_id[semset.semid] = semset
        if key != IPC_PRIVATE:
            self._by_key[key] = semset
        return semset

    def lookup(self, semid: int) -> SemSet:
        semset = self._by_id.get(semid)
        if semset is None:
            raise SysError(EINVAL)
        return semset
