"""Mach-style threads: the share-everything comparison baseline."""

from repro.threads.task import Task

__all__ = ["Task"]
