"""Thread system calls (kernel mixin) for the Mach-style baseline."""

from __future__ import annotations

from repro.sim.effects import kdelay
from repro.threads.task import Task


class ThreadSyscalls:
    """Kernel mixin: thread_create / thread_join."""

    def sys_thread_create(self, proc, entry, arg=0):
        """Spawn a thread sharing *everything* with the caller.

        Only a kernel stack, register state and a user stack carve are
        allocated — no page tables, no u-area copy, no region work.
        """
        yield kdelay(self.costs.thread_alloc)
        if getattr(proc, "task", None) is None:
            Task(proc)
        task = proc.task
        # No VM work at all: the user stack comes out of the task's heap
        # (Mach semantics), so only kernel-side thread state is built.
        thread = self._new_proc(proc.uarea, proc.vm, name=proc.name + "+t")
        thread.parent = proc
        proc.children.append(thread)
        task.add(thread)
        self.stats["thread_creates"] += 1
        self._start_child(thread, entry, arg)
        return thread.pid

    def sys_thread_join(self, proc):
        """Wait for a child thread (or process) to exit."""
        result = yield from self.sys_wait(proc)
        return result
