"""Mach-style tasks: the share-everything baseline.

The paper's Figure 3 model: one *task* (address space + resources) with
multiple *threads* of control, each carrying only a kernel stack and
register state.  In the simulation a thread is a :class:`Proc` that
literally references the creating process's :class:`AddressSpace` and
:class:`UArea` objects — nothing is selective, which is exactly the
limitation share groups were designed around (no per-thread PRDA, no
private ``errno``, no choosing what to share).

Thread creation therefore skips all VM and u-area duplication, making it
roughly an order of magnitude cheaper than ``fork()`` — the Mach claim
quoted in the paper's section 3 and reproduced by experiment E1.
"""

from __future__ import annotations

from typing import List

from repro.errors import SimulationError


class Task:
    """The thread group sharing one address space and u-area."""

    def __init__(self, leader):
        self.threads: List = [leader]
        self.leader = leader
        leader.task = self

    def __repr__(self) -> str:  # pragma: no cover
        return "<Task leader=%d nthreads=%d>" % (self.leader.pid, len(self.threads))

    def add(self, thread) -> None:
        if thread in self.threads:
            raise SimulationError("thread %d already in task" % thread.pid)
        self.threads.append(thread)
        thread.task = self

    def remove(self, thread) -> int:
        """Unlink an exiting thread; returns how many remain."""
        try:
            self.threads.remove(thread)
        except ValueError:
            raise SimulationError("thread %d not in task" % thread.pid)
        return len(self.threads)

    @property
    def nthreads(self) -> int:
        return len(self.threads)
