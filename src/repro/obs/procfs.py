"""/proc-style text snapshots of a live system.

Renders the kernel's state the way ``ps``/``pstat``/``/proc`` would:
per-process and per-share-group tables (share mask, refcnt, resident
pages, counter values), the kernel-wide and per-CPU kstat counters, and
the top contended locks.  ``System.report()`` is the one-call entry
point; the individual ``render_*`` functions compose for examples and
benchmarks that only want one table.
"""

from __future__ import annotations


def _table(columns, rows) -> str:
    """Align ``rows`` (lists of strings) under ``columns``."""
    widths = [
        max(len(str(col)), max((len(str(row[i])) for row in rows), default=0))
        for i, col in enumerate(columns)
    ]
    def fmt(cells):
        return "  ".join(str(cell).ljust(widths[i]) for i, cell in enumerate(cells))
    lines = [fmt(columns), "-" * len(fmt(columns))]
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines)


def _resident_private(proc) -> int:
    return sum(p.region.resident_pages() for p in proc.vm.private)


def render_procs(kernel) -> str:
    """One row per process: identity, state, group, counters."""
    kstat = kernel.kstat
    rows = []
    for proc in sorted(kernel.proc_table.all_procs(), key=lambda p: p.pid):
        group = "-"
        if proc.shaddr is not None:
            group = "g%d" % getattr(proc.shaddr, "sgid", 0)
        rows.append([
            proc.pid,
            proc.name[:16],
            proc.state.value,
            group,
            "%#x" % proc.p_shmask if proc.p_shmask else "-",
            proc.syscalls,
            proc.faults,
            kstat.get("proc", proc.pid, "pages_touched"),
            _resident_private(proc),
        ])
    return "PROCESSES\n" + _table(
        ["PID", "NAME", "STATE", "GROUP", "SHMASK",
         "SYSCALLS", "FAULTS", "TOUCHED", "RSS-PRIV"],
        rows,
    )


def render_groups(kernel) -> str:
    """One row per live share group: membership, refcnt, VM lock traffic."""
    seen = {}
    for proc in kernel.proc_table.all_procs():
        if proc.shaddr is not None:
            seen[id(proc.shaddr)] = proc.shaddr
    if not seen:
        return "SHARE GROUPS\n(none)"
    rows = []
    for shaddr in sorted(seen.values(), key=lambda s: getattr(s, "sgid", 0)):
        lock = shaddr.vm_lock
        resident = sum(
            p.region.resident_pages() for p in shaddr.shared_vm.pregions
        )
        rows.append([
            "g%d" % getattr(shaddr, "sgid", 0),
            shaddr.s_refcnt,
            ",".join(str(p.pid) for p in shaddr.members()),
            "yes" if shaddr.gang else "no",
            resident,
            shaddr.syncs,
            lock.read_acquires,
            lock.read_blocks,
            lock.update_acquires,
            lock.update_blocks,
        ])
    return "SHARE GROUPS\n" + _table(
        ["GROUP", "REFCNT", "MEMBERS", "GANG", "RSS-SHARED", "SYNCS",
         "RD-ACQ", "RD-BLK", "UPD-ACQ", "UPD-BLK"],
        rows,
    )


def render_counters(kstat, kind: str = "kernel") -> str:
    """All counters of one scope kind, one block per entity."""
    blocks = []
    for ident in kstat.scopes(kind):
        values = kstat.scope(kind, ident)
        title = kind if kind == "kernel" else "%s %s" % (kind, ident)
        lines = ["[%s]" % title]
        for name in sorted(values):
            lines.append("  %-32s %12s" % (name, "{:,}".format(values[name])))
        blocks.append("\n".join(lines))
    if not blocks:
        return "COUNTERS (%s)\n(none)" % kind
    return "COUNTERS (%s)\n" % kind + "\n".join(blocks)


def render_cpus(kernel) -> str:
    """Per-CPU dispatch/switch/IPI counters, run-queue state, busy cycles."""
    kstat = kernel.kstat
    depths = kernel.sched.queue_depths()
    rows = []
    for cpu in kernel.machine.cpus:
        rows.append([
            "cpu%d" % cpu.idx,
            cpu.dispatches,
            cpu.switches,
            cpu.preemptions,
            depths[cpu.idx],
            kstat.get("cpu", cpu.idx, "runq_steals"),
            kstat.get("cpu", cpu.idx, "shootdown_ipis_sent"),
            kstat.get("cpu", cpu.idx, "shootdown_ipis_rcvd"),
            "{:,}".format(cpu.busy_cycles),
        ])
    return "CPUS\n" + _table(
        ["CPU", "DISPATCHES", "SWITCHES", "PREEMPTS", "RUNQ", "STEALS",
         "IPI-SENT", "IPI-RCVD", "BUSY-CYCLES"],
        rows,
    )


def render_locks(lockstats, n: int = 10) -> str:
    return "LOCKS (top %d by wait cycles)\n%s" % (n, lockstats.report(n))


def render_latency(kstat) -> str:
    """Every kstat histogram as a latency table with percentiles.

    One row per (scope, histogram): sample count, mean, p50/p95/p99 and
    max — the tail-latency view the power-of-two buckets exist for.
    """
    rows = []
    for kind in ("kernel", "cpu", "proc", "group"):
        for ident in kstat.scopes(kind):
            hists = kstat._hists.get((kind, ident))
            if not hists:
                continue
            scope = kind if kind == "kernel" else "%s %s" % (kind, ident)
            for name in sorted(hists):
                hist = hists[name]
                rows.append([
                    scope,
                    name,
                    "{:,}".format(hist.count),
                    "%.1f" % hist.mean,
                    "%.0f" % hist.p50,
                    "%.0f" % hist.p95,
                    "%.0f" % hist.p99,
                    "{:,}".format(hist.max),
                ])
    if not rows:
        return "LATENCY (cycles)\n(none)"
    return "LATENCY (cycles)\n" + _table(
        ["SCOPE", "HISTOGRAM", "COUNT", "MEAN", "P50", "P95", "P99", "MAX"],
        rows,
    )


def render_layers(system) -> str:
    """One line naming which observability layers are armed.

    Answers "why is this run slow / why is this report empty" from the
    report alone: every layer that can change host behavior (or record
    nothing) states its switch position.
    """
    from repro.obs.lockdep import NULL_LOCKDEP

    machine = system.machine
    kernel = system.kernel
    flags = [
        ("kstat", machine.kstat.enabled),
        ("lockdep", machine.lockdep is not NULL_LOCKDEP),
        ("inject", bool(machine.inject.armed_sites)),
        ("profile", machine.profile.enabled),
        ("trace", kernel.tracer is not None),
    ]
    return "layers: " + "  ".join(
        "%s=%s" % (name, "on" if on else "off") for name, on in flags
    )


def render_system(system, top_locks: int = 10) -> str:
    """The full report: header, processes, groups, CPUs, counters, locks."""
    kernel = system.kernel
    machine = system.machine
    header = (
        "system report @ cycle {:,} — {} CPUs, utilization {:.1%}, "
        "{} live proc(s)".format(
            system.now, machine.ncpus, machine.utilization(),
            kernel.live_procs,
        )
    )
    sections = [
        header,
        render_layers(system),
        render_procs(kernel),
        render_groups(kernel),
        render_cpus(kernel),
        render_counters(kernel.kstat, "kernel"),
        render_latency(kernel.kstat),
        render_locks(machine.lockstats, top_locks),
    ]
    return ("\n\n".join(sections)) + "\n"
