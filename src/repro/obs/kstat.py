"""kstat-style counter registry: cheap named metrics per kernel entity.

Modeled on the Solaris/IRIX ``kstat`` facility: every counter lives
under a *scope* — ``("kernel", 0)``, ``("cpu", idx)``, ``("proc", pid)``
or ``("group", sgid)`` — and is created on first touch, so hook points
stay one-liners and cost nothing when the registry is disabled.

Counters are host-side instrumentation: they never charge simulated
cycles, so collection cannot perturb a measurement.  Because the
simulation itself is deterministic, counter values are too — identical
runs produce identical snapshots (``tests/test_obs.py``).
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.obs.profile import NULL_PROFILER


class Histogram:
    """A power-of-two-bucketed value distribution (latency style).

    ``add(value)`` drops the value into bucket ``value.bit_length()``,
    i.e. bucket *b* holds values in ``[2**(b-1), 2**b)``.
    """

    __slots__ = ("count", "total", "max", "buckets")

    def __init__(self):
        self.count = 0
        self.total = 0
        self.max = 0
        self.buckets: Dict[int, int] = {}

    def add(self, value: int) -> None:
        self.count += 1
        self.total += value
        if value > self.max:
            self.max = value
        bucket = int(value).bit_length()
        self.buckets[bucket] = self.buckets.get(bucket, 0) + 1

    def add_n(self, value: int, n: int) -> None:
        """Record ``n`` identical samples of ``value`` in O(1).

        Batch workloads complete many requests at one instant; a weighted
        add keeps per-batch instrumentation cost independent of the batch
        size while producing the same distribution as ``n`` ``add`` calls.
        """
        if n <= 0:
            return
        self.count += n
        self.total += value * n
        if value > self.max:
            self.max = value
        bucket = int(value).bit_length()
        self.buckets[bucket] = self.buckets.get(bucket, 0) + n

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, pct: float) -> float:
        """Estimate the ``pct``-th percentile from the bucket counts.

        Walks the buckets in value order until the cumulative count
        reaches ``pct%`` of the samples, then interpolates linearly
        inside the crossing bucket's value range (bucket *b* covers
        ``[2**(b-1), 2**b - 1]``; bucket 0 is exactly the value 0).
        The estimate is exact at bucket edges and at worst one bucket
        wide — the usual power-of-two-histogram bargain.
        """
        if not 0.0 <= pct <= 100.0:
            raise ValueError("percentile must be in [0, 100], got %r" % pct)
        if self.count == 0:
            return 0.0
        rank = pct / 100.0 * self.count
        cumulative = 0
        for bucket in sorted(self.buckets):
            n = self.buckets[bucket]
            if cumulative + n >= rank:
                lo = 0 if bucket == 0 else 1 << (bucket - 1)
                hi = 0 if bucket == 0 else (1 << bucket) - 1
                frac = (rank - cumulative) / n
                return lo + frac * (hi - lo)
            cumulative += n
        return float(self.max)  # pragma: no cover - rank <= count always

    @property
    def p50(self) -> float:
        return self.percentile(50.0)

    @property
    def p95(self) -> float:
        return self.percentile(95.0)

    @property
    def p99(self) -> float:
        return self.percentile(99.0)

    def as_dict(self) -> dict:
        return {
            "count": self.count,
            "total": self.total,
            "max": self.max,
            "mean": self.mean,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
            "buckets": dict(sorted(self.buckets.items())),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<Histogram n=%d mean=%.1f max=%d>" % (self.count, self.mean, self.max)


#: the scope kinds the kernel registers under
SCOPE_KINDS = ("kernel", "cpu", "proc", "group")


class KstatRegistry:
    """Named counters, gauges and histograms, scoped per kernel entity.

    * counters — monotonically increasing ints (``add``);
    * gauges — last-write-wins values (``set``);
    * histograms — value distributions (``observe``).

    All three share a namespace within a scope; ``snapshot()`` returns
    one nested plain-dict view of everything, suitable for JSON.
    """

    __slots__ = ("enabled", "profile", "_values", "_hists")

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        #: host profiler timing the hook cost (machine swaps in a live one)
        self.profile = NULL_PROFILER
        #: (kind, ident) -> {name: int}
        self._values: Dict[Tuple[str, int], Dict[str, int]] = {}
        #: (kind, ident) -> {name: Histogram}
        self._hists: Dict[Tuple[str, int], Dict[str, Histogram]] = {}

    # ------------------------------------------------------------------
    # recording

    def add(self, kind: str, ident: int, name: str, n: int = 1) -> None:
        """Bump counter ``name`` in scope ``(kind, ident)`` by ``n``."""
        if not self.enabled:
            return
        profile = self.profile
        t0 = profile.clock() if profile.enabled else 0.0
        scope = self._values.get((kind, ident))
        if scope is None:
            scope = self._values[(kind, ident)] = {}
        scope[name] = scope.get(name, 0) + n
        if t0:
            profile.leaf("obs.kstat", t0)

    def set(self, kind: str, ident: int, name: str, value: int) -> None:
        """Set gauge ``name`` (last write wins)."""
        if not self.enabled:
            return
        profile = self.profile
        t0 = profile.clock() if profile.enabled else 0.0
        scope = self._values.get((kind, ident))
        if scope is None:
            scope = self._values[(kind, ident)] = {}
        scope[name] = value
        if t0:
            profile.leaf("obs.kstat", t0)

    def observe(self, kind: str, ident: int, name: str, value: int) -> None:
        """Record ``value`` into histogram ``name``."""
        if not self.enabled:
            return
        profile = self.profile
        t0 = profile.clock() if profile.enabled else 0.0
        scope = self._hists.get((kind, ident))
        if scope is None:
            scope = self._hists[(kind, ident)] = {}
        hist = scope.get(name)
        if hist is None:
            hist = scope[name] = Histogram()
        hist.add(value)
        if t0:
            profile.leaf("obs.kstat", t0)

    def observe_n(self, kind: str, ident: int, name: str, value: int, n: int) -> None:
        """Record ``n`` identical samples into histogram ``name`` (O(1))."""
        if not self.enabled:
            return
        profile = self.profile
        t0 = profile.clock() if profile.enabled else 0.0
        scope = self._hists.get((kind, ident))
        if scope is None:
            scope = self._hists[(kind, ident)] = {}
        hist = scope.get(name)
        if hist is None:
            hist = scope[name] = Histogram()
        hist.add_n(value, n)
        if t0:
            profile.leaf("obs.kstat", t0)

    # ------------------------------------------------------------------
    # reading

    def get(self, kind: str, ident: int, name: str, default: int = 0) -> int:
        return self._values.get((kind, ident), {}).get(name, default)

    def hist(self, kind: str, ident: int, name: str):
        return self._hists.get((kind, ident), {}).get(name)

    def scope(self, kind: str, ident: int) -> Dict[str, int]:
        """A copy of one scope's counter/gauge values."""
        return dict(self._values.get((kind, ident), {}))

    def scopes(self, kind: str):
        """Sorted idents that have recorded anything under ``kind``."""
        idents = {key[1] for key in self._values if key[0] == kind}
        idents |= {key[1] for key in self._hists if key[0] == kind}
        return sorted(idents)

    def snapshot(self) -> dict:
        """Everything, as nested plain dicts: ``{kind: {ident: {name: value}}}``.

        Histograms appear under their name as ``as_dict()`` payloads.
        """
        out: dict = {}
        for (kind, ident), values in self._values.items():
            out.setdefault(kind, {}).setdefault(ident, {}).update(values)
        for (kind, ident), hists in self._hists.items():
            bucket = out.setdefault(kind, {}).setdefault(ident, {})
            for name, hist in hists.items():
                bucket[name] = hist.as_dict()
        return out

    # ------------------------------------------------------------------

    def reset(self) -> None:
        """Zero everything (registrations are not remembered)."""
        self._values.clear()
        self._hists.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<KstatRegistry scopes=%d enabled=%s>" % (
            len(self._values), self.enabled,
        )
