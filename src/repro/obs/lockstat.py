"""Lock-contention profiling: who waits, for how long, on which lock.

Every named synchronization object (spin locks, sleeping semaphores,
the shared read lock, user-level rwlocks) reports into one registry
hung off the :class:`~repro.sim.machine.Machine`.  Stats are keyed by
lock *name*, so same-named locks (one per share group, say) aggregate —
which is what a contention report wants to show.

Recorded per lock:

* ``acquisitions`` — successful acquires;
* ``contended`` — acquires that had to spin or sleep first;
* ``wait_cycles`` / ``max_wait`` — simulated cycles spent waiting;
* ``hold_cycles`` / ``max_hold`` — cycles held (where the primitive has
  hold semantics; semaphores do not report holds).

All figures are in *simulated* cycles read off the event engine, so the
profile is deterministic and measures the system under test, not the
host.
"""

from __future__ import annotations

from typing import Dict, List


class LockStat:
    """Contention accounting for one named lock."""

    __slots__ = (
        "name", "acquisitions", "contended", "wait_cycles", "max_wait",
        "hold_count", "hold_cycles", "max_hold",
    )

    def __init__(self, name: str):
        self.name = name
        self.acquisitions = 0
        self.contended = 0
        self.wait_cycles = 0
        self.max_wait = 0
        self.hold_count = 0
        self.hold_cycles = 0
        self.max_hold = 0

    # ------------------------------------------------------------------

    def record_acquire(self, waited: int, contended: bool) -> None:
        self.acquisitions += 1
        if contended:
            self.contended += 1
            self.wait_cycles += waited
            if waited > self.max_wait:
                self.max_wait = waited

    def record_hold(self, held: int) -> None:
        self.hold_count += 1
        self.hold_cycles += held
        if held > self.max_hold:
            self.max_hold = held

    # ------------------------------------------------------------------

    @property
    def contention_ratio(self) -> float:
        return self.contended / self.acquisitions if self.acquisitions else 0.0

    def as_dict(self) -> dict:
        return {
            "acquisitions": self.acquisitions,
            "contended": self.contended,
            "wait_cycles": self.wait_cycles,
            "max_wait": self.max_wait,
            "hold_count": self.hold_count,
            "hold_cycles": self.hold_cycles,
            "max_hold": self.max_hold,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<LockStat %s acq=%d cont=%d wait=%d>" % (
            self.name, self.acquisitions, self.contended, self.wait_cycles,
        )


class _NullLockStat(LockStat):
    """Sink handed out by a disabled registry: recording is a no-op."""

    def record_acquire(self, waited: int, contended: bool) -> None:
        pass

    def record_hold(self, held: int) -> None:
        pass


class LockStatRegistry:
    """All lock stats for one machine, keyed by lock name."""

    __slots__ = ("enabled", "_stats", "_null")

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._stats: Dict[str, LockStat] = {}
        self._null = _NullLockStat("disabled")

    def get(self, name: str) -> LockStat:
        """The stat bucket for ``name``, created on first use.

        A disabled registry hands out a shared no-op bucket, so locks
        may cache the result without re-checking the flag.
        """
        if not self.enabled:
            return self._null
        stat = self._stats.get(name)
        if stat is None:
            stat = self._stats[name] = LockStat(name)
        return stat

    def all(self) -> List[LockStat]:
        return list(self._stats.values())

    def top(self, n: int = 10, key: str = "wait_cycles") -> List[LockStat]:
        """The ``n`` most-contended locks, worst first.

        Sorted by ``key`` (default: total cycles spent waiting), with
        contended-acquisition count as the tiebreaker; locks nobody ever
        waited on sort last.
        """
        return sorted(
            self._stats.values(),
            key=lambda s: (getattr(s, key), s.contended, s.acquisitions),
            reverse=True,
        )[:n]

    def snapshot(self) -> dict:
        return {name: stat.as_dict() for name, stat in self._stats.items()}

    def reset(self) -> None:
        self._stats.clear()

    # ------------------------------------------------------------------

    def report(self, n: int = 10) -> str:
        """The top-N contended locks as an aligned text table."""
        header = "%-28s %10s %9s %12s %10s %12s %10s" % (
            "LOCK", "ACQUIRES", "CONTENDED", "WAIT-CYCLES",
            "MAX-WAIT", "HOLD-CYCLES", "MAX-HOLD",
        )
        lines = [header, "-" * len(header)]
        for stat in self.top(n):
            lines.append(
                "%-28s %10d %9d %12d %10d %12d %10d" % (
                    stat.name[:28], stat.acquisitions, stat.contended,
                    stat.wait_cycles, stat.max_wait,
                    stat.hold_cycles, stat.max_hold,
                )
            )
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<LockStatRegistry locks=%d>" % len(self._stats)
