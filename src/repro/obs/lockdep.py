"""Lock dependency checking: a deterministic lockdep for the simulated kernel.

The paper (section 6) spends most of its ink on lock ordering — which of
``s_acclck``, ``s_listlock``, ``s_rupdlock`` and ``s_fupdsema`` may be
taken inside which, and why nothing may sleep while spinning others out.
This module makes those rules *checkable*: every named synchronization
primitive reports its acquires and releases into one per-machine
dependency graph, and four classes of misuse raise a structured
:class:`LockOrderViolation` the moment they happen:

* **order inversion** — some context once acquired class B while holding
  class A, and now a context acquires A while holding B (the ABBA
  deadlock shape, caught even when the runs never actually interleave);
* **sleep-holding-spinlock** — a context blocks on a sleeping primitive
  with a kernel spin lock held (would spin every other CPU out forever);
* **double acquire** — a context re-acquires an exclusive lock instance
  it already holds (self-deadlock);
* **release-by-non-owner** — a context releases a lock instance it does
  not hold (including release-without-acquire).

Edges are keyed by lock *class*, not instance: the class is the lock's
name with any per-object suffix stripped (``wait:12`` → ``wait``,
``urw@0x40021000`` → ``urw``, trailing digits dropped), so one group's
``shaddr.vm.acclck`` teaches the checker about every group's.  Same-class
edges (A → A) are recorded but never reported — nesting two instances of
one class is the shared-pregion walk's legitimate pattern, and flagging
it would drown the report.

Like the metrics registries, the checker is **off by default and free
when off**: a disabled machine carries the shared :data:`NULL_LOCKDEP`
whose hooks are empty methods, and nothing else changes.  Everything is
host-side — checking charges no simulated cycles and cannot perturb a
measurement.  Enable it with ``System(lockdep=True)``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import SimulationError

#: lock kinds that are exclusive (double-acquire is self-deadlock)
EXCLUSIVE_KINDS = frozenset({"spin", "uspin", "update", "write"})

#: lock kinds a context may not hold while blocking (busy-waiting locks)
SPIN_KINDS = frozenset({"spin"})


def lock_class(name: str) -> str:
    """The dependency-graph key for a lock name.

    Per-instance suffixes are stripped so same-shaped locks share one
    node: everything from the first ``:`` or ``@`` on goes, then
    trailing digits (``runq3`` → ``runq``).  Dots are structure, not
    instance — ``shaddr.vm.acclck`` is its own class.
    """
    for sep in (":", "@"):
        cut = name.find(sep)
        if cut >= 0:
            name = name[:cut]
    return name.rstrip("0123456789") or name


class HeldLock:
    """One entry in a context's held-lock chain."""

    __slots__ = ("instance", "name", "cls", "kind", "since")

    def __init__(self, instance: int, name: str, cls: str, kind: str, since: int):
        self.instance = instance
        self.name = name
        self.cls = cls
        self.kind = kind
        self.since = since

    def describe(self) -> str:
        return "[%10d] %-8s %s (class %s)" % (self.since, self.kind, self.name, self.cls)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<HeldLock %s kind=%s since=%d>" % (self.name, self.kind, self.since)


class _Edge:
    """One observed held-while-acquiring dependency, with its evidence."""

    __slots__ = ("src", "dst", "ctx_label", "cycle", "chain")

    def __init__(self, src: str, dst: str, ctx_label: str, cycle: int,
                 chain: List[HeldLock]):
        self.src = src
        self.dst = dst
        self.ctx_label = ctx_label
        self.cycle = cycle
        self.chain = chain  #: held chain + the attempted lock, at edge time

    def render(self) -> str:
        lines = ["%s -> %s (by %s at cycle %d):" % (
            self.src, self.dst, self.ctx_label, self.cycle)]
        lines.extend("  " + held.describe() for held in self.chain)
        return "\n".join(lines)


class LockOrderViolation(SimulationError):
    """A structured lockdep finding.

    ``kind`` is one of ``order-inversion``, ``sleep-holding-spinlock``,
    ``double-acquire``, ``release-non-owner``.  ``chains`` is a list of
    ``(title, [HeldLock, ...])`` pairs — the held-lock stacks that prove
    the violation, rendered span-style with their acquire cycles.
    """

    def __init__(self, kind: str, message: str,
                 chains: Optional[List[Tuple[str, List[HeldLock]]]] = None):
        self.kind = kind
        self.chains = chains or []
        super().__init__(self._render(message))

    def _render(self, message: str) -> str:
        lines = ["lockdep: %s: %s" % (self.kind, message)]
        for title, chain in self.chains:
            lines.append("%s:" % title)
            if chain:
                lines.extend("  " + held.describe() for held in chain)
            else:
                lines.append("  (no locks held)")
        return "\n".join(lines)


def _ctx_key(ctx) -> int:
    return id(ctx) if ctx is not None else 0


def _ctx_label(ctx) -> str:
    if ctx is None:
        return "host"
    pid = getattr(ctx, "pid", None)
    name = getattr(ctx, "name", None)
    if pid is not None:
        return "pid %s (%s)" % (pid, name or "?")
    return name or repr(ctx)


class LockDep:
    """The per-machine lock dependency checker."""

    enabled = True

    def __init__(self, machine):
        self.machine = machine
        #: ctx key -> held chain, acquisition order
        self._held: Dict[int, List[HeldLock]] = {}
        #: (src class, dst class) -> first Edge observed
        self._edges: Dict[Tuple[str, str], _Edge] = {}
        #: every violation raised, for post-mortem reporting
        self.violations: List[LockOrderViolation] = []
        self.checks = 0

    # ------------------------------------------------------------------
    # hooks called by the primitives

    def attempt(self, lock, ctx, kind: str) -> None:
        """``ctx`` is about to acquire ``lock``: record dependency edges
        against everything it already holds and flag inversions."""
        self.checks += 1
        held = self._held.get(_ctx_key(ctx))
        if not held:
            return
        cls = lock_class(lock.name)
        instance = id(lock)
        now = self.machine.engine.now
        for entry in held:
            if entry.instance == instance:
                if kind in EXCLUSIVE_KINDS or entry.kind in EXCLUSIVE_KINDS:
                    self._raise(LockOrderViolation(
                        "double-acquire",
                        "%s re-acquires %s (%s) already held since cycle %d"
                        % (_ctx_label(ctx), lock.name, kind, entry.since),
                        [("held by " + _ctx_label(ctx), list(held))],
                    ))
                continue
            if entry.cls == cls:
                continue  # same-class nesting: recorded implicitly, not reported
            reverse = self._edges.get((cls, entry.cls))
            if reverse is not None:
                self._raise(LockOrderViolation(
                    "order-inversion",
                    "%s acquires %s while holding %s, but %s was taken "
                    "while holding %s (by %s at cycle %d)"
                    % (_ctx_label(ctx), cls, entry.cls, entry.cls,
                       cls, reverse.ctx_label, reverse.cycle),
                    [
                        ("this chain (%s, cycle %d)" % (_ctx_label(ctx), now),
                         list(held) + [HeldLock(instance, lock.name, cls, kind, now)]),
                        ("conflicting chain (%s, cycle %d)"
                         % (reverse.ctx_label, reverse.cycle),
                         list(reverse.chain)),
                    ],
                ))
            if (entry.cls, cls) not in self._edges:
                chain = list(held) + [HeldLock(instance, lock.name, cls, kind, now)]
                self._edges[(entry.cls, cls)] = _Edge(
                    entry.cls, cls, _ctx_label(ctx), now, chain
                )

    def acquired(self, lock, ctx, kind: str) -> None:
        """``ctx`` now holds ``lock``; push it onto the held chain."""
        name = lock.name
        self._held.setdefault(_ctx_key(ctx), []).append(
            HeldLock(id(lock), name, lock_class(name), kind, self.machine.engine.now)
        )

    def released(self, lock, ctx=None) -> None:
        """``ctx`` releases ``lock``.  ``ctx=None`` means the caller does
        not know who is releasing (bare ``SpinLock.release()``): the
        recorded holder is credited and no ownership check is possible."""
        instance = id(lock)
        if ctx is None:
            for held in self._held.values():
                for index in range(len(held) - 1, -1, -1):
                    if held[index].instance == instance:
                        del held[index]
                        return
            return  # untracked acquire (e.g. checker enabled mid-run)
        held = self._held.get(_ctx_key(ctx))
        if held:
            for index in range(len(held) - 1, -1, -1):
                if held[index].instance == instance:
                    del held[index]
                    return
        owner = self._find_holder(instance)
        detail = ("held by %s" % owner) if owner else "not held at all"
        self._raise(LockOrderViolation(
            "release-non-owner",
            "%s releases %s which it does not hold (%s)"
            % (_ctx_label(ctx), lock.name, detail),
            [("held by " + _ctx_label(ctx), list(held or []))],
        ))

    def sleeping(self, ctx, reason: str) -> None:
        """``ctx`` is about to block (give up the CPU) on ``reason``."""
        held = self._held.get(_ctx_key(ctx))
        if not held:
            return
        spinning = [entry for entry in held if entry.kind in SPIN_KINDS]
        if spinning:
            self._raise(LockOrderViolation(
                "sleep-holding-spinlock",
                "%s blocks on %s while holding spin lock %s"
                % (_ctx_label(ctx), reason,
                   ", ".join(entry.name for entry in spinning)),
                [("held by " + _ctx_label(ctx), list(held))],
            ))

    # ------------------------------------------------------------------

    def _find_holder(self, instance: int) -> Optional[str]:
        for key, held in self._held.items():
            for entry in held:
                if entry.instance == instance:
                    return "context %#x" % key
        return None

    def _raise(self, violation: LockOrderViolation) -> None:
        self.violations.append(violation)
        raise violation

    # ------------------------------------------------------------------
    # introspection

    def held_by(self, ctx) -> List[HeldLock]:
        return list(self._held.get(_ctx_key(ctx), []))

    def edge_count(self) -> int:
        return len(self._edges)

    def edges(self) -> List[Tuple[str, str]]:
        return sorted(self._edges)

    def report(self) -> str:
        """The observed lock-order graph, one edge per line."""
        lines = ["lock-order graph (%d edges):" % len(self._edges)]
        for key in sorted(self._edges):
            lines.append("  %s -> %s" % key)
        return "\n".join(lines)


class _NullLockDep:
    """Shared sink for machines with checking disabled: every hook is a
    no-op, so the primitives call unconditionally at zero cost."""

    enabled = False
    violations: List[LockOrderViolation] = []

    def attempt(self, lock, ctx, kind: str) -> None:
        pass

    def acquired(self, lock, ctx, kind: str) -> None:
        pass

    def released(self, lock, ctx=None) -> None:
        pass

    def sleeping(self, ctx, reason: str) -> None:
        pass

    def held_by(self, ctx) -> List[HeldLock]:
        return []

    def report(self) -> str:
        return "lockdep disabled"


#: the one disabled checker every unchecked machine shares
NULL_LOCKDEP = _NullLockDep()
