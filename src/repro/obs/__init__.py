"""Observability: kstat counters, lock-contention profiling, /proc text.

The instrumentation substrate every performance experiment measures
against.  Three layers, all host-side and all free of simulated cycles:

* :mod:`repro.obs.kstat` — named counters/gauges/histograms registered
  per-kernel, per-CPU, per-process, and per-share-group (the Solaris
  ``kstat`` idea);
* :mod:`repro.obs.lockstat` — acquisition/contention/hold accounting
  for every named kernel lock, with a top-N contended report;
* :mod:`repro.obs.lockdep` — lock-order/deadlock checking over the same
  primitives (off by default; ``System(lockdep=True)``);
* :mod:`repro.obs.procfs` — ``/proc``-style text tables rendered from a
  live :class:`~repro.system.System` (``System.report()``);
* :mod:`repro.obs.profile` — the host-side self-profiler: per-phase
  wall-time breakdown of the simulator itself and the
  ``sim_cycles_per_host_sec`` speed metric (off by default;
  ``System(profile=True)`` or any ``--profile`` CLI flag).

Counters never charge cycles, so enabling or disabling them cannot move
a benchmark headline number — `tests/test_obs.py` holds this and the
determinism of collected values as invariants.
"""

from repro.obs.kstat import Histogram, KstatRegistry
from repro.obs.lockdep import NULL_LOCKDEP, LockDep, LockOrderViolation, lock_class
from repro.obs.lockstat import LockStat, LockStatRegistry
from repro.obs.procfs import render_system
from repro.obs.profile import (
    NULL_PROFILER,
    HostProfiler,
    ProfileSession,
    active_session,
    begin_session,
    end_session,
)

__all__ = [
    "Histogram",
    "HostProfiler",
    "KstatRegistry",
    "LockDep",
    "LockOrderViolation",
    "LockStat",
    "LockStatRegistry",
    "NULL_LOCKDEP",
    "NULL_PROFILER",
    "ProfileSession",
    "active_session",
    "begin_session",
    "end_session",
    "lock_class",
    "render_system",
]
