"""Host-side self-profiler: where does the *simulator's* wall time go?

Every other observability layer measures the simulated machine; this one
measures the simulator.  A :class:`HostProfiler` carries a stack of
*phases* — named regions of the DES core (the engine event loop, the CPU
interpreter dispatch, the fault-path pregion walk, the kstat/trace
hooks, the inject checks) — and attributes host ``perf_counter`` time
exclusively to the innermost active phase.  The headline number is
``sim_cycles_per_host_sec``: how many simulated cycles one host second
buys, the metric the ROADMAP's 10x host-speed refactor will be gated on.

Disarmed fast path (the lockdep/inject pattern): ``NULL_PROFILER`` is a
singleton whose ``enabled`` is False; every hook point is a single
attribute test away from doing nothing, so a run without ``--profile``
is host-state-identical to a build without the profiler at all.  The
profiler never reads or writes simulated state, so armed runs are
*cycle-identical* to disarmed ones (held by ``tests/test_profile.py``).

Two hook idioms, chosen by nesting:

* **stack phases** (``push``/``pop``) for regions that contain other
  phases — the engine loop and the interpreter dispatch;
* **leaf phases** (``t0 = prof.clock()`` … ``prof.leaf(name, t0)``) for
  the short, non-nesting hooks (kstat, trace, inject, pregion resolve) —
  one combined bookkeeping call instead of a push/pop pair.

Probe effect: timing a leaf costs two clock reads, which for very hot
hooks (kstat adds) can rival the hook body itself.  The breakdown is for
*ranking* phases, not for nanosecond-accurate accounting — treat small
leaf phases as upper bounds.

A :class:`ProfileSession` aggregates every profiler created while it is
active (the ``--profile`` CLI flag opens one), merging per-phase time
across the many ``System`` instances one benchmark builds and across
``multiprocessing`` shards, and renders the per-phase table that lands
in ``BENCH_HOST.json``.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional

#: phase names used by the built-in hooks (docs + report ordering)
KNOWN_PHASES = (
    "engine.loop",    # heap pops, event bookkeeping, callback overhead
    "engine.inline",  # inline-continuation bursts (trampoline-elided hops)
    "cpu.interp",     # generator resume + effect interpretation
    "fault.resolve",  # pregion-list walk on a TLB refill
    "obs.kstat",      # kstat counter/gauge/histogram hooks
    "obs.trace",      # tracer record hooks (when a tracer is attached)
    "inject.fire",    # failpoint hit checks
)


class HostProfiler:
    """Exclusive per-phase host-time accounting for one machine.

    Time between phase transitions is credited to the phase on top of
    the stack, so nested phases subtract from their parents and the
    reported seconds sum to (approximately) the profiled wall time.
    """

    __slots__ = (
        "enabled", "seconds", "hits", "counters", "wall_seconds",
        "sim_cycles", "events", "runs", "_clock", "_stack", "_last",
        "_run_wall0", "_run_cycles0", "_run_events0",
    )

    #: the disarmed singleton overrides this; hooks test only this flag
    def __init__(self, clock=time.perf_counter):
        self.enabled = True
        self._clock = clock
        self.seconds: Dict[str, float] = {}   #: phase -> exclusive host s
        self.hits: Dict[str, int] = {}        #: phase -> enter count
        self.counters: Dict[str, int] = {}    #: named event counts
        self.wall_seconds = 0.0               #: total time inside Engine.run
        self.sim_cycles = 0                   #: cycles advanced while profiled
        self.events = 0                       #: engine events while profiled
        self.runs = 0                         #: Engine.run invocations
        self._stack: List[str] = []
        self._last: Optional[float] = None
        self._run_wall0 = 0.0
        self._run_cycles0 = 0
        self._run_events0 = 0

    # ------------------------------------------------------------------
    # hook API (hot; every branch counts)

    def clock(self) -> float:
        return self._clock()

    def push(self, phase: str) -> None:
        """Enter a stack phase; time since the last transition goes to
        the enclosing phase."""
        now = self._clock()
        stack = self._stack
        last = self._last
        if last is not None and stack:
            top = stack[-1]
            seconds = self.seconds
            seconds[top] = seconds.get(top, 0.0) + (now - last)
        stack.append(phase)
        hits = self.hits
        hits[phase] = hits.get(phase, 0) + 1
        self._last = now

    def pop(self) -> None:
        """Leave the current stack phase, crediting it."""
        now = self._clock()
        stack = self._stack
        last = self._last
        if last is not None:
            top = stack[-1]
            seconds = self.seconds
            seconds[top] = seconds.get(top, 0.0) + (now - last)
        stack.pop()
        self._last = now if stack else None

    def leaf(self, phase: str, t0: float) -> None:
        """Credit a leaf phase that began at ``t0`` (from :meth:`clock`).

        Equivalent to ``push(phase)`` at ``t0`` + ``pop()`` now, with two
        clock reads instead of four.
        """
        now = self._clock()
        if self._last is not None and self._stack:
            top = self._stack[-1]
            self.seconds[top] = self.seconds.get(top, 0.0) + (t0 - self._last)
            self._last = now
        self.seconds[phase] = self.seconds.get(phase, 0.0) + (now - t0)
        self.hits[phase] = self.hits.get(phase, 0) + 1

    def count(self, name: str, n: int) -> None:
        """Accumulate a named occurrence counter (no timing attached).

        Used for fast-path hit-rate telemetry — e.g. ``inline_hops`` /
        ``inline_fallbacks`` from the engine's inline-continuation slot —
        where the interesting number is *how often*, not *how long*.
        """
        if n:
            self.counters[name] = self.counters.get(name, 0) + n

    # ------------------------------------------------------------------
    # Engine.run session bracketing

    def run_begin(self, cycles: int, events: int) -> None:
        self._run_wall0 = self._clock()
        self._run_cycles0 = cycles
        self._run_events0 = events
        self.runs += 1
        self.push("engine.loop")

    def run_end(self, cycles: int, events: int) -> None:
        self.pop()
        self.wall_seconds += self._clock() - self._run_wall0
        self.sim_cycles += cycles - self._run_cycles0
        self.events += events - self._run_events0

    # ------------------------------------------------------------------
    # results

    @property
    def sim_cycles_per_host_sec(self) -> float:
        if self.wall_seconds <= 0.0:
            return 0.0
        return self.sim_cycles / self.wall_seconds

    def summary(self) -> dict:
        """One JSON-serialisable dict: phases, wall, cycles, the rate."""
        return {
            "phases": {
                name: {"seconds": self.seconds.get(name, 0.0),
                       "hits": self.hits.get(name, 0)}
                for name in sorted(set(self.seconds) | set(self.hits))
            },
            "counters": dict(self.counters),
            "wall_seconds": self.wall_seconds,
            "sim_cycles": self.sim_cycles,
            "events": self.events,
            "runs": self.runs,
            "sim_cycles_per_host_sec": self.sim_cycles_per_host_sec,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<HostProfiler %.3fs %d cycles>" % (
            self.wall_seconds, self.sim_cycles)


class NullProfiler:
    """The disarmed profiler: ``enabled`` is False, everything no-ops.

    Hook points test ``profile.enabled`` and skip their timing branch,
    so the only cost of a disarmed build is that single attribute test —
    the same bargain ``NULL_LOCKDEP`` and the inject registry strike.
    """

    __slots__ = ()
    enabled = False

    def clock(self) -> float:  # pragma: no cover - never on the fast path
        return 0.0

    def push(self, phase: str) -> None:  # pragma: no cover
        pass

    def pop(self) -> None:  # pragma: no cover
        pass

    def leaf(self, phase: str, t0: float) -> None:  # pragma: no cover
        pass

    def count(self, name: str, n: int) -> None:  # pragma: no cover
        pass

    def run_begin(self, cycles: int, events: int) -> None:  # pragma: no cover
        pass

    def run_end(self, cycles: int, events: int) -> None:  # pragma: no cover
        pass


NULL_PROFILER = NullProfiler()


# ----------------------------------------------------------------------
# session aggregation (the --profile CLI plumbing)


class ProfileSession:
    """Aggregates every profiler created while the session is active.

    One benchmark builds many ``System``s (ablation pairs, quiet
    determinism runs); a seed sweep builds them in worker processes and
    ships summaries back.  ``merged()`` folds all of it into one
    breakdown; ``wall_seconds`` then means *host-CPU seconds* (shards
    overlap in wall-clock), which is the right denominator for a
    machine-speed metric.
    """

    def __init__(self):
        self.profilers: List[HostProfiler] = []
        self.extra_summaries: List[dict] = []  #: from worker processes

    def add(self, profiler: HostProfiler) -> None:
        self.profilers.append(profiler)

    def absorb(self, summary: dict) -> None:
        """Fold in a summary dict produced in another process."""
        self.extra_summaries.append(summary)

    def merged(self) -> dict:
        phases: Dict[str, Dict[str, float]] = {}
        counters: Dict[str, int] = {}
        wall = 0.0
        cycles = 0
        events = 0
        runs = 0
        systems = 0
        for summary in (
            [prof.summary() for prof in self.profilers] + self.extra_summaries
        ):
            systems += 1
            wall += summary.get("wall_seconds", 0.0)
            cycles += summary.get("sim_cycles", 0)
            events += summary.get("events", 0)
            runs += summary.get("runs", 0)
            for name, row in summary.get("phases", {}).items():
                slot = phases.setdefault(name, {"seconds": 0.0, "hits": 0})
                slot["seconds"] += row.get("seconds", 0.0)
                slot["hits"] += row.get("hits", 0)
            for name, value in summary.get("counters", {}).items():
                counters[name] = counters.get(name, 0) + value
        return {
            "phases": {name: phases[name] for name in sorted(phases)},
            "counters": {name: counters[name] for name in sorted(counters)},
            "wall_seconds": wall,
            "sim_cycles": cycles,
            "events": events,
            "runs": runs,
            "profilers": systems,
            "sim_cycles_per_host_sec": cycles / wall if wall > 0 else 0.0,
        }

    def render(self) -> str:
        """The per-phase host-time breakdown as an aligned text table."""
        merged = self.merged()
        wall = merged["wall_seconds"]
        lines = [
            "HOST PROFILE (%d profiler(s), %.3f host-s inside Engine.run)"
            % (merged["profilers"], wall),
            "%-16s %12s %12s %8s" % ("phase", "host-sec", "hits", "share"),
            "-" * 52,
        ]
        known = [n for n in KNOWN_PHASES if n in merged["phases"]]
        extra = [n for n in sorted(merged["phases"]) if n not in KNOWN_PHASES]
        for name in known + extra:
            row = merged["phases"][name]
            share = row["seconds"] / wall if wall > 0 else 0.0
            lines.append(
                "%-16s %12.4f %12s %7.1f%%"
                % (name, row["seconds"], "{:,}".format(row["hits"]),
                   100.0 * share)
            )
        counters = merged.get("counters", {})
        if counters:
            lines.append(
                "counters: "
                + "  ".join(
                    "%s=%s" % (name, "{:,}".format(counters[name]))
                    for name in sorted(counters)
                )
            )
            hops = counters.get("inline_hops", 0)
            fallbacks = counters.get("inline_fallbacks", 0)
            if hops or fallbacks:
                lines.append(
                    "inline hit rate: %.1f%% (%s hops, %s fallbacks, "
                    "%s queued events)"
                    % (
                        100.0 * hops / max(1, merged["events"]),
                        "{:,}".format(hops),
                        "{:,}".format(fallbacks),
                        "{:,}".format(merged["events"] - hops),
                    )
                )
        lines.append(
            "sim cycles %s in %.3f host-s -> %s cycles/host-sec "
            "(%s events)"
            % ("{:,}".format(merged["sim_cycles"]), wall,
               "{:,.0f}".format(merged["sim_cycles_per_host_sec"]),
               "{:,}".format(merged["events"]))
        )
        return "\n".join(lines)


_session: Optional[ProfileSession] = None


def begin_session() -> ProfileSession:
    """Open a global session: Systems built with ``profile=None`` arm
    themselves and register here until :func:`end_session`."""
    global _session
    _session = ProfileSession()
    return _session


def end_session() -> Optional[ProfileSession]:
    global _session
    session, _session = _session, None
    return session


def active_session() -> Optional[ProfileSession]:
    return _session
