"""The ``prctl()`` system call (paper section 5.2), plus extensions.

Paper-defined options:

``PR_MAXPROCS``
    Limit on processes per user.
``PR_MAXPPROCS``
    Number of processes the system can run in parallel (the CPU count) —
    parallel programs size their self-scheduling pools with this.
``PR_SETSTACKSIZE`` / ``PR_GETSTACKSIZE``
    Maximum stack size for the current process; inherited across
    ``sproc()`` and ``fork()`` and used to lay out the shared VM image.

Extensions implemented from the paper's section 8 (future directions),
clearly marked as such:

``PR_GETNSHARE``
    Number of members in the caller's share group (0 if none).
``PR_SETGANG`` / ``PR_GETGANG``
    Gang-scheduling hint for the whole group.
``PR_UNSHARE``
    Transactionally stop sharing the resources named by the mask
    argument — including ``PR_SADDR`` (a copy-on-write detach onto a
    fresh private address space).  Dropping the last shared bit leaves
    the group.  Bits outside ``PR_SALL`` are ``EINVAL``.
``PR_SETSHMASK``
    Install a new share mask; strictly tighten-only (the new mask must
    be a subset of the current one — widening is ``EINVAL``, mirroring
    the strict-inheritance rule for ``sproc``).  Implemented as
    ``PR_UNSHARE`` of the difference.
``PR_GETSHMASK``
    The caller's current share mask.
"""

from __future__ import annotations

from repro.errors import EINVAL, EPERM, ESRCH, SysError
from repro.mem.frames import PAGE_SIZE
from repro.share.mask import PR_SALL
from repro.sim.effects import kdelay

PR_MAXPROCS = 1
PR_MAXPPROCS = 2
PR_SETSTACKSIZE = 3
PR_GETSTACKSIZE = 4

# --- extensions (not in the 1988 interface) ---------------------------
PR_GETNSHARE = 100
PR_SETGANG = 101
PR_GETGANG = 102
PR_UNSHARE = 103
PR_GETSHMASK = 104
#: set every member's scheduling priority at once (section 8: "the
#: priority of the whole group could be raised or lowered")
PR_SETGROUPPRI = 105
#: suspend / resume every *other* member (section 8: "a whole process
#: group could be conveniently blocked or unblocked")
PR_BLOCKGRP = 106
PR_UNBLKGRP = 107
#: tighten-only runtime replacement of the whole share mask
PR_SETSHMASK = 108

#: smallest stack reservation prctl will accept
MIN_STACK = 4 * PAGE_SIZE


def prctl(kernel, proc, option: int, value: int = 0, value2: int = 0):
    """Generator implementing the prctl dispatch."""
    yield kdelay(kernel.costs.flag_batch_test)
    if option == PR_MAXPROCS:
        return kernel.proc_table.max_procs
    if option == PR_MAXPPROCS:
        return kernel.machine.ncpus
    if option == PR_GETSTACKSIZE:
        return proc.uarea.stack_max
    if option == PR_SETSTACKSIZE:
        if value < MIN_STACK:
            raise SysError(EINVAL, "stack size too small")
        proc.uarea.stack_max = int(value)
        return int(value)
    if option == PR_GETNSHARE:
        return proc.shaddr.s_refcnt if proc.shaddr is not None else 0
    if option == PR_SETGANG:
        if proc.shaddr is None:
            raise SysError(EINVAL, "not in a share group")
        proc.shaddr.gang = bool(value)
        return 0
    if option == PR_GETGANG:
        if proc.shaddr is None:
            return 0
        return 1 if proc.shaddr.gang else 0
    if option == PR_UNSHARE:
        result = yield from kernel.do_unshare(proc, value)
        return result
    if option == PR_SETSHMASK:
        if value & ~PR_SALL:
            raise SysError(EINVAL, "mask %#x has bits outside PR_SALL" % value)
        if proc.shaddr is None:
            raise SysError(EINVAL, "not in a share group")
        current = proc.p_shmask & PR_SALL
        if value & ~current:
            raise SysError(EINVAL, "PR_SETSHMASK may only tighten the mask")
        result = yield from kernel.do_unshare(proc, current & ~value)
        return result
    if option == PR_GETSHMASK:
        return proc.p_shmask if proc.shaddr is not None else 0
    if option in (PR_BLOCKGRP, PR_UNBLKGRP):
        shaddr = proc.shaddr
        if shaddr is None:
            raise SysError(EINVAL, "not in a share group")
        for member in shaddr.other_members(proc):
            # The snapshot can race a member's exit or an unshare that
            # drops it out of the group: skip anyone no longer a live
            # member, and tolerate an ESRCH from the call itself.
            if not member.alive() or member.shaddr is not shaddr:
                continue
            try:
                if option == PR_BLOCKGRP:
                    yield from kernel.sys_blockproc(proc, member.pid)
                else:
                    yield from kernel.sys_unblockproc(proc, member.pid)
            except SysError as exc:
                if exc.errno != ESRCH:
                    raise
        return 0
    if option == PR_SETGROUPPRI:
        if proc.shaddr is None:
            raise SysError(EINVAL, "not in a share group")
        if not 0 <= value <= 39:
            raise SysError(EINVAL, "priority out of range")
        if value < proc.pri and proc.uarea.uid != 0:
            raise SysError(EPERM, "only root may raise priority")
        for member in proc.shaddr.members():
            member.pri = int(value)
            kernel.sched.reprioritize(member)
        return int(value)
    raise SysError(EINVAL, "unknown prctl option %d" % option)
