"""Transactional runtime unshare: tearing resources out of a share group.

``prctl(PR_UNSHARE, mask)`` — and the symmetric tighten-only
``PR_SETSHMASK`` — is the reverse of ``sproc()``: the calling member
stops sharing the named resources and receives private copies (ROADMAP
item #4; Linux's ``unshare(2)`` is the direct descendant of this
interface).  Every copy-out step can fail, injected or real, so the work
is *staged*: fresh private structures are built first while the shared
ones stay untouched, then installed in one host-atomic commit.  On any
failure ``Kernel._unwind_unshare`` tears the staged pieces down
newest-first — the mirror of ``_unwind_sproc`` — and the caller is left
exactly as it was: still a full member, invariants clean.

Copy-out rules, per resource class:

* **file descriptors** (``PR_SFDS``): a fresh descriptor table is
  populated slot by slot, each copied file gaining a reference (the
  ``unshare.fds`` failpoint fires per slot).  On commit the old table's
  references are released through the kernel's dispose routine; the
  group's authoritative ``s_ofile`` copy is untouched, so the other
  members keep sharing.
* **miscellaneous u-area values** (``PR_SULIMIT``/``PR_SUMASK``/
  ``PR_SDIR``/``PR_SID``): the u-area already holds per-process copies —
  "sharing" them is the sync-on-entry protocol — so privatization is a
  final ``sync_on_entry`` followed by dropping the mask and sync bits.
  The ``unshare.uarea`` failpoint models the private resource-block
  allocation a real kernel would perform here.
* **the address space** (``PR_SADDR``): the big one.  A fresh
  :class:`~repro.mem.addrspace.AddressSpace` with its own ASID is built
  under the group's update lock (``unshare.aspace``); every shared
  pregion is cloned copy-on-write into it (``unshare.pregion`` per
  clone) exactly like a fork image, private pregions — the PRDA and any
  ``PR_PRIVDATA`` shadows — move across on commit, and the group's ASID
  is shot down on every CPU because resident pages just became COW on
  *both* sides.  The member's old shared stack pregion stays on the
  shared list, exactly as it would if the member exited; the detaching
  process keeps running on its private clone and ``s_refcnt`` is only
  dropped when the mask reaches zero and the member leaves the group.
"""

from __future__ import annotations

from repro.errors import EINVAL, ENOMEM, SysError
from repro.fs.fdtable import FDTable
from repro.mem.addrspace import AddressSpace
from repro.mem.pregion import Pregion
from repro.share.mask import (
    NONVM_SYNC_BITS,
    PR_SALL,
    PR_SDIR,
    PR_SID,
    PR_SULIMIT,
    PR_SUMASK,
)
from repro.sim.effects import kdelay

#: resource bits privatized by dropping mask+sync bits alone — their
#: authoritative values already live per-process in the u-area
MISC_BITS = PR_SULIMIT | PR_SUMASK | PR_SDIR | PR_SID


def validate_mask(value: int) -> None:
    """Reject mask arguments with bits outside the PR_SALL range.

    ``PR_PRIVDATA`` (a creation-time modifier) and any undefined high
    bits are EINVAL rather than a silent no-op clear.
    """
    if value & ~PR_SALL:
        raise SysError(
            EINVAL, "unshare mask %#x has bits outside PR_SALL" % value
        )


def copy_out_fds(kernel, proc, staged):
    """Generator: stage a private descriptor table, slot by slot.

    Each copied slot takes its own reference, so the staged table is
    self-contained from the first entry on — ``staged['fds']`` is set
    *before* the loop so a mid-copy failure unwinds the partial table.
    """
    table = proc.uarea.fdtable
    fresh = FDTable(len(table.slots))
    fresh.inject = table.inject
    staged["fds"] = fresh
    copied = 0
    for fd, slot in enumerate(table.slots):
        if slot is None:
            continue
        if kernel.fail("unshare.fds"):
            raise SysError(ENOMEM, "injected: private fd table slot")
        fresh.slots[fd] = slot.hold()
        copied += 1
    yield kdelay(kernel.costs.resource_sync + copied)
    kernel.kstat.add("kernel", 0, "unshare_fds_copied", copied)


def copy_out_aspace(kernel, proc, staged):
    """Generator: stage a private address space (update lock held).

    Every shared pregion is cloned copy-on-write; shared pregions that a
    private pregion already shadows (the ``PR_PRIVDATA`` case) are
    skipped — the private copy wins, as it does in the fault path.
    """
    if kernel.fail("unshare.aspace"):
        raise SysError(ENOMEM, "injected: private address space allocation")
    shared = proc.vm.shared
    vm = AddressSpace(kernel.machine)
    # Continue carving where the group's cursors left off, the same way
    # dup_cow seeds a fork child from a sharing parent.
    vm.stack_max_bytes = shared.stack_max_bytes
    vm._next_stack_index = shared._next_stack_index
    vm._next_map_base = shared._next_map_base
    staged["vm"] = vm
    privates = list(proc.vm.private)
    costs = kernel.costs
    copied = 0
    for pregion in list(shared.pregions):
        if any(p.overlaps(pregion.vlow, pregion.vhigh) for p in privates):
            continue
        if kernel.fail("unshare.pregion"):
            raise SysError(ENOMEM, "injected: pregion copy-out")
        clone_region = pregion.region.dup_cow()
        clone = Pregion(
            clone_region, pregion.vbase, pregion.prot,
            pregion.growth, pregion.max_pages,
        )
        vm.attach_private(clone)
        copied += 1
        yield kdelay(
            costs.pregion_dup
            + costs.pt_copy_per_page * pregion.region.resident_pages()
        )
    kernel.kstat.add("kernel", 0, "unshare_pregions_copied", copied)


def commit_unshare(kernel, proc, drop: int, staged) -> None:
    """Host-atomic commit: install the staged structures, clear the bits.

    No yields — a commit can never be half observed by another member.
    """
    vm = staged["vm"]
    if vm is not None:
        # The full-ASID shootdown just before this commit purged the
        # group-ASID translations on every CPU, so swapping spaces here
        # needs no extra flush: first touch refills under the new ASID.
        keep = list(proc.vm.private)
        proc.vm.private = []  # clears owner backrefs before the move
        for pregion in keep:
            vm.attach_private(pregion, allow_shadow=True)
        proc.vm = vm
    fresh = staged["fds"]
    if fresh is not None:
        old = proc.uarea.fdtable.close_all()
        proc.uarea.fdtable = fresh
        for file in old:
            kernel.dispose_file(file)
    for pr_bit, sync_bit in NONVM_SYNC_BITS.items():
        if drop & pr_bit:
            proc.p_flag &= ~sync_bit
    proc.p_shmask &= ~drop
