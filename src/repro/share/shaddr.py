"""The shared address block (the paper's ``shaddr_t``, section 6.1).

One block exists per share group, dynamically allocated the first time a
process calls ``sproc()``.  Every member's proc entry points at it, and
it holds:

* the shared pregion list and its shared read lock (``s_region``,
  ``s_acclck``/``s_acccnt``/``s_waitcnt``/``s_updwait``),
* the member list (``s_plink``/``s_refcnt``/``s_listlock``),
* the semaphore single-threading open-file updates (``s_fupdsema``) and
  the authoritative copies of every shared non-VM resource (``s_ofile``,
  ``s_pofile``, ``s_cdir``, ``s_rdir``, ``s_cmask``, ``s_limit``,
  ``s_uid``, ``s_gid``) plus the spin lock for the miscellaneous ones
  (``s_rupdlock``).

Resources with reference counts (files and inodes) have their count
bumped by one *for the block itself*, so a modifying member can exit
before the others have re-synchronized without leaving dangling pointers
— the race the paper calls out explicitly.
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import SimulationError
from repro.fs.file import File
from repro.fs.inode import Inode
from repro.mem.addrspace import SharedVM
from repro.sync.sharedlock import SharedReadLock
from repro.sync.semaphore import Semaphore
from repro.sync.spinlock import SpinLock


class SharedAddressBlock:
    """Kernel state shared by all members of one share group."""

    def __init__(self, machine, waker, vm_lock_factory=SharedReadLock):
        # --- pregion handling -----------------------------------------
        self.shared_vm = SharedVM(machine)  #: s_region, the shared pregions
        self.vm_lock = vm_lock_factory(machine, waker, "shaddr.vm")

        # --- member list ----------------------------------------------
        self._members: List = []  #: s_plink
        self.s_refcnt = 0
        self.s_listlock = SpinLock(machine, "shaddr.list")

        # --- open file updating ----------------------------------------
        self.s_fupdsema = Semaphore(machine, waker, 1, "shaddr.fupd")
        self.s_ofile: List[Optional[File]] = []
        self.s_pofile: List[int] = []  #: per-descriptor flags copy

        # --- directories ------------------------------------------------
        self.s_cdir: Optional[Inode] = None
        self.s_rdir: Optional[Inode] = None

        # --- miscellaneous shared values --------------------------------
        self.s_rupdlock = SpinLock(machine, "shaddr.rupd")
        self.s_cmask = 0
        self.s_limit = 0
        self.s_uid = 0
        self.s_gid = 0

        # --- extensions --------------------------------------------------
        self.gang = False  #: section 8 gang-scheduling hint
        self.sgid = 0  #: sequential share-group id (observability)

        # --- statistics --------------------------------------------------
        self.updates = {"fds": 0, "dir": 0, "id": 0, "umask": 0, "ulimit": 0}
        self.syncs = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<shaddr refcnt=%d members=%s>" % (
            self.s_refcnt, [proc.pid for proc in self._members],
        )

    # ------------------------------------------------------------------
    # member list (callers hold s_listlock where concurrency matters;
    # in the simulation list mutation between yields is atomic anyway)

    def add_member(self, proc) -> None:
        if proc in self._members:
            raise SimulationError("pid %d already in group" % proc.pid)
        self._members.append(proc)
        self.s_refcnt += 1

    def remove_member(self, proc) -> int:
        """Unlink a leaving member; returns the remaining reference count."""
        try:
            self._members.remove(proc)
        except ValueError:
            raise SimulationError("pid %d not in group" % proc.pid)
        self.s_refcnt -= 1
        return self.s_refcnt

    def members(self) -> List:
        return list(self._members)

    def other_members(self, proc) -> List:
        return [member for member in self._members if member is not proc]

    # ------------------------------------------------------------------
    # authoritative resource copies

    def seed_from(self, uarea) -> None:
        """Populate the block from the group creator's u-area."""
        self.update_ofile(uarea.fdtable)
        self.set_dirs(uarea.cdir, uarea.rdir)
        self.s_cmask = uarea.cmask
        self.s_limit = uarea.ulimit
        self.s_uid = uarea.uid
        self.s_gid = uarea.gid

    def update_ofile(self, fdtable, dispose=None) -> None:
        """Refresh ``s_ofile`` from a member's descriptor table.

        The block holds one reference per listed file, so the copy stays
        valid even if the updating member exits immediately afterwards.
        ``dispose`` is the kernel's file-release routine; the block's
        reference may be the *last* one (every member already closed the
        descriptor), and a final close must run endpoint bookkeeping
        (pipe writer counts, socket teardown).
        """
        fresh = fdtable.snapshot()
        for file in fresh:
            if file is not None:
                file.hold()
        for file in self.s_ofile:
            if file is not None:
                if dispose is not None:
                    dispose(file)
                else:
                    file.release()
        self.s_ofile = fresh
        self.s_pofile = [file.flags if file is not None else 0 for file in fresh]

    def set_dirs(self, cdir: Inode, rdir: Optional[Inode]) -> None:
        cdir.hold()
        if rdir is not None:
            rdir.hold()
        if self.s_cdir is not None:
            self.s_cdir.release()
        if self.s_rdir is not None:
            self.s_rdir.release()
        self.s_cdir = cdir
        self.s_rdir = rdir

    # ------------------------------------------------------------------
    # teardown

    def free(self, dispose_file=None) -> None:
        """Drop every reference the block holds (last member left).

        ``dispose_file`` is the kernel's file-release routine, which also
        handles endpoint bookkeeping (pipe reader/writer counts) when the
        block held the last reference; plain ``release`` is the fallback
        for unit tests.
        """
        if self.s_refcnt != 0:
            raise SimulationError("freeing shaddr with refcnt=%d" % self.s_refcnt)
        for file in self.s_ofile:
            if file is not None:
                if dispose_file is not None:
                    dispose_file(file)
                else:
                    file.release()
        self.s_ofile = []
        if self.s_cdir is not None:
            self.s_cdir.release()
            self.s_cdir = None
        if self.s_rdir is not None:
            self.s_rdir.release()
            self.s_rdir = None
