"""Share mask bits for ``sproc()`` (paper section 5.1).

Each bit names a resource the new process will share with its share
group.  The child's mask is ANDed with the parent's at creation time —
*strict inheritance*: a process can never cause a child to share a
resource that it does not itself share.  The original process of a group
implicitly shares everything (``PR_SALL``).
"""

from __future__ import annotations

from repro.kernel.flags import (
    SDIRSYNC,
    SFDSYNC,
    SIDSYNC,
    SULIMITSYNC,
    SUMASKSYNC,
)

#: share the virtual address space
PR_SADDR = 0x0001
#: share ulimit values
PR_SULIMIT = 0x0002
#: share umask values
PR_SUMASK = 0x0004
#: share current/root directory
PR_SDIR = 0x0008
#: share open file descriptors (the paper spells this PR_FDS)
PR_SFDS = 0x0010
#: share effective uid/gid
PR_SID = 0x0020
#: all of the above and any future resources
PR_SALL = 0xFFFF

#: the paper's spelling
PR_FDS = PR_SFDS

#: EXTENSION (paper section 8): with PR_SADDR, give the child a private
#: copy-on-write DATA segment while sharing the rest of the image —
#: "share part of the VM image and have copy-on-write access to other
#: parts".  A modifier, deliberately outside the PR_SALL range so that
#: "share everything" does not imply it.
PR_PRIVDATA = 0x0001_0000

#: mask bits that correspond to non-VM resources, with their p_flag sync bit
NONVM_SYNC_BITS = {
    PR_SULIMIT: SULIMITSYNC,
    PR_SUMASK: SUMASKSYNC,
    PR_SDIR: SDIRSYNC,
    PR_SFDS: SFDSYNC,
    PR_SID: SIDSYNC,
}

#: every currently defined individual resource bit
KNOWN_BITS = PR_SADDR | PR_SULIMIT | PR_SUMASK | PR_SDIR | PR_SFDS | PR_SID


def inherit_mask(parent_mask: int, requested: int) -> int:
    """Strict inheritance: the child shares at most what the parent does."""
    return parent_mask & requested


def mask_names(mask: int) -> str:
    """Readable rendering of a share mask for diagnostics."""
    names = []
    for bit, name in (
        (PR_SADDR, "addr"),
        (PR_SULIMIT, "ulimit"),
        (PR_SUMASK, "umask"),
        (PR_SDIR, "dir"),
        (PR_SFDS, "fds"),
        (PR_SID, "id"),
    ):
        if mask & bit:
            names.append(name)
    return "|".join(names) if names else "none"
