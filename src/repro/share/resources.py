"""Non-VM resource sharing: the sync-on-kernel-entry machinery.

Paper section 6.3.  Unlike virtual memory, resources such as the open
file table live in the u-area and are invisible outside the kernel, so
they only need to be consistent when a member *enters* the kernel.  The
protocol:

1. A member modifying a shared resource first checks its own
   ``p_shmask`` to see that it shares it; then takes the block's update
   lock, re-synchronizes itself if its own sync bits are set (the
   "second updater" race in the paper), applies the modification to its
   u-area *and* to the block's authoritative copy, and finally sets the
   per-resource sync bit in every other sharing member's ``p_flag``.
2. At kernel entry every member's sync bits are tested *in a single
   batched check*; only when one is set does :func:`sync_on_entry` run
   and copy the changed resources from the block back into the u-area.
"""

from __future__ import annotations

from repro.kernel import flags
from repro.share import mask as sm
from repro.sim.effects import kdelay


def set_sync_bits(shaddr, modifier, pr_bit: int) -> int:
    """Flag every *other* sharing member for resynchronization.

    Returns the number of members flagged (the update cost scales with
    group size — experiment E3 measures this).
    """
    sync_bit = sm.NONVM_SYNC_BITS[pr_bit]
    flagged = 0
    for member in shaddr.other_members(modifier):
        if member.p_shmask & pr_bit:
            member.p_flag |= sync_bit
            flagged += 1
    return flagged


def sync_on_entry(kernel, proc):
    """Generator: copy flagged resources from the shaddr into the u-area.

    Called from the syscall trampoline only when the batched flag test
    fired.  Charges one ``resource_sync`` per resource brought up to
    date.
    """
    shaddr = proc.shaddr
    bits = proc.p_flag & flags.ALL_SYNC
    proc.p_flag &= ~flags.ALL_SYNC
    if shaddr is None or not bits:
        return 0
    costs = kernel.costs
    synced = 0
    if bits & flags.SFDSYNC:
        yield kdelay(costs.resource_sync)
        proc.uarea.fdtable.sync_from(shaddr.s_ofile, dispose=kernel.dispose_file)
        synced += 1
    if bits & flags.SDIRSYNC:
        yield kdelay(costs.resource_sync)
        proc.uarea.set_cdir(shaddr.s_cdir)
        proc.uarea.set_rdir(shaddr.s_rdir)
        synced += 1
    if bits & flags.SIDSYNC:
        yield kdelay(costs.resource_sync)
        proc.uarea.uid = shaddr.s_uid
        proc.uarea.gid = shaddr.s_gid
        synced += 1
    if bits & flags.SUMASKSYNC:
        yield kdelay(costs.resource_sync)
        proc.uarea.cmask = shaddr.s_cmask
        synced += 1
    if bits & flags.SULIMITSYNC:
        yield kdelay(costs.resource_sync)
        proc.uarea.ulimit = shaddr.s_limit
        synced += 1
    shaddr.syncs += synced
    return synced


def update_misc(kernel, proc, pr_bit: int, apply_fn):
    """Generator: the modification protocol for spinlock-guarded resources
    (directories, ids, umask, ulimit).

    ``apply_fn(shaddr)`` performs the u-area change and refreshes the
    block's copy; it runs with ``s_rupdlock`` held.
    """
    shaddr = proc.shaddr
    yield from shaddr.s_rupdlock.acquire(proc)
    try:
        # The lock stopped us while someone else updated: sync first so
        # we do not overwrite their change with stale values.
        yield from sync_on_entry(kernel, proc)
        apply_fn(shaddr)
        flagged = set_sync_bits(shaddr, proc, pr_bit)
        yield kdelay(kernel.costs.resource_sync + flagged)
    finally:
        shaddr.s_rupdlock.release()


def update_files(kernel, proc, apply_fn):
    """Generator: the modification protocol for the open file table.

    File updates can block (an ``open`` may sleep on I/O), so they are
    single-threaded through the sleeping semaphore ``s_fupdsema`` rather
    than a spin lock.  ``apply_fn()`` performs the descriptor-table
    change and returns its result; the refreshed table is then copied
    into ``s_ofile`` and the other members flagged.
    """
    shaddr = proc.shaddr
    yield from shaddr.s_fupdsema.p(proc)
    try:
        yield from sync_on_entry(kernel, proc)
        result = yield from apply_fn()
        shaddr.update_ofile(proc.uarea.fdtable, dispose=kernel.dispose_file)
        shaddr.updates["fds"] += 1
        flagged = set_sync_bits(shaddr, proc, sm.PR_SFDS)
        yield kdelay(kernel.costs.resource_sync + flagged)
        return result
    finally:
        shaddr.s_fupdsema.v()
