"""Process share groups: the paper's primary contribution.

Public surface: the ``PR_*`` share mask bits, the prctl option codes, and
the shared address block type (mostly for tests and instrumentation —
programs use ``api.sproc`` / ``api.prctl``).
"""

from repro.share.mask import (
    PR_FDS,
    PR_SADDR,
    PR_SALL,
    PR_SDIR,
    PR_SFDS,
    PR_SID,
    PR_SULIMIT,
    PR_SUMASK,
    inherit_mask,
    mask_names,
)
from repro.share.prctl import (
    PR_GETGANG,
    PR_GETNSHARE,
    PR_GETSHMASK,
    PR_GETSTACKSIZE,
    PR_MAXPPROCS,
    PR_MAXPROCS,
    PR_SETGANG,
    PR_SETSHMASK,
    PR_SETSTACKSIZE,
    PR_UNSHARE,
)
from repro.share.shaddr import SharedAddressBlock

__all__ = [
    "PR_FDS",
    "PR_GETGANG",
    "PR_GETNSHARE",
    "PR_GETSHMASK",
    "PR_GETSTACKSIZE",
    "PR_MAXPPROCS",
    "PR_MAXPROCS",
    "PR_SADDR",
    "PR_SALL",
    "PR_SDIR",
    "PR_SETGANG",
    "PR_SETSHMASK",
    "PR_SETSTACKSIZE",
    "PR_SFDS",
    "PR_SID",
    "PR_SULIMIT",
    "PR_SUMASK",
    "PR_UNSHARE",
    "SharedAddressBlock",
    "inherit_mask",
    "mask_names",
]
