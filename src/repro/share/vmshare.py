"""Shared virtual memory management for share groups (paper section 6.2).

The shared pregion list lives in the shared address block and is guarded
by the shared read lock: scans (page faults, the pager) take it for
read; anything that changes the list *or what it points to* — fork,
exec, mmap, sbrk, region shrink — takes it for update.

Deleting or shrinking address space additionally performs a synchronous
TLB shootdown while holding the update lock, so a member running on
another CPU immediately TLB-misses, traps, and blocks on the read lock
until the pages are really gone.  That is the only expensive VM
operation in the design, which experiment E5 demonstrates.
"""

from __future__ import annotations

from repro.inject import INJECT_DELAY_CYCLES
from repro.mem.region import RegionType
from repro.sim.effects import kdelay


def sharing_vm(proc) -> bool:
    """Is this process running on a share group's shared VM image?"""
    return proc.shaddr is not None and proc.vm.shared is proc.shaddr.shared_vm


def read_acquire(proc):
    """Generator: take the group's shared read lock (no-op off-group)."""
    if sharing_vm(proc):
        # Delay-type failpoint: stretch the window between deciding to
        # take the lock and taking it, so lock-ordering races surface.
        if proc.vm.machine.inject.fire("vmlock.read.delay"):
            yield kdelay(INJECT_DELAY_CYCLES)
        yield from proc.shaddr.vm_lock.acquire_read(proc)


def read_release(proc):
    if sharing_vm(proc):
        yield from proc.shaddr.vm_lock.release_read(proc)


def update_acquire(proc):
    if sharing_vm(proc):
        if proc.vm.machine.inject.fire("vmlock.update.delay"):
            yield kdelay(INJECT_DELAY_CYCLES)
        yield from proc.shaddr.vm_lock.acquire_update(proc)


def update_release(proc):
    if sharing_vm(proc):
        yield from proc.shaddr.vm_lock.release_update(proc)


def shootdown(kernel, proc):
    """Generator: synchronous all-CPU TLB flush for this address space.

    Must be called with the update lock held.  The initiator pays the
    full cross-CPU cost — nobody else waits for anything except the lock.
    """
    cost = kernel.machine.tlb_shootdown(proc.vm.asid)
    kernel.stats["shootdowns"] += 1
    kernel.pcount(proc, "shootdowns_sent")
    kernel.trace("shootdown", proc.pid, "asid=%d" % proc.vm.asid)
    kstat = kernel.kstat
    if proc.cpu is not None:
        kstat.add("cpu", proc.cpu.idx, "shootdown_ipis_sent",
                  kernel.machine.ncpus - 1)
    for cpu in kernel.machine.cpus:
        if proc.cpu is None or cpu.idx != proc.cpu.idx:
            kstat.add("cpu", cpu.idx, "shootdown_ipis_rcvd")
    yield kdelay(cost)


def shootdown_range(kernel, proc, vpn_lo: int, vpn_hi: int):
    """Generator: targeted synchronous shootdown of one VPN window.

    Region shrink and detach only invalidate the pages they remove, so
    every other warm translation in the group survives (no refill storm).
    Must be called with the update lock held.  Falls back to the full
    per-ASID flush under the ``vm_index="linear"`` ablation so that mode
    reproduces the old timeline bit-identically.
    """
    if kernel.machine.vm_index == "linear":
        yield from shootdown(kernel, proc)
        return
    cost = kernel.machine.tlb_shootdown_range(proc.vm.asid, vpn_lo, vpn_hi)
    kernel.stats["shootdowns"] += 1
    kernel.pcount(proc, "shootdowns_sent")
    kernel.trace(
        "shootdown", proc.pid,
        "asid=%d vpn=%#x..%#x" % (proc.vm.asid, vpn_lo, vpn_hi),
    )
    kstat = kernel.kstat
    kstat.add("kernel", 0, "shootdown_pages", vpn_hi - vpn_lo)
    if proc.cpu is not None:
        kstat.add("cpu", proc.cpu.idx, "shootdown_ipis_sent",
                  kernel.machine.ncpus - 1)
    for cpu in kernel.machine.cpus:
        if proc.cpu is None or cpu.idx != proc.cpu.idx:
            kstat.add("cpu", cpu.idx, "shootdown_ipis_rcvd")
    yield kdelay(cost)


def move_pregions_to_shared(proc) -> int:
    """Group creation: migrate the creator's sharable pregions.

    Everything except the PRDA moves from the private list to the shared
    list (the paper: "all of its sharable pregions are moved to the list
    of pregions in the shared address block"; private text planted by a
    debugger would also stay, which we model by keeping anything the
    caller marked non-sharable).
    Returns the number of pregions moved.
    """
    shared_vm = proc.shaddr.shared_vm
    keep = []
    moved = 0
    for pregion in proc.vm.private:
        if pregion.rtype is RegionType.PRDA:
            keep.append(pregion)
        else:
            shared_vm.pregions.append(pregion)
            moved += 1
    proc.vm.private = keep
    proc.vm.shared = shared_vm
    return moved
