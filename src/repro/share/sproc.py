"""Share-group creation and ``sproc()`` child setup (paper section 5.1/6).

``sproc(entry, shmask, arg)`` creates a new process inside the caller's
share group, creating the group itself on first use.  The share mask is
ANDed with the parent's (*strict inheritance*); the child gets a fresh
stack carved from the group's address space — visible to every member
when the VM is shared — and begins execution at ``entry(api, arg)``.
"""

from __future__ import annotations

from repro.mem import layout
from repro.mem.addrspace import AddressSpace
from repro.mem.pregion import PROT_RW
from repro.mem.region import RegionType
from repro.share import vmshare
from repro.mem.pregion import Pregion
from repro.share.mask import (
    PR_PRIVDATA,
    PR_SADDR,
    PR_SALL,
    PR_SDIR,
    PR_SFDS,
    PR_SID,
    PR_SULIMIT,
    PR_SUMASK,
    inherit_mask,
)
from repro.share.shaddr import SharedAddressBlock


def ensure_group(kernel, proc) -> SharedAddressBlock:
    """Create the caller's share group on first ``sproc()``.

    The creator's sharable pregions move onto the shared list, the block
    is seeded with its resources, and the creator's mask is set to
    ``PR_SALL`` (the original process shares everything).
    """
    if proc.shaddr is not None:
        return proc.shaddr
    shaddr = SharedAddressBlock(
        kernel.machine, kernel.sched, kernel.vm_lock_factory
    )
    shared_vm = shaddr.shared_vm
    # Seed the carving cursors from the creator's standalone space so the
    # group's layout continues where the creator's left off.
    shared_vm._next_stack_index = proc.vm._next_stack_index
    shared_vm._next_map_base = proc.vm._next_map_base
    shared_vm.stack_max_bytes = proc.uarea.stack_max
    shaddr.add_member(proc)
    proc.shaddr = shaddr
    proc.p_shmask = PR_SALL
    old_asid = proc.vm.asid
    vmshare.move_pregions_to_shared(proc)
    # The creator now runs under the group's ASID; its old standalone
    # translations are orphaned (the model of ASID recycling).
    for cpu in kernel.machine.cpus:
        cpu.tlb.flush_asid(old_asid)
    shaddr.seed_from(proc.uarea)
    kernel.stats["groups_created"] += 1
    shaddr.sgid = kernel.stats["groups_created"]
    kernel.kstat.add("kernel", 0, "groups_created")
    return shaddr


def build_child_vm(kernel, parent, shmask: int):
    """Build the child's address space per the requested mask.

    With ``PR_SADDR`` the child attaches to the group's shared VM and
    gets only a private PRDA plus a fresh shared stack.  Without it the
    child receives a copy-on-write image of the group's space (paper:
    the new stack is then *not* visible in the share group).

    Returns ``(vm, stack_pregion)``.
    """
    machine = kernel.machine
    if shmask & PR_SADDR:
        vm = AddressSpace(machine, shared=parent.shaddr.shared_vm)
        vm.map_segment(
            layout.PRDA_BASE, layout.PRDA_SIZE, RegionType.PRDA, PROT_RW
        )
        stack = vm.carve_stack(shared=True)
        if shmask & PR_PRIVDATA:
            _privatize_data(vm)
        return vm, stack
    vm = parent.vm.dup_cow()
    # The child must not inherit the parent's PRDA contents: sproc gives
    # the child a pristine per-process data area.
    for pregion in list(vm.private):
        if pregion.rtype is RegionType.PRDA:
            vm.detach(pregion)
    vm.map_segment(layout.PRDA_BASE, layout.PRDA_SIZE, RegionType.PRDA, PROT_RW)
    stack = vm.carve_stack(shared=False)
    return vm, stack


def _privatize_data(vm) -> int:
    """Selective sharing (section 8 extension): shadow the group's DATA
    pregions with private copy-on-write clones.

    The caller holds the update lock.  Because private pregions are
    examined first, the child reads and writes its own copy while every
    other member keeps using the shared segment; resident pages become
    COW on both sides, so the caller must shoot the group's TLBs down
    afterwards.  Returns the number of pregions privatized.
    """
    shadowed = 0
    for pregion in vm.shared.pregions:
        if pregion.rtype is not RegionType.DATA:
            continue
        clone_region = pregion.region.dup_cow()
        clone = Pregion(
            clone_region, pregion.vbase, pregion.prot,
            pregion.growth, pregion.max_pages,
        )
        vm.attach_private(clone, allow_shadow=True)
        shadowed += 1
    return shadowed


def child_uarea(parent, shaddr, shmask: int, dispose=None):
    """Fork-copy the u-area, then overwrite shared values from the block.

    Shared resources come from the group's authoritative copies, not the
    parent's u-area — the parent itself might be out of sync.
    """
    ua = parent.uarea.fork_copy()
    if shmask & PR_SFDS:
        ua.fdtable.sync_from(shaddr.s_ofile, dispose=dispose)
    if shmask & PR_SDIR:
        ua.set_cdir(shaddr.s_cdir)
        ua.set_rdir(shaddr.s_rdir)
    if shmask & PR_SID:
        ua.uid = shaddr.s_uid
        ua.gid = shaddr.s_gid
    if shmask & PR_SUMASK:
        ua.cmask = shaddr.s_cmask
    if shmask & PR_SULIMIT:
        ua.ulimit = shaddr.s_limit
    return ua


def effective_mask(parent, requested: int) -> int:
    """Strict inheritance against the parent's own mask.

    Only the resource bits (the PR_SALL range) are subject to
    inheritance; modifier bits such as ``PR_PRIVDATA`` request *less*
    sharing and pass through unchanged.
    """
    parent_mask = parent.p_shmask if parent.shaddr is not None else PR_SALL
    resources = inherit_mask(parent_mask, requested & PR_SALL)
    modifiers = requested & ~PR_SALL
    return resources | modifiers
