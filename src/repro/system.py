"""The System facade: one object that owns a machine and its kernel.

This is the library's main entry point:

    from repro import System, PR_SALL

    def child(api, arg):
        yield from api.compute(1000)
        return 0

    def main(api, arg):
        pid = yield from api.sproc(child, PR_SALL)
        yield from api.wait()
        return 0

    sim = System(ncpus=4)
    sim.spawn(main)
    sim.run()

Programs communicate results back to the host through any plain Python
object passed as ``arg`` (a dict or list) — that channel is host-side
instrumentation and costs no simulated cycles.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Optional

from repro.errors import DeadlockError
from repro.kernel.kernel import Kernel, ProgramImage
from repro.kernel.proc import Proc, ProcState
from repro.sim.costs import CostModel
from repro.sim.machine import Machine
from repro.sync.sharedlock import SharedReadLock


class System:
    """A booted simulated machine."""

    def __init__(
        self,
        ncpus: int = 4,
        memory_mb: int = 32,
        costs: Optional[CostModel] = None,
        tlb_capacity: int = 64,
        share_groups_enabled: bool = True,
        batched_flag_test: bool = True,
        vm_lock_factory=SharedReadLock,
        metrics_enabled: bool = True,
        scheduler="percpu",
        lockdep: bool = False,
        perturb_seed: Optional[int] = None,
        perturb_features: Optional[Iterable[str]] = None,
        inject: Optional[Dict[str, str]] = None,
        vm_index: str = "indexed",
        profile: Optional[bool] = None,
        engine_loop: Optional[str] = None,
        engine_queue: Optional[str] = None,
    ):
        if profile is None:
            # --profile CLIs open a session; Systems built while one is
            # active arm themselves and register with it.
            from repro.obs.profile import active_session

            profile = active_session() is not None
        self.machine = Machine(
            ncpus=ncpus,
            memory_bytes=memory_mb * 1024 * 1024,
            costs=costs,
            tlb_capacity=tlb_capacity,
            metrics_enabled=metrics_enabled,
            lockdep_enabled=lockdep,
            seed=perturb_seed,
            perturb=perturb_features,
            vm_index=vm_index,
            profile=profile,
            engine_loop=engine_loop,
            engine_queue=engine_queue,
        )
        if inject:
            self.machine.inject.arm_many(inject)
        self.kernel = Kernel(
            self.machine,
            share_groups_enabled=share_groups_enabled,
            batched_flag_test=batched_flag_test,
            vm_lock_factory=vm_lock_factory,
            scheduler=scheduler,
        )
        self.engine = self.machine.engine

    # ------------------------------------------------------------------
    # setup

    def register_program(
        self,
        path: str,
        func: Callable,
        name: Optional[str] = None,
        text_bytes: int = 64 * 1024,
        data_bytes: int = 128 * 1024,
    ) -> ProgramImage:
        """Install an executable at ``path`` for later ``exec``."""
        name = name or path.rsplit("/", 1)[-1]
        return self.kernel.register_program(
            name, func, text_bytes, data_bytes, path=path
        )

    def spawn(self, func: Callable, arg=0, name: str = "init", uid: int = 0) -> Proc:
        """Create and start a top-level process."""
        return self.kernel.spawn(func, arg, name=name, uid=uid)

    # ------------------------------------------------------------------
    # execution

    def run(
        self,
        until: Optional[int] = None,
        max_events: Optional[int] = None,
        check_deadlock: bool = True,
    ) -> int:
        """Drive the simulation; returns the final cycle count.

        With ``check_deadlock`` (the default) a drained event queue while
        non-zombie processes still exist raises :class:`DeadlockError` —
        invaluable when a test workload loses a wakeup.
        """
        self.engine.run(until=until, max_events=max_events)
        if check_deadlock and until is None and max_events is None:
            stuck = self.blocked_procs()
            if stuck:
                raise DeadlockError(
                    "simulation drained with blocked processes: %s"
                    % [(p.pid, p.name, p.state.value) for p in stuck]
                )
        return self.engine.now

    def blocked_procs(self):
        return [
            proc
            for proc in self.kernel.proc_table.all_procs()
            if proc.state not in (ProcState.ZOMBIE,) and proc.alive()
        ]

    # ------------------------------------------------------------------
    # observability

    @property
    def now(self) -> int:
        return self.engine.now

    @property
    def stats(self):
        return self.kernel.stats

    @property
    def kstat(self):
        """The machine's kstat counter registry."""
        return self.machine.kstat

    @property
    def lockstats(self):
        """The machine's lock-contention profile registry."""
        return self.machine.lockstats

    @property
    def lockdep(self):
        """The machine's lock dependency checker (NULL_LOCKDEP when off)."""
        return self.machine.lockdep

    @property
    def profile(self):
        """The machine's host-side profiler (NULL_PROFILER when off)."""
        return self.machine.profile

    def metrics(self) -> dict:
        """A plain-dict snapshot of every counter, gauge and histogram.

        Shape: ``{"cycles", "kstat": {kind: {ident: {name: value}}},
        "locks": {name: {...}}, "stats": {...}}`` — everything is
        JSON-serialisable and detached from live state.
        """
        out = {
            "cycles": self.engine.now,
            "kstat": self.machine.kstat.snapshot(),
            "locks": self.machine.lockstats.snapshot(),
            "stats": dict(self.kernel.stats),
        }
        if self.machine.profile.enabled:
            out["host"] = self.machine.profile.summary()
        return out

    def report(self, top_locks: int = 10) -> str:
        """A /proc-style text report of the whole system (see obs.procfs)."""
        from repro.obs.procfs import render_system

        return render_system(self, top_locks=top_locks)

    def proc(self, pid: int) -> Optional[Proc]:
        return self.kernel.proc_table.get(pid)
