"""Software-managed translation lookaside buffer.

The paper's target processor is the MIPS R2000, whose TLB is refilled by
software and can be flushed under kernel control.  Share groups exploit
this (section 6.2): before shrinking or detaching a shared region the
kernel *synchronously* flushes the TLBs of all processors, so any running
group member immediately takes a TLB-miss trap and blocks on the shared
read lock until the update is complete.

Entries are keyed by ``(asid, vpn)``.  All members of a share group run
with the same address-space ID, so switching between members leaves their
shared translations warm — one of the quiet wins of the design.

Per-ASID flushes used to scan every resident entry.  The TLB now keeps a
secondary index grouping entries by ASID so ``flush_asid``/``flush_range``
touch only the victim space's entries; the old full scan survives as the
``vm_index="linear"`` ablation (``asid_index=False``).  How many entries
each flush examined is reported through the per-CPU kstat counter
``tlb_asid_flush_scanned`` — host-side accounting that charges no cycles.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Optional, Tuple


class TLBEntry:
    __slots__ = ("asid", "vpn", "pfn", "writable")

    def __init__(self, asid: int, vpn: int, pfn: int, writable: bool):
        self.asid = asid
        self.vpn = vpn
        self.pfn = pfn
        self.writable = writable

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        mode = "rw" if self.writable else "ro"
        return "<TLBEntry asid=%d vpn=%#x pfn=%d %s>" % (self.asid, self.vpn, self.pfn, mode)


class TLB:
    """A fixed-capacity, FIFO-replacement, software-refilled TLB.

    The R2000 replaces entries via a hardware random register; we use FIFO
    so simulations are deterministic.  Statistics are kept so experiments
    can report hit rates and shootdown counts.
    """

    __slots__ = (
        "capacity", "_entries", "_by_asid", "_kstat", "_cpu_idx",
        "hits", "misses", "flushes", "flush_pages", "shootdowns",
    )

    def __init__(
        self,
        capacity: int = 64,
        kstat=None,
        cpu_idx: int = 0,
        asid_index: bool = True,
    ):
        if capacity <= 0:
            raise ValueError("TLB capacity must be positive")
        self.capacity = capacity
        self._entries: "OrderedDict[Tuple[int, int], TLBEntry]" = OrderedDict()
        #: secondary index: asid -> {vpn: entry}; None in the linear ablation
        self._by_asid: Optional[Dict[int, Dict[int, TLBEntry]]] = (
            {} if asid_index else None
        )
        self._kstat = kstat
        self._cpu_idx = cpu_idx
        self.hits = 0
        self.misses = 0
        self.flushes = 0
        self.flush_pages = 0
        self.shootdowns = 0

    def _scanned(self, n: int) -> None:
        """Record how many entries a per-ASID flush examined."""
        if self._kstat is not None:
            self._kstat.add("cpu", self._cpu_idx, "tlb_asid_flush_scanned", n)

    def _index_drop(self, asid: int, vpn: int) -> None:
        if self._by_asid is None:
            return
        bucket = self._by_asid.get(asid)
        if bucket is not None:
            bucket.pop(vpn, None)
            if not bucket:
                del self._by_asid[asid]

    # ------------------------------------------------------------------
    # lookup / refill

    def lookup(self, asid: int, vpn: int) -> Optional[TLBEntry]:
        """Probe the TLB.  Updates hit/miss statistics."""
        entry = self._entries.get((asid, vpn))
        if entry is None:
            self.misses += 1
            return None
        self.hits += 1
        return entry

    def probe(self, asid: int, vpn: int) -> Optional[TLBEntry]:
        """Look up without touching statistics (for assertions/tests)."""
        return self._entries.get((asid, vpn))

    def insert(self, asid: int, vpn: int, pfn: int, writable: bool) -> TLBEntry:
        """Install a translation, evicting the oldest entry if full."""
        key = (asid, vpn)
        if key in self._entries:
            del self._entries[key]
            self._index_drop(asid, vpn)
        elif len(self._entries) >= self.capacity:
            old_key, _old = self._entries.popitem(last=False)
            self._index_drop(old_key[0], old_key[1])
        entry = TLBEntry(asid, vpn, pfn, writable)
        self._entries[key] = entry
        if self._by_asid is not None:
            self._by_asid.setdefault(asid, {})[vpn] = entry
        return entry

    # ------------------------------------------------------------------
    # invalidation

    def flush_all(self) -> None:
        """Drop every translation (global flush)."""
        self._entries.clear()
        if self._by_asid is not None:
            self._by_asid.clear()
        self.flushes += 1

    def flush_asid(self, asid: int) -> None:
        """Drop all translations for one address space."""
        if self._by_asid is not None:
            bucket = self._by_asid.pop(asid, None)
            if bucket is not None:
                self._scanned(len(bucket))
                for vpn in bucket:
                    del self._entries[(asid, vpn)]
            else:
                self._scanned(0)
        else:
            self._scanned(len(self._entries))
            stale = [key for key in self._entries if key[0] == asid]
            for key in stale:
                del self._entries[key]
        self.flushes += 1

    def flush_page(self, asid: int, vpn: int) -> None:
        """Drop a single translation if present."""
        dropped = self._entries.pop((asid, vpn), None)
        if dropped is not None:
            self._index_drop(asid, vpn)
            self.flush_pages += 1
        self.flushes += 1

    def flush_range(self, asid: int, vpn_lo: int, vpn_hi: int) -> None:
        """Drop translations for ``vpn_lo <= vpn < vpn_hi`` in one space."""
        if self._by_asid is not None:
            bucket = self._by_asid.get(asid)
            if bucket is None:
                self._scanned(0)
            else:
                self._scanned(len(bucket))
                stale_vpns = [
                    vpn for vpn in bucket if vpn_lo <= vpn < vpn_hi
                ]
                for vpn in stale_vpns:
                    del bucket[vpn]
                    del self._entries[(asid, vpn)]
                    self.flush_pages += 1
                if not bucket:
                    del self._by_asid[asid]
        else:
            self._scanned(len(self._entries))
            stale = [
                key for key in self._entries
                if key[0] == asid and vpn_lo <= key[1] < vpn_hi
            ]
            for key in stale:
                del self._entries[key]
                self.flush_pages += 1
        self.flushes += 1

    # ------------------------------------------------------------------
    # introspection

    def __len__(self) -> int:
        return len(self._entries)

    def entries(self):
        """Snapshot of live entries (for invariant checks in tests)."""
        return list(self._entries.values())

    def index_errors(self):
        """Ways the per-ASID index disagrees with ``_entries`` (invariant).

        Empty when coherent — and always empty in the linear ablation,
        which has no index to disagree.
        """
        if self._by_asid is None:
            return []
        errors = []
        indexed = {
            (asid, vpn)
            for asid, bucket in self._by_asid.items()
            for vpn in bucket
        }
        primary = set(self._entries)
        for key in sorted(primary - indexed):
            errors.append("entry %r missing from ASID index" % (key,))
        for key in sorted(indexed - primary):
            errors.append("stale ASID index entry %r" % (key,))
        for asid, bucket in self._by_asid.items():
            if not bucket:
                errors.append("empty bucket left for asid %d" % asid)
            for vpn, entry in bucket.items():
                if self._entries.get((asid, vpn)) is not entry:
                    errors.append(
                        "index object mismatch for %r" % ((asid, vpn),)
                    )
        return errors

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
