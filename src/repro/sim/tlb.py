"""Software-managed translation lookaside buffer.

The paper's target processor is the MIPS R2000, whose TLB is refilled by
software and can be flushed under kernel control.  Share groups exploit
this (section 6.2): before shrinking or detaching a shared region the
kernel *synchronously* flushes the TLBs of all processors, so any running
group member immediately takes a TLB-miss trap and blocks on the shared
read lock until the update is complete.

Entries are keyed by ``(asid, vpn)``.  All members of a share group run
with the same address-space ID, so switching between members leaves their
shared translations warm — one of the quiet wins of the design.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional


class TLBEntry:
    __slots__ = ("asid", "vpn", "pfn", "writable")

    def __init__(self, asid: int, vpn: int, pfn: int, writable: bool):
        self.asid = asid
        self.vpn = vpn
        self.pfn = pfn
        self.writable = writable

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        mode = "rw" if self.writable else "ro"
        return "<TLBEntry asid=%d vpn=%#x pfn=%d %s>" % (self.asid, self.vpn, self.pfn, mode)


class TLB:
    """A fixed-capacity, FIFO-replacement, software-refilled TLB.

    The R2000 replaces entries via a hardware random register; we use FIFO
    so simulations are deterministic.  Statistics are kept so experiments
    can report hit rates and shootdown counts.
    """

    def __init__(self, capacity: int = 64):
        if capacity <= 0:
            raise ValueError("TLB capacity must be positive")
        self.capacity = capacity
        self._entries: "OrderedDict[Tuple[int, int], TLBEntry]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.flushes = 0
        self.shootdowns = 0

    # ------------------------------------------------------------------
    # lookup / refill

    def lookup(self, asid: int, vpn: int) -> Optional[TLBEntry]:
        """Probe the TLB.  Updates hit/miss statistics."""
        entry = self._entries.get((asid, vpn))
        if entry is None:
            self.misses += 1
            return None
        self.hits += 1
        return entry

    def probe(self, asid: int, vpn: int) -> Optional[TLBEntry]:
        """Look up without touching statistics (for assertions/tests)."""
        return self._entries.get((asid, vpn))

    def insert(self, asid: int, vpn: int, pfn: int, writable: bool) -> TLBEntry:
        """Install a translation, evicting the oldest entry if full."""
        key = (asid, vpn)
        if key in self._entries:
            del self._entries[key]
        elif len(self._entries) >= self.capacity:
            self._entries.popitem(last=False)
        entry = TLBEntry(asid, vpn, pfn, writable)
        self._entries[key] = entry
        return entry

    # ------------------------------------------------------------------
    # invalidation

    def flush_all(self) -> None:
        """Drop every translation (global flush)."""
        self._entries.clear()
        self.flushes += 1

    def flush_asid(self, asid: int) -> None:
        """Drop all translations for one address space."""
        stale = [key for key in self._entries if key[0] == asid]
        for key in stale:
            del self._entries[key]
        self.flushes += 1

    def flush_page(self, asid: int, vpn: int) -> None:
        """Drop a single translation if present."""
        self._entries.pop((asid, vpn), None)

    def flush_range(self, asid: int, vpn_lo: int, vpn_hi: int) -> None:
        """Drop translations for ``vpn_lo <= vpn < vpn_hi`` in one space."""
        stale = [
            key for key in self._entries
            if key[0] == asid and vpn_lo <= key[1] < vpn_hi
        ]
        for key in stale:
            del self._entries[key]
        self.flushes += 1

    # ------------------------------------------------------------------
    # introspection

    def __len__(self) -> int:
        return len(self._entries)

    def entries(self):
        """Snapshot of live entries (for invariant checks in tests)."""
        return list(self._entries.values())

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
