"""Simulated hardware: event engine, cycle costs, CPUs, TLBs, machine."""

from repro.sim.costs import CostModel, default_costs
from repro.sim.effects import Block, Delay, Yield, kdelay, udelay
from repro.sim.engine import Engine, Event
from repro.sim.machine import Machine
from repro.sim.tlb import TLB, TLBEntry

__all__ = [
    "Block",
    "CostModel",
    "Delay",
    "Engine",
    "Event",
    "Machine",
    "TLB",
    "TLBEntry",
    "Yield",
    "default_costs",
    "kdelay",
    "udelay",
]
