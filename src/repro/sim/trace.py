"""Execution tracing: a ring buffer of kernel events.

Attach a :class:`Tracer` before running and every dispatch, syscall,
fault, signal and group event lands in a bounded ring with its cycle
timestamp — the simulated equivalent of a kernel event log, useful for
debugging workloads and for asserting orderings in tests.

    sim = System(ncpus=2)
    tracer = Tracer.attach(sim.kernel)
    ...
    sim.run()
    for event in tracer.events("syscall"):
        print(event)

Events carry a *phase* (``ph``): ``"i"`` for instants, ``"B"``/``"E"``
for typed begin/end spans (dispatch intervals on a CPU, syscalls inside
a process).  :meth:`Tracer.to_chrome_trace` pairs the spans and emits
Chrome/Perfetto trace-event JSON — one row per CPU, one per process —
loadable in ``chrome://tracing`` or https://ui.perfetto.dev.
"""

from __future__ import annotations

import json
from collections import deque
from typing import Deque, Optional

#: synthetic Chrome pid grouping the CPU rows (real pids start at 1)
_CPU_TRACK_PID = 0


class TraceEvent:
    __slots__ = ("time", "kind", "pid", "detail", "ph", "cpu")

    def __init__(
        self,
        time: int,
        kind: str,
        pid: int,
        detail: str,
        ph: str = "i",
        cpu: Optional[int] = None,
    ):
        self.time = time
        self.kind = kind
        self.pid = pid
        self.detail = detail
        self.ph = ph  #: "i" instant, "B" span begin, "E" span end
        self.cpu = cpu  #: CPU index for CPU-track spans, else None

    def __repr__(self) -> str:
        phase = "" if self.ph == "i" else " <%s>" % self.ph
        return "[%10d] %-9s pid=%-4d %s%s" % (
            self.time, self.kind, self.pid, self.detail, phase,
        )


class Tracer:
    """A bounded event recorder wired into the kernel's hook points."""

    def __init__(self, engine, capacity: int = 10_000):
        self.engine = engine
        self._ring: Deque[TraceEvent] = deque(maxlen=capacity)
        self.dropped = 0
        self.enabled = True

    @classmethod
    def attach(cls, kernel, capacity: int = 10_000) -> "Tracer":
        tracer = cls(kernel.engine, capacity)
        kernel.tracer = tracer
        return tracer

    # ------------------------------------------------------------------

    def record(
        self,
        kind: str,
        pid: int,
        detail: str = "",
        ph: str = "i",
        cpu: Optional[int] = None,
    ) -> None:
        if not self.enabled:
            return
        if len(self._ring) == self._ring.maxlen:
            self.dropped += 1
        self._ring.append(TraceEvent(self.engine.now, kind, pid, detail, ph, cpu))

    def begin(self, kind: str, pid: int, detail: str = "", cpu: Optional[int] = None) -> None:
        """Open a typed span (pair with :meth:`end`)."""
        self.record(kind, pid, detail, ph="B", cpu=cpu)

    def end(self, kind: str, pid: int, detail: str = "", cpu: Optional[int] = None) -> None:
        """Close the innermost open span of this kind on this track."""
        self.record(kind, pid, detail, ph="E", cpu=cpu)

    # ------------------------------------------------------------------

    def events(self, kind: Optional[str] = None, pid: Optional[int] = None):
        """Iterate recorded events, optionally filtered.

        Iterates over a snapshot of the ring, so hooks that record new
        events while a dump is in progress cannot invalidate iteration.
        """
        for event in tuple(self._ring):
            if kind is not None and event.kind != kind:
                continue
            if pid is not None and event.pid != pid:
                continue
            yield event

    def count(self, kind: Optional[str] = None) -> int:
        return sum(1 for _ in self.events(kind))

    def last(self, kind: Optional[str] = None) -> Optional[TraceEvent]:
        result = None
        for event in self.events(kind):
            result = event
        return result

    def dump(self, limit: int = 50) -> str:
        """The most recent events as text (newest last)."""
        tail = list(self._ring)[-limit:]
        return "\n".join(repr(event) for event in tail)

    def clear(self) -> None:
        self._ring.clear()
        self.dropped = 0

    # ------------------------------------------------------------------
    # Chrome trace export

    def to_chrome_trace(self) -> dict:
        """The ring as a Chrome trace-event dict (``json.dumps``-able).

        Layout: one Perfetto process row named ``CPUs`` whose threads
        are the CPUs (dispatch spans show which pid ran where, when),
        plus one process row per simulated pid carrying its syscall
        spans and instant events.  Begin/end pairs are folded into
        complete (``"X"``) events; a span still open when the ring ends
        is closed at the last recorded timestamp; an end whose begin was
        overwritten by ring wraparound is dropped.
        """
        events = tuple(self._ring)
        trace_events = []
        close_at = events[-1].time if events else 0

        cpus = sorted({e.cpu for e in events if e.cpu is not None})
        pids = sorted({e.pid for e in events if e.cpu is None})
        if cpus:
            trace_events.append(_meta("process_name", _CPU_TRACK_PID, 0, "CPUs"))
            for cpu in cpus:
                trace_events.append(
                    _meta("thread_name", _CPU_TRACK_PID, cpu + 1, "CPU %d" % cpu)
                )
        for pid in pids:
            trace_events.append(_meta("process_name", pid, pid, "pid %d" % pid))

        open_spans: dict = {}
        for event in events:
            track = self._track(event)
            if event.ph == "B":
                open_spans.setdefault((track, event.kind), []).append(event)
            elif event.ph == "E":
                stack = open_spans.get((track, event.kind))
                if stack:
                    begin = stack.pop()
                    trace_events.append(self._complete(begin, event.time, track))
            else:
                trace_events.append({
                    "name": event.kind,
                    "cat": event.kind,
                    "ph": "i",
                    "s": "t",
                    "ts": event.time,
                    "pid": track[0],
                    "tid": track[1],
                    "args": {"detail": event.detail, "pid": event.pid},
                })
        for stack in open_spans.values():
            for begin in stack:
                trace_events.append(
                    self._complete(begin, close_at, self._track(begin))
                )
        return {"traceEvents": trace_events, "displayTimeUnit": "ns"}

    def to_chrome_trace_json(self, path: Optional[str] = None) -> str:
        """Serialize :meth:`to_chrome_trace`, optionally writing ``path``."""
        text = json.dumps(self.to_chrome_trace())
        if path is not None:
            with open(path, "w") as handle:
                handle.write(text)
        return text

    @staticmethod
    def _track(event: TraceEvent):
        """(chrome pid, chrome tid) row for an event."""
        if event.cpu is not None:
            return (_CPU_TRACK_PID, event.cpu + 1)
        return (event.pid, event.pid)

    @staticmethod
    def _complete(begin: TraceEvent, end_time: int, track) -> dict:
        name = begin.detail or begin.kind
        if begin.cpu is not None:
            name = "pid %d" % begin.pid
        return {
            "name": name,
            "cat": begin.kind,
            "ph": "X",
            "ts": begin.time,
            "dur": max(end_time - begin.time, 0),
            "pid": track[0],
            "tid": track[1],
            "args": {"detail": begin.detail, "pid": begin.pid},
        }


def _meta(name: str, pid: int, tid: int, value: str) -> dict:
    return {
        "name": name,
        "ph": "M",
        "pid": pid,
        "tid": tid,
        "args": {"name": value},
    }
