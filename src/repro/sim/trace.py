"""Execution tracing: a ring buffer of kernel events.

Attach a :class:`Tracer` before running and every dispatch, syscall,
fault, signal and group event lands in a bounded ring with its cycle
timestamp — the simulated equivalent of a kernel event log, useful for
debugging workloads and for asserting orderings in tests.

    sim = System(ncpus=2)
    tracer = Tracer.attach(sim.kernel)
    ...
    sim.run()
    for event in tracer.events("syscall"):
        print(event)
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional


class TraceEvent:
    __slots__ = ("time", "kind", "pid", "detail")

    def __init__(self, time: int, kind: str, pid: int, detail: str):
        self.time = time
        self.kind = kind
        self.pid = pid
        self.detail = detail

    def __repr__(self) -> str:
        return "[%10d] %-9s pid=%-4d %s" % (self.time, self.kind, self.pid, self.detail)


class Tracer:
    """A bounded event recorder wired into the kernel's hook points."""

    def __init__(self, engine, capacity: int = 10_000):
        self.engine = engine
        self._ring: Deque[TraceEvent] = deque(maxlen=capacity)
        self.dropped = 0
        self.enabled = True

    @classmethod
    def attach(cls, kernel, capacity: int = 10_000) -> "Tracer":
        tracer = cls(kernel.engine, capacity)
        kernel.tracer = tracer
        return tracer

    # ------------------------------------------------------------------

    def record(self, kind: str, pid: int, detail: str = "") -> None:
        if not self.enabled:
            return
        if len(self._ring) == self._ring.maxlen:
            self.dropped += 1
        self._ring.append(TraceEvent(self.engine.now, kind, pid, detail))

    # ------------------------------------------------------------------

    def events(self, kind: Optional[str] = None, pid: Optional[int] = None):
        """Iterate recorded events, optionally filtered."""
        for event in self._ring:
            if kind is not None and event.kind != kind:
                continue
            if pid is not None and event.pid != pid:
                continue
            yield event

    def count(self, kind: Optional[str] = None) -> int:
        return sum(1 for _ in self.events(kind))

    def last(self, kind: Optional[str] = None) -> Optional[TraceEvent]:
        result = None
        for event in self.events(kind):
            result = event
        return result

    def dump(self, limit: int = 50) -> str:
        """The most recent events as text (newest last)."""
        tail = list(self._ring)[-limit:]
        return "\n".join(repr(event) for event in tail)

    def clear(self) -> None:
        self._ring.clear()
        self.dropped = 0
