"""The CPU: drives one process's generator stack and interprets effects.

Each simulated process carries a stack of generator *frames*
(``proc.frames``).  The bottom frame is the process driver created by the
kernel (user program plus implicit exit); additional frames are pushed to
run asynchronously delivered signal handlers.  The CPU repeatedly resumes
the top frame, interprets the effect it yields, and schedules the next
resumption on the discrete-event engine.

User-mode delays are chunked at quantum boundaries.  At every user-mode
boundary the CPU lets the kernel deliver pending signals and honors
preemption requests; kernel-mode execution is never preempted, which is
the classic System V invariant the paper leans on (section 6).

The steady-state hop between ``_resume`` and ``_boundary`` uses the
engine's inline-continuation slot (``engine.resched_inline``) with the
callables prebound in ``__init__``: when the hop is the strictly next
event on the timeline the engine fires it directly — no Event, no queue
traffic, no closures (see ``docs/INTERNALS.md`` §14 and §17).  Paths
that need a cancellable handle or follow anything other than the
straight-line interpreter hop stay on ``engine.schedule_call``.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import SimulationError
from repro.sim.effects import Block, Delay, ExecImage, Yield
from repro.sim.tlb import TLB


class CPU:
    """One processor of the simulated multiprocessor."""

    __slots__ = (
        "idx", "machine", "engine", "costs", "kstat", "profile", "tlb",
        "current", "kernel", "dispatcher", "_last_asid", "_label",
        "_resume_cb", "_boundary_cb", "_dispatch_cb", "_resched",
        "busy_cycles", "switches", "dispatches", "preemptions",
    )

    def __init__(self, idx: int, machine, tlb_capacity: int = 64):
        self.idx = idx
        self.machine = machine
        self.engine = machine.engine
        self.costs = machine.costs
        self.kstat = machine.kstat
        self.profile = machine.profile
        self.tlb = TLB(
            tlb_capacity,
            kstat=machine.kstat,
            cpu_idx=idx,
            asid_index=machine.vm_index != "linear",
        )
        self.current = None  #: the proc executing on this CPU, or None
        self.kernel = None  #: set by Kernel.boot()
        self.dispatcher = None  #: set by the scheduler at boot
        self._last_asid: Optional[int] = None
        self._label = "cpu%d" % idx  #: trace detail, built once
        # Prebound hot-path callables: one bound method each for the
        # lifetime of the CPU.  An armed host profiler swaps in the timed
        # interpreter dispatch; a disarmed CPU pays nothing for it.
        if machine.profile.enabled:
            self._resume_cb = self._resume_profiled
        else:
            self._resume_cb = self._resume
        self._boundary_cb = self._boundary
        self._dispatch_cb = self._dispatch_boundary
        # the trampoline-eliding hop for steady-state resumes; under the
        # naive-loop ablation it degrades to schedule_call inside the
        # engine, so call sites never need to know the mode
        self._resched = machine.engine.resched_inline
        # statistics
        self.busy_cycles = 0
        self.switches = 0
        self.dispatches = 0
        self.preemptions = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        running = self.current.pid if self.current is not None else "idle"
        return "<CPU%d %s>" % (self.idx, running)

    # ------------------------------------------------------------------
    # dispatch

    def assign(self, proc) -> None:
        """Start running ``proc`` on this CPU.

        Charges the dispatch cost plus a context-switch cost that depends
        on whether the incoming process uses the same address space as
        the previous one (share-group members share an ASID, so switching
        between them is cheap and keeps the TLB warm).
        """
        if self.current is not None:
            raise SimulationError("CPU%d assign while busy" % self.idx)
        self.current = proc
        proc.cpu = self
        proc.last_cpu = self.idx
        proc.need_resched = False
        proc.quantum_left = self.costs.quantum
        self.dispatches += 1
        cost = self.costs.dispatch
        asid = proc.asid()
        kstat = self.kstat
        metrics = kstat.enabled
        if metrics:
            kstat.add("cpu", self.idx, "dispatches")
        if proc.runq_since is not None:
            if metrics:
                kstat.observe(
                    "kernel", 0, "runq_wait", self.engine.now - proc.runq_since
                )
            proc.runq_since = None
        if asid != self._last_asid:
            cost += self.costs.context_switch
            self.switches += 1
            if metrics:
                kstat.add("cpu", self.idx, "context_switches")
        else:
            cost += self.costs.context_switch_same_as
            if metrics:
                kstat.add("cpu", self.idx, "switches_same_as")
        self._last_asid = asid
        self.busy_cycles += cost
        kernel = self.kernel
        if kernel is not None and kernel.tracer is not None:
            kernel.trace("dispatch", proc.pid, self._label, ph="B", cpu=self.idx)
        self.engine.schedule(cost, self._dispatch_cb)

    def _dispatch_boundary(self) -> None:
        """First boundary after dispatch: continue where the proc left off."""
        proc = self.current
        value = proc.resume_value
        proc.resume_value = None
        self._boundary(value)

    # ------------------------------------------------------------------
    # interpreter

    def _resume_profiled(self, value=None, exc: Optional[BaseException] = None) -> None:
        """The interpreter dispatch under the ``cpu.interp`` phase timer."""
        profile = self.profile
        profile.push("cpu.interp")
        try:
            CPU._resume(self, value, exc)
        finally:
            profile.pop()

    def _resume(self, value=None, exc: Optional[BaseException] = None) -> None:
        """Advance the current process's top frame by one effect."""
        proc = self.current
        if proc is None:
            raise SimulationError("CPU%d resume with no current proc" % self.idx)
        frame = proc.frames[-1]
        try:
            if exc is not None:
                effect = frame.throw(exc)
            else:
                effect = frame.send(value)
        except StopIteration:
            self._frame_done(proc)
            return
        except ExecImage as image:
            # exec(): throw away the old image, start the new driver.
            proc.frames = [image.driver]
            proc.saved_resume = []
            self.engine.schedule_call(0, self._resume_cb, None)
            return
        except SimulationError:
            raise
        except Exception as err:
            # An uncaught exception in guest or kernel code is a bug in
            # the workload (or in us); wrap it with enough context to
            # find the culprit, keeping the original traceback chained.
            # ``err``, not ``exc``: the parameter names the *injected*
            # throwable and must not be shadowed by what the frame raised.
            raise SimulationError(
                "pid %d (%s) crashed on CPU%d at cycle %d: %r"
                % (proc.pid, proc.name, self.idx, self.engine.now, err)
            ) from err
        # inline effect interpretation: Delay is ~all of the steady state
        if type(effect) is Delay:
            cycles = effect.cycles
            if effect.user:
                self._user_delay(proc, cycles)
            else:
                self.busy_cycles += cycles
                self._resched(cycles, self._resume_cb, None)
            return
        self._interpret(proc, effect)

    def _frame_done(self, proc) -> None:
        """The top frame ran to completion."""
        proc.frames.pop()
        if proc.frames:
            saved = proc.saved_resume.pop()
            self.engine.schedule_call(0, self._boundary_cb, saved)
        else:
            # The driver fell off the end without exiting; the kernel
            # turns that into an implicit exit(0).
            proc.frames.append(self.kernel.exit_generator(proc, 0))
            self.engine.schedule_call(0, self._resume_cb, None)

    def _interpret(self, proc, effect) -> None:
        if type(effect) is Delay:
            if effect.user:
                self._user_delay(proc, effect.cycles)
            else:
                self.busy_cycles += effect.cycles
                self._resched(effect.cycles, self._resume_cb, None)
            return
        if type(effect) is Block:
            self._deschedule(proc)
            return
        if type(effect) is Yield:
            if self.dispatcher is not None and self.dispatcher.has_runnable():
                self._preempt(proc, resume_value=None)
            else:
                # sched_yield with an empty run queue: stay on the CPU
                cost = self.costs.spin_poll
                self.busy_cycles += cost
                self.engine.schedule_call(cost, self._boundary_cb, None)
            return
        raise SimulationError("unknown effect %r from pid %s" % (effect, proc.pid))

    # ------------------------------------------------------------------
    # user-mode execution

    def _user_delay(self, proc, cycles: int) -> None:
        """Burn preemptible user cycles, chunked at the quantum.

        The unburned remainder travels *inside* the resume token, never
        in shared per-proc state: a signal handler pushed at the chunk
        boundary may run its own chunked delays without clobbering the
        interrupted computation's remainder.
        """
        quantum_left = proc.quantum_left
        cap = quantum_left if quantum_left > 1 else 1
        chunk = cycles if cycles < cap else cap
        proc.quantum_left = quantum_left - chunk
        remaining = cycles - chunk
        self.busy_cycles += chunk
        # The hop to the chunk boundary is inline-eligible: _boundary
        # itself still performs signal delivery and preemption checks,
        # so eliding the queue round-trip is semantically invisible.
        if remaining > 0:
            self._resched(chunk, self._boundary_cb, _ContinueDelay(remaining))
        else:
            self._resched(chunk, self._boundary_cb, None)

    def _boundary(self, resume_value) -> None:
        """A user-mode boundary: deliver signals, honor preemption, resume."""
        proc = self.current
        if proc is None:
            raise SimulationError("CPU%d boundary with no current proc" % self.idx)
        # Common-case precheck mirroring Kernel.user_boundary's early
        # returns: user mode, not blocked, nothing pending — delivery
        # cannot happen, so skip the call on the steady-state hop.
        # (proc.pending._pending: the raw set, skipping __bool__ dispatch
        # on a check that runs every user-mode chunk)
        if self.kernel is not None and not proc.in_kernel and (
            proc.block_count < 0 or proc.pending._pending
        ):
            delivery = self.kernel.user_boundary(proc)
        else:
            delivery = None
        if delivery is not None:
            proc.saved_resume.append(resume_value)
            proc.frames.append(delivery)
            self.engine.schedule_call(0, self._resume_cb, None)
            return
        if proc.quantum_left <= 0:
            proc.quantum_left = self.costs.quantum
            if self.dispatcher is not None and self.dispatcher.should_preempt(self, proc):
                self.preemptions += 1
                self._preempt(proc, resume_value)
                return
        if proc.need_resched:
            self.preemptions += 1
            self._preempt(proc, resume_value)
            return
        if type(resume_value) is _ContinueDelay:
            self._user_delay(proc, resume_value.remaining)
        else:
            self._resume_cb(resume_value)

    def _continue(self, proc, resume_value) -> None:
        if type(resume_value) is _ContinueDelay:
            self._user_delay(proc, resume_value.remaining)
        else:
            self._resume_cb(resume_value)

    # ------------------------------------------------------------------
    # leaving the CPU

    def _preempt(self, proc, resume_value) -> None:
        """Put ``proc`` back on the run queue and go idle."""
        proc.resume_value = resume_value
        proc.need_resched = False
        self.current = None
        proc.cpu = None
        if self.kstat.enabled:
            self.kstat.add("cpu", self.idx, "preempt_offs")
        kernel = self.kernel
        if kernel is not None and kernel.tracer is not None:
            kernel.trace("dispatch", proc.pid, self._label, ph="E", cpu=self.idx)
        self.dispatcher.requeue(proc)
        self.dispatcher.cpu_idle(self)

    def _deschedule(self, proc) -> None:
        """The process blocked; free the CPU."""
        self.current = None
        proc.cpu = None
        kernel = self.kernel
        if kernel is not None and kernel.tracer is not None:
            kernel.trace("dispatch", proc.pid, self._label, ph="E", cpu=self.idx)
        self.dispatcher.cpu_idle(self)

    # ------------------------------------------------------------------
    # accounting

    def _charge(self, cycles: int) -> None:
        self.busy_cycles += cycles


class _ContinueDelay:
    """Resume token: the process was interrupted mid user-delay and
    still owes ``remaining`` cycles of it."""

    __slots__ = ("remaining",)

    def __init__(self, remaining: int):
        self.remaining = remaining

    def __repr__(self) -> str:  # pragma: no cover
        return "<continue-delay %d>" % self.remaining
