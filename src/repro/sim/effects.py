"""Primitive effects yielded by simulated code.

Simulated programs — both user programs and kernel code paths — are
Python generators.  They interact with the machine by yielding *effects*,
which the CPU interpreter (:mod:`repro.sim.cpu`) executes:

``Delay``
    Consume cycles on the current CPU.  User-mode delays are preemptible
    (they are chunked at quantum boundaries and signal delivery happens
    between chunks); kernel-mode delays are not, matching the System V.3
    rule that kernel code is never preempted on its own CPU.

``Block``
    Give up the CPU without becoming runnable.  The yielding code must
    already have registered the process on some wait queue (a semaphore,
    a sleep channel, a zombie list); somebody else's ``wakeup`` makes it
    runnable again.

``Yield``
    Voluntarily return to the run queue (used by ``sched_yield``-style
    paths and the preemption machinery).

Because the discrete-event engine runs exactly one effect at a time,
state mutations performed *between* yields are atomic — this is how the
simulation models atomic instructions and interlocked bus operations.
"""

from __future__ import annotations


class Effect:
    __slots__ = ()


class Delay(Effect):
    """Consume ``cycles`` on the current CPU."""

    __slots__ = ("cycles", "user")

    def __init__(self, cycles: int, user: bool = False):
        self.cycles = int(cycles)
        self.user = user

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<Delay %d %s>" % (self.cycles, "user" if self.user else "kernel")


class Block(Effect):
    """Deschedule until an external ``wakeup``.  ``reason`` aids debugging."""

    __slots__ = ("reason",)

    def __init__(self, reason: str = ""):
        self.reason = reason

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<Block %s>" % (self.reason or "?")


class Yield(Effect):
    """Voluntarily relinquish the CPU but stay runnable."""

    __slots__ = ()


class ExecImage(Exception):
    """Control transfer raised by ``exec``: replace the process driver.

    The CPU interpreter catches this, discards the process's entire
    generator stack (the old program image), and installs ``driver`` as
    the new bottom frame.
    """

    def __init__(self, driver):
        self.driver = driver
        super().__init__("exec image replacement")


#: interned delays — the cost model yields a small, heavily reused set of
#: cycle values, so the steady state allocates no Delay at all.  Delay
#: instances are immutable by convention (the interpreter only reads
#: them), which is what makes sharing safe.  Both caches share one bound
#: so pathological computed costs cannot grow either without limit.
_DELAY_CACHE_MAX = 4096

_KDELAY_CACHE: dict = {}


def kdelay(cycles: int) -> Delay:
    """A kernel-mode (non-preemptible) delay."""
    delay = _KDELAY_CACHE.get(cycles)
    if delay is None:
        delay = Delay(cycles, user=False)
        if len(_KDELAY_CACHE) < _DELAY_CACHE_MAX:
            _KDELAY_CACHE[cycles] = delay
    return delay


_UDELAY_CACHE: dict = {}


def udelay(cycles: int) -> Delay:
    """A user-mode (preemptible) delay."""
    delay = _UDELAY_CACHE.get(cycles)
    if delay is None:
        delay = Delay(cycles, user=True)
        if len(_UDELAY_CACHE) < _DELAY_CACHE_MAX:
            _UDELAY_CACHE[cycles] = delay
    return delay
