"""The simulated multiprocessor: CPUs, physical memory, ASIDs, shootdowns.

The machine is deliberately close to the paper's target: a MIPS R2000
based shared-memory multiprocessor with per-CPU software-managed TLBs.
The kernel object (:mod:`repro.kernel.kernel`) is built on top of one
machine and wires itself into every CPU at boot.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from repro.inject import FailPointRegistry
from repro.mem.frames import FrameAllocator, PAGE_SIZE
from repro.obs.kstat import KstatRegistry
from repro.obs.lockdep import LockDep, NULL_LOCKDEP
from repro.obs.lockstat import LockStatRegistry
from repro.obs.profile import NULL_PROFILER, HostProfiler, active_session
from repro.sim.costs import CostModel, default_costs
from repro.sim.cpu import CPU
from repro.sim.engine import ENGINE_LOOP_MODES, ENGINE_QUEUE_MODES, Engine


#: pregion-lookup / TLB-flush strategies: "indexed" is the fast path,
#: "linear" the pre-index ablation (mirrors ``scheduler="global"``)
VM_INDEX_MODES = ("indexed", "linear")


class Machine:
    """N CPUs sharing a physical memory and a cycle-accurate event clock."""

    def __init__(
        self,
        ncpus: int = 4,
        memory_bytes: int = 32 * 1024 * 1024,
        costs: Optional[CostModel] = None,
        tlb_capacity: int = 64,
        metrics_enabled: bool = True,
        lockdep_enabled: bool = False,
        seed: Optional[int] = None,
        perturb: Optional[Iterable[str]] = None,
        vm_index: str = "indexed",
        profile: bool = False,
        engine_loop: Optional[str] = None,
        engine_queue: Optional[str] = None,
    ):
        if ncpus <= 0:
            raise ValueError("need at least one CPU")
        if vm_index not in VM_INDEX_MODES:
            raise ValueError(
                "unknown vm_index %r (choose from %s)"
                % (vm_index, ", ".join(VM_INDEX_MODES))
            )
        if engine_loop is not None and engine_loop not in ENGINE_LOOP_MODES:
            raise ValueError(
                "unknown engine_loop %r (choose from %s)"
                % (engine_loop, ", ".join(ENGINE_LOOP_MODES))
            )
        if engine_queue is not None and engine_queue not in ENGINE_QUEUE_MODES:
            raise ValueError(
                "unknown engine_queue %r (choose from %s)"
                % (engine_queue, ", ".join(ENGINE_QUEUE_MODES))
            )
        # Must be set before the CPUs exist: each CPU's TLB keys its
        # per-ASID index decision off this flag.
        self.vm_index = vm_index
        self.engine = Engine(
            seed=seed, perturb=perturb, loop=engine_loop, queue=engine_queue
        )
        self.costs = costs if costs is not None else default_costs()
        self.costs.validate()
        self.frames = FrameAllocator(memory_bytes // PAGE_SIZE)
        # Observability registries live on the machine so every lock and
        # CPU can reach them without a kernel reference; collection is
        # host-side and charges no simulated cycles.
        self.kstat = KstatRegistry(enabled=metrics_enabled)
        self.lockstats = LockStatRegistry(enabled=metrics_enabled)
        self.lockdep = LockDep(self) if lockdep_enabled else NULL_LOCKDEP
        # Host-side self-profiler: must exist before the CPUs (each CPU
        # decides its interpreter hook off it) and before the engine hook
        # below.  An active --profile session collects every armed one.
        if profile:
            self.profile = HostProfiler()
            session = active_session()
            if session is not None:
                session.add(self.profile)
        else:
            self.profile = NULL_PROFILER
        self.engine.profile = self.profile
        # Fault injection shares the observability plumbing: one registry
        # per machine, handed to the few leaf allocators that cannot
        # reach the kernel object.
        self.inject = FailPointRegistry(self.kstat)
        self.frames.inject = self.inject
        self.kstat.profile = self.profile
        self.inject.profile = self.profile
        self.cpus: List[CPU] = [CPU(i, self, tlb_capacity) for i in range(ncpus)]
        self._next_asid = 0
        self.shootdowns = 0

    @property
    def ncpus(self) -> int:
        return len(self.cpus)

    @property
    def now(self) -> int:
        return self.engine.now

    # ------------------------------------------------------------------
    # address-space IDs

    def alloc_asid(self) -> int:
        """Allocate a fresh address-space ID.

        Real R2000 hardware has 64 ASIDs and recycles them with a global
        flush; the simulation never recycles (IDs are unbounded ints) but
        keeps the per-address-space keying, which is what matters for the
        share-group warm-TLB effect.
        """
        self._next_asid += 1
        return self._next_asid

    # ------------------------------------------------------------------
    # TLB maintenance

    def shootdown_cost(self) -> int:
        """Cycles the initiator pays for a synchronous all-CPU flush."""
        return self.costs.tlb_shootdown_percpu * self.ncpus

    def tlb_shootdown(self, asid: Optional[int] = None) -> int:
        """Synchronously flush every CPU's TLB (section 6.2 of the paper).

        Performed while the caller holds the shared pregion update lock:
        any running group member immediately TLB-misses, traps into the
        kernel, and blocks on the shared read lock until the update is
        done.  Returns the cycle cost the initiator must charge.
        """
        for cpu in self.cpus:
            if asid is None:
                cpu.tlb.flush_all()
            else:
                cpu.tlb.flush_asid(asid)
            cpu.tlb.shootdowns += 1
        self.shootdowns += 1
        return self.shootdown_cost()

    def tlb_shootdown_range(self, asid: int, vpn_lo: int, vpn_hi: int) -> int:
        """Targeted shootdown: flush one VPN window of one space everywhere.

        Same synchronous protocol and initiator cost as a full
        :meth:`tlb_shootdown`, but every other warm translation —
        including the rest of this address space — survives, so group
        members do not refill their whole working set afterwards.
        """
        for cpu in self.cpus:
            cpu.tlb.flush_range(asid, vpn_lo, vpn_hi)
            cpu.tlb.shootdowns += 1
        self.shootdowns += 1
        return self.shootdown_cost()

    def tlb_flush_page(self, asid: int, vpn: int) -> None:
        """Drop one translation everywhere (cheap, used on COW breaks)."""
        for cpu in self.cpus:
            cpu.tlb.flush_page(asid, vpn)

    def tlb_flush_range(self, asid: int, vpn_lo: int, vpn_hi: int) -> None:
        """Drop one VPN window everywhere without shootdown accounting.

        Structural helper for non-sharing address spaces, where no other
        CPU can be running the victim space mid-update; the caller
        charges whatever local flush cost applies.
        """
        for cpu in self.cpus:
            cpu.tlb.flush_range(asid, vpn_lo, vpn_hi)

    # ------------------------------------------------------------------
    # introspection

    def idle_cpus(self) -> List[CPU]:
        return [cpu for cpu in self.cpus if cpu.current is None]

    def utilization(self) -> float:
        """Mean fraction of elapsed cycles the CPUs spent busy."""
        if self.engine.now == 0:
            return 0.0
        busy = sum(cpu.busy_cycles for cpu in self.cpus)
        return busy / (self.engine.now * self.ncpus)
