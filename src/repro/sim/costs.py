"""The cycle cost model.

Every cycle charged anywhere in the simulated kernel or hardware comes
from a named constant in :class:`CostModel`, so experiments can state
exactly what they assume and ablations can turn individual costs on and
off.  Defaults approximate 1988-era relative magnitudes on a MIPS R2000
class multiprocessor (the paper's target machine): memory references cost
tens of cycles, trap entry hundreds, a context switch or a page copy
thousands.  Absolute values are not meaningful — the reproduction targets
*shapes* (orderings, ratios, crossovers), which are governed by these
ratios.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace
from typing import Dict


@dataclass
class CostModel:
    """Cycle costs charged by the simulated hardware and kernel."""

    # ---------------------------------------------------------------- memory
    mem_access: int = 20  #: base cost of one user memory reference
    mem_per_word: int = 1  #: additional cost per 4 bytes moved
    cas: int = 30  #: atomic read-modify-write (interlocked bus op)

    # ------------------------------------------------------------------- TLB
    tlb_refill: int = 40  #: software TLB refill, private mapping fast path
    tlb_flush_local: int = 50  #: flush this CPU's TLB
    tlb_shootdown_percpu: int = 400  #: synchronous cross-CPU flush, per CPU

    # --------------------------------------------------------------- faulting
    fault_entry: int = 300  #: trap into the kernel for a page fault
    page_zero: int = 1000  #: demand-zero a fresh page
    page_copy: int = 2000  #: copy a 4 KB page (COW break)
    pt_copy_per_page: int = 8  #: duplicate one page-table entry on fork

    # --------------------------------------------------------------- syscalls
    syscall_entry: int = 150  #: trap + register save + kernel entry
    syscall_exit: int = 100  #: return-to-user path
    flag_batch_test: int = 2  #: single batched test of the p_flag sync bits
    flag_single_test: int = 10  #: one unbatched per-resource check (ablation)
    resource_sync: int = 100  #: re-sync one shared resource from the shaddr

    # ------------------------------------------------------------- scheduling
    context_switch: int = 1200  #: full switch to a different address space
    context_switch_same_as: int = 400  #: switch within the same address space
    dispatch: int = 200  #: pick next proc off the run queue
    quantum: int = 100_000  #: round-robin time slice
    wakeup: int = 60  #: make a sleeping process runnable

    # ------------------------------------------------------------------ locks
    spin_acquire: int = 5  #: uncontended spinlock acquire/release
    spin_poll: int = 10  #: one polling iteration while spinning
    sema_op: int = 30  #: semaphore bookkeeping (excl. sleep/wakeup)

    # -------------------------------------------------------- process mgmt
    proc_alloc: int = 800  #: proc-table slot, u-area, kernel stack setup
    uarea_copy: int = 600  #: duplicate the u-area (fd table, dirs, handlers)
    pregion_dup: int = 200  #: duplicate one pregion (fork path)
    region_create: int = 250  #: allocate a fresh region
    region_attach: int = 80  #: attach a region to a pregion list
    exec_image: int = 1500  #: overlay a new program image
    exit_teardown: int = 600  #: release a dying process's resources
    thread_alloc: int = 280  #: Mach-style thread: kernel stack + state only
    signal_deliver: int = 400  #: build and tear down a signal frame

    # -------------------------------------------------------------------- I/O
    copyio_per_word: int = 1  #: kernel<->user copy, per 4 bytes
    file_io_base: int = 200  #: per read/write call bookkeeping
    disk_latency: int = 20_000  #: simulated device latency for REG file data
    pipe_op: int = 120  #: pipe bookkeeping per transfer
    socket_op: int = 350  #: socket layer bookkeeping per transfer (mbufs etc.)
    msg_op: int = 180  #: SysV message queue bookkeeping per transfer

    def replace(self, **overrides: int) -> "CostModel":
        """Return a copy with the given costs overridden."""
        return replace(self, **overrides)

    def as_dict(self) -> Dict[str, int]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def validate(self) -> None:
        """Reject non-positive costs (zero is allowed only for ablations)."""
        for f in fields(self):
            value = getattr(self, f.name)
            if not isinstance(value, int) or value < 0:
                raise ValueError("cost %s must be a non-negative int, got %r" % (f.name, value))


def default_costs() -> CostModel:
    """The standard calibration used by tests and benchmarks."""
    return CostModel()
