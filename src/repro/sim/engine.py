"""Deterministic discrete-event simulation engine.

Every piece of simulated work — a user program computing, a kernel path
charging its cost, a CPU spinning on a lock — is expressed as an event on
a single global timeline measured in **cycles**.  The engine is the only
source of time in the system; nothing reads the host clock.

Determinism is load-bearing for the whole reproduction: events that fire
at the same cycle are ordered by a monotonically increasing sequence
number, so a given workload always interleaves the same way and every
test and benchmark is exactly reproducible.

Seeded *perturbation* preserves that property while exploring other
legal histories: an engine built with ``seed=N`` carries a private
``random.Random(N)`` that the scheduler and wakeup paths consult to
break ties they would otherwise break by FIFO/index order.  The same
seed always yields the same interleaving, so every schedule the
explorer (:mod:`repro.check.explore`) visits is exactly reproducible
from its seed.  ``perturb`` names which tie-break sites may consult the
RNG (used by the explorer's shrinker); with no seed, ``rng`` is ``None``
and every call site takes its deterministic default path.

Host-speed notes (see ``docs/INTERNALS.md`` §14 and §17):

* The heap stores ``(time, seq, event)`` triples so sift comparisons
  are C-level int compares instead of ``Event.__lt__`` calls; cancelled
  entries are reclaimed by threshold-triggered compaction and counted
  so ``pending`` is O(1); the default drain loop batches same-cycle
  events, hoisting the ``until``/backwards-time checks behind a single
  time-changed test.
* :meth:`Engine.resched_inline` is the **inline-continuation park**:
  the CPU's steady-state hops (kernel-``Delay`` resumes and user-delay
  chunk boundaries) park a ``(time, seq, fn, token)`` quadruple in a
  tiny sorted list on the engine — one outstanding hop per CPU —
  instead of materializing a heap event.  Whenever the earliest parked
  continuation is due *strictly earlier* than every queued event (ties
  broken by the ``seq`` reserved at park time) the drain loop advances
  the clock and fires it directly — zero Event allocation, zero queue
  traffic; when a queued event is due first the parked hops wait their
  turn.  Continuations only demote to real queued events under the
  naive ablation loop or past the park-list bound, so the protocol is
  observably transparent: exact ``(time, seq)`` order either way.
* ``queue="wheel"`` (env ``REPRO_ENGINE_QUEUE``) swaps the binary heap
  for a :class:`TimeWheel` calendar queue — hashed fixed-width buckets
  with O(1) amortized insert, drained in the same ``(time, seq)``
  total order.  The heap stays the default and the ablation.

``loop="naive"`` (env ``REPRO_ENGINE_LOOP``) falls back to the seed's
one-event-at-a-time loop with the inline slot disabled (continuations
materialize immediately); every {loop} × {queue} combination must stay
cycle-identical — the determinism tests diff all four.
"""

from __future__ import annotations

import heapq
import os
import random
from bisect import insort
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from repro.errors import SimulationError
from repro.obs.profile import NULL_PROFILER

#: every tie-break site the perturbation RNG may be consulted from
PERTURB_FEATURES = frozenset({"wakeup", "enqueue", "place", "select"})

#: drain-loop strategies: "fast" batches same-cycle events and honors
#: the inline-continuation slot, "naive" is the original one-event-at-a-
#: time loop kept as a bit-identical ablation
ENGINE_LOOP_MODES = ("fast", "naive")

#: event-structure strategies: "heap" is the classic binary heap,
#: "wheel" the calendar-queue/time-wheel with O(1) amortized insert
ENGINE_QUEUE_MODES = ("heap", "wheel")

#: calendar-queue bucket width in cycles when none is requested
DEFAULT_WHEEL_WIDTH = 4096

#: distinguishes "no resume token" from a token that is legitimately None
_NO_TOKEN = object()

#: threshold for compacting cancelled entries out of the queue: at least
#: this many dead entries *and* at least half the structure
_COMPACT_MIN_GARBAGE = 64

#: park-list safety bound: the CPUs park at most one continuation each,
#: so crossing this means host code is abusing resched_inline as a
#: general scheduler — demote to real events rather than grow unbounded
_INLINE_PARK_MAX = 1024


def default_engine_loop() -> str:
    """The drain loop used when none is requested (env-overridable)."""
    mode = os.environ.get("REPRO_ENGINE_LOOP", "fast")
    if mode not in ENGINE_LOOP_MODES:
        raise SimulationError(
            "unknown REPRO_ENGINE_LOOP %r (choose from %s)"
            % (mode, ", ".join(ENGINE_LOOP_MODES))
        )
    return mode


def default_engine_queue() -> str:
    """The event structure used when none is requested (env-overridable)."""
    mode = os.environ.get("REPRO_ENGINE_QUEUE", "heap")
    if mode not in ENGINE_QUEUE_MODES:
        raise SimulationError(
            "unknown REPRO_ENGINE_QUEUE %r (choose from %s)"
            % (mode, ", ".join(ENGINE_QUEUE_MODES))
        )
    return mode


class Event:
    """A scheduled callback.  Cancel by calling :meth:`cancel`.

    ``token`` is the resume-token protocol: when set, the engine fires
    ``fn(token)`` instead of ``fn()``, so steady-state interpreter hops
    can reuse one prebound callable instead of allocating a closure per
    event.  A fired event is marked ``cancelled`` so a late
    :meth:`cancel` (e.g. clearing an alarm that already fired) stays a
    no-op and the engine's live-event counter moves exactly once per
    event.
    """

    __slots__ = ("time", "seq", "fn", "token", "cancelled", "engine")

    def __init__(
        self,
        time: int,
        seq: int,
        fn: Callable[..., None],
        token: Any = _NO_TOKEN,
        engine: Optional["Engine"] = None,
    ):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.token = token
        self.cancelled = False
        self.engine = engine

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent."""
        if self.cancelled:
            return
        self.cancelled = True
        engine = self.engine
        if engine is not None:
            engine._note_cancel()

    def __lt__(self, other: "Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = " cancelled" if self.cancelled else ""
        return "<Event t=%d seq=%d%s>" % (self.time, self.seq, state)


class TimeWheel:
    """Calendar-queue event structure: hashed fixed-width buckets.

    An entry at time ``t`` lands in bucket ``t // width`` — bucket ids
    are *absolute* (unbounded ints, a dict key), not modulo a ring size,
    so a bucket only ever holds entries of its own window and there is
    no year-overflow case.  Insert is O(1) amortized: append to the
    bucket's unsorted list (or an O(len) ``insort`` for the rare entry
    landing in the window currently being drained).  A small min-heap
    of bucket ids finds the next non-empty window without scanning, so
    sparse timelines (an alarm 10M cycles out) cost O(log buckets), not
    O(buckets).

    Draining *activates* one bucket at a time: its entries are sorted
    once and merged in front of whatever remains of the current drain
    list, so :meth:`pop` always yields the global ``(time, seq)``
    minimum — the same total order the heap produces, which is what
    keeps ``queue="wheel"`` bit-identical to ``queue="heap"``.
    Entries are ``(time, seq, event)`` triples; ``seq`` uniqueness
    guarantees the Event itself is never compared.
    """

    __slots__ = (
        "width", "_buckets", "_bucket_heap", "_drain", "_pos", "_cur_bid",
        "_size",
    )

    def __init__(self, width: int = DEFAULT_WHEEL_WIDTH):
        if width <= 0:
            raise SimulationError("wheel bucket width must be positive")
        self.width = width
        self._buckets: Dict[int, List[Tuple[int, int, Event]]] = {}
        self._bucket_heap: List[int] = []  #: ids not yet activated
        self._drain: List[Tuple[int, int, Event]] = []  #: sorted ascending
        self._pos = 0  #: consumed prefix of _drain
        self._cur_bid = -1  #: bucket window the drain list fronts
        self._size = 0  #: entries held (live + cancelled)

    def __len__(self) -> int:
        return self._size

    def push(self, time: int, seq: int, event: Event) -> None:
        entry = (time, seq, event)
        bid = time // self.width
        if bid == self._cur_bid:
            # the window being drained: keep the drain list sorted.
            # Everything before _pos already fired at (time', seq') <=
            # (time, seq), so inserting from _pos preserves order.
            insort(self._drain, entry, self._pos)
        else:
            bucket = self._buckets.get(bid)
            if bucket is None:
                self._buckets[bid] = [entry]
                heapq.heappush(self._bucket_heap, bid)
            else:
                bucket.append(entry)
        self._size += 1

    def peek(self) -> Optional[Tuple[int, int, Event]]:
        """The globally-minimum entry, or None.  Activates buckets lazily.

        After ``peek`` returns an entry, that entry is the drain head,
        so a following :meth:`pop` removes exactly it.
        """
        drain = self._drain
        pos = self._pos
        bucket_heap = self._bucket_heap
        buckets = self._buckets
        width = self.width
        while True:
            head = drain[pos] if pos < len(drain) else None
            # drop ids whose bucket was already activated or compacted
            while bucket_heap and bucket_heap[0] not in buckets:
                heapq.heappop(bucket_heap)
            if not bucket_heap:
                return head
            if head is not None and bucket_heap[0] > head[0] // width:
                return head
            # an un-activated bucket may hold an entry ordered before
            # the drain head: activate it and merge (disjoint windows
            # make this a plain sorted merge)
            bid = heapq.heappop(bucket_heap)
            entries = sorted(buckets.pop(bid))
            rest = drain[pos:]
            if rest:
                entries = list(heapq.merge(entries, rest))
            self._drain = drain = entries
            self._pos = pos = 0
            self._cur_bid = bid

    def pop(self) -> Optional[Tuple[int, int, Event]]:
        """Remove and return the minimum entry (None when empty)."""
        entry = self.peek()
        if entry is None:
            return None
        pos = self._pos + 1
        drain = self._drain
        if pos >= 512 and 2 * pos >= len(drain):
            del drain[:pos]
            pos = 0
        self._pos = pos
        self._size -= 1
        return entry

    def compact(self) -> int:
        """Drop cancelled entries everywhere; returns how many went."""
        before = self._size
        drain = [e for e in self._drain[self._pos:] if not e[2].cancelled]
        self._drain = drain
        self._pos = 0
        buckets: Dict[int, List[Tuple[int, int, Event]]] = {}
        for bid, entries in self._buckets.items():
            kept = [e for e in entries if not e[2].cancelled]
            if kept:
                buckets[bid] = kept
        self._buckets = buckets
        self._bucket_heap = list(buckets)
        heapq.heapify(self._bucket_heap)
        self._size = len(drain) + sum(len(v) for v in buckets.values())
        return before - self._size


class Engine:
    """The global event loop and cycle clock.

    >>> eng = Engine()
    >>> fired = []
    >>> _ = eng.schedule(10, lambda: fired.append(eng.now))
    >>> eng.run()
    >>> fired
    [10]
    """

    def __init__(
        self,
        seed: Optional[int] = None,
        perturb: Optional[Iterable[str]] = None,
        loop: Optional[str] = None,
        queue: Optional[str] = None,
        wheel_width: int = DEFAULT_WHEEL_WIDTH,
    ) -> None:
        self.now: int = 0
        #: min-heap of (time, seq, event) — int-tuple ordering keeps the
        #: sift comparisons out of Python code, seq uniqueness guarantees
        #: the Event itself is never compared (empty when queue="wheel")
        self._queue: List[Tuple[int, int, Event]] = []
        self._seq: int = 0
        self._events_processed: int = 0
        self._live: int = 0  #: scheduled, not cancelled, not fired
        self._garbage: int = 0  #: cancelled entries still queued
        self._running = False
        #: host-side self-profiler; the machine swaps in a live one
        self.profile = NULL_PROFILER
        if loop is None:
            loop = default_engine_loop()
        if loop not in ENGINE_LOOP_MODES:
            raise SimulationError(
                "unknown engine loop %r (choose from %s)"
                % (loop, ", ".join(ENGINE_LOOP_MODES))
            )
        self.loop = loop
        if queue is None:
            queue = default_engine_queue()
        if queue not in ENGINE_QUEUE_MODES:
            raise SimulationError(
                "unknown engine queue %r (choose from %s)"
                % (queue, ", ".join(ENGINE_QUEUE_MODES))
            )
        self.queue = queue
        self._wheel = TimeWheel(wheel_width) if queue == "wheel" else None
        # Inline-continuation park (see resched_inline): a small sorted
        # list of (time, seq, fn, token) — one outstanding hop per CPU.
        # Only the fast loop uses it; under the naive ablation
        # continuations materialize immediately as real events.
        self._inline_enabled = loop == "fast"
        self._parked: List[Tuple[int, int, Callable[[Any], None], Any]] = []
        self.inline_hops = 0  #: continuations fired without queue traffic
        self.inline_fallbacks = 0  #: continuations demoted to real events
        self.seed = seed
        self.rng = random.Random(seed) if seed is not None else None
        self.perturb = (
            frozenset(perturb) if perturb is not None else PERTURB_FEATURES
        )
        unknown = self.perturb - PERTURB_FEATURES
        if unknown:
            raise SimulationError(
                "unknown perturbation feature(s): %s" % ", ".join(sorted(unknown))
            )

    def perturbs(self, feature: str) -> bool:
        """May the ``feature`` tie-break site consult the RNG?"""
        return self.rng is not None and feature in self.perturb

    # ------------------------------------------------------------------
    # scheduling

    def _schedule_event(
        self, delay: int, fn: Callable[..., None], token: Any = _NO_TOKEN
    ) -> Event:
        """Schedule ``fn`` to run ``delay`` cycles from now.

        The one scheduling preamble every entry point shares: the
        negative-delay check, the seq bump, the queue push and the
        live-event count.  With a ``token`` the engine fires
        ``fn(token)`` — the no-closure resume-token protocol: ``fn`` is
        a prebound callable that outlives the event and ``token``
        carries the per-event state (it may be ``None``).  ``delay``
        may be zero (the event runs after all events already scheduled
        for the current cycle) but never negative.
        """
        if delay < 0:
            raise SimulationError("cannot schedule into the past (delay=%d)" % delay)
        seq = self._seq + 1
        self._seq = seq
        time = self.now + int(delay)
        event = Event(time, seq, fn, token, self)
        if self._wheel is None:
            heapq.heappush(self._queue, (time, seq, event))
        else:
            self._wheel.push(time, seq, event)
        self._live += 1
        return event

    #: the hot no-closure entry point is the shared preamble itself —
    #: an alias, not a wrapper, so the steady state stays one call deep
    schedule_call = _schedule_event

    def schedule(self, delay: int, fn: Callable[[], None]) -> Event:
        """Schedule ``fn()`` to run ``delay`` cycles from now."""
        return self._schedule_event(delay, fn, _NO_TOKEN)

    def call_soon(self, fn: Callable[[], None]) -> Event:
        """Schedule ``fn`` for the current cycle."""
        return self._schedule_event(0, fn, _NO_TOKEN)

    def resched_inline(
        self, cycles: int, fn: Callable[[Any], None], token: Any
    ) -> None:
        """Park ``fn(token)`` as an inline continuation.

        The trampoline-eliding dispatch protocol for steady-state
        interpreter hops: instead of materializing an Event and paying
        the queue round-trip, the continuation waits in a small sorted
        park list carrying the ``(time, seq)`` pair it *would* have
        sorted under — ``seq`` is reserved here, so every event
        scheduled later sorts after it exactly as if it were queued.
        The fast drain loop fires the earliest parked continuation
        directly — advancing the clock, allocating nothing — whenever
        its due time is **strictly earlier** than the queue minimum (a
        strictly earlier time precedes any queued ``(time, seq)`` pair
        regardless of seq); on a tie the reserved seqs decide, again
        exactly heap order.  When a queued event is due first the
        parked hops simply wait while the queue drains to them.
        Either way the observable schedule is identical to
        :meth:`schedule_call` — the determinism suite diffs the two.

        Inline continuations cannot be cancelled (no Event exists to
        cancel), so this returns ``None``; use :meth:`schedule_call`
        for anything that needs a handle.  Under the naive ablation
        loop (and past the park-list safety bound) the continuation
        materializes immediately as a real event, counted as an
        ``inline_fallback``.
        """
        if cycles < 0:
            raise SimulationError(
                "cannot schedule into the past (delay=%d)" % cycles
            )
        parked = self._parked
        if not self._inline_enabled or len(parked) >= _INLINE_PARK_MAX:
            self._schedule_event(cycles, fn, token)
            self.inline_fallbacks += 1
            return
        seq = self._seq + 1
        self._seq = seq
        # seq is globally unique, so sorting (and the drain's head
        # comparisons) never reach the non-comparable fn/token fields
        insort(parked, (self.now + int(cycles), seq, fn, token))

    # ------------------------------------------------------------------
    # queue hygiene

    def _note_cancel(self) -> None:
        """A live queued entry was cancelled; compact if mostly garbage."""
        self._live -= 1
        garbage = self._garbage + 1
        self._garbage = garbage
        if garbage >= _COMPACT_MIN_GARBAGE and 2 * garbage >= self.queue_size():
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries, preserving identity.

        For the heap: in-place (slice assignment) so a drain loop
        holding a local alias to the queue keeps seeing the compacted
        heap.  Order is only a partial order either way, but pops
        follow the (time, seq) total order regardless, so compaction
        can never reorder the stream.
        """
        if self._wheel is None:
            queue = self._queue
            queue[:] = [entry for entry in queue if not entry[2].cancelled]
            heapq.heapify(queue)
        else:
            self._wheel.compact()
        self._garbage = 0

    def queue_size(self) -> int:
        """Entries physically queued (live + not-yet-reclaimed garbage)."""
        return len(self._queue) if self._wheel is None else len(self._wheel)

    # ------------------------------------------------------------------
    # execution

    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> None:
        """Process events in timestamp order.

        Stops when the queue is empty, when simulated time would pass
        ``until``, or after ``max_events`` events (a runaway guard for
        tests).  Re-entrant calls are rejected.
        """
        if self._running:
            raise SimulationError("Engine.run() is not re-entrant")
        self._running = True
        profile = self.profile
        profiled = profile.enabled
        hops0 = fallbacks0 = 0
        if profiled:
            profile.run_begin(self.now, self._events_processed)
            hops0 = self.inline_hops
            fallbacks0 = self.inline_fallbacks
        try:
            if self.loop == "fast":
                if self._wheel is None:
                    self._drain_fast(until, max_events)
                else:
                    self._drain_fast_wheel(until, max_events)
            elif self._wheel is None:
                self._drain_naive(until, max_events)
            else:
                self._drain_naive_wheel(until, max_events)
        finally:
            self._running = False
            if profiled:
                profile.run_end(self.now, self._events_processed)
                profile.count("inline_hops", self.inline_hops - hops0)
                profile.count(
                    "inline_fallbacks", self.inline_fallbacks - fallbacks0
                )

    def _drain_fast(self, until: Optional[int], max_events: Optional[int]) -> None:
        """Batched drain: same-cycle events skip the time bookkeeping.

        The ``until`` and backwards-time checks only run when the due
        timestamp differs from the current cycle, and hot globals are
        bound to locals.  Event-count accounting is deferred to the
        ``finally`` so the per-event work is: pop, flag, fire — or, for
        an inline continuation at the (time, seq) minimum, just:
        advance, fire.
        """
        queue = self._queue
        parked = self._parked
        pop = heapq.heappop
        no_token = _NO_TOKEN
        profile = self.profile
        # budget 0 means unlimited; a non-positive max_events still lets
        # one event through, exactly like the seed's `processed >= max`
        budget = max(1, max_events) if max_events is not None else 0
        processed = 0
        hops = 0
        now = self.now
        try:
            while True:
                # true queue head (cancelled entries reclaimed on sight)
                while queue:
                    entry = queue[0]
                    if entry[2].cancelled:
                        pop(queue)
                        self._garbage -= 1
                    else:
                        break
                else:
                    entry = None
                # parked[0] < entry compares (time, seq) and stops there
                # — seq uniqueness keeps fn/Event out of the comparison
                if parked and (entry is None or parked[0] < entry):
                    # ------- inline burst: the earliest parked
                    # continuation is the exact (time, seq) minimum —
                    # fire it directly, and keep firing while that
                    # holds.  The profiler brackets the whole burst, so
                    # armed runs pay two profiler calls per burst, not
                    # per hop.
                    profiled = profile.enabled
                    if profiled:
                        profile.push("engine.inline")
                    try:
                        while True:
                            item = parked[0]
                            t = item[0]
                            if t != now:
                                if until is not None and t > until:
                                    self.now = until
                                    return
                                if t < now:
                                    raise SimulationError(
                                        "event queue time went backwards"
                                    )
                                now = self.now = t
                            del parked[0]
                            hops += 1
                            item[2](item[3])
                            processed += 1
                            if processed == budget:
                                return
                            if not parked:
                                break
                            # the next parked hop fires iff it still
                            # beats the head (the fired hop may have
                            # queued new events)
                            while queue:
                                entry = queue[0]
                                if entry[2].cancelled:
                                    pop(queue)
                                    self._garbage -= 1
                                else:
                                    break
                            else:
                                continue
                            if entry < parked[0]:
                                break
                    finally:
                        if profiled:
                            profile.pop()
                    continue
                # ------- queue path: one real event per iteration
                # (not-yet-due parked hops just wait their turn)
                if entry is None:
                    break
                event = entry[2]
                t = entry[0]
                if t != now:
                    if until is not None and t > until:
                        self.now = until
                        return
                    if t < now:
                        raise SimulationError("event queue time went backwards")
                    now = self.now = t
                pop(queue)
                event.cancelled = True
                self._live -= 1
                token = event.token
                if token is no_token:
                    event.fn()
                else:
                    event.fn(token)
                processed += 1
                if processed == budget:
                    return
            if until is not None and until > now:
                self.now = until
        finally:
            self._events_processed += processed
            self.inline_hops += hops

    def _drain_fast_wheel(
        self, until: Optional[int], max_events: Optional[int]
    ) -> None:
        """The fast drain against the calendar queue.

        Same structure as :meth:`_drain_fast` with the heap peek/pop
        replaced by wheel calls; the inline burst still bypasses the
        queue entirely, so the method-call cost only lands on the
        residual queued events the wheel exists to absorb.
        """
        wheel = self._wheel
        peek = wheel.peek
        wpop = wheel.pop
        parked = self._parked
        no_token = _NO_TOKEN
        profile = self.profile
        budget = max(1, max_events) if max_events is not None else 0
        processed = 0
        hops = 0
        now = self.now
        try:
            while True:
                while True:
                    head = peek()
                    if head is None or not head[2].cancelled:
                        break
                    wpop()
                    self._garbage -= 1
                if parked and (head is None or parked[0] < head):
                    profiled = profile.enabled
                    if profiled:
                        profile.push("engine.inline")
                    try:
                        while True:
                            item = parked[0]
                            t = item[0]
                            if t != now:
                                if until is not None and t > until:
                                    self.now = until
                                    return
                                if t < now:
                                    raise SimulationError(
                                        "event queue time went backwards"
                                    )
                                now = self.now = t
                            del parked[0]
                            hops += 1
                            item[2](item[3])
                            processed += 1
                            if processed == budget:
                                return
                            if not parked:
                                break
                            while True:
                                head = peek()
                                if head is None or not head[2].cancelled:
                                    break
                                wpop()
                                self._garbage -= 1
                            if head is not None and head < parked[0]:
                                break
                    finally:
                        if profiled:
                            profile.pop()
                    continue
                if head is None:
                    break
                event = head[2]
                t = head[0]
                if t != now:
                    if until is not None and t > until:
                        self.now = until
                        return
                    if t < now:
                        raise SimulationError("event queue time went backwards")
                    now = self.now = t
                wpop()
                event.cancelled = True
                self._live -= 1
                token = event.token
                if token is no_token:
                    event.fn()
                else:
                    event.fn(token)
                processed += 1
                if processed == budget:
                    return
            if until is not None and until > now:
                self.now = until
        finally:
            self._events_processed += processed
            self.inline_hops += hops

    def _drain_naive(self, until: Optional[int], max_events: Optional[int]) -> None:
        """The seed's one-event-at-a-time loop, kept as the ablation."""
        processed = 0
        while self._queue:
            time, _, event = self._queue[0]
            if event.cancelled:
                heapq.heappop(self._queue)
                self._garbage -= 1
                continue
            if until is not None and time > until:
                self.now = until
                return
            heapq.heappop(self._queue)
            if time < self.now:
                raise SimulationError("event queue time went backwards")
            self.now = time
            event.cancelled = True
            self._live -= 1
            token = event.token
            if token is _NO_TOKEN:
                event.fn()
            else:
                event.fn(token)
            processed += 1
            self._events_processed += 1
            if max_events is not None and processed >= max_events:
                return
        if until is not None:
            self.now = max(self.now, until)

    def _drain_naive_wheel(
        self, until: Optional[int], max_events: Optional[int]
    ) -> None:
        """The one-event-at-a-time ablation against the calendar queue."""
        wheel = self._wheel
        processed = 0
        while True:
            head = wheel.peek()
            if head is None:
                break
            time, _, event = head
            if event.cancelled:
                wheel.pop()
                self._garbage -= 1
                continue
            if until is not None and time > until:
                self.now = until
                return
            wheel.pop()
            if time < self.now:
                raise SimulationError("event queue time went backwards")
            self.now = time
            event.cancelled = True
            self._live -= 1
            token = event.token
            if token is _NO_TOKEN:
                event.fn()
            else:
                event.fn(token)
            processed += 1
            self._events_processed += 1
            if max_events is not None and processed >= max_events:
                return
        if until is not None:
            self.now = max(self.now, until)

    def step(self) -> bool:
        """Process a single event.  Returns ``False`` if the queue is empty.

        Runs through the same guarded path as :meth:`run`, so it honors
        the re-entrancy guard, the backwards-time check, and profiler
        bracketing that the full loop enforces.
        """
        before = self._events_processed
        self.run(max_events=1)
        return self._events_processed != before

    # ------------------------------------------------------------------
    # introspection

    @property
    def pending(self) -> int:
        """Number of scheduled, non-cancelled events (parked included)."""
        return self._live + len(self._parked)

    @property
    def events_processed(self) -> int:
        return self._events_processed

    def idle(self) -> bool:
        return self._live == 0 and not self._parked
