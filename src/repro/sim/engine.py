"""Deterministic discrete-event simulation engine.

Every piece of simulated work — a user program computing, a kernel path
charging its cost, a CPU spinning on a lock — is expressed as an event on
a single global timeline measured in **cycles**.  The engine is the only
source of time in the system; nothing reads the host clock.

Determinism is load-bearing for the whole reproduction: events that fire
at the same cycle are ordered by a monotonically increasing sequence
number, so a given workload always interleaves the same way and every
test and benchmark is exactly reproducible.

Seeded *perturbation* preserves that property while exploring other
legal histories: an engine built with ``seed=N`` carries a private
``random.Random(N)`` that the scheduler and wakeup paths consult to
break ties they would otherwise break by FIFO/index order.  The same
seed always yields the same interleaving, so every schedule the
explorer (:mod:`repro.check.explore`) visits is exactly reproducible
from its seed.  ``perturb`` names which tie-break sites may consult the
RNG (used by the explorer's shrinker); with no seed, ``rng`` is ``None``
and every call site takes its deterministic default path.

Host-speed notes (see ``docs/INTERNALS.md`` §14): the heap stores
``(time, seq, event)`` triples so sift comparisons are C-level int
compares instead of ``Event.__lt__`` calls; cancelled entries are
reclaimed by threshold-triggered compaction and counted so ``pending``
is O(1); and the default drain loop batches same-cycle events, hoisting
the ``until``/backwards-time checks behind a single time-changed test.
``loop="naive"`` (env ``REPRO_ENGINE_LOOP``) falls back to the seed's
one-event-at-a-time loop, which must stay cycle-identical — the
determinism tests diff the two.
"""

from __future__ import annotations

import heapq
import os
import random
from typing import Any, Callable, Iterable, List, Optional, Tuple

from repro.errors import SimulationError
from repro.obs.profile import NULL_PROFILER

#: every tie-break site the perturbation RNG may be consulted from
PERTURB_FEATURES = frozenset({"wakeup", "enqueue", "place", "select"})

#: drain-loop strategies: "fast" batches same-cycle events, "naive" is
#: the original one-event-at-a-time loop kept as a bit-identical ablation
ENGINE_LOOP_MODES = ("fast", "naive")

#: distinguishes "no resume token" from a token that is legitimately None
_NO_TOKEN = object()

#: threshold for compacting cancelled entries out of the heap: at least
#: this many dead entries *and* at least half the heap
_COMPACT_MIN_GARBAGE = 64


def default_engine_loop() -> str:
    """The drain loop used when none is requested (env-overridable)."""
    mode = os.environ.get("REPRO_ENGINE_LOOP", "fast")
    if mode not in ENGINE_LOOP_MODES:
        raise SimulationError(
            "unknown REPRO_ENGINE_LOOP %r (choose from %s)"
            % (mode, ", ".join(ENGINE_LOOP_MODES))
        )
    return mode


class Event:
    """A scheduled callback.  Cancel by calling :meth:`cancel`.

    ``token`` is the resume-token protocol: when set, the engine fires
    ``fn(token)`` instead of ``fn()``, so steady-state interpreter hops
    can reuse one prebound callable instead of allocating a closure per
    event.  A fired event is marked ``cancelled`` so a late
    :meth:`cancel` (e.g. clearing an alarm that already fired) stays a
    no-op and the engine's live-event counter moves exactly once per
    event.
    """

    __slots__ = ("time", "seq", "fn", "token", "cancelled", "engine")

    def __init__(
        self,
        time: int,
        seq: int,
        fn: Callable[..., None],
        token: Any = _NO_TOKEN,
        engine: Optional["Engine"] = None,
    ):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.token = token
        self.cancelled = False
        self.engine = engine

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent."""
        if self.cancelled:
            return
        self.cancelled = True
        engine = self.engine
        if engine is not None:
            engine._note_cancel()

    def __lt__(self, other: "Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = " cancelled" if self.cancelled else ""
        return "<Event t=%d seq=%d%s>" % (self.time, self.seq, state)


class Engine:
    """The global event loop and cycle clock.

    >>> eng = Engine()
    >>> fired = []
    >>> _ = eng.schedule(10, lambda: fired.append(eng.now))
    >>> eng.run()
    >>> fired
    [10]
    """

    def __init__(
        self,
        seed: Optional[int] = None,
        perturb: Optional[Iterable[str]] = None,
        loop: Optional[str] = None,
    ) -> None:
        self.now: int = 0
        #: min-heap of (time, seq, event) — int-tuple ordering keeps the
        #: sift comparisons out of Python code, seq uniqueness guarantees
        #: the Event itself is never compared
        self._queue: List[Tuple[int, int, Event]] = []
        self._seq: int = 0
        self._events_processed: int = 0
        self._live: int = 0  #: scheduled, not cancelled, not fired
        self._garbage: int = 0  #: cancelled entries still in the heap
        self._running = False
        #: host-side self-profiler; the machine swaps in a live one
        self.profile = NULL_PROFILER
        if loop is None:
            loop = default_engine_loop()
        if loop not in ENGINE_LOOP_MODES:
            raise SimulationError(
                "unknown engine loop %r (choose from %s)"
                % (loop, ", ".join(ENGINE_LOOP_MODES))
            )
        self.loop = loop
        self.seed = seed
        self.rng = random.Random(seed) if seed is not None else None
        self.perturb = (
            frozenset(perturb) if perturb is not None else PERTURB_FEATURES
        )
        unknown = self.perturb - PERTURB_FEATURES
        if unknown:
            raise SimulationError(
                "unknown perturbation feature(s): %s" % ", ".join(sorted(unknown))
            )

    def perturbs(self, feature: str) -> bool:
        """May the ``feature`` tie-break site consult the RNG?"""
        return self.rng is not None and feature in self.perturb

    # ------------------------------------------------------------------
    # scheduling

    def schedule(self, delay: int, fn: Callable[[], None]) -> Event:
        """Schedule ``fn`` to run ``delay`` cycles from now.

        ``delay`` may be zero (the event runs after all events already
        scheduled for the current cycle) but never negative.
        """
        if delay < 0:
            raise SimulationError("cannot schedule into the past (delay=%d)" % delay)
        seq = self._seq + 1
        self._seq = seq
        time = self.now + int(delay)
        event = Event(time, seq, fn, _NO_TOKEN, self)
        heapq.heappush(self._queue, (time, seq, event))
        self._live += 1
        return event

    def schedule_call(self, delay: int, fn: Callable[[Any], None], token: Any) -> Event:
        """Schedule ``fn(token)`` — the no-closure resume-token protocol.

        ``fn`` is a prebound callable that outlives the event; ``token``
        carries the per-event state (it may be ``None``).  The hot
        interpreter loop allocates nothing but the :class:`Event`.
        """
        if delay < 0:
            raise SimulationError("cannot schedule into the past (delay=%d)" % delay)
        seq = self._seq + 1
        self._seq = seq
        time = self.now + int(delay)
        event = Event(time, seq, fn, token, self)
        heapq.heappush(self._queue, (time, seq, event))
        self._live += 1
        return event

    def call_soon(self, fn: Callable[[], None]) -> Event:
        """Schedule ``fn`` for the current cycle."""
        return self.schedule(0, fn)

    # ------------------------------------------------------------------
    # heap hygiene

    def _note_cancel(self) -> None:
        """A live heap entry was cancelled; compact if mostly garbage."""
        self._live -= 1
        garbage = self._garbage + 1
        self._garbage = garbage
        if garbage >= _COMPACT_MIN_GARBAGE and 2 * garbage >= len(self._queue):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries and re-heapify, preserving identity.

        In-place (slice assignment) so a drain loop holding a local
        alias to the queue keeps seeing the compacted heap.  Heap order
        is only a partial order, but pops follow the (time, seq) total
        order either way, so compaction can never reorder the stream.
        """
        queue = self._queue
        queue[:] = [entry for entry in queue if not entry[2].cancelled]
        heapq.heapify(queue)
        self._garbage = 0

    # ------------------------------------------------------------------
    # execution

    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> None:
        """Process events in timestamp order.

        Stops when the queue is empty, when simulated time would pass
        ``until``, or after ``max_events`` events (a runaway guard for
        tests).  Re-entrant calls are rejected.
        """
        if self._running:
            raise SimulationError("Engine.run() is not re-entrant")
        self._running = True
        profile = self.profile
        if profile.enabled:
            profile.run_begin(self.now, self._events_processed)
        try:
            if self.loop == "fast":
                self._drain_fast(until, max_events)
            else:
                self._drain_naive(until, max_events)
        finally:
            self._running = False
            if profile.enabled:
                profile.run_end(self.now, self._events_processed)

    def _drain_fast(self, until: Optional[int], max_events: Optional[int]) -> None:
        """Batched drain: same-cycle events skip the time bookkeeping.

        The ``until`` and backwards-time checks only run when the head
        timestamp differs from the current cycle, and hot globals are
        bound to locals.  Event-count accounting is deferred to the
        ``finally`` so the per-event work is: pop, flag, fire.
        """
        queue = self._queue
        pop = heapq.heappop
        no_token = _NO_TOKEN
        # budget 0 means unlimited; a non-positive max_events still lets
        # one event through, exactly like the seed's `processed >= max`
        budget = max(1, max_events) if max_events is not None else 0
        processed = 0
        now = self.now
        try:
            while queue:
                entry = queue[0]
                event = entry[2]
                if event.cancelled:
                    pop(queue)
                    self._garbage -= 1
                    continue
                t = entry[0]
                if t != now:
                    if until is not None and t > until:
                        self.now = until
                        return
                    if t < now:
                        raise SimulationError("event queue time went backwards")
                    now = self.now = t
                pop(queue)
                event.cancelled = True
                self._live -= 1
                token = event.token
                if token is no_token:
                    event.fn()
                else:
                    event.fn(token)
                processed += 1
                if processed == budget:
                    return
            if until is not None and until > now:
                self.now = until
        finally:
            self._events_processed += processed

    def _drain_naive(self, until: Optional[int], max_events: Optional[int]) -> None:
        """The seed's one-event-at-a-time loop, kept as the ablation."""
        processed = 0
        while self._queue:
            time, _, event = self._queue[0]
            if event.cancelled:
                heapq.heappop(self._queue)
                self._garbage -= 1
                continue
            if until is not None and time > until:
                self.now = until
                return
            heapq.heappop(self._queue)
            if time < self.now:
                raise SimulationError("event queue time went backwards")
            self.now = time
            event.cancelled = True
            self._live -= 1
            token = event.token
            if token is _NO_TOKEN:
                event.fn()
            else:
                event.fn(token)
            processed += 1
            self._events_processed += 1
            if max_events is not None and processed >= max_events:
                return
        if until is not None:
            self.now = max(self.now, until)

    def step(self) -> bool:
        """Process a single event.  Returns ``False`` if the queue is empty.

        Runs through the same guarded path as :meth:`run`, so it honors
        the re-entrancy guard, the backwards-time check, and profiler
        bracketing that the full loop enforces.
        """
        before = self._events_processed
        self.run(max_events=1)
        return self._events_processed != before

    # ------------------------------------------------------------------
    # introspection

    @property
    def pending(self) -> int:
        """Number of scheduled, non-cancelled events."""
        return self._live

    @property
    def events_processed(self) -> int:
        return self._events_processed

    def idle(self) -> bool:
        return self._live == 0
