"""Deterministic discrete-event simulation engine.

Every piece of simulated work — a user program computing, a kernel path
charging its cost, a CPU spinning on a lock — is expressed as an event on
a single global timeline measured in **cycles**.  The engine is the only
source of time in the system; nothing reads the host clock.

Determinism is load-bearing for the whole reproduction: events that fire
at the same cycle are ordered by a monotonically increasing sequence
number, so a given workload always interleaves the same way and every
test and benchmark is exactly reproducible.

Seeded *perturbation* preserves that property while exploring other
legal histories: an engine built with ``seed=N`` carries a private
``random.Random(N)`` that the scheduler and wakeup paths consult to
break ties they would otherwise break by FIFO/index order.  The same
seed always yields the same interleaving, so every schedule the
explorer (:mod:`repro.check.explore`) visits is exactly reproducible
from its seed.  ``perturb`` names which tie-break sites may consult the
RNG (used by the explorer's shrinker); with no seed, ``rng`` is ``None``
and every call site takes its deterministic default path.
"""

from __future__ import annotations

import heapq
import random
from typing import Callable, Iterable, List, Optional

from repro.errors import SimulationError
from repro.obs.profile import NULL_PROFILER

#: every tie-break site the perturbation RNG may be consulted from
PERTURB_FEATURES = frozenset({"wakeup", "enqueue", "place", "select"})


class Event:
    """A scheduled callback.  Cancel by calling :meth:`cancel`."""

    __slots__ = ("time", "seq", "fn", "cancelled")

    def __init__(self, time: int, seq: int, fn: Callable[[], None]):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = " cancelled" if self.cancelled else ""
        return "<Event t=%d seq=%d%s>" % (self.time, self.seq, state)


class Engine:
    """The global event loop and cycle clock.

    >>> eng = Engine()
    >>> fired = []
    >>> _ = eng.schedule(10, lambda: fired.append(eng.now))
    >>> eng.run()
    >>> fired
    [10]
    """

    def __init__(
        self,
        seed: Optional[int] = None,
        perturb: Optional[Iterable[str]] = None,
    ) -> None:
        self.now: int = 0
        self._queue: List[Event] = []
        self._seq: int = 0
        self._events_processed: int = 0
        self._running = False
        #: host-side self-profiler; the machine swaps in a live one
        self.profile = NULL_PROFILER
        self.seed = seed
        self.rng = random.Random(seed) if seed is not None else None
        self.perturb = (
            frozenset(perturb) if perturb is not None else PERTURB_FEATURES
        )
        unknown = self.perturb - PERTURB_FEATURES
        if unknown:
            raise SimulationError(
                "unknown perturbation feature(s): %s" % ", ".join(sorted(unknown))
            )

    def perturbs(self, feature: str) -> bool:
        """May the ``feature`` tie-break site consult the RNG?"""
        return self.rng is not None and feature in self.perturb

    # ------------------------------------------------------------------
    # scheduling

    def schedule(self, delay: int, fn: Callable[[], None]) -> Event:
        """Schedule ``fn`` to run ``delay`` cycles from now.

        ``delay`` may be zero (the event runs after all events already
        scheduled for the current cycle) but never negative.
        """
        if delay < 0:
            raise SimulationError("cannot schedule into the past (delay=%d)" % delay)
        self._seq += 1
        event = Event(self.now + int(delay), self._seq, fn)
        heapq.heappush(self._queue, event)
        return event

    def call_soon(self, fn: Callable[[], None]) -> Event:
        """Schedule ``fn`` for the current cycle."""
        return self.schedule(0, fn)

    # ------------------------------------------------------------------
    # execution

    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> None:
        """Process events in timestamp order.

        Stops when the queue is empty, when simulated time would pass
        ``until``, or after ``max_events`` events (a runaway guard for
        tests).  Re-entrant calls are rejected.
        """
        if self._running:
            raise SimulationError("Engine.run() is not re-entrant")
        self._running = True
        profile = self.profile
        if profile.enabled:
            profile.run_begin(self.now, self._events_processed)
        try:
            processed = 0
            while self._queue:
                event = self._queue[0]
                if event.cancelled:
                    heapq.heappop(self._queue)
                    continue
                if until is not None and event.time > until:
                    self.now = until
                    return
                heapq.heappop(self._queue)
                if event.time < self.now:
                    raise SimulationError("event queue time went backwards")
                self.now = event.time
                event.fn()
                processed += 1
                self._events_processed += 1
                if max_events is not None and processed >= max_events:
                    return
            if until is not None:
                self.now = max(self.now, until)
        finally:
            self._running = False
            if profile.enabled:
                profile.run_end(self.now, self._events_processed)

    def step(self) -> bool:
        """Process a single event.  Returns ``False`` if the queue is empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self.now = event.time
            event.fn()
            self._events_processed += 1
            return True
        return False

    # ------------------------------------------------------------------
    # introspection

    @property
    def pending(self) -> int:
        """Number of scheduled, non-cancelled events."""
        return sum(1 for event in self._queue if not event.cancelled)

    @property
    def events_processed(self) -> int:
        return self._events_processed

    def idle(self) -> bool:
        return self.pending == 0
