"""Sorted interval index over pregion lists: the VM translation fast path.

The paper's section 6.2 lookup — private pregions first, then shared —
was a linear scan on every TLB miss, every kernel-copy page and every
stack-growth probe.  :class:`PregionList` keeps the authoritative list
semantics (it *is* a list, so every existing ``append``/``remove``/``in``
call site keeps working) and adds a bisectable view sorted by ``vlow``.

Coherence follows a generation protocol rather than incremental index
maintenance: every mutation that can change lookup results — attach,
detach, growth that moves a base address — bumps ``generation``, and the
next lookup rebuilds the sorted view when it notices the mismatch.  All
mutators run under the share group's update lock (or own the space
outright), so a reader under the read lock never observes a half-built
index.  Faults vastly outnumber list edits, which makes the occasional
O(n log n) rebuild a good trade for O(log n) lookups.

Within one list pregions never overlap (private may shadow *shared*, but
that is a cross-list affair resolved by private-first lookup order), so
a binary search on ``vlow`` has exactly one containment candidate: the
rightmost pregion starting at or below the address.

Each pregion also records the list that currently holds it (``owner``),
which lets :meth:`AddressSpace.detach` drop it in a single pass instead
of probing every list with ``in`` first.
"""

from __future__ import annotations

from typing import List, Optional

from repro.mem.pregion import Growth, Pregion


class PregionList(list):
    """A pregion list that owns a sorted interval index over itself.

    Lookups report how many comparisons they made so experiments can
    contrast bisect steps with the linear scan's entries-examined count
    (kstat ``pregion_scan_len``); the counting is host-side arithmetic
    and never charges simulated cycles.
    """

    __slots__ = ("generation", "_built", "_starts", "_order",
                 "_down_starts", "_down")

    def __init__(self, iterable=()):
        list.__init__(self, iterable)
        #: bumped by every mutation; lookups rebuild when it moves
        self.generation = 0
        self._built = -1
        self._starts: List[int] = []
        self._order: List[Pregion] = []
        self._down_starts: List[int] = []
        self._down: List[Pregion] = []
        for pregion in self:
            pregion.owner = self

    # ------------------------------------------------------------------
    # mutation (the only ways kernel code edits a pregion list)

    def append(self, pregion: Pregion) -> None:
        list.append(self, pregion)
        pregion.owner = self
        self.generation += 1

    def remove(self, pregion: Pregion) -> None:
        list.remove(self, pregion)
        pregion.owner = None
        self.generation += 1

    def invalidate(self) -> None:
        """Force a rebuild (a member's base address moved)."""
        self.generation += 1

    # ------------------------------------------------------------------
    # the index

    def _rebuild(self) -> None:
        order = sorted(self, key=lambda pregion: pregion.vlow)
        self._order = order
        self._starts = [pregion.vlow for pregion in order]
        down = [p for p in order if p.growth is Growth.DOWN]
        self._down = down
        self._down_starts = [pregion.vlow for pregion in down]
        self._built = self.generation

    @staticmethod
    def _bisect_right(starts: List[int], value: int):
        """Rightmost insertion point, returned with the comparison count."""
        lo, hi, steps = 0, len(starts), 0
        while lo < hi:
            steps += 1
            mid = (lo + hi) // 2
            if starts[mid] <= value:
                lo = mid + 1
            else:
                hi = mid
        return lo, steps

    def lookup(self, vaddr: int):
        """The pregion containing ``vaddr`` (or None), plus bisect steps."""
        if self._built != self.generation:
            self._rebuild()
        pos, steps = self._bisect_right(self._starts, vaddr)
        if pos:
            candidate = self._order[pos - 1]
            steps += 1
            if candidate.contains(vaddr):
                return candidate, steps
        return None, steps

    def nearest_down_above(self, vaddr: int):
        """The DOWN-growing member with the smallest ``vlow > vaddr``.

        Returns ``(pregion_or_None, steps)`` — the stack-growth probe's
        replacement for scanning the whole list per SEGV check.
        """
        if self._built != self.generation:
            self._rebuild()
        pos, steps = self._bisect_right(self._down_starts, vaddr)
        if pos < len(self._down):
            return self._down[pos], steps + 1
        return None, steps

    def index_snapshot(self) -> List[Pregion]:
        """The sorted view (rebuilding if stale) — for tests/invariants."""
        if self._built != self.generation:
            self._rebuild()
        return list(self._order)


def owning_list(pregion: Pregion) -> Optional[PregionList]:
    """The list currently holding ``pregion``, or None when detached."""
    return pregion.owner
