"""Virtual address space layout.

The layout follows the MIPS user-space conventions of the era: text low,
a fixed one-page PRDA below it, the data segment in the middle, a mapping
arena for SysV shared memory and anonymous maps, and stacks carved
downward from just under the 2 GB user/kernel boundary.

The PRDA (process data area, paper section 5.1) sits at the *same* fixed
virtual address in every process and is never shared, so code in a shared
text/data image can always reach per-process state (``errno`` being the
canonical example).
"""

from __future__ import annotations

from repro.mem.frames import PAGE_SIZE

#: one-page private per-process data area, fixed address in every process
PRDA_BASE = 0x0020_0000
PRDA_SIZE = PAGE_SIZE

#: program text
TEXT_BASE = 0x0040_0000

#: data segment (initialized data + heap grown by sbrk)
DATA_BASE = 0x1000_0000

#: arena for SysV shared memory segments and anonymous mmaps
MAP_BASE = 0x3000_0000
MAP_LIMIT = 0x5000_0000

#: stacks are carved downward from here
STACK_TOP = 0x7FFF_0000

#: default per-stack reservation (changeable via prctl PR_SETSTACKSIZE)
DEFAULT_STACK_MAX = 1024 * 1024

#: initial resident size of a fresh stack
INITIAL_STACK_PAGES = 4

#: guard gap left between consecutive stack reservations
STACK_GAP = PAGE_SIZE

#: highest user address (the 2 GB kuseg boundary on MIPS)
USER_LIMIT = 0x8000_0000


def stack_slot(index: int, max_stack_bytes: int = DEFAULT_STACK_MAX) -> int:
    """Base reservation address for the ``index``-th stack in a space.

    Slot 0 is the original process's stack; each ``sproc`` child gets the
    next slot down.  The returned value is the *top* (exclusive high end)
    of that stack's reservation.
    """
    if index < 0:
        raise ValueError("stack index cannot be negative")
    return STACK_TOP - index * (max_stack_bytes + STACK_GAP)
