"""Physical page frames and their allocator.

Frames carry real bytes (a ``bytearray`` per frame).  This is what makes
resource sharing *observable* in the simulation: when two share-group
members map the same frame, a store by one is genuinely visible to a load
by the other, while a copy-on-write child sees its own private copy.
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import SimulationError

PAGE_SIZE = 4096
PAGE_SHIFT = 12
PAGE_MASK = PAGE_SIZE - 1


def page_round_up(nbytes: int) -> int:
    """Round a byte count up to a whole number of pages."""
    return (nbytes + PAGE_MASK) & ~PAGE_MASK


def pages_for(nbytes: int) -> int:
    """Number of pages needed to hold ``nbytes``."""
    return (nbytes + PAGE_MASK) >> PAGE_SHIFT


class Frame:
    """One physical page frame."""

    __slots__ = ("pfn", "data", "refcount")

    def __init__(self, pfn: int):
        self.pfn = pfn
        self.data = bytearray(PAGE_SIZE)
        self.refcount = 0  #: regions referencing this frame (COW sharing)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<Frame pfn=%d ref=%d>" % (self.pfn, self.refcount)


class FrameAllocator:
    """A free-list allocator over a fixed pool of physical frames."""

    def __init__(self, nframes: int):
        if nframes <= 0:
            raise ValueError("need at least one physical frame")
        self.nframes = nframes
        self._frames: List[Optional[Frame]] = [None] * nframes
        self._free: List[int] = list(range(nframes - 1, -1, -1))
        self.allocated = 0
        self.peak = 0
        self.inject = None  #: FailPointRegistry, set by the owning Machine

    # ------------------------------------------------------------------

    def alloc(self) -> Frame:
        """Allocate a zeroed frame with refcount 1.

        Raises :class:`MemoryError` when physical memory is exhausted —
        the VM layer turns this into ``ENOMEM`` for the guest.
        """
        if self.inject is not None and self.inject.fire("frames.alloc"):
            raise MemoryError(
                "out of physical frames (injected at frames.alloc)"
            )
        if not self._free:
            raise MemoryError("out of physical frames (%d in use)" % self.allocated)
        pfn = self._free.pop()
        frame = Frame(pfn)
        frame.refcount = 1
        self._frames[pfn] = frame
        self.allocated += 1
        self.peak = max(self.peak, self.allocated)
        return frame

    def get(self, pfn: int) -> Frame:
        frame = self._frames[pfn]
        if frame is None:
            raise SimulationError("access to free frame %d" % pfn)
        return frame

    def hold(self, frame: Frame) -> Frame:
        """Add a reference (e.g. COW sharing on fork)."""
        if frame.refcount <= 0:
            raise SimulationError("hold on dead frame %d" % frame.pfn)
        frame.refcount += 1
        return frame

    def release(self, frame: Frame) -> None:
        """Drop a reference; free the frame when the count reaches zero."""
        if frame.refcount <= 0:
            raise SimulationError("double free of frame %d" % frame.pfn)
        frame.refcount -= 1
        if frame.refcount == 0:
            self._frames[frame.pfn] = None
            self._free.append(frame.pfn)
            self.allocated -= 1

    # ------------------------------------------------------------------

    @property
    def free_count(self) -> int:
        return len(self._free)

    def check_leaks(self) -> int:
        """Frames still allocated (useful in teardown assertions)."""
        return self.allocated
