"""Pregions: per-attachment views of regions.

A *pregion* records where in an address space a region is attached, with
what protection, and how it grows.  Pregions live either on a process's
private list or — for share-group members — on the shared list inside the
group's shared address block (the paper's ``s_region`` field).
"""

from __future__ import annotations

import enum

from repro.errors import SimulationError
from repro.mem.frames import PAGE_MASK, PAGE_SHIFT, PAGE_SIZE
from repro.mem.region import Region, RegionType

PROT_READ = 0x1
PROT_WRITE = 0x2
PROT_EXEC = 0x4
PROT_RW = PROT_READ | PROT_WRITE
PROT_RX = PROT_READ | PROT_EXEC


class Growth(enum.Enum):
    NONE = "none"
    UP = "up"  #: data segments grow toward higher addresses (sbrk)
    DOWN = "down"  #: stacks grow toward lower addresses


class Pregion:
    """Attachment of a :class:`Region` at a virtual base address."""

    __slots__ = ("region", "vbase", "prot", "growth", "max_pages", "owner")

    def __init__(
        self,
        region: Region,
        vbase: int,
        prot: int,
        growth: Growth = Growth.NONE,
        max_pages: int = 0,
    ):
        if vbase & PAGE_MASK:
            raise SimulationError("pregion base %#x not page aligned" % vbase)
        self.region = region.hold()
        self.vbase = vbase
        self.prot = prot
        self.growth = growth
        #: growth ceiling in pages (0 means "no limit beyond overlap checks")
        self.max_pages = max_pages
        #: the PregionList currently holding this attachment (None if loose)
        self.owner = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<Pregion %s @%#x..%#x>" % (
            self.region.rtype.value, self.vlow, self.vhigh,
        )

    # ------------------------------------------------------------------
    # address arithmetic

    @property
    def vlow(self) -> int:
        """Lowest mapped address (inclusive)."""
        return self.vbase

    @property
    def vhigh(self) -> int:
        """One past the highest mapped address."""
        return self.vbase + self.region.nbytes

    @property
    def rtype(self) -> RegionType:
        return self.region.rtype

    def contains(self, vaddr: int) -> bool:
        return self.vlow <= vaddr < self.vhigh

    def overlaps(self, vlow: int, vhigh: int) -> bool:
        return self.vlow < vhigh and vlow < self.vhigh

    def page_index(self, vaddr: int) -> int:
        """Index into the region's page table for ``vaddr``."""
        if not self.contains(vaddr):
            raise SimulationError("%#x outside %r" % (vaddr, self))
        return (vaddr - self.vbase) >> PAGE_SHIFT

    def vpn_of(self, index: int) -> int:
        """Virtual page number of region page ``index``."""
        return (self.vbase >> PAGE_SHIFT) + index

    @property
    def vpn_low(self) -> int:
        return self.vbase >> PAGE_SHIFT

    @property
    def vpn_high(self) -> int:
        return (self.vbase + self.region.nbytes) >> PAGE_SHIFT

    # ------------------------------------------------------------------
    # growth

    def can_grow_down_to(self, vaddr: int) -> bool:
        """May an access at ``vaddr`` auto-grow this downward stack?"""
        if self.growth is not Growth.DOWN:
            return False
        if vaddr >= self.vlow:
            return False
        wanted_pages = (self.vhigh - (vaddr & ~PAGE_MASK)) >> PAGE_SHIFT
        if self.max_pages and wanted_pages > self.max_pages:
            return False
        return True

    def grow_down_to(self, vaddr: int) -> int:
        """Grow so that ``vaddr`` is mapped; returns pages added."""
        if not self.can_grow_down_to(vaddr):
            raise SimulationError("cannot grow %r down to %#x" % (self, vaddr))
        new_base = vaddr & ~PAGE_MASK
        added = (self.vbase - new_base) >> PAGE_SHIFT
        self.region.grow_front(added)
        self.vbase = new_base
        self._index_changed()
        return added

    def grow_up(self, npages: int) -> None:
        """Grow an upward-growing region (sbrk on the data segment)."""
        if self.growth is not Growth.UP:
            raise SimulationError("%r does not grow up" % self)
        if self.max_pages and self.region.npages + npages > self.max_pages:
            raise MemoryError("region growth limit exceeded")
        self.region.grow(npages)
        self._index_changed()

    def shrink(self, npages: int) -> None:
        """Shrink from the high end (negative sbrk)."""
        self.region.shrink(npages)
        self._index_changed()

    def _index_changed(self) -> None:
        """Tell the owning list's interval index that our extent moved."""
        if self.owner is not None:
            self.owner.invalidate()

    def detach(self) -> None:
        """Drop this attachment's region reference."""
        self.region.release()


def vaddr_page(vaddr: int) -> int:
    """Virtual page number of an address."""
    return vaddr >> PAGE_SHIFT


def page_base(vaddr: int) -> int:
    """Page-aligned base of an address."""
    return vaddr & ~PAGE_MASK


__all__ = [
    "Growth",
    "PAGE_SIZE",
    "PROT_EXEC",
    "PROT_READ",
    "PROT_RW",
    "PROT_RX",
    "PROT_WRITE",
    "Pregion",
    "page_base",
    "vaddr_page",
]
