"""Address spaces: private and group-shared pregion lists.

Every process owns an :class:`AddressSpace`.  A standalone process keeps
all of its pregions on the private list.  When a process creates a share
group with ``PR_SADDR``, its sharable pregions move into a
:class:`SharedVM` that all VM-sharing members reference; each member's
private list then holds only what must stay per-process (the PRDA, and
debugger-private text if any).

Lookup order follows the paper (section 6.2): *"the private regions for a
process are examined first when demand paging ..., followed by
examination of the shared regions."*  This is what makes the private PRDA
shadow nothing and lets a future implementation mix copy-on-write and
shared pieces of one image.

The address space itself is a passive data structure: methods here decide
*what* a fault means (:class:`Resolution`) and mutate page tables, while
the kernel's fault handler charges cycle costs and takes the share
group's shared read lock around these calls.
"""

from __future__ import annotations

import enum
from typing import Iterator, List, Optional, Tuple

from repro.errors import SimulationError
from repro.mem import layout
from repro.mem.frames import PAGE_MASK, PAGE_SHIFT, PAGE_SIZE, Frame
from repro.mem.pregion import Growth, Pregion, PROT_WRITE
from repro.mem.region import Region, RegionType
from repro.mem.vmindex import PregionList


class Fault(enum.Enum):
    """What a virtual access needs from the fault handler."""

    HIT = "hit"  #: frame resident and access allowed
    ZERO = "zero"  #: demand-zero fill required
    COW = "cow"  #: copy-on-write break required
    GROW = "grow"  #: downward stack growth, then demand-zero
    SEGV = "segv"  #: no mapping / protection violation


class Resolution:
    """Outcome of resolving a virtual address against an address space."""

    __slots__ = ("kind", "pregion", "page_index", "shared")

    def __init__(
        self,
        kind: Fault,
        pregion: Optional[Pregion] = None,
        page_index: int = -1,
        shared: bool = False,
    ):
        self.kind = kind
        self.pregion = pregion
        self.page_index = page_index
        self.shared = shared

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<Resolution %s %r>" % (self.kind.value, self.pregion)


class SharedVM:
    """The VM image shared by a share group (the paper's ``s_region`` list).

    Holds the shared pregion list, the single address-space ID every
    VM-sharing member runs under, and the stack-carving cursor used by
    ``sproc`` to place each new member's stack.  Concurrency control (the
    shared read lock) lives in the shared address block, not here.
    """

    def __init__(self, machine, stack_max_bytes: int = layout.DEFAULT_STACK_MAX):
        self.machine = machine
        self.asid = machine.alloc_asid()
        self._pregions = PregionList()
        self.stack_max_bytes = stack_max_bytes
        self._next_stack_index = 0
        self._next_map_base = layout.MAP_BASE

    @property
    def pregions(self) -> PregionList:
        return self._pregions

    @pregions.setter
    def pregions(self, value: List[Pregion]) -> None:
        # Wholesale replacement (group teardown does ``pregions = []``):
        # re-wrap so the interval index and owner backrefs stay coherent.
        for pregion in self._pregions:
            if pregion.owner is self._pregions:
                pregion.owner = None
        self._pregions = PregionList(value)

    def alloc_stack_index(self) -> int:
        index = self._next_stack_index
        self._next_stack_index += 1
        return index

    def alloc_map_range(self, nbytes: int) -> int:
        """Bump-allocate a page-aligned window in the mapping arena."""
        nbytes = (nbytes + PAGE_MASK) & ~PAGE_MASK
        base = self._next_map_base
        if base + nbytes > layout.MAP_LIMIT:
            raise MemoryError("mapping arena exhausted")
        self._next_map_base = base + nbytes
        return base


class AddressSpace:
    """One process's view of virtual memory."""

    def __init__(self, machine, shared: Optional[SharedVM] = None):
        self.machine = machine
        self.frames = machine.frames
        self.shared = shared
        self._own_asid = machine.alloc_asid() if shared is None else None
        self._private = PregionList()
        self._next_stack_index = 0
        self._next_map_base = layout.MAP_BASE
        self.stack_max_bytes = layout.DEFAULT_STACK_MAX

    @property
    def private(self) -> PregionList:
        return self._private

    @private.setter
    def private(self, value: List[Pregion]) -> None:
        # Group creation reassigns the whole list (``proc.vm.private =
        # keep``); re-wrap so owner backrefs follow the survivors.
        for pregion in self._private:
            if pregion.owner is self._private:
                pregion.owner = None
        self._private = PregionList(value)

    # ------------------------------------------------------------------
    # identity

    @property
    def asid(self) -> int:
        if self.shared is not None:
            return self.shared.asid
        return self._own_asid

    # ------------------------------------------------------------------
    # pregion lists

    def iter_pregions(self) -> Iterator[Tuple[Pregion, bool]]:
        """All visible pregions, private first (paper's lookup order)."""
        for pregion in self.private:
            yield pregion, False
        if self.shared is not None:
            for pregion in self.shared.pregions:
                yield pregion, True

    def find(self, vaddr: int) -> Tuple[Optional[Pregion], bool]:
        if getattr(self.machine, "vm_index", "indexed") == "linear":
            return self._find_linear(vaddr)
        return self._find_indexed(vaddr)

    def _find_linear(self, vaddr: int) -> Tuple[Optional[Pregion], bool]:
        """The original O(n) scan, kept as the ``vm_index="linear"`` ablation."""
        examined = 0
        for pregion, shared in self.iter_pregions():
            examined += 1
            if pregion.contains(vaddr):
                self._note_lookup(examined, hit=True, indexed=False)
                return pregion, shared
        self._note_lookup(examined, hit=False, indexed=False)
        return None, False

    def _find_indexed(self, vaddr: int) -> Tuple[Optional[Pregion], bool]:
        """Bisect private then shared — same private-shadows-shared order."""
        pregion, steps = self._private.lookup(vaddr)
        if pregion is not None:
            self._note_lookup(steps, hit=True, indexed=True)
            return pregion, False
        if self.shared is not None:
            shared_hit, shared_steps = self.shared.pregions.lookup(vaddr)
            steps += shared_steps
            if shared_hit is not None:
                self._note_lookup(steps, hit=True, indexed=True)
                return shared_hit, True
        self._note_lookup(steps, hit=False, indexed=True)
        return None, False

    def _note_lookup(self, steps: int, hit: bool, indexed: bool) -> None:
        # Host-side accounting only: charges zero simulated cycles, so
        # metrics on/off cannot perturb the timeline.
        kstat = self.machine.kstat
        kstat.add("kernel", 0, "vm_lookups")
        kstat.add("kernel", 0, "pregion_scan_len", steps)
        if indexed and hit:
            kstat.add("kernel", 0, "vm_index_hits")

    def find_by_type(self, rtype: RegionType) -> Tuple[Optional[Pregion], bool]:
        for pregion, shared in self.iter_pregions():
            if pregion.rtype is rtype:
                return pregion, shared
        return None, False

    def check_overlap(self, vlow: int, vhigh: int) -> None:
        for pregion, _shared in self.iter_pregions():
            if pregion.overlaps(vlow, vhigh):
                raise SimulationError(
                    "mapping %#x..%#x overlaps %r" % (vlow, vhigh, pregion)
                )

    def attach_private(self, pregion: Pregion, allow_shadow: bool = False) -> Pregion:
        """Attach to the private list.

        With ``allow_shadow`` the new pregion may overlap *shared*
        pregions: private-first lookup then shadows the shared mapping,
        which is how selective (partly COW) sharing of a group image
        works — the enhancement the paper's section 6.2 anticipates.
        """
        if allow_shadow:
            for existing in self.private:
                if existing.overlaps(pregion.vlow, pregion.vhigh):
                    raise SimulationError(
                        "shadow mapping overlaps private %r" % existing
                    )
        else:
            self.check_overlap(pregion.vlow, pregion.vhigh)
        self.private.append(pregion)
        return pregion

    def attach_shared(self, pregion: Pregion) -> Pregion:
        if self.shared is None:
            raise SimulationError("no shared VM to attach to")
        self.check_overlap(pregion.vlow, pregion.vhigh)
        self.shared.pregions.append(pregion)
        return pregion

    def detach(self, pregion: Pregion) -> None:
        """Remove a pregion from whichever list holds it.

        One pass: the pregion's ``owner`` backref says which list holds
        it, so no ``in``-scans are needed before the remove.
        """
        owner = pregion.owner
        shared_list = self.shared.pregions if self.shared is not None else None
        if owner is not self._private and (
            shared_list is None or owner is not shared_list
        ):
            raise SimulationError("detach of unattached %r" % pregion)
        owner.remove(pregion)
        pregion.detach()

    # ------------------------------------------------------------------
    # fault resolution

    def resolve(self, vaddr: int, write: bool) -> Resolution:
        """Classify an access.  Pure decision — no page tables change."""
        if not 0 <= vaddr < layout.USER_LIMIT:
            return Resolution(Fault.SEGV)
        pregion, shared = self.find(vaddr)
        if pregion is None:
            grow_target = self._growable_stack(vaddr)
            if grow_target is not None:
                target, target_shared = grow_target
                return Resolution(Fault.GROW, target, -1, target_shared)
            return Resolution(Fault.SEGV)
        if write and not pregion.prot & PROT_WRITE:
            return Resolution(Fault.SEGV, pregion, -1, shared)
        index = pregion.page_index(vaddr)
        region = pregion.region
        if region.pages[index] is None:
            return Resolution(Fault.ZERO, pregion, index, shared)
        if write and region.is_cow(index):
            return Resolution(Fault.COW, pregion, index, shared)
        return Resolution(Fault.HIT, pregion, index, shared)

    def _growable_stack(self, vaddr: int) -> Optional[Tuple[Pregion, bool]]:
        """Find a downward-growing pregion that may absorb ``vaddr``.

        The candidate must be the nearest DOWN-growing pregion above the
        address, and the gap must be within its growth ceiling.
        """
        if getattr(self.machine, "vm_index", "indexed") == "linear":
            best: Optional[Tuple[Pregion, bool]] = None
            for pregion, shared in self.iter_pregions():
                if pregion.growth is not Growth.DOWN:
                    continue
                if pregion.vlow <= vaddr:
                    continue
                if best is None or pregion.vlow < best[0].vlow:
                    best = (pregion, shared)
            if best is not None and best[0].can_grow_down_to(vaddr):
                return best
            return None
        # Indexed: one bisect per list over DOWN-growing members only.
        # Ties on vlow go to the private candidate, matching the linear
        # scan's private-first iteration with a strict ``<`` comparison.
        best = None
        candidate, _steps = self._private.nearest_down_above(vaddr)
        if candidate is not None:
            best = (candidate, False)
        if self.shared is not None:
            candidate, _steps = self.shared.pregions.nearest_down_above(vaddr)
            if candidate is not None and (
                best is None or candidate.vlow < best[0].vlow
            ):
                best = (candidate, True)
        if best is not None and best[0].can_grow_down_to(vaddr):
            return best
        return None

    # ------------------------------------------------------------------
    # fault actions (called by the kernel fault handler, under locks)

    def materialize(self, resolution: Resolution, vaddr: int, write: bool) -> Frame:
        """Perform the page-table mutation a resolution calls for."""
        kind = resolution.kind
        if kind is Fault.GROW:
            resolution.pregion.grow_down_to(vaddr)
            index = resolution.pregion.page_index(vaddr)
            return resolution.pregion.region.ensure_page(index)
        if kind is Fault.ZERO:
            return resolution.pregion.region.ensure_page(resolution.page_index)
        if kind is Fault.COW:
            frame = resolution.pregion.region.break_cow(resolution.page_index)
            # Other CPUs may cache the old translation.
            vpn = resolution.pregion.vpn_of(resolution.page_index)
            self.machine.tlb_flush_page(self.asid, vpn)
            return frame
        if kind is Fault.HIT:
            return resolution.pregion.region.pages[resolution.page_index]
        raise SimulationError("cannot materialize %r" % resolution)

    def writable_now(self, pregion: Pregion, index: int) -> bool:
        """May a TLB entry for this page be writable?"""
        if not pregion.prot & PROT_WRITE:
            return False
        return not pregion.region.is_cow(index)

    # ------------------------------------------------------------------
    # segment setup helpers

    def map_segment(
        self,
        vbase: int,
        nbytes: int,
        rtype: RegionType,
        prot: int,
        growth: Growth = Growth.NONE,
        max_pages: int = 0,
        shared: bool = False,
    ) -> Pregion:
        """Create a fresh region and attach it at ``vbase``."""
        npages = (nbytes + PAGE_MASK) >> PAGE_SHIFT
        region = Region(self.frames, npages, rtype)
        pregion = Pregion(region, vbase, prot, growth, max_pages)
        if shared:
            return self.attach_shared(pregion)
        return self.attach_private(pregion)

    def alloc_stack_index(self) -> int:
        if self.shared is not None:
            return self.shared.alloc_stack_index()
        index = self._next_stack_index
        self._next_stack_index += 1
        return index

    def alloc_map_range(self, nbytes: int) -> int:
        if self.shared is not None:
            return self.shared.alloc_map_range(nbytes)
        nbytes = (nbytes + PAGE_MASK) & ~PAGE_MASK
        base = self._next_map_base
        if base + nbytes > layout.MAP_LIMIT:
            raise MemoryError("mapping arena exhausted")
        self._next_map_base = base + nbytes
        return base

    def carve_stack(self, shared: bool) -> Pregion:
        """Reserve and attach a new downward-growing stack."""
        max_bytes = (
            self.shared.stack_max_bytes if self.shared is not None
            else self.stack_max_bytes
        )
        index = self.alloc_stack_index()
        top = layout.stack_slot(index, max_bytes)
        initial = layout.INITIAL_STACK_PAGES * PAGE_SIZE
        vbase = top - initial
        from repro.mem.pregion import PROT_RW  # local to avoid cycle noise

        return self.map_segment(
            vbase,
            initial,
            RegionType.STACK,
            PROT_RW,
            growth=Growth.DOWN,
            max_pages=max_bytes >> PAGE_SHIFT,
            shared=shared,
        )

    # ------------------------------------------------------------------
    # duplication and teardown

    def dup_cow(self) -> "AddressSpace":
        """Fork-style duplicate: every visible pregion becomes a private
        copy-on-write attachment in the child.

        Matches the paper: a ``fork()`` (or non-VM-sharing ``sproc()``)
        from a share group member *"leaves any visible stack or other
        regions from the share group as copy-on-write elements of the new
        process"*.  The caller must flush the parent's TLB afterwards
        because resident pages became read-only-COW on the parent side
        too.
        """
        child = AddressSpace(self.machine)
        child.stack_max_bytes = (
            self.shared.stack_max_bytes if self.shared is not None
            else self.stack_max_bytes
        )
        child._next_stack_index = (
            self.shared._next_stack_index if self.shared is not None
            else self._next_stack_index
        )
        child._next_map_base = (
            self.shared._next_map_base if self.shared is not None
            else self._next_map_base
        )
        for pregion, _shared in self.iter_pregions():
            clone_region = pregion.region.dup_cow()
            clone = Pregion(
                clone_region, pregion.vbase, pregion.prot,
                pregion.growth, pregion.max_pages,
            )
            child.private.append(clone)
        return child

    def cow_pages_made(self) -> int:
        """Resident pages currently marked COW (for cost accounting)."""
        return sum(
            sum(1 for flag in pregion.region.cow if flag)
            for pregion, _ in self.iter_pregions()
        )

    def total_pages(self) -> int:
        return sum(pregion.region.npages for pregion, _ in self.iter_pregions())

    def teardown_private(self) -> None:
        """Detach every private pregion (process exit / exec)."""
        for pregion in self.private:
            pregion.detach()
        self.private = []


def make_region(allocator, nbytes: int, rtype: RegionType) -> Region:
    """Convenience constructor used by loaders and tests."""
    npages = (nbytes + PAGE_MASK) >> PAGE_SHIFT
    return Region(allocator, npages, rtype)
