"""Regions: the System V.3 unit of virtual memory.

A *region* describes a contiguous stretch of virtual space and owns its
page table — a list of physical frames, with ``None`` for pages that have
not been demand-faulted yet.  Regions are reference counted: a shared
region (a share group's data segment, SysV shared memory, shared text)
has one reference per attaching pregion.

Copy-on-write is carried per page: ``dup_cow`` produces a region whose
pages alias the parent's frames with elevated reference counts, and the
fault path breaks the aliasing on the first store (see
:meth:`Region.break_cow`).
"""

from __future__ import annotations

import enum
from typing import List, Optional

from repro.errors import SimulationError
from repro.mem.frames import Frame, FrameAllocator, PAGE_SIZE


class RegionType(enum.Enum):
    TEXT = "text"
    DATA = "data"
    STACK = "stack"
    SHM = "shm"  #: SysV shared memory / anonymous mmap
    PRDA = "prda"  #: per-process data area (never shared)

    def __repr__(self) -> str:  # pragma: no cover
        return "RegionType.%s" % self.name


class Region:
    """A contiguous virtual extent with its page table."""

    _next_id = 0

    def __init__(self, allocator: FrameAllocator, npages: int, rtype: RegionType):
        if npages < 0:
            raise ValueError("region size cannot be negative")
        Region._next_id += 1
        self.rid = Region._next_id
        self.allocator = allocator
        self.rtype = rtype
        self.pages: List[Optional[Frame]] = [None] * npages
        self.cow: List[bool] = [False] * npages
        self.refcount = 0  #: pregions attached to this region
        self.freed = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<Region #%d %s %dpg ref=%d>" % (
            self.rid, self.rtype.value, len(self.pages), self.refcount,
        )

    # ------------------------------------------------------------------
    # size

    @property
    def npages(self) -> int:
        return len(self.pages)

    @property
    def nbytes(self) -> int:
        return len(self.pages) * PAGE_SIZE

    def resident_pages(self) -> int:
        return sum(1 for frame in self.pages if frame is not None)

    # ------------------------------------------------------------------
    # attachment

    def hold(self) -> "Region":
        self._check_live()
        self.refcount += 1
        return self

    def release(self) -> None:
        """Drop one attachment; free all frames at zero."""
        self._check_live()
        if self.refcount <= 0:
            raise SimulationError("release of unattached region %r" % self)
        self.refcount -= 1
        if self.refcount == 0:
            self._free_frames(0, len(self.pages))
            self.pages = []
            self.cow = []
            self.freed = True

    # ------------------------------------------------------------------
    # faulting support

    def ensure_page(self, index: int) -> Frame:
        """Demand-zero fault: materialize the frame for page ``index``."""
        self._check_index(index)
        frame = self.pages[index]
        if frame is None:
            frame = self.allocator.alloc()
            self.pages[index] = frame
            self.cow[index] = False
        return frame

    def is_cow(self, index: int) -> bool:
        self._check_index(index)
        return self.cow[index]

    def break_cow(self, index: int) -> Frame:
        """Give page ``index`` a private, writable frame.

        If the frame is shared with another region the bytes are copied
        into a fresh frame; if this region holds the last reference the
        page is simply un-marked.  Returns the now-private frame.
        """
        self._check_index(index)
        frame = self.pages[index]
        if frame is None:
            raise SimulationError("break_cow on non-resident page")
        if frame.refcount > 1:
            fresh = self.allocator.alloc()
            fresh.data[:] = frame.data
            self.allocator.release(frame)
            self.pages[index] = fresh
            frame = fresh
        self.cow[index] = False
        return frame

    # ------------------------------------------------------------------
    # duplication (fork path)

    def dup_cow(self) -> "Region":
        """Clone for copy-on-write: share frames, mark both sides COW.

        Resident pages in *both* the parent and the clone become COW so
        that whichever side writes first takes the copy.
        """
        self._check_live()
        clone = Region(self.allocator, len(self.pages), self.rtype)
        for index, frame in enumerate(self.pages):
            if frame is not None:
                clone.pages[index] = self.allocator.hold(frame)
                clone.cow[index] = True
                self.cow[index] = True
        return clone

    def dup_copy(self) -> "Region":
        """Eager full copy (used by ablations and exec of initialized data)."""
        self._check_live()
        clone = Region(self.allocator, len(self.pages), self.rtype)
        for index, frame in enumerate(self.pages):
            if frame is not None:
                fresh = self.allocator.alloc()
                fresh.data[:] = frame.data
                clone.pages[index] = fresh
        return clone

    # ------------------------------------------------------------------
    # growth and shrinkage

    def grow(self, npages: int) -> None:
        """Extend the region by ``npages`` demand-zero pages (at the end)."""
        if npages < 0:
            raise ValueError("grow by negative count")
        self._check_live()
        self.pages.extend([None] * npages)
        self.cow.extend([False] * npages)

    def grow_front(self, npages: int) -> None:
        """Extend at the front (stacks grow downward)."""
        if npages < 0:
            raise ValueError("grow by negative count")
        self._check_live()
        self.pages[:0] = [None] * npages
        self.cow[:0] = [False] * npages

    def shrink(self, npages: int) -> None:
        """Remove ``npages`` pages from the end, freeing their frames.

        Callers in a share group must hold the shared pregion update lock
        and perform the TLB shootdown *before* calling this, per the
        paper's section 6.2 protocol.
        """
        if npages < 0:
            raise ValueError("shrink by negative count")
        if npages > len(self.pages):
            raise SimulationError("shrink below zero size")
        self._check_live()
        start = len(self.pages) - npages
        self._free_frames(start, len(self.pages))
        del self.pages[start:]
        del self.cow[start:]

    # ------------------------------------------------------------------
    # internals

    def _free_frames(self, start: int, end: int) -> None:
        for index in range(start, end):
            frame = self.pages[index]
            if frame is not None:
                self.allocator.release(frame)
                self.pages[index] = None

    def _check_live(self) -> None:
        if self.freed:
            raise SimulationError("operation on freed region %r" % self)

    def _check_index(self, index: int) -> None:
        if not 0 <= index < len(self.pages):
            raise SimulationError(
                "page index %d out of range for %r" % (index, self)
            )
