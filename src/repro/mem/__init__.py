"""Virtual memory: frames, regions, pregions, address spaces, layout."""

from repro.mem.addrspace import AddressSpace, Fault, Resolution, SharedVM
from repro.mem.frames import Frame, FrameAllocator, PAGE_SIZE
from repro.mem.pregion import (
    Growth,
    PROT_EXEC,
    PROT_READ,
    PROT_RW,
    PROT_RX,
    PROT_WRITE,
    Pregion,
)
from repro.mem.region import Region, RegionType

__all__ = [
    "AddressSpace",
    "Fault",
    "Frame",
    "FrameAllocator",
    "Growth",
    "PAGE_SIZE",
    "PROT_EXEC",
    "PROT_READ",
    "PROT_RW",
    "PROT_RX",
    "PROT_WRITE",
    "Pregion",
    "Region",
    "RegionType",
    "Resolution",
    "SharedVM",
]
