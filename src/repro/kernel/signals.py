"""Signal numbers, default actions, and the pending-signal set.

The subset implemented is the one the paper's model leans on: signals
must keep working for share group members exactly as for normal
processes ("the principle of least surprise"), so delivery happens at the
classic points — return to user mode, and interruption of interruptible
sleeps.
"""

from __future__ import annotations

import enum
from typing import Set

SIGHUP = 1
SIGINT = 2
SIGQUIT = 3
SIGILL = 4
SIGTRAP = 5
SIGABRT = 6
SIGEMT = 7
SIGFPE = 8
SIGKILL = 9
SIGBUS = 10
SIGSEGV = 11
SIGSYS = 12
SIGPIPE = 13
SIGALRM = 14
SIGTERM = 15
SIGUSR1 = 16
SIGUSR2 = 17
SIGCHLD = 18
SIGSTOP = 23  # accepted but stop/continue is not modelled; acts like TERM
SIGCONT = 25

NSIG = 32

#: handler sentinels (match the classic numeric conventions)
SIG_DFL = 0
SIG_IGN = 1


class Action(enum.Enum):
    TERMINATE = "terminate"
    IGNORE = "ignore"


#: default disposition per signal
_DEFAULT_IGNORED = {SIGCHLD, SIGCONT}

#: signals whose disposition cannot be changed
UNCATCHABLE = {SIGKILL}


def default_action(sig: int) -> Action:
    if sig in _DEFAULT_IGNORED:
        return Action.IGNORE
    return Action.TERMINATE


def check_signal_number(sig: int) -> bool:
    return 1 <= sig < NSIG


class PendingSet:
    """The per-process set of posted-but-undelivered signals."""

    def __init__(self):
        self._pending: Set[int] = set()

    def post(self, sig: int) -> None:
        self._pending.add(sig)

    def clear(self) -> None:
        self._pending.clear()

    def take(self) -> int:
        """Remove and return the lowest pending signal (0 if none).

        SIGKILL always wins, matching the kernel's issig() priority.
        """
        if not self._pending:
            return 0
        if SIGKILL in self._pending:
            self._pending.discard(SIGKILL)
            return SIGKILL
        sig = min(self._pending)
        self._pending.discard(sig)
        return sig

    def discard(self, sig: int) -> None:
        self._pending.discard(sig)

    def __bool__(self) -> bool:
        return bool(self._pending)

    def __contains__(self, sig: int) -> bool:
        return sig in self._pending

    def __len__(self) -> int:
        return len(self._pending)
