"""Process management system calls: fork, sproc, exec, exit, wait,
signals, and address-space calls (sbrk/mmap/munmap).

Deviation from real UNIX, documented in DESIGN.md: simulated programs
are Python generators, which cannot be cloned mid-execution, so
``fork(entry, arg)`` and ``sproc(entry, shmask, arg)`` both start the
child at an entry point instead of returning twice.  Everything the
paper measures — address-space copying vs sharing, resource inheritance,
group membership — is unaffected.
"""

from __future__ import annotations

from repro.errors import (
    EAGAIN,
    ECHILD,
    EINTR,
    EINVAL,
    ENOEXEC,
    ENOMEM,
    EPERM,
    ESRCH,
    SysError,
)
from repro.fs.inode import IEXEC
from repro.kernel.flags import ALL_SYNC
from repro.kernel.signals import (
    SIGCHLD,
    SIG_DFL,
    SIG_IGN,
    UNCATCHABLE,
    check_signal_number,
)
from repro.mem.frames import PAGE_MASK, PAGE_SHIFT
from repro.mem.region import RegionType
from repro.share import prctl as prctl_mod
from repro.share import resources
from repro.share import sproc as sproc_mod
from repro.share import unshare as unshare_mod
from repro.share import vmshare
from repro.share.mask import PR_SADDR, PR_SALL, PR_SFDS
from repro.sim.effects import ExecImage as _ExecTaken
from repro.sim.effects import kdelay
from repro.sync.semaphore import Semaphore


def make_exit_status(code: int) -> int:
    """Encode a normal exit the way wait() reports it."""
    return (code & 0xFF) << 8


def make_signal_status(sig: int) -> int:
    """Encode death-by-signal."""
    return sig & 0x7F


def status_exited(status: int) -> bool:
    return status & 0xFF == 0


def status_code(status: int) -> int:
    return (status >> 8) & 0xFF


def status_signal(status: int) -> int:
    return status & 0x7F


class ProcSyscalls:
    """Kernel mixin: process lifecycle and VM calls."""

    # ------------------------------------------------------------------
    # creation

    def sys_fork(self, proc, entry, arg=0):
        """Create a copy-on-write child running ``entry(api, arg)``.

        Inside a share group this creates a process *outside* the group
        (the paper's rule), with the group's visible regions left as
        copy-on-write elements of the new process.
        """
        yield kdelay(self.costs.proc_alloc)
        if self.fail("fork.proc"):
            raise SysError(EAGAIN, "injected: process table full")
        sharing = vmshare.sharing_vm(proc)
        if sharing:
            # fork is on the paper's update-lock list: it changes what
            # the shared page tables point to (COW marking).
            yield from vmshare.update_acquire(proc)
        child_vm = proc.vm.dup_cow()
        npregions = len(child_vm.private)
        resident = sum(
            pregion.region.resident_pages() for pregion in child_vm.private
        )
        yield kdelay(
            self.costs.pregion_dup * npregions
            + self.costs.pt_copy_per_page * resident
        )
        # Resident pages became read-only COW on the parent side too:
        # stale writable translations must go.
        if sharing:
            yield from vmshare.shootdown(self, proc)
            yield from vmshare.update_release(proc)
        else:
            for cpu in self.machine.cpus:
                cpu.tlb.flush_asid(proc.vm.asid)
            yield kdelay(self.costs.tlb_flush_local)
        yield kdelay(self.costs.uarea_copy)
        try:
            if self.fail("fork.uarea"):
                raise SysError(ENOMEM, "injected: u-area allocation failed")
            uarea = proc.uarea.fork_copy()
        except SysError:
            # The COW image holds frame references; put them back or the
            # frames leak.  The parent's pages just stay COW-marked until
            # its next write breaks them back to sole ownership.
            child_vm.teardown_private()
            self._retire_asid(child_vm.asid)
            raise
        child = self._new_proc(uarea, child_vm, name=proc.name + "+f")
        child.parent = proc
        proc.children.append(child)
        self.stats["forks"] += 1
        self.trace("fork", proc.pid, "child=%d" % child.pid)
        self._start_child(child, entry, arg)
        return child.pid

    def sys_sproc(self, proc, entry, shmask: int, arg=0):
        """Create a share group member (paper section 5.1).

        Every step after the group exists can fail (injected or real);
        :meth:`_unwind_sproc` takes the partially built child apart in
        reverse order so a failed call leaves the group exactly as it
        was — ``s_refcnt``, the shared pregion list, frame counts and
        fd references all restored.
        """
        yield kdelay(self.costs.proc_alloc)
        if self.fail("sproc.proc"):
            raise SysError(EAGAIN, "injected: process table full")
        if self.fail("sproc.shaddr"):
            raise SysError(EAGAIN, "injected: no shared address block")
        shaddr = sproc_mod.ensure_group(self, proc)
        mask = sproc_mod.effective_mask(proc, shmask)
        child_vm = stack = uarea = None
        try:
            if mask & PR_SADDR:
                yield from shaddr.vm_lock.acquire_update(proc)
                try:
                    if self.fail("sproc.stack"):
                        raise SysError(ENOMEM, "injected: cannot carve child stack")
                    child_vm, stack = sproc_mod.build_child_vm(self, proc, mask)
                    yield kdelay(self.costs.region_create + self.costs.region_attach)
                    if mask & sproc_mod.PR_PRIVDATA:
                        # Shared data pages just became COW: running members
                        # may hold stale writable translations.
                        yield from vmshare.shootdown(self, proc)
                finally:
                    yield from shaddr.vm_lock.release_update(proc)
            else:
                if self.fail("sproc.stack"):
                    raise SysError(ENOMEM, "injected: cannot carve child stack")
                child_vm, stack = sproc_mod.build_child_vm(self, proc, mask)
                npregions = len(child_vm.private)
                resident = sum(
                    pregion.region.resident_pages() for pregion in child_vm.private
                )
                yield kdelay(
                    self.costs.pregion_dup * npregions
                    + self.costs.pt_copy_per_page * resident
                    + self.costs.region_create
                )
                for cpu in self.machine.cpus:
                    cpu.tlb.flush_asid(proc.vm.asid)
                yield kdelay(self.costs.tlb_flush_local)
            yield kdelay(self.costs.uarea_copy)
            if self.fail("sproc.uarea"):
                raise SysError(ENOMEM, "injected: u-area allocation failed")
            uarea = sproc_mod.child_uarea(
                proc, shaddr, mask, dispose=self.dispose_file
            )
        except SysError:
            yield from self._unwind_sproc(proc, shaddr, mask, child_vm, stack, uarea)
            raise
        child = self._new_proc(uarea, child_vm, name=proc.name + "+s")
        child.parent = proc
        proc.children.append(child)
        child.shaddr = shaddr
        child.p_shmask = mask
        shaddr.add_member(child)
        try:
            if self.fail("sproc.kstack"):
                raise SysError(ENOMEM, "injected: no kernel stack for child")
        except SysError:
            # The child is already a counted group member: detach it the
            # way exit would before undoing the rest.
            yield from self._unwind_sproc(
                proc, shaddr, mask, child_vm, stack, uarea, child
            )
            raise
        self.stats["sprocs"] += 1
        self.trace("sproc", proc.pid, "child=%d mask=%#x" % (child.pid, mask))
        self._start_child(child, entry, arg)
        return child.pid

    def _unwind_sproc(
        self, proc, shaddr, mask, child_vm, stack, uarea, child=None
    ):
        """Generator: undo a partially built sproc child, newest piece first.

        Mirrors the exit path piece by piece: group membership
        (``s_refcnt``/``s_plink``), the proc-table entry, the u-area's
        file and directory references, and the child's address space —
        including a stack already carved into the *shared* pregion list,
        which every member could see.
        """
        if child is not None:
            yield from shaddr.s_listlock.acquire(proc)
            shaddr.remove_member(child)
            shaddr.s_listlock.release()
            child.shaddr = None
            child.p_shmask = 0
            child.state = child.ZOMBIE
            proc.children.remove(child)
            self.proc_table.remove(child)
            self.live_procs -= 1
        if uarea is not None:
            for file in uarea.fdtable.close_all():
                self.dispose_file(file)
            uarea.release_dirs()
        if child_vm is not None:
            if mask & PR_SADDR:
                yield from shaddr.vm_lock.acquire_update(proc)
                try:
                    shared_list = shaddr.shared_vm.pregions
                    if stack is not None and stack in shared_list:
                        shared_list.remove(stack)
                        stack.detach()
                finally:
                    yield from shaddr.vm_lock.release_update(proc)
                child_vm.teardown_private()
            else:
                child_vm.teardown_private()
                self._retire_asid(child_vm.asid)

    # ------------------------------------------------------------------
    # exec

    def sys_exec(self, proc, path: str, arg=0, keep_group: bool = False):
        """Overlay a new program image; leaves the share group first.

        ``keep_group`` is the section 8 extension: the new image keeps
        its group membership for the *non-VM* resources (file sharing,
        scheduling as a unit) while getting a unique address space —
        "a group of unrelated programs managed as a whole for file
        sharing or scheduling purposes".
        """
        ua = proc.uarea
        inode = self.fs.namei(path, ua.cdir, ua.rdir, ua.cred())
        inode.access(ua.uid, ua.gid, IEXEC)
        if inode.program is None:
            raise SysError(ENOEXEC, path)
        image = self.programs.get(inode.program)
        if image is None:
            raise SysError(ENOEXEC, "unregistered program %r" % inode.program)
        yield kdelay(self.costs.exec_image)
        # exec removes the process from the share group *before*
        # overlaying the image (paper section 5.1: a secure environment
        # for the new program) — unless the extension asks to stay.
        proc.vm.teardown_private()
        if proc.vm.shared is None:
            self._retire_asid(proc.vm.asid)
        if (
            keep_group
            and proc.shaddr is not None
            and proc.p_shmask & (PR_SALL & ~PR_SADDR)
        ):
            proc.p_shmask &= ~PR_SADDR
        else:
            # No non-VM resources left to share (or no extension asked
            # for): membership would be pure bookkeeping, so leave.
            yield from self._leave_group(proc)
        proc.vm = self.build_image_vm(image, ua.stack_max)
        ua.reset_handlers()
        proc.pending.clear()
        self.stats["execs"] += 1
        raise _ExecTaken(self._driver(proc, image.func, arg))

    # ------------------------------------------------------------------
    # exit and wait

    def sys_exit(self, proc, code: int = 0):
        yield from self.do_exit(proc, make_exit_status(code))

    def do_exit(self, proc, status: int):
        """Generator: release everything and become a zombie.  Never
        returns — the final effect blocks forever.

        A thread of a Mach-style task only tears the shared task
        resources down when it is the last thread out.
        """
        if proc.alarm_event is not None:
            proc.alarm_event.cancel()
            proc.alarm_event = None
        last_of_task = True
        if proc.task is not None:
            last_of_task = proc.task.remove(proc) == 0
            self.stats["thread_exits"] += 1
        if last_of_task:
            yield kdelay(self.costs.exit_teardown)
            for file in proc.uarea.fdtable.close_all():
                self.dispose_file(file)
            proc.uarea.release_dirs()
            proc.vm.teardown_private()
            if proc.vm.shared is None:
                self._retire_asid(proc.vm.asid)
            yield from self._leave_group(proc)
        else:
            # thread exit: just the kernel stack and proc entry go
            yield kdelay(self.costs.exit_teardown // 3)
        # orphaned children are inherited by init
        init = self.proc_table.get(1)
        for child in proc.children:
            child.parent = init
            if init is not None and init is not proc:
                init.children.append(child)
                if child.state is child.ZOMBIE:
                    init.child_wait.v()
        proc.children = []
        proc.exit_status = status
        proc.state = proc.ZOMBIE
        self.stats["exits"] += 1
        self.trace("exit", proc.pid, "status=%#x" % status)
        parent = proc.parent
        if parent is not None and parent.alive():
            self.psignal(parent, SIGCHLD)
            parent.child_wait.v()
        self.on_proc_exit(proc)
        yield from self._block_forever()

    @staticmethod
    def _block_forever():
        from repro.sim.effects import Block

        yield Block("zombie")
        raise AssertionError("zombie resumed")  # pragma: no cover

    def _retire_asid(self, asid: int) -> None:
        """Structurally drop a dead address space's translations.

        Models the flush real MIPS kernels perform when an ASID is
        recycled; charged nowhere because it happens lazily off the
        measured paths.
        """
        for cpu in self.machine.cpus:
            cpu.tlb.flush_asid(asid)

    def _leave_group(self, proc):
        """Generator: drop share group membership; free the block when last out."""
        shaddr = proc.shaddr
        if shaddr is None:
            return
        yield from shaddr.s_listlock.acquire(proc)
        remaining = shaddr.remove_member(proc)
        shaddr.s_listlock.release()
        proc.shaddr = None
        proc.p_shmask = 0
        proc.p_flag &= ~ALL_SYNC
        if remaining == 0:
            for pregion in shaddr.shared_vm.pregions:
                pregion.detach()
            shaddr.shared_vm.pregions = []
            self._retire_asid(shaddr.shared_vm.asid)
            shaddr.free(self.dispose_file)
            self.stats["groups_freed"] += 1

    # ------------------------------------------------------------------
    # runtime unshare (ROADMAP #4: prctl PR_UNSHARE / PR_SETSHMASK)

    def do_unshare(self, proc, value: int):
        """Generator: transactionally stop sharing the resources in
        ``value``; returns the new share mask (0 once the caller has left
        the group entirely).

        The copy-out order — ``s_fupdsema`` -> vm update lock ->
        ``s_listlock`` — is pinned by tests/test_lockdep.py.  Any failure
        before the commit unwinds through :meth:`_unwind_unshare` and
        leaves the caller exactly as it was: still a full member, with
        every staged private copy torn back down.
        """
        unshare_mod.validate_mask(value)
        if proc.shaddr is None:
            raise SysError(EINVAL, "not in a share group")
        yield kdelay(self.costs.flag_batch_test)
        drop = value & proc.p_shmask & PR_SALL
        if not drop:
            return proc.p_shmask
        shaddr = proc.shaddr
        self.stats["unshares"] += 1
        self.kstat.add("kernel", 0, "unshare_calls")
        self.pcount(proc, "unshare_calls")
        staged = {"fds": None, "vm": None}
        vm_locked = False
        # Holding the file-update semaphore for the whole transaction
        # keeps concurrent update_files() calls from mutating s_ofile
        # between the final sync and the commit.
        yield from shaddr.s_fupdsema.p(proc)
        try:
            try:
                # Catch up with any pending group updates first: the
                # staged private copies must be of the freshest state.
                yield from resources.sync_on_entry(self, proc)
                if drop & unshare_mod.MISC_BITS:
                    yield kdelay(self.costs.uarea_copy)
                    if self.fail("unshare.uarea"):
                        raise SysError(
                            ENOMEM, "injected: private u-area resources"
                        )
                if drop & PR_SFDS:
                    yield from unshare_mod.copy_out_fds(self, proc, staged)
                if drop & PR_SADDR and vmshare.sharing_vm(proc):
                    yield from shaddr.vm_lock.acquire_update(proc)
                    vm_locked = True
                    yield from unshare_mod.copy_out_aspace(self, proc, staged)
                    # Cloning marked resident shared pages COW on both
                    # sides: every member's stale writable translations
                    # must go while the update lock is still held.
                    yield from vmshare.shootdown(self, proc)
            except SysError:
                yield from self._unwind_unshare(proc, staged)
                raise
            unshare_mod.commit_unshare(self, proc, drop, staged)
            self.trace(
                "unshare", proc.pid,
                "drop=%#x mask=%#x" % (drop, proc.p_shmask),
            )
            if staged["vm"] is not None:
                # switching onto the private page tables / fresh ASID
                yield kdelay(self.costs.tlb_flush_local)
            if proc.p_shmask & PR_SALL == 0:
                # Nothing shared any more: depart, under the same locks
                # the copy-out took (a last-out departure tears down the
                # shared pregion list, which needs the update lock we may
                # already hold).
                yield from self._leave_group(proc)
        finally:
            if vm_locked:
                yield from shaddr.vm_lock.release_update(proc)
            shaddr.s_fupdsema.v()
        return proc.p_shmask

    def _unwind_unshare(self, proc, staged):
        """Generator: undo a partially staged unshare, newest piece first.

        The mirror of :meth:`_unwind_sproc`.  Nothing was committed, so
        the caller is still a full group member and only the staged
        private copies are torn down.  Shared pages the copy-out already
        COW-marked keep their marks (harmless, exactly as in the fork
        unwind: the next write breaks them back to sole ownership), but
        stale writable translations for them must still be shot down.
        """
        vm = staged["vm"]
        if vm is not None:
            yield from vmshare.shootdown(self, proc)
            vm.teardown_private()
            self._retire_asid(vm.asid)
            staged["vm"] = None
        fresh = staged["fds"]
        if fresh is not None:
            for file in fresh.close_all():
                self.dispose_file(file)
            staged["fds"] = None
        self.stats["unshare_unwinds"] += 1
        self.kstat.add("kernel", 0, "unshare_unwinds")
        self.pcount(proc, "unshare_unwinds")

    def sys_wait(self, proc):
        """Wait for a child to die; returns ``(pid, status)``."""
        while True:
            zombie = next(
                (child for child in proc.children if child.state is child.ZOMBIE),
                None,
            )
            if zombie is not None:
                proc.children.remove(zombie)
                self.proc_table.remove(zombie)
                proc.child_wait.cp()  # consume the matching wakeup if present
                yield kdelay(self.costs.flag_batch_test)
                return zombie.pid, zombie.exit_status
            if not proc.children:
                raise SysError(ECHILD)
            if self.fail("wait.sleep"):
                raise SysError(EINTR, "injected: signal before wait sleep")
            ok = yield from proc.child_wait.p(proc, interruptible=True)
            if not ok:
                raise SysError(EINTR)

    # ------------------------------------------------------------------
    # signals

    def sys_kill(self, proc, pid: int, sig: int):
        yield kdelay(self.costs.flag_batch_test)
        if not check_signal_number(sig) and sig != 0:
            raise SysError(EINVAL)
        target = self.proc_table.get(pid)
        if target is None or not target.alive():
            raise SysError(ESRCH)
        if proc.uarea.uid != 0 and proc.uarea.uid != target.uarea.uid:
            raise SysError(EPERM)
        if sig != 0:
            self.psignal(target, sig)
        return 0

    def sys_signal(self, proc, sig: int, handler):
        """Install a disposition; returns the previous one."""
        yield kdelay(self.costs.flag_batch_test)
        if not check_signal_number(sig) or sig in UNCATCHABLE:
            raise SysError(EINVAL)
        if handler not in (SIG_DFL, SIG_IGN) and not callable(handler):
            raise SysError(EINVAL)
        old = proc.uarea.handler(sig)
        proc.uarea.set_handler(sig, handler)
        if handler is SIG_IGN:
            proc.pending.discard(sig)
        return old

    def sys_pause(self, proc):
        """Sleep until a signal arrives; always returns EINTR.

        A signal that is already pending (posted while the caller was
        still in user mode on its way into the call) counts as having
        arrived: the call returns immediately rather than sleeping with
        the wakeup already consumed.
        """
        if proc.pending:
            yield kdelay(self.costs.flag_batch_test)
            raise SysError(EINTR)
        parking = Semaphore(self.machine, self.sched, 0, "pause")
        yield from parking.p(proc, interruptible=True)
        raise SysError(EINTR)

    # ------------------------------------------------------------------
    # address space calls

    def _data_pregion(self, proc):
        pregion, shared = proc.vm.find_by_type(RegionType.DATA)
        if pregion is None:
            raise SysError(EINVAL, "no data segment")
        return pregion, shared

    def sys_sbrk(self, proc, incr: int):
        """Grow or shrink the data segment; returns the old break.

        Page-granular (a documented simplification).  Inside a VM-sharing
        group this is an update-lock operation, and *shrinking* performs
        the synchronous all-CPU TLB shootdown of section 6.2 — the one
        genuinely expensive VM operation in the design.
        """
        pregion, shared = self._data_pregion(proc)
        pages = (abs(incr) + PAGE_MASK) >> PAGE_SHIFT if incr else 0
        old_brk = pregion.vhigh
        if pages == 0:
            yield kdelay(self.costs.flag_batch_test)
            return old_brk
        sharing = shared and vmshare.sharing_vm(proc)
        if sharing:
            yield from vmshare.update_acquire(proc)
        try:
            if incr > 0:
                proc.vm.check_overlap(pregion.vhigh, pregion.vhigh + (pages << PAGE_SHIFT))
                pregion.grow_up(pages)
                yield kdelay(self.costs.region_attach)
            else:
                if pages > pregion.region.npages:
                    raise SysError(EINVAL, "shrink below data start")
                # Only the vanishing tail needs invalidating; the rest of
                # the space (and everyone else's TLB entries) stays warm.
                vpn_hi = pregion.vpn_high
                vpn_lo = vpn_hi - pages
                if sharing:
                    yield from vmshare.shootdown_range(self, proc, vpn_lo, vpn_hi)
                else:
                    yield from self.tlb_invalidate_range(proc, vpn_lo, vpn_hi)
                pregion.shrink(pages)
                yield kdelay(self.costs.region_attach)
        finally:
            if sharing:
                yield from vmshare.update_release(proc)
        return old_brk

    def sys_mmap(self, proc, nbytes: int):
        """Map anonymous pages; returns the new base address.

        Visible to the whole group immediately when the VM is shared —
        "if one process adds a pregion ... all other share group members
        will immediately see that new virtual region."
        """
        if nbytes <= 0:
            raise SysError(EINVAL)
        if self.fail("mmap.region"):
            raise SysError(ENOMEM, "injected: no address range available")
        from repro.mem.pregion import PROT_RW

        sharing = vmshare.sharing_vm(proc)
        if sharing:
            yield from vmshare.update_acquire(proc)
        try:
            base = proc.vm.alloc_map_range(nbytes)
            proc.vm.map_segment(
                base, nbytes, RegionType.SHM, PROT_RW, shared=sharing
            )
            yield kdelay(self.costs.region_create + self.costs.region_attach)
        finally:
            if sharing:
                yield from vmshare.update_release(proc)
        self.stats["mmaps"] += 1
        return base

    def sys_munmap(self, proc, vaddr: int):
        """Unmap a whole mapping created by mmap (partial unmaps: EINVAL).

        The shootdown protocol: flush every CPU's TLB while holding the
        update lock, *then* free the pages.
        """
        sharing = vmshare.sharing_vm(proc)
        if sharing:
            yield from vmshare.update_acquire(proc)
        try:
            pregion, _shared = proc.vm.find(vaddr)
            if pregion is None or pregion.vbase != vaddr or pregion.rtype is not RegionType.SHM:
                raise SysError(EINVAL, "not a mapping base")
            if sharing:
                yield from vmshare.shootdown_range(
                    self, proc, pregion.vpn_low, pregion.vpn_high
                )
            else:
                yield from self.tlb_invalidate_range(
                    proc, pregion.vpn_low, pregion.vpn_high
                )
            proc.vm.detach(pregion)
            yield kdelay(self.costs.region_attach)
        finally:
            if sharing:
                yield from vmshare.update_release(proc)
        self.stats["munmaps"] += 1
        return 0

    # ------------------------------------------------------------------
    # identity and control

    def sys_getpid(self, proc):
        yield kdelay(self.costs.flag_batch_test)
        return proc.pid

    def sys_getppid(self, proc):
        yield kdelay(self.costs.flag_batch_test)
        return proc.parent.pid if proc.parent is not None else 0

    # ------------------------------------------------------------------
    # blockproc/unblockproc (section 8 extension: "a whole process group
    # could be conveniently blocked or unblocked"; IRIX later shipped
    # exactly this pair alongside sproc)

    def _block_sema(self, proc):
        if proc.block_sema is None:
            proc.block_sema = Semaphore(
                self.machine, self.sched, 0, "block:%d" % proc.pid
            )
        return proc.block_sema

    def blocked_frame(self, proc):
        """Generator the CPU parks a blocked process in (user boundary)."""
        while proc.block_count < 0:
            yield from self._block_sema(proc).p(proc)

    def sys_blockproc(self, proc, pid: int):
        """Decrement the target's block count; below zero it suspends at
        its next user-mode boundary (immediately when blocking itself)."""
        yield kdelay(self.costs.flag_batch_test)
        target = self.proc_table.get(pid)
        if target is None or not target.alive():
            raise SysError(ESRCH)
        if proc.uarea.uid != 0 and proc.uarea.uid != target.uarea.uid:
            raise SysError(EPERM)
        target.block_count -= 1
        if target is proc and proc.block_count < 0:
            yield from self.blocked_frame(proc)
        return 0

    def sys_unblockproc(self, proc, pid: int):
        yield kdelay(self.costs.flag_batch_test)
        target = self.proc_table.get(pid)
        if target is None or not target.alive():
            raise SysError(ESRCH)
        if proc.uarea.uid != 0 and proc.uarea.uid != target.uarea.uid:
            raise SysError(EPERM)
        target.block_count += 1
        if target.block_count >= 0 and target.block_sema is not None:
            target.block_sema.v_all()
        return 0

    def sys_alarm(self, proc, cycles: int):
        """Schedule SIGALRM ``cycles`` from now (0 cancels).

        Cycle-denominated rather than second-denominated — the
        simulation has no seconds.  Returns the cycles that remained on
        any previous alarm.
        """
        yield kdelay(self.costs.flag_batch_test)
        remaining = 0
        if proc.alarm_event is not None and not proc.alarm_event.cancelled:
            remaining = max(proc.alarm_event.time - self.engine.now, 0)
            proc.alarm_event.cancel()
            proc.alarm_event = None
        if cycles > 0:
            from repro.kernel.signals import SIGALRM

            proc.alarm_event = self.engine.schedule(
                cycles, lambda: self.psignal(proc, SIGALRM)
            )
        return remaining

    def sys_nice(self, proc, incr: int):
        yield kdelay(self.costs.flag_batch_test)
        if incr < 0 and proc.uarea.uid != 0:
            raise SysError(EPERM)
        proc.pri = max(0, min(39, proc.pri + incr))
        return proc.pri

    def sys_prctl(self, proc, option: int, value: int = 0, value2: int = 0):
        result = yield from prctl_mod.prctl(self, proc, option, value, value2)
        return result
